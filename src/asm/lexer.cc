#include "asm/lexer.hh"

#include <cctype>
#include <cstdlib>

namespace ruu
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

std::vector<Token>
lex(const std::string &source)
{
    std::vector<Token> tokens;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = source.size();

    auto push = [&](TokKind kind, std::string text = "") {
        Token tok;
        tok.kind = kind;
        tok.text = std::move(text);
        tok.line = line;
        tokens.push_back(std::move(tok));
    };

    auto pushNewline = [&]() {
        if (!tokens.empty() && tokens.back().kind != TokKind::Newline)
            push(TokKind::Newline);
    };

    while (i < n) {
        char c = source[i];
        if (c == '\n') {
            pushNewline();
            ++line;
            ++i;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r') {
            ++i;
            continue;
        }
        if (c == ';' || c == '#') {
            while (i < n && source[i] != '\n')
                ++i;
            continue;
        }
        if (c == ',') { push(TokKind::Comma); ++i; continue; }
        if (c == ':') { push(TokKind::Colon); ++i; continue; }
        if (c == '(') { push(TokKind::LParen); ++i; continue; }
        if (c == ')') { push(TokKind::RParen); ++i; continue; }

        if (c == '.') {
            std::size_t start = i++;
            while (i < n && identChar(source[i]))
                ++i;
            push(TokKind::Directive, source.substr(start, i - start));
            continue;
        }

        if (identStart(c)) {
            std::size_t start = i;
            while (i < n && identChar(source[i]))
                ++i;
            push(TokKind::Ident, source.substr(start, i - start));
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
            c == '+') {
            std::size_t start = i;
            if (c == '-' || c == '+')
                ++i;
            bool is_float = false;
            bool is_hex = false;
            if (i + 1 < n && source[i] == '0' &&
                (source[i + 1] == 'x' || source[i + 1] == 'X')) {
                is_hex = true;
                i += 2;
                while (i < n &&
                       std::isxdigit(static_cast<unsigned char>(source[i])))
                    ++i;
            } else {
                while (i < n &&
                       (std::isdigit(static_cast<unsigned char>(source[i]))
                        || source[i] == '.' || source[i] == 'e' ||
                        source[i] == 'E' ||
                        ((source[i] == '-' || source[i] == '+') && i > start
                         && (source[i - 1] == 'e' || source[i - 1] == 'E'))))
                {
                    if (source[i] == '.' || source[i] == 'e' ||
                        source[i] == 'E')
                        is_float = true;
                    ++i;
                }
            }
            std::string text = source.substr(start, i - start);
            if (text == "-" || text == "+") {
                push(TokKind::Error, "stray '" + text + "'");
                continue;
            }
            Token tok;
            tok.line = line;
            tok.text = text;
            if (is_float) {
                tok.kind = TokKind::Float;
                tok.floatValue = std::strtod(text.c_str(), nullptr);
            } else {
                tok.kind = TokKind::Int;
                tok.intValue = std::strtoll(text.c_str(), nullptr,
                                            is_hex ? 16 : 10);
            }
            tokens.push_back(std::move(tok));
            continue;
        }

        push(TokKind::Error, std::string("unexpected character '") + c +
                                 "'");
        ++i;
    }

    pushNewline();
    push(TokKind::End);
    return tokens;
}

} // namespace ruu
