/**
 * @file
 * Tokenizer for the textual assembly language.
 *
 * The language is line-oriented: one instruction, label, or directive
 * per line; ';' and '#' start comments that run to end of line.
 */

#ifndef RUU_ASM_LEXER_HH
#define RUU_ASM_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ruu
{

/** Token categories produced by the Lexer. */
enum class TokKind : std::uint8_t
{
    Ident,     //!< mnemonic, register name, or label reference
    Directive, //!< ".word", ".fword", ".program"
    Int,       //!< decimal or 0x hex integer (value in Token::intValue)
    Float,     //!< floating-point literal (value in Token::floatValue)
    Comma,
    Colon,
    LParen,
    RParen,
    Newline,   //!< end of a logical line
    End,       //!< end of input
    Error,     //!< bad character; message in Token::text
};

/** One lexical token with its source line for diagnostics. */
struct Token
{
    TokKind kind = TokKind::End;
    std::string text;        //!< identifier/directive text or error message
    std::int64_t intValue = 0;
    double floatValue = 0.0;
    int line = 0;            //!< 1-based source line
};

/**
 * Tokenize @p source completely.
 * Consecutive newlines are collapsed into one Newline token and the
 * stream always ends with End.
 */
std::vector<Token> lex(const std::string &source);

} // namespace ruu

#endif // RUU_ASM_LEXER_HH
