/**
 * @file
 * Parser for the textual assembly language.
 *
 * Grammar (line oriented):
 * @code
 *   program   := { line }
 *   line      := [label ':'] [stmt] NEWLINE
 *   stmt      := directive | instruction
 *   directive := ".program" ident
 *              | ".word"  int ',' int      ; mem[addr] = integer
 *              | ".fword" int ',' number   ; mem[addr] = double
 *   instruction follows the disassembler syntax, e.g.:
 *       fadd S1, S2, S3
 *       sshl S3, 5
 *       smovi S2, -100
 *       lds S1, 8(A2)
 *       sts -4(A3), S2
 *       jam loop
 * @endcode
 *
 * Errors are collected (not thrown); a program is only returned when
 * there are none.
 */

#ifndef RUU_ASM_PARSER_HH
#define RUU_ASM_PARSER_HH

#include <optional>
#include <string>
#include <vector>

#include "asm/program.hh"

namespace ruu
{

/** One assembler diagnostic. */
struct AsmError
{
    int line;            //!< 1-based source line
    std::string message;

    /** "line 12: unknown mnemonic 'fadx'". */
    std::string toString() const;
};

/** Result of assembling a source file. */
struct AsmResult
{
    std::optional<Program> program; //!< set only when errors is empty
    std::vector<AsmError> errors;

    /** True when assembly succeeded. */
    bool ok() const { return program.has_value(); }
};

/** Assembler knobs. */
struct AsmOptions
{
    /**
     * Strict mode: run the static program verifier (lint/analyze.hh)
     * after assembly and report unsuppressed error-severity findings
     * as assembly errors on the offending source lines.
     */
    bool lint = false;
};

/**
 * Assemble @p source.
 * @param default_name program name used when no ".program" directive
 *        appears.
 */
AsmResult assemble(const std::string &source,
                   const std::string &default_name = "program",
                   const AsmOptions &options = {});

} // namespace ruu

#endif // RUU_ASM_PARSER_HH
