/**
 * @file
 * A complete model-ISA program: instruction sequence with parcel
 * addresses, labels, and an initial data-memory image.
 *
 * Programs are produced by the textual assembler (asm/parser.hh) or the
 * C++ builder DSL (asm/builder.hh) and consumed by the functional
 * simulator and — via the trace it generates — by the timing cores.
 */

#ifndef RUU_ASM_PROGRAM_HH
#define RUU_ASM_PROGRAM_HH

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace ruu
{

/** An initial-value entry for data memory. */
struct DataInit
{
    Addr addr;  //!< word address
    Word value; //!< raw 64-bit contents (integer or double bits)
};

/** An immutable, fully resolved program. */
class Program
{
  public:
    Program() = default;

    /** Human-readable program name (e.g. "lll3"). */
    const std::string &name() const { return _name; }

    /** Number of static instructions. */
    std::size_t size() const { return _insts.size(); }

    /** True when the program has no instructions. */
    bool empty() const { return _insts.empty(); }

    /** Instruction @p index (0-based static index). */
    const Instruction &inst(std::size_t index) const;

    /** Parcel address of instruction @p index. */
    ParcelAddr pc(std::size_t index) const;

    /** All instructions in order. */
    const std::vector<Instruction> &instructions() const { return _insts; }

    /** Total program length in parcels. */
    ParcelAddr totalParcels() const { return _nextPc; }

    /**
     * Static instruction index whose parcel address is @p pc;
     * nullopt when @p pc is not an instruction boundary.
     */
    std::optional<std::size_t> indexOfPc(ParcelAddr pc) const;

    /** Parcel address bound to @p label, if the label exists. */
    std::optional<ParcelAddr> labelAddr(const std::string &label) const;

    /** All labels, for listings. */
    const std::map<std::string, ParcelAddr> &labels() const
    {
        return _labels;
    }

    /** Initial data-memory image. */
    const std::vector<DataInit> &dataInits() const { return _data; }

    /**
     * Lint suppressions bound to single instructions: parcel address
     * of the annotated instruction -> check id or name as written
     * (`.lint allow <check>` in assembly, ProgramBuilder::allow()).
     * Matching is done by the analyzer (lint/analyze.hh).
     */
    const std::multimap<ParcelAddr, std::string> &lintAllows() const
    {
        return _lintAllows;
    }

    /** Program-wide lint suppressions ("all" suppresses everything). */
    const std::set<std::string> &lintGlobalAllows() const
    {
        return _lintGlobalAllows;
    }

    /**
     * True when the program is an interrupt handler kernel (`.handler`
     * in assembly, ProgramBuilder::handler()): it runs from the trap
     * controller's exchange sequence and ends with RTI rather than
     * HALT. The static analyzer (lint/analyze.hh) treats RTI in a
     * non-handler program as a likely mistake (RUU-W302).
     */
    bool isHandler() const { return _isHandler; }

    /** Render an assembler-style listing with addresses and labels. */
    std::string listing() const;

  private:
    friend class ProgramBuilder;
    friend class Parser;

    std::string _name;
    std::vector<Instruction> _insts;
    std::vector<ParcelAddr> _pcs;
    std::map<ParcelAddr, std::size_t> _pcToIndex;
    std::map<std::string, ParcelAddr> _labels;
    std::vector<DataInit> _data;
    std::multimap<ParcelAddr, std::string> _lintAllows;
    std::set<std::string> _lintGlobalAllows;
    bool _isHandler = false;
    ParcelAddr _nextPc = 0;

    /** Append an instruction, assigning its parcel address. */
    std::size_t append(const Instruction &inst);

    /** Bind @p label to the next instruction's address. */
    bool bindLabel(const std::string &label);
};

} // namespace ruu

#endif // RUU_ASM_PROGRAM_HH
