#include "asm/parser.hh"

#include "asm/lexer.hh"
#include "common/bitfield.hh"
#include "isa/encoding.hh"
#include "lint/analyze.hh"

namespace ruu
{

std::string
AsmError::toString() const
{
    return "line " + std::to_string(line) + ": " + message;
}

/** Recursive-descent parser over the token stream. */
class Parser
{
  public:
    Parser(const std::string &source, const std::string &default_name,
           const AsmOptions &options)
        : _tokens(lex(source)), _options(options)
    {
        _program._name = default_name;
    }

    AsmResult
    run()
    {
        while (peek().kind != TokKind::End)
            parseLine();

        AsmResult result;
        if (_errors.empty()) {
            resolveBranches();
        }
        if (_errors.empty() && _options.lint) {
            runLint();
        }
        if (_errors.empty()) {
            result.program = std::move(_program);
        }
        result.errors = std::move(_errors);
        return result;
    }

  private:
    std::vector<Token> _tokens;
    std::size_t _pos = 0;
    AsmOptions _options;
    Program _program;
    std::vector<std::pair<std::size_t, Token>> _pendingBranches;
    std::vector<std::string> _pendingAllows;
    std::vector<int> _instLines; //!< instruction index -> source line
    std::vector<AsmError> _errors;

    const Token &peek(unsigned ahead = 0) const
    {
        std::size_t idx = _pos + ahead;
        if (idx >= _tokens.size())
            idx = _tokens.size() - 1;
        return _tokens[idx];
    }

    const Token &next() { const Token &t = peek(); advance(); return t; }

    void
    advance()
    {
        if (_pos + 1 < _tokens.size())
            ++_pos;
    }

    void
    error(const Token &at, const std::string &message)
    {
        _errors.push_back({at.line, message});
    }

    /** Skip to just past the next newline, for error recovery. */
    void
    skipLine()
    {
        while (peek().kind != TokKind::Newline && peek().kind != TokKind::End)
            advance();
        if (peek().kind == TokKind::Newline)
            advance();
    }

    /** Append @p inst, binding pending `.lint allow`s and the line. */
    std::size_t
    appendInst(const Instruction &inst, int line)
    {
        std::size_t index = _program.append(inst);
        _instLines.push_back(line);
        for (std::string &check : _pendingAllows)
            _program._lintAllows.emplace(_program.pc(index),
                                         std::move(check));
        _pendingAllows.clear();
        return index;
    }

    /** Strict mode: fold lint errors into the assembler diagnostics. */
    void
    runLint()
    {
        for (const lint::Diagnostic &d : lint::analyze(_program)) {
            if (d.severity != lint::Severity::Error)
                continue;
            int line = d.index < _instLines.size()
                           ? _instLines[d.index]
                           : 0;
            _errors.push_back({line, std::string("lint: [") + d.id() +
                                         "] " + d.message});
        }
    }

    bool
    expect(TokKind kind, const char *what)
    {
        if (peek().kind != kind) {
            error(peek(), std::string("expected ") + what);
            return false;
        }
        advance();
        return true;
    }

    void
    parseLine()
    {
        if (peek().kind == TokKind::Newline) {
            advance();
            return;
        }
        if (peek().kind == TokKind::Error) {
            error(peek(), peek().text);
            skipLine();
            return;
        }
        if (peek().kind == TokKind::Directive) {
            parseDirective();
            return;
        }
        if (peek().kind == TokKind::Ident &&
            peek(1).kind == TokKind::Colon) {
            Token name = next();
            advance(); // colon
            if (!_program.bindLabel(name.text))
                error(name, "duplicate label '" + name.text + "'");
            // A statement may follow the label on the same line.
            if (peek().kind != TokKind::Newline &&
                peek().kind != TokKind::End)
                parseLine();
            return;
        }
        if (peek().kind == TokKind::Ident) {
            parseInstruction();
            return;
        }
        error(peek(), "expected instruction, label, or directive");
        skipLine();
    }

    void
    parseDirective()
    {
        Token dir = next();
        if (dir.text == ".program") {
            if (peek().kind != TokKind::Ident) {
                error(peek(), ".program expects a name");
                skipLine();
                return;
            }
            _program._name = next().text;
        } else if (dir.text == ".word" || dir.text == ".fword") {
            if (peek().kind != TokKind::Int) {
                error(peek(), dir.text + " expects an integer address");
                skipLine();
                return;
            }
            std::int64_t addr = next().intValue;
            if (addr < 0) {
                error(dir, "negative data address");
                skipLine();
                return;
            }
            if (!expect(TokKind::Comma, "','")) {
                skipLine();
                return;
            }
            Word value;
            if (peek().kind == TokKind::Int) {
                std::int64_t v = next().intValue;
                value = dir.text == ".fword"
                            ? doubleToWord(static_cast<double>(v))
                            : static_cast<Word>(v);
            } else if (peek().kind == TokKind::Float &&
                       dir.text == ".fword") {
                value = doubleToWord(next().floatValue);
            } else {
                error(peek(), dir.text + " expects a value");
                skipLine();
                return;
            }
            _program._data.push_back({static_cast<Addr>(addr), value});
        } else if (dir.text == ".lint") {
            // ".lint allow <check>" suppresses <check> on the next
            // instruction; ".lint allow_program <check>" on the whole
            // program. Checks go by id or name with '_' for '-'
            // (identifiers cannot contain '-'): "RUU_W102", "dead_def",
            // or "all".
            if (peek().kind != TokKind::Ident ||
                (peek().text != "allow" &&
                 peek().text != "allow_program")) {
                error(peek(), ".lint expects 'allow' or "
                              "'allow_program'");
                skipLine();
                return;
            }
            bool whole_program = next().text == "allow_program";
            if (peek().kind != TokKind::Ident) {
                error(peek(), ".lint expects a check id or name");
                skipLine();
                return;
            }
            Token check = next();
            if (lint::normalizeCheckName(check.text) != "all" &&
                !lint::checkFromString(check.text)) {
                error(check,
                      "unknown lint check '" + check.text + "'");
                skipLine();
                return;
            }
            if (whole_program)
                _program._lintGlobalAllows.insert(check.text);
            else
                _pendingAllows.push_back(check.text);
        } else if (dir.text == ".handler") {
            // The program is an interrupt handler kernel: RTI is its
            // expected terminator (lint RUU-W302 stays quiet).
            _program._isHandler = true;
        } else {
            error(dir, "unknown directive '" + dir.text + "'");
            skipLine();
            return;
        }
        endOfLine();
    }

    void
    endOfLine()
    {
        if (peek().kind == TokKind::Newline) {
            advance();
        } else if (peek().kind != TokKind::End) {
            error(peek(), "trailing tokens on line");
            skipLine();
        }
    }

    std::optional<RegId>
    parseReg(RegFile expected_file, const char *what)
    {
        if (peek().kind != TokKind::Ident) {
            error(peek(), std::string("expected ") + what);
            return std::nullopt;
        }
        Token tok = next();
        auto reg = RegId::parse(tok.text);
        if (!reg) {
            error(tok, "bad register name '" + tok.text + "'");
            return std::nullopt;
        }
        if (reg->file() != expected_file) {
            error(tok, std::string("expected ") + what + ", got '" +
                           tok.text + "'");
            return std::nullopt;
        }
        return reg;
    }

    std::optional<std::int64_t>
    parseInt(const char *what)
    {
        if (peek().kind != TokKind::Int) {
            error(peek(), std::string("expected ") + what);
            return std::nullopt;
        }
        return next().intValue;
    }

    /** Register file of the dst/src operands of each opcode. */
    static RegFile
    dstFile(Opcode op)
    {
        switch (op) {
          case Opcode::AADD: case Opcode::ASUB: case Opcode::AMUL:
          case Opcode::AMOVI: case Opcode::MOVA: case Opcode::MOVAS:
          case Opcode::MOVAB: case Opcode::LDA:
            return RegFile::A;
          case Opcode::MOVBA:
            return RegFile::B;
          case Opcode::MOVTS:
            return RegFile::T;
          default:
            return RegFile::S;
        }
    }

    static RegFile
    srcFile(Opcode op)
    {
        switch (op) {
          case Opcode::AADD: case Opcode::ASUB: case Opcode::AMUL:
          case Opcode::MOVA: case Opcode::MOVSA: case Opcode::MOVBA:
            return RegFile::A;
          case Opcode::MOVAB:
            return RegFile::B;
          case Opcode::MOVST:
            return RegFile::T;
          default:
            return RegFile::S;
        }
    }

    void
    parseInstruction()
    {
        Token mnem = next();
        auto op = opcodeFromMnemonic(mnem.text);
        if (!op) {
            error(mnem, "unknown mnemonic '" + mnem.text + "'");
            skipLine();
            return;
        }
        const OpInfo &info = opInfo(*op);
        switch (info.form) {
          case OperandForm::Rrr: {
            auto d = parseReg(dstFile(*op), "destination register");
            if (!d || !expect(TokKind::Comma, "','")) { skipLine(); return; }
            auto a = parseReg(srcFile(*op), "source register");
            if (!a || !expect(TokKind::Comma, "','")) { skipLine(); return; }
            auto b = parseReg(srcFile(*op), "source register");
            if (!b) { skipLine(); return; }
            appendInst(Instruction::rrr(*op, *d, *a, *b),
                       mnem.line);
            break;
          }
          case OperandForm::Rr: {
            auto d = parseReg(dstFile(*op), "destination register");
            if (!d || !expect(TokKind::Comma, "','")) { skipLine(); return; }
            auto s = parseReg(srcFile(*op), "source register");
            if (!s) { skipLine(); return; }
            appendInst(Instruction::rr(*op, *d, *s), mnem.line);
            break;
          }
          case OperandForm::RImm: {
            auto d = parseReg(dstFile(*op), "destination register");
            if (!d || !expect(TokKind::Comma, "','")) { skipLine(); return; }
            auto imm = parseInt("immediate");
            if (!imm) { skipLine(); return; }
            if (*imm < kImmMin || *imm > kImmMax) {
                error(mnem, "immediate out of 22-bit range");
                skipLine();
                return;
            }
            appendInst(Instruction::rimm(*op, *d, *imm),
                       mnem.line);
            break;
          }
          case OperandForm::RShift: {
            auto d = parseReg(RegFile::S, "S register");
            if (!d || !expect(TokKind::Comma, "','")) { skipLine(); return; }
            auto count = parseInt("shift count");
            if (!count) { skipLine(); return; }
            if (*count < 0 || *count > 63) {
                error(mnem, "shift count out of range 0..63");
                skipLine();
                return;
            }
            appendInst(Instruction::shift(
                           *op, *d, static_cast<unsigned>(*count)),
                       mnem.line);
            break;
          }
          case OperandForm::MemLoad: {
            auto d = parseReg(dstFile(*op), "destination register");
            if (!d || !expect(TokKind::Comma, "','")) { skipLine(); return; }
            auto addr = parseMemOperand();
            if (!addr) { skipLine(); return; }
            appendInst(Instruction::load(*op, *d, addr->first,
                                         addr->second),
                       mnem.line);
            break;
          }
          case OperandForm::MemStore: {
            auto addr = parseMemOperand();
            if (!addr || !expect(TokKind::Comma, "','")) {
                skipLine();
                return;
            }
            auto data = parseReg(*op == Opcode::STA ? RegFile::A
                                                    : RegFile::S,
                                 "data register");
            if (!data) { skipLine(); return; }
            appendInst(Instruction::store(*op, addr->first,
                                          addr->second, *data),
                       mnem.line);
            break;
          }
          case OperandForm::Branch: {
            if (peek().kind != TokKind::Ident) {
                error(peek(), "expected branch target label");
                skipLine();
                return;
            }
            Token target = next();
            std::size_t index = appendInst(
                Instruction::branch(*op, 0), mnem.line);
            _pendingBranches.emplace_back(index, target);
            break;
          }
          case OperandForm::Bare:
            appendInst(Instruction::bare(*op), mnem.line);
            break;
          case OperandForm::RDst: {
            auto d = parseReg(dstFile(*op), "destination register");
            if (!d) { skipLine(); return; }
            appendInst(Instruction::rdst(*op, *d), mnem.line);
            break;
          }
        }
        endOfLine();
    }

    /** Parse "disp(Areg)"; returns (base, disp). */
    std::optional<std::pair<RegId, std::int64_t>>
    parseMemOperand()
    {
        std::int64_t disp = 0;
        if (peek().kind == TokKind::Int)
            disp = next().intValue;
        if (disp < kDispMin || disp > kDispMax) {
            error(peek(), "displacement out of 19-bit range");
            return std::nullopt;
        }
        if (!expect(TokKind::LParen, "'('"))
            return std::nullopt;
        auto base = parseReg(RegFile::A, "A base register");
        if (!base)
            return std::nullopt;
        if (!expect(TokKind::RParen, "')'"))
            return std::nullopt;
        return std::make_pair(*base, disp);
    }

    void
    resolveBranches()
    {
        for (const auto &[index, target] : _pendingBranches) {
            auto addr = _program.labelAddr(target.text);
            if (!addr) {
                error(target, "undefined label '" + target.text + "'");
                continue;
            }
            _program._insts[index].target = *addr;
        }
    }
};

AsmResult
assemble(const std::string &source, const std::string &default_name,
         const AsmOptions &options)
{
    Parser parser(source, default_name, options);
    return parser.run();
}

} // namespace ruu
