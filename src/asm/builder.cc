#include "asm/builder.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "isa/encoding.hh"
#include "lint/analyze.hh"

namespace ruu
{

ProgramBuilder::ProgramBuilder(std::string name)
{
    _program._name = std::move(name);
}

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    bool fresh = _program.bindLabel(name);
    ruu_assert(fresh, "duplicate label '%s' in program '%s'",
               name.c_str(), _program.name().c_str());
    return *this;
}

ProgramBuilder &
ProgramBuilder::word(Addr addr, Word value)
{
    _program._data.push_back({addr, value});
    return *this;
}

ProgramBuilder &
ProgramBuilder::fword(Addr addr, double value)
{
    return word(addr, doubleToWord(value));
}

ProgramBuilder &
ProgramBuilder::emit(const Instruction &inst)
{
    ruu_assert(!_built, "builder already finished");
    std::size_t index = _program.append(inst);
    for (std::string &check : _pendingAllows)
        _program._lintAllows.emplace(_program.pc(index),
                                     std::move(check));
    _pendingAllows.clear();
    return *this;
}

ProgramBuilder &
ProgramBuilder::allow(const std::string &check)
{
    _pendingAllows.push_back(check);
    return *this;
}

ProgramBuilder &
ProgramBuilder::allowProgram(const std::string &check)
{
    _program._lintGlobalAllows.insert(check);
    return *this;
}

ProgramBuilder &
ProgramBuilder::handler(bool on)
{
    _program._isHandler = on;
    return *this;
}

ProgramBuilder &
ProgramBuilder::strict(bool on)
{
    _strict = on;
    return *this;
}

ProgramBuilder &
ProgramBuilder::branchTo(Opcode op, ParcelAddr target)
{
    ruu_assert(isBranch(op), "branchTo needs a branch opcode");
    _rawBranches.insert(_program.size());
    return emit(Instruction::branch(op, target));
}

#define RUU_BUILDER_RRR(method, opcode) \
    ProgramBuilder & \
    ProgramBuilder::method(RegId d, RegId a, RegId b) \
    { \
        return emit(Instruction::rrr(Opcode::opcode, d, a, b)); \
    }

RUU_BUILDER_RRR(aadd, AADD)
RUU_BUILDER_RRR(asub, ASUB)
RUU_BUILDER_RRR(amul, AMUL)
RUU_BUILDER_RRR(sadd, SADD)
RUU_BUILDER_RRR(ssub, SSUB)
RUU_BUILDER_RRR(sand, SAND)
RUU_BUILDER_RRR(sor, SOR)
RUU_BUILDER_RRR(sxor, SXOR)
RUU_BUILDER_RRR(fadd, FADD)
RUU_BUILDER_RRR(fsub, FSUB)
RUU_BUILDER_RRR(fmul, FMUL)

#undef RUU_BUILDER_RRR

#define RUU_BUILDER_RR(method, opcode) \
    ProgramBuilder & \
    ProgramBuilder::method(RegId d, RegId s) \
    { \
        return emit(Instruction::rr(Opcode::opcode, d, s)); \
    }

RUU_BUILDER_RR(mova, MOVA)
RUU_BUILDER_RR(movs, MOVS)
RUU_BUILDER_RR(spop, SPOP)
RUU_BUILDER_RR(slz, SLZ)
RUU_BUILDER_RR(frecip, FRECIP)
RUU_BUILDER_RR(sfix, SFIX)
RUU_BUILDER_RR(sflt, SFLT)
RUU_BUILDER_RR(movsa, MOVSA)
RUU_BUILDER_RR(movas, MOVAS)
RUU_BUILDER_RR(movba, MOVBA)
RUU_BUILDER_RR(movab, MOVAB)
RUU_BUILDER_RR(movts, MOVTS)
RUU_BUILDER_RR(movst, MOVST)

#undef RUU_BUILDER_RR

ProgramBuilder &
ProgramBuilder::amovi(RegId d, std::int64_t imm)
{
    return emit(Instruction::rimm(Opcode::AMOVI, d, imm));
}

ProgramBuilder &
ProgramBuilder::smovi(RegId d, std::int64_t imm)
{
    return emit(Instruction::rimm(Opcode::SMOVI, d, imm));
}

ProgramBuilder &
ProgramBuilder::sshl(RegId r, unsigned count)
{
    return emit(Instruction::shift(Opcode::SSHL, r, count));
}

ProgramBuilder &
ProgramBuilder::sshr(RegId r, unsigned count)
{
    return emit(Instruction::shift(Opcode::SSHR, r, count));
}

ProgramBuilder &
ProgramBuilder::lda(RegId d, RegId base, std::int64_t disp)
{
    return emit(Instruction::load(Opcode::LDA, d, base, disp));
}

ProgramBuilder &
ProgramBuilder::lds(RegId d, RegId base, std::int64_t disp)
{
    return emit(Instruction::load(Opcode::LDS, d, base, disp));
}

ProgramBuilder &
ProgramBuilder::sta(RegId base, std::int64_t disp, RegId data)
{
    return emit(Instruction::store(Opcode::STA, base, disp, data));
}

ProgramBuilder &
ProgramBuilder::sts(RegId base, std::int64_t disp, RegId data)
{
    return emit(Instruction::store(Opcode::STS, base, disp, data));
}

ProgramBuilder &
ProgramBuilder::emitBranch(Opcode op, const std::string &target)
{
    std::size_t index = _program.size();
    emit(Instruction::branch(op, 0));
    _pendingBranches.emplace_back(index, target);
    return *this;
}

ProgramBuilder &ProgramBuilder::j(const std::string &t)
{ return emitBranch(Opcode::J, t); }
ProgramBuilder &ProgramBuilder::jaz(const std::string &t)
{ return emitBranch(Opcode::JAZ, t); }
ProgramBuilder &ProgramBuilder::jan(const std::string &t)
{ return emitBranch(Opcode::JAN, t); }
ProgramBuilder &ProgramBuilder::jap(const std::string &t)
{ return emitBranch(Opcode::JAP, t); }
ProgramBuilder &ProgramBuilder::jam(const std::string &t)
{ return emitBranch(Opcode::JAM, t); }
ProgramBuilder &ProgramBuilder::jsz(const std::string &t)
{ return emitBranch(Opcode::JSZ, t); }
ProgramBuilder &ProgramBuilder::jsn(const std::string &t)
{ return emitBranch(Opcode::JSN, t); }
ProgramBuilder &ProgramBuilder::jsp(const std::string &t)
{ return emitBranch(Opcode::JSP, t); }
ProgramBuilder &ProgramBuilder::jsm(const std::string &t)
{ return emitBranch(Opcode::JSM, t); }

ProgramBuilder &
ProgramBuilder::halt()
{
    return emit(Instruction::bare(Opcode::HALT));
}

ProgramBuilder &
ProgramBuilder::nop()
{
    return emit(Instruction::bare(Opcode::NOP));
}

ProgramBuilder &
ProgramBuilder::rti()
{
    return emit(Instruction::bare(Opcode::RTI));
}

ProgramBuilder &
ProgramBuilder::eint()
{
    return emit(Instruction::bare(Opcode::EINT));
}

ProgramBuilder &
ProgramBuilder::dint()
{
    return emit(Instruction::bare(Opcode::DINT));
}

ProgramBuilder &
ProgramBuilder::mfepc(RegId d)
{
    return emit(Instruction::rdst(Opcode::MFEPC, d));
}

ProgramBuilder &
ProgramBuilder::mfcause(RegId d)
{
    return emit(Instruction::rdst(Opcode::MFCAUSE, d));
}

Program
ProgramBuilder::build()
{
    ruu_assert(!_built, "builder already finished");
    _built = true;
    for (const auto &[index, target] : _pendingBranches) {
        auto addr = _program.labelAddr(target);
        ruu_assert(addr.has_value(),
                   "unresolved label '%s' in program '%s'",
                   target.c_str(), _program.name().c_str());
        _program._insts[index].target = *addr;
    }
    for (std::size_t i = 0; i < _program.size(); ++i) {
        const Instruction &inst = _program.inst(i);
        ruu_assert(encodable(inst),
                   "instruction %zu of '%s' (%s) not encodable",
                   i, _program.name().c_str(), mnemonic(inst.op));
        if (isBranch(inst.op) && !_rawBranches.count(i)) {
            ruu_assert(_program.indexOfPc(inst.target).has_value(),
                       "branch %zu of '%s' targets parcel %u, which is "
                       "not an instruction boundary",
                       i, _program.name().c_str(), inst.target);
        }
    }
    if (_strict) {
        std::vector<lint::Diagnostic> diags = lint::analyze(_program);
        std::erase_if(diags, [](const lint::Diagnostic &d) {
            return d.severity != lint::Severity::Error;
        });
        if (!diags.empty())
            ruu_panic("strict build of '%s' failed lint:\n%s",
                      _program.name().c_str(),
                      lint::formatDiagnostics(_program.name(), diags)
                          .c_str());
    }
    return std::move(_program);
}

} // namespace ruu
