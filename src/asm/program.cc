#include "asm/program.hh"

#include <sstream>

#include "common/logging.hh"
#include "isa/disasm.hh"

namespace ruu
{

const Instruction &
Program::inst(std::size_t index) const
{
    ruu_assert(index < _insts.size(), "instruction index %zu out of range",
               index);
    return _insts[index];
}

ParcelAddr
Program::pc(std::size_t index) const
{
    ruu_assert(index < _pcs.size(), "instruction index %zu out of range",
               index);
    return _pcs[index];
}

std::optional<std::size_t>
Program::indexOfPc(ParcelAddr pc) const
{
    auto it = _pcToIndex.find(pc);
    if (it == _pcToIndex.end())
        return std::nullopt;
    return it->second;
}

std::optional<ParcelAddr>
Program::labelAddr(const std::string &label) const
{
    auto it = _labels.find(label);
    if (it == _labels.end())
        return std::nullopt;
    return it->second;
}

std::size_t
Program::append(const Instruction &inst)
{
    std::size_t index = _insts.size();
    _insts.push_back(inst);
    _pcs.push_back(_nextPc);
    _pcToIndex[_nextPc] = index;
    _nextPc += inst.parcels();
    return index;
}

bool
Program::bindLabel(const std::string &label)
{
    if (_labels.count(label))
        return false;
    _labels[label] = _nextPc;
    return true;
}

std::string
Program::listing() const
{
    // Invert the label map so each address shows its labels.
    std::multimap<ParcelAddr, std::string> by_addr;
    for (const auto &kv : _labels)
        by_addr.emplace(kv.second, kv.first);

    std::ostringstream os;
    os << "; program " << _name << " (" << _insts.size()
       << " instructions, " << _nextPc << " parcels)\n";
    for (std::size_t i = 0; i < _insts.size(); ++i) {
        auto range = by_addr.equal_range(_pcs[i]);
        for (auto it = range.first; it != range.second; ++it)
            os << it->second << ":\n";
        os << "  /* " << _pcs[i] << " */  " << disassemble(_insts[i])
           << "\n";
    }
    return os.str();
}

} // namespace ruu
