/**
 * @file
 * A C++ builder DSL for constructing model-ISA programs.
 *
 * This is how the Lawrence Livermore loop kernels are "hand-compiled":
 * each mnemonic is a method, labels may be referenced before they are
 * bound, and build() resolves every branch and validates the result.
 *
 * @code
 *   ProgramBuilder b("sum");
 *   b.amovi(regA(1), 0);          // i = 0
 *   b.label("loop");
 *   b.lds(regS(1), regA(1), 100); // S1 = x[i]
 *   b.fadd(regS(2), regS(2), regS(1));
 *   b.aadd(regA(1), regA(1), regA(2));
 *   b.asub(regA(0), regA(1), regA(3));
 *   b.jam("loop");                // while (i - n < 0)
 *   b.halt();
 *   Program p = b.build();
 * @endcode
 */

#ifndef RUU_ASM_BUILDER_HH
#define RUU_ASM_BUILDER_HH

#include <set>
#include <string>
#include <vector>

#include "asm/program.hh"
#include "isa/instruction.hh"

namespace ruu
{

/** Incrementally builds a Program; see file comment for usage. */
class ProgramBuilder
{
  public:
    /** Start a program called @p name. */
    explicit ProgramBuilder(std::string name);

    // --- structure ------------------------------------------------------

    /** Bind @p name to the address of the next emitted instruction. */
    ProgramBuilder &label(const std::string &name);

    /** Initialize data memory word @p addr to raw @p value. */
    ProgramBuilder &word(Addr addr, Word value);

    /** Initialize data memory word @p addr to the double @p value. */
    ProgramBuilder &fword(Addr addr, double value);

    /** Emit an arbitrary pre-built instruction (tests, fuzzing). */
    ProgramBuilder &emit(const Instruction &inst);

    // --- lint integration ------------------------------------------------

    /**
     * Suppress lint check @p check (id "RUU-W102" or name "dead_def")
     * on the next emitted instruction. May be repeated for several
     * checks before one instruction.
     */
    ProgramBuilder &allow(const std::string &check);

    /** Suppress @p check for the whole program ("all" for every one). */
    ProgramBuilder &allowProgram(const std::string &check);

    /**
     * Mark the program as an interrupt handler kernel (`.handler` in
     * assembly): RTI is its expected terminator, so the analyzer's
     * RUU-W302 check stays quiet.
     */
    ProgramBuilder &handler(bool on = true);

    /**
     * Make build() run the static analyzer (lint/analyze.hh) and panic
     * on any unsuppressed error-severity diagnostic.
     */
    ProgramBuilder &strict(bool on = true);

    /**
     * Emit a branch whose parcel-address target is already resolved —
     * possibly to an invalid address. build() skips its usual
     * branch-boundary validation for branches emitted this way; the
     * lint fixtures and fuzzers use this to construct the broken
     * programs the analyzer must diagnose.
     */
    ProgramBuilder &branchTo(Opcode op, ParcelAddr target);

    // --- address arithmetic ----------------------------------------------

    ProgramBuilder &aadd(RegId d, RegId a, RegId b);
    ProgramBuilder &asub(RegId d, RegId a, RegId b);
    ProgramBuilder &amul(RegId d, RegId a, RegId b);
    ProgramBuilder &amovi(RegId d, std::int64_t imm);
    ProgramBuilder &mova(RegId d, RegId s);

    // --- scalar integer ---------------------------------------------------

    ProgramBuilder &sadd(RegId d, RegId a, RegId b);
    ProgramBuilder &ssub(RegId d, RegId a, RegId b);
    ProgramBuilder &sand(RegId d, RegId a, RegId b);
    ProgramBuilder &sor(RegId d, RegId a, RegId b);
    ProgramBuilder &sxor(RegId d, RegId a, RegId b);
    ProgramBuilder &sshl(RegId r, unsigned count);
    ProgramBuilder &sshr(RegId r, unsigned count);
    ProgramBuilder &spop(RegId d, RegId s);
    ProgramBuilder &slz(RegId d, RegId s);
    ProgramBuilder &smovi(RegId d, std::int64_t imm);
    ProgramBuilder &movs(RegId d, RegId s);

    // --- floating point ---------------------------------------------------

    ProgramBuilder &fadd(RegId d, RegId a, RegId b);
    ProgramBuilder &fsub(RegId d, RegId a, RegId b);
    ProgramBuilder &fmul(RegId d, RegId a, RegId b);
    ProgramBuilder &frecip(RegId d, RegId s);
    ProgramBuilder &sfix(RegId d, RegId s);
    ProgramBuilder &sflt(RegId d, RegId s);

    // --- inter-file moves --------------------------------------------------

    ProgramBuilder &movsa(RegId d, RegId s); //!< Si <- Ak
    ProgramBuilder &movas(RegId d, RegId s); //!< Ai <- Sk
    ProgramBuilder &movba(RegId d, RegId s); //!< Bjk <- Ai
    ProgramBuilder &movab(RegId d, RegId s); //!< Ai <- Bjk
    ProgramBuilder &movts(RegId d, RegId s); //!< Tjk <- Si
    ProgramBuilder &movst(RegId d, RegId s); //!< Si <- Tjk

    // --- memory -------------------------------------------------------------

    ProgramBuilder &lda(RegId d, RegId base, std::int64_t disp);
    ProgramBuilder &lds(RegId d, RegId base, std::int64_t disp);
    ProgramBuilder &sta(RegId base, std::int64_t disp, RegId data);
    ProgramBuilder &sts(RegId base, std::int64_t disp, RegId data);

    // --- control --------------------------------------------------------------

    ProgramBuilder &j(const std::string &target);
    ProgramBuilder &jaz(const std::string &target);
    ProgramBuilder &jan(const std::string &target);
    ProgramBuilder &jap(const std::string &target);
    ProgramBuilder &jam(const std::string &target);
    ProgramBuilder &jsz(const std::string &target);
    ProgramBuilder &jsn(const std::string &target);
    ProgramBuilder &jsp(const std::string &target);
    ProgramBuilder &jsm(const std::string &target);
    ProgramBuilder &halt();
    ProgramBuilder &nop();

    // --- trap architecture (docs/INTERRUPTS.md) ---------------------------

    ProgramBuilder &rti();            //!< return from interrupt
    ProgramBuilder &eint();           //!< enable interrupts
    ProgramBuilder &dint();           //!< disable interrupts
    ProgramBuilder &mfepc(RegId d);   //!< Si <- exception PC
    ProgramBuilder &mfcause(RegId d); //!< Si <- exception cause

    /** Number of instructions emitted so far. */
    std::size_t size() const { return _program.size(); }

    /**
     * Resolve labels and return the finished program.
     * Panics on unresolved labels or unencodable operands: kernels are
     * internal code, so such errors are ruusim bugs, not user input.
     */
    Program build();

  private:
    Program _program;
    std::vector<std::pair<std::size_t, std::string>> _pendingBranches;
    std::vector<std::string> _pendingAllows;
    std::set<std::size_t> _rawBranches;
    bool _built = false;
    bool _strict = false;

    ProgramBuilder &emitBranch(Opcode op, const std::string &target);
};

} // namespace ruu

#endif // RUU_ASM_BUILDER_HH
