/**
 * @file
 * Functional (untimed) execution of single instructions.
 *
 * The executor defines the ISA's semantics. It is used by the
 * functional simulator to generate traces, by the test oracles, and —
 * indirectly through trace values — to verify that every timing core
 * commits exactly the sequential results.
 */

#ifndef RUU_ARCH_EXECUTOR_HH
#define RUU_ARCH_EXECUTOR_HH

#include <cstdint>
#include <optional>

#include "arch/memory.hh"
#include "arch/state.hh"
#include "arch/trap_regs.hh"
#include "asm/program.hh"
#include "common/types.hh"

namespace ruu
{

/** Instruction-generated traps of the model machine. */
enum class Fault : std::uint8_t
{
    None,       //!< no fault
    PageFault,  //!< memory access to an unmapped address
    Arithmetic, //!< reciprocal of zero, conversion overflow
    Interrupt,  //!< asynchronous external interrupt (not a trace fault)
    NumFaults,
};

/** Number of fault kinds, for validating serialized traces. */
inline constexpr unsigned kNumFaults =
    static_cast<unsigned>(Fault::NumFaults);

/** Printable fault name. */
const char *faultName(Fault fault);

/** Cause-register code for synchronous fault @p fault. */
Word causeForFault(Fault fault);

/** Everything that happened when one instruction executed. */
struct ExecOutcome
{
    /** Fault raised; when not None no architectural change was made. */
    Fault fault = Fault::None;

    /** Destination value (valid when the instruction writes a register). */
    Word value = 0;

    /** Word address touched (valid for loads and stores). */
    Addr memAddr = 0;

    /** Value written to memory (valid for stores). */
    Word storeValue = 0;

    /** Branch outcome (valid for branches; J is always taken). */
    bool taken = false;

    /** The instruction was HALT. */
    bool halted = false;

    /** The instruction was RTI (interpreted by the trap layer). */
    bool rti = false;

    /**
     * Static index of the next instruction to execute; unset after
     * HALT or a fault.
     */
    std::optional<std::size_t> nextIndex;
};

/**
 * Execute instruction @p index of @p program against @p state and
 * @p memory, applying its architectural side effects.
 *
 * On a fault no side effect is applied, matching the precise-interrupt
 * requirement that the faulting instruction not change the state.
 *
 * @param trap Trap-register context for MFEPC / MFCAUSE / EINT / DINT.
 *             Outside a trap context (nullptr) the reads return 0 and
 *             the enables are no-ops, so plain functional runs remain
 *             deterministic.
 */
ExecOutcome execute(const Program &program, std::size_t index,
                    ArchState &state, Memory &memory,
                    TrapRegs *trap = nullptr);

} // namespace ruu

#endif // RUU_ARCH_EXECUTOR_HH
