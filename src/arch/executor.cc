#include "arch/executor.hh"

#include <bit>
#include <cmath>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace ruu
{

const char *
faultName(Fault fault)
{
    switch (fault) {
      case Fault::None: return "none";
      case Fault::PageFault: return "page_fault";
      case Fault::Arithmetic: return "arithmetic";
      case Fault::Interrupt: return "interrupt";
      case Fault::NumFaults: break;
    }
    return "?";
}

Word
causeForFault(Fault fault)
{
    switch (fault) {
      case Fault::PageFault: return kCausePageFault;
      case Fault::Arithmetic: return kCauseArithmetic;
      default: return kCauseNone;
    }
}

namespace
{

/** Evaluate a conditional branch's predicate against its test value. */
bool
branchTaken(Opcode op, std::int64_t test)
{
    switch (op) {
      case Opcode::J:   return true;
      case Opcode::JAZ:
      case Opcode::JSZ: return test == 0;
      case Opcode::JAN:
      case Opcode::JSN: return test != 0;
      case Opcode::JAP:
      case Opcode::JSP: return test >= 0;
      case Opcode::JAM:
      case Opcode::JSM: return test < 0;
      default:
        ruu_panic("branchTaken on non-branch %s", mnemonic(op));
    }
}

} // namespace

ExecOutcome
execute(const Program &program, std::size_t index, ArchState &state,
        Memory &memory, TrapRegs *trap)
{
    const Instruction &inst = program.inst(index);
    ExecOutcome out;
    out.nextIndex = index + 1;

    auto writeDst = [&](Word value) {
        out.value = value;
        state.write(inst.dst, value);
    };
    auto writeDstInt = [&](std::int64_t v) {
        writeDst(static_cast<Word>(v));
    };
    auto writeDstFp = [&](double v) { writeDst(doubleToWord(v)); };

    switch (inst.op) {
      // Integer add/sub/mul wrap two's-complement: compute on the
      // unsigned words so overflow is defined (same bit patterns).
      case Opcode::AADD:
      case Opcode::SADD:
        writeDst(state.read(inst.src1) + state.read(inst.src2));
        break;
      case Opcode::ASUB:
      case Opcode::SSUB:
        writeDst(state.read(inst.src1) - state.read(inst.src2));
        break;
      case Opcode::AMUL:
        writeDst(state.read(inst.src1) * state.read(inst.src2));
        break;
      case Opcode::AMOVI:
      case Opcode::SMOVI:
        writeDstInt(inst.imm);
        break;
      case Opcode::MOVA:
      case Opcode::MOVS:
      case Opcode::MOVSA:
      case Opcode::MOVAS:
      case Opcode::MOVBA:
      case Opcode::MOVAB:
      case Opcode::MOVTS:
      case Opcode::MOVST:
        writeDst(state.read(inst.src1));
        break;

      case Opcode::SAND:
        writeDst(state.read(inst.src1) & state.read(inst.src2));
        break;
      case Opcode::SOR:
        writeDst(state.read(inst.src1) | state.read(inst.src2));
        break;
      case Opcode::SXOR:
        writeDst(state.read(inst.src1) ^ state.read(inst.src2));
        break;
      case Opcode::SSHL:
        writeDst(state.read(inst.src1)
                 << static_cast<unsigned>(inst.imm));
        break;
      case Opcode::SSHR:
        writeDst(state.read(inst.src1)
                 >> static_cast<unsigned>(inst.imm));
        break;
      case Opcode::SPOP:
        writeDst(static_cast<Word>(std::popcount(state.read(inst.src1))));
        break;
      case Opcode::SLZ:
        writeDst(static_cast<Word>(std::countl_zero(
            state.read(inst.src1))));
        break;

      case Opcode::FADD:
        writeDstFp(state.readDouble(inst.src1) +
                   state.readDouble(inst.src2));
        break;
      case Opcode::FSUB:
        writeDstFp(state.readDouble(inst.src1) -
                   state.readDouble(inst.src2));
        break;
      case Opcode::FMUL:
        writeDstFp(state.readDouble(inst.src1) *
                   state.readDouble(inst.src2));
        break;
      case Opcode::FRECIP: {
        double v = state.readDouble(inst.src1);
        if (v == 0.0 || std::isnan(v)) {
            out.fault = Fault::Arithmetic;
            out.nextIndex.reset();
            return out;
        }
        writeDstFp(1.0 / v);
        break;
      }
      case Opcode::SFIX: {
        double v = state.readDouble(inst.src1);
        if (std::isnan(v) || v >= 9.2233720368547758e18 ||
            v <= -9.2233720368547758e18) {
            out.fault = Fault::Arithmetic;
            out.nextIndex.reset();
            return out;
        }
        writeDstInt(static_cast<std::int64_t>(v));
        break;
      }
      case Opcode::SFLT:
        writeDstFp(static_cast<double>(state.readInt(inst.src1)));
        break;

      case Opcode::LDA:
      case Opcode::LDS: {
        // Effective addresses wrap like the registers that hold them.
        Word base = state.read(inst.src1);
        out.memAddr = static_cast<Addr>(base + static_cast<Word>(inst.imm));
        auto loaded = memory.load(out.memAddr);
        if (!loaded) {
            out.fault = Fault::PageFault;
            out.nextIndex.reset();
            return out;
        }
        writeDst(*loaded);
        break;
      }
      case Opcode::STA:
      case Opcode::STS: {
        Word base = state.read(inst.src1);
        out.memAddr = static_cast<Addr>(base + static_cast<Word>(inst.imm));
        out.storeValue = state.read(inst.src2);
        if (!memory.store(out.memAddr, out.storeValue)) {
            out.fault = Fault::PageFault;
            out.nextIndex.reset();
            return out;
        }
        break;
      }

      case Opcode::J:
      case Opcode::JAZ:
      case Opcode::JAN:
      case Opcode::JAP:
      case Opcode::JAM:
      case Opcode::JSZ:
      case Opcode::JSN:
      case Opcode::JSP:
      case Opcode::JSM: {
        std::int64_t test =
            inst.src1.valid() ? state.readInt(inst.src1) : 0;
        out.taken = branchTaken(inst.op, test);
        if (out.taken) {
            auto target = program.indexOfPc(inst.target);
            ruu_assert(target.has_value(),
                       "branch target %u is not an instruction boundary",
                       inst.target);
            out.nextIndex = *target;
        }
        break;
      }

      case Opcode::HALT:
        out.halted = true;
        out.nextIndex.reset();
        break;
      case Opcode::NOP:
        break;

      // The trap opcodes. Their real work — the exchange-package swap
      // and the return to the interrupted flow — happens in the trap
      // layer (src/trap); here RTI only raises its outcome flag so the
      // handler-trace generator can stop on it.
      case Opcode::RTI:
        out.rti = true;
        break;
      case Opcode::EINT:
        if (trap)
            trap->setIe(true);
        break;
      case Opcode::DINT:
        if (trap)
            trap->setIe(false);
        break;
      case Opcode::MFEPC:
        writeDst(trap ? trap->epc : 0);
        break;
      case Opcode::MFCAUSE:
        writeDst(trap ? trap->cause : 0);
        break;

      case Opcode::NumOpcodes:
        ruu_panic("executed NumOpcodes sentinel");
    }

    return out;
}

} // namespace ruu
