/**
 * @file
 * The trap architecture's register file: exception PC, cause, and
 * status (docs/INTERRUPTS.md).
 *
 * These three registers are the architectural interface between an
 * interrupted program and its handler. Delivery (src/trap/trap.hh)
 * saves them into the active exchange package, loads the handler's
 * view (EPC = interrupted PC, CAUSE = cause code, STATUS = handler
 * level with interrupts disabled), and RTI restores them — so nesting
 * needs no in-register stack, the per-level exchange packages are the
 * stack, exactly as on the CRAY-1.
 *
 * The trap registers are deliberately *not* part of ArchState: the
 * timing cores replay traces and never touch them. All reads and
 * writes happen in the functional layers (the executor's MFEPC /
 * MFCAUSE / EINT / DINT cases and the trap controller), so the cores'
 * precise-state contract is unchanged.
 */

#ifndef RUU_ARCH_TRAP_REGS_HH
#define RUU_ARCH_TRAP_REGS_HH

#include "common/types.hh"

namespace ruu
{

/**
 * Cause codes reported in the CAUSE register. Synchronous faults use
 * the small codes; an asynchronous external interrupt at priority p
 * reports kCauseExternal + p.
 */
inline constexpr Word kCauseNone = 0;
inline constexpr Word kCausePageFault = 1;
inline constexpr Word kCauseArithmetic = 2;
inline constexpr Word kCauseExternal = 16;

/** The exception PC / cause / status register triple. */
struct TrapRegs
{
    Word epc = 0;    //!< parcel address of the interrupted instruction
    Word cause = 0;  //!< cause code of the last delivered trap
    Word status = 0; //!< interrupt-enable bit and active trap level

    static constexpr Word kStatusIe = 1;         //!< bit 0: IE
    static constexpr unsigned kLevelShift = 8;   //!< bits 8..15: level
    static constexpr Word kLevelMask = Word{0xff} << kLevelShift;

    /** Interrupts enabled? */
    bool ie() const { return (status & kStatusIe) != 0; }

    void
    setIe(bool on)
    {
        status = on ? (status | kStatusIe) : (status & ~kStatusIe);
    }

    /** Active trap level: 0 in the interrupted program, 1+ in handlers. */
    unsigned
    level() const
    {
        return static_cast<unsigned>((status & kLevelMask) >> kLevelShift);
    }

    void
    setLevel(unsigned level)
    {
        status = (status & ~kLevelMask) |
                 ((static_cast<Word>(level) << kLevelShift) & kLevelMask);
    }

    bool operator==(const TrapRegs &other) const = default;
};

} // namespace ruu

#endif // RUU_ARCH_TRAP_REGS_HH
