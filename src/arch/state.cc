#include "arch/state.hh"

#include <sstream>

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "inject/fault_port.hh"

namespace ruu
{

Word
ArchState::read(RegId reg) const
{
    ruu_assert(reg.valid(), "read of the invalid register");
    ruu_assert(reg.flat() < kNumArchRegs,
               "read of out-of-range register %u", reg.flat());
    return _regs[reg.flat()];
}

std::int64_t
ArchState::readInt(RegId reg) const
{
    return static_cast<std::int64_t>(read(reg));
}

double
ArchState::readDouble(RegId reg) const
{
    return wordToDouble(read(reg));
}

void
ArchState::write(RegId reg, Word value)
{
    ruu_assert(reg.valid(), "write of the invalid register");
    ruu_assert(reg.flat() < kNumArchRegs,
               "write of out-of-range register %u", reg.flat());
    _regs[reg.flat()] = value;
}

void
ArchState::writeInt(RegId reg, std::int64_t value)
{
    write(reg, static_cast<Word>(value));
}

void
ArchState::writeDouble(RegId reg, double value)
{
    write(reg, doubleToWord(value));
}

std::string
ArchState::dump() const
{
    std::ostringstream os;
    for (unsigned flat = 0; flat < kNumArchRegs; ++flat) {
        if (_regs[flat] == 0)
            continue;
        RegId reg = RegId::fromFlat(flat);
        os << reg.toString() << " = 0x" << std::hex << _regs[flat]
           << std::dec << " (" << static_cast<std::int64_t>(_regs[flat])
           << ", " << wordToDouble(_regs[flat]) << ")\n";
    }
    return os.str();
}

void
ArchState::exposePorts(inject::FaultPortSet &ports,
                       const std::string &prefix)
{
    for (unsigned flat = 0; flat < kNumArchRegs; ++flat)
        ports.add(prefix + "." + RegId::fromFlat(flat).toString(),
                  inject::PortClass::Data, _regs[flat], 64);
}

} // namespace ruu
