/**
 * @file
 * Architectural register state of the model machine.
 *
 * ArchState is the *precise* state: the contents of all 144 registers.
 * The RUU's guarantee (the paper's §5) is that at any interrupt an
 * ArchState exists that equals the sequential execution of every
 * committed instruction and nothing else — tests compare states for
 * exactly that property.
 */

#ifndef RUU_ARCH_STATE_HH
#define RUU_ARCH_STATE_HH

#include <array>
#include <string>

#include "common/types.hh"
#include "isa/reg.hh"

namespace ruu
{

namespace inject
{
class FaultPortSet;
} // namespace inject

/** The 144 architectural registers, addressed by RegId. */
class ArchState
{
  public:
    ArchState() { _regs.fill(0); }

    /** Contents of register @p reg. */
    Word read(RegId reg) const;

    /** Contents of @p reg interpreted as a signed integer. */
    std::int64_t readInt(RegId reg) const;

    /** Contents of @p reg interpreted as an IEEE double. */
    double readDouble(RegId reg) const;

    /** Set register @p reg to @p value. */
    void write(RegId reg, Word value);

    /** Set @p reg to the signed integer @p value. */
    void writeInt(RegId reg, std::int64_t value);

    /** Set @p reg to the IEEE double @p value. */
    void writeDouble(RegId reg, double value);

    /** Zero every register. */
    void clear() { _regs.fill(0); }

    bool operator==(const ArchState &other) const = default;

    /** Multi-line dump of the non-zero registers, for test failures. */
    std::string dump() const;

    /** Register every architectural register as a fault port. */
    void exposePorts(inject::FaultPortSet &ports,
                     const std::string &prefix);

  private:
    std::array<Word, kNumArchRegs> _regs;
};

} // namespace ruu

#endif // RUU_ARCH_STATE_HH
