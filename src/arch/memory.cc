#include "arch/memory.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace ruu
{

Memory::Memory(std::size_t words) : _words(words, 0)
{
}

std::optional<Word>
Memory::load(Addr addr) const
{
    if (!mapped(addr))
        return std::nullopt;
    return _words[addr];
}

bool
Memory::store(Addr addr, Word value)
{
    if (!mapped(addr))
        return false;
    _words[addr] = value;
    return true;
}

Word
Memory::at(Addr addr) const
{
    ruu_assert(mapped(addr), "unmapped address %llu",
               static_cast<unsigned long long>(addr));
    return _words[addr];
}

void
Memory::set(Addr addr, Word value)
{
    ruu_assert(mapped(addr), "unmapped address %llu",
               static_cast<unsigned long long>(addr));
    _words[addr] = value;
}

double
Memory::atDouble(Addr addr) const
{
    return wordToDouble(at(addr));
}

void
Memory::clear()
{
    std::fill(_words.begin(), _words.end(), 0);
}

} // namespace ruu
