#include "arch/func_sim.hh"

#include "common/logging.hh"

namespace ruu
{

namespace
{

FuncResult
runFrom(std::shared_ptr<const Program> program, std::size_t start,
        std::uint64_t limit, FuncResult result,
        const FuncSimOptions &options)
{
    ruu_assert(program != nullptr, "null program");
    result.trace = Trace(program);

    if (program->empty())
        return result;

    std::size_t index = start;
    std::uint64_t executed = 0;
    while (executed < limit) {
        ExecOutcome out = execute(*program, index, result.finalState,
                                  result.finalMemory);

        TraceRecord record;
        record.inst = program->inst(index);
        record.staticIndex = index;
        record.pc = program->pc(index);
        record.memAddr = out.memAddr;
        record.result = out.value;
        record.storeValue = out.storeValue;
        record.taken = out.taken;
        record.fault = out.fault;

        if (out.fault != Fault::None) {
            // A faulting instruction is recorded (the timing cores need
            // to see it to raise the interrupt) but has no side effects
            // and ends the functional run.
            result.trace.append(record);
            result.fault = out.fault;
            result.faultSeq = result.trace.size() - 1;
            return result;
        }

        result.trace.append(record);
        ++executed;

        if (out.halted) {
            result.halted = true;
            return result;
        }
        ruu_assert(out.nextIndex.has_value(),
                   "no successor for a non-halting instruction");
        index = *out.nextIndex;
        ruu_assert(index < program->size(),
                   "control fell off the end of program '%s'",
                   program->name().c_str());
    }
    return result;
}

FuncResult
run(std::shared_ptr<const Program> program, std::uint64_t limit,
    const FuncSimOptions &options)
{
    FuncResult initial;
    initial.finalMemory = Memory(options.memoryWords);
    for (const auto &init : program->dataInits()) {
        if (!initial.finalMemory.store(init.addr, init.value))
            ruu_fatal("data init at %llu is outside memory (%zu words)",
                      static_cast<unsigned long long>(init.addr),
                      initial.finalMemory.sizeWords());
    }
    return runFrom(std::move(program), 0, limit, std::move(initial),
                   options);
}

} // namespace

FuncResult
runFunctional(std::shared_ptr<const Program> program,
              const FuncSimOptions &options)
{
    return run(std::move(program), options.maxInstructions, options);
}

FuncResult
runPrefix(std::shared_ptr<const Program> program, std::uint64_t count,
          const FuncSimOptions &options)
{
    std::uint64_t limit = std::min<std::uint64_t>(count,
                                                  options.maxInstructions);
    return run(std::move(program), limit, options);
}

FuncResult
resumeFunctional(std::shared_ptr<const Program> program,
                 std::size_t startIndex, const ArchState &state,
                 const Memory &memory, const FuncSimOptions &options)
{
    ruu_assert(program && startIndex < program->size(),
               "resumeFunctional start index out of range");
    FuncResult initial;
    initial.finalState = state;
    initial.finalMemory = memory;
    return runFrom(std::move(program), startIndex,
                   options.maxInstructions, std::move(initial), options);
}

} // namespace ruu
