#include "arch/func_sim.hh"

#include "common/logging.hh"

namespace ruu
{

namespace
{

FuncResult
run(std::shared_ptr<const Program> program, std::uint64_t limit,
    const FuncSimOptions &options)
{
    ruu_assert(program != nullptr, "null program");
    FuncResult result;
    result.trace = Trace(program);
    result.finalMemory = Memory(options.memoryWords);

    for (const auto &init : program->dataInits()) {
        if (!result.finalMemory.store(init.addr, init.value))
            ruu_fatal("data init at %llu is outside memory (%zu words)",
                      static_cast<unsigned long long>(init.addr),
                      result.finalMemory.sizeWords());
    }

    if (program->empty())
        return result;

    std::size_t index = 0;
    std::uint64_t executed = 0;
    while (executed < limit) {
        ExecOutcome out = execute(*program, index, result.finalState,
                                  result.finalMemory);

        TraceRecord record;
        record.inst = program->inst(index);
        record.staticIndex = index;
        record.pc = program->pc(index);
        record.memAddr = out.memAddr;
        record.result = out.value;
        record.storeValue = out.storeValue;
        record.taken = out.taken;
        record.fault = out.fault;

        if (out.fault != Fault::None) {
            // A faulting instruction is recorded (the timing cores need
            // to see it to raise the interrupt) but has no side effects
            // and ends the functional run.
            result.trace.append(record);
            result.fault = out.fault;
            result.faultSeq = result.trace.size() - 1;
            return result;
        }

        result.trace.append(record);
        ++executed;

        if (out.halted) {
            result.halted = true;
            return result;
        }
        ruu_assert(out.nextIndex.has_value(),
                   "no successor for a non-halting instruction");
        index = *out.nextIndex;
        ruu_assert(index < program->size(),
                   "control fell off the end of program '%s'",
                   program->name().c_str());
    }
    return result;
}

} // namespace

FuncResult
runFunctional(std::shared_ptr<const Program> program,
              const FuncSimOptions &options)
{
    return run(std::move(program), options.maxInstructions, options);
}

FuncResult
runPrefix(std::shared_ptr<const Program> program, std::uint64_t count,
          const FuncSimOptions &options)
{
    std::uint64_t limit = std::min<std::uint64_t>(count,
                                                  options.maxInstructions);
    return run(std::move(program), limit, options);
}

} // namespace ruu
