/**
 * @file
 * Data memory of the model machine.
 *
 * Memory is word-addressed (64-bit words) and flat, with a fixed
 * capacity; accesses beyond the capacity raise a page fault. The paper
 * assumes no memory-bank conflicts (§2.2 assumption (i)), so there is
 * no banking model — the memory functional unit's latency lives in
 * UarchConfig.
 */

#ifndef RUU_ARCH_MEMORY_HH
#define RUU_ARCH_MEMORY_HH

#include <cstddef>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace ruu
{

/** Flat word-addressed data memory. */
class Memory
{
  public:
    /** Default capacity: 1 Mi words (8 MiB). */
    static constexpr std::size_t kDefaultWords = 1u << 20;

    explicit Memory(std::size_t words = kDefaultWords);

    /** Capacity in words. */
    std::size_t sizeWords() const { return _words.size(); }

    /** True when @p addr is in range. */
    bool mapped(Addr addr) const { return addr < _words.size(); }

    /**
     * Read the word at @p addr.
     * @return nullopt on a page fault (unmapped address).
     */
    std::optional<Word> load(Addr addr) const;

    /**
     * Write @p value at @p addr.
     * @return false on a page fault.
     */
    bool store(Addr addr, Word value);

    /** Unchecked read used by test oracles; panics when unmapped. */
    Word at(Addr addr) const;

    /** Unchecked write used when loading program images. */
    void set(Addr addr, Word value);

    /** Read the word as an IEEE double (test convenience). */
    double atDouble(Addr addr) const;

    /** Zero all of memory. */
    void clear();

    bool operator==(const Memory &other) const = default;

  private:
    std::vector<Word> _words;
};

} // namespace ruu

#endif // RUU_ARCH_MEMORY_HH
