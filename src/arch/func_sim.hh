/**
 * @file
 * The functional simulator: executes a Program to completion and
 * produces the dynamic Trace consumed by the timing cores.
 *
 * This is the reproduction's stand-in for the CRAY-1 simulation tools
 * of Pang & Smith that the paper used to generate its traces (§2.1).
 */

#ifndef RUU_ARCH_FUNC_SIM_HH
#define RUU_ARCH_FUNC_SIM_HH

#include <memory>

#include "arch/executor.hh"
#include "arch/memory.hh"
#include "arch/state.hh"
#include "asm/program.hh"
#include "trace/trace.hh"

namespace ruu
{

/** Result of a functional run. */
struct FuncResult
{
    Trace trace;          //!< full dynamic trace (includes HALT)
    ArchState finalState; //!< registers after the last instruction

    /**
     * Memory after the last instruction. Empty (zero words) until a
     * run materializes it: a default-sized image is 8 MiB of memset,
     * and the trap controller restarts runs once per interrupt
     * delivery, so the placeholder must cost nothing.
     */
    Memory finalMemory{0};
    bool halted = false;  //!< program reached HALT
    Fault fault = Fault::None; //!< first organic fault, if any
    SeqNum faultSeq = kNoSeqNum; //!< dynamic index of that fault

    /** Dynamic instruction count. */
    std::size_t instructions() const { return trace.size(); }
};

/** Options for a functional run. */
struct FuncSimOptions
{
    /** Abort runaway programs after this many dynamic instructions. */
    std::uint64_t maxInstructions = 50'000'000;

    /** Data memory capacity in words. */
    std::size_t memoryWords = Memory::kDefaultWords;
};

/**
 * Execute @p program from instruction 0 until HALT, a fault, or the
 * instruction limit.
 *
 * @param program shared so the returned Trace can reference it.
 */
FuncResult runFunctional(std::shared_ptr<const Program> program,
                         const FuncSimOptions &options = {});

/**
 * Execute only the first @p count dynamic instructions of @p program.
 *
 * This is the precise-interrupt oracle: the RUU's state after
 * committing k instructions must equal runPrefix(..., k).
 */
FuncResult runPrefix(std::shared_ptr<const Program> program,
                     std::uint64_t count,
                     const FuncSimOptions &options = {});

/**
 * Execute @p program from static instruction @p startIndex, starting
 * from the given architectural @p state and @p memory, until HALT, a
 * fault, or the instruction limit.
 *
 * This is the interrupt-service model of the sweep harness
 * (oracle/sweep.hh): reconstruct the architectural state a timing core
 * reported at an interrupt, hand it to the sequential machine, and let
 * it finish the program. For a precise core the result must be
 * bit-identical to an uninterrupted run.
 */
FuncResult resumeFunctional(std::shared_ptr<const Program> program,
                            std::size_t startIndex,
                            const ArchState &state, const Memory &memory,
                            const FuncSimOptions &options = {});

} // namespace ruu

#endif // RUU_ARCH_FUNC_SIM_HH
