/**
 * @file
 * Interleaved memory banks.
 *
 * The paper assumes no memory-bank conflicts (§2.2 assumption (i)).
 * This model lifts that assumption for the ablation bench: memory is
 * word-interleaved across `count` banks and a bank stays busy for
 * `busyCycles` after an access (the CRAY-1 had 16 banks with a 4-cycle
 * bank cycle time). A memory operation may not start while its bank is
 * busy. Disabled (count = 0) by default, matching the paper.
 */

#ifndef RUU_UARCH_BANKS_HH
#define RUU_UARCH_BANKS_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace ruu
{

namespace inject
{
class FaultPortSet;
} // namespace inject

/** Word-interleaved memory banks with a fixed recovery time. */
class MemoryBanks
{
  public:
    /**
     * @param count       banks (power of two; 0 disables the model)
     * @param busy_cycles bank recovery time after an access
     */
    explicit MemoryBanks(unsigned count = 0, unsigned busy_cycles = 4);

    /** True when bank conflicts are modeled at all. */
    bool enabled() const { return !_freeAt.empty(); }

    /** True when the bank holding @p addr can start at @p cycle. */
    bool canAccess(Addr addr, Cycle cycle) const;

    /** Record an access to @p addr's bank starting at @p cycle. */
    void access(Addr addr, Cycle cycle);

    /** Conflicts observed so far (diagnostics). */
    std::uint64_t conflicts() const { return _conflicts; }

    /** Clear all bank state. */
    void reset();

    /** Register per-bank recovery latches (no-op when disabled). */
    void exposePorts(inject::FaultPortSet &ports,
                     const std::string &prefix);

  private:
    unsigned _busyCycles;
    std::vector<Cycle> _freeAt;
    std::uint64_t _conflicts = 0;

    std::size_t bankOf(Addr addr) const
    {
        return static_cast<std::size_t>(addr) & (_freeAt.size() - 1);
    }
};

} // namespace ruu

#endif // RUU_UARCH_BANKS_HH
