#include "uarch/load_regs.hh"

#include "common/logging.hh"
#include "inject/fault_port.hh"

namespace ruu
{

LoadRegisters::LoadRegisters(unsigned count) : _entries(count)
{
    ruu_assert(count >= 1, "at least one load register is required");
}

bool
LoadRegisters::hasFree() const
{
    for (const auto &entry : _entries)
        if (!entry.active)
            return true;
    return false;
}

std::optional<unsigned>
LoadRegisters::find(Addr addr) const
{
    for (unsigned i = 0; i < _entries.size(); ++i)
        if (_entries[i].active && _entries[i].addr == addr)
            return i;
    return std::nullopt;
}

unsigned
LoadRegisters::allocate(Addr addr, Tag tag)
{
    ruu_assert(!find(addr).has_value(),
               "address %llu already has a load register",
               static_cast<unsigned long long>(addr));
    for (unsigned i = 0; i < _entries.size(); ++i) {
        if (!_entries[i].active) {
            _entries[i] = LoadRegEntry{true, addr, tag, 1, false, 0};
            return i;
        }
    }
    ruu_panic("no free load register (callers must check hasFree())");
}

void
LoadRegisters::join(unsigned index, std::optional<Tag> new_tag)
{
    ruu_assert(index < _entries.size(), "load register %u out of range",
               index);
    LoadRegEntry &entry = _entries[index];
    ruu_assert(entry.active, "join on a free load register");
    ++entry.pending;
    if (new_tag) {
        entry.tag = *new_tag;
        entry.hasValue = false;
    }
}

void
LoadRegisters::complete(unsigned index)
{
    ruu_assert(index < _entries.size(), "load register %u out of range",
               index);
    LoadRegEntry &entry = _entries[index];
    ruu_assert(entry.active && entry.pending > 0,
               "complete on an idle load register");
    if (--entry.pending == 0)
        entry = LoadRegEntry{};
}

void
LoadRegisters::onBroadcast(Tag tag, Word value)
{
    for (auto &entry : _entries) {
        if (entry.active && entry.tag == tag) {
            entry.hasValue = true;
            entry.value = value;
        }
    }
}

const LoadRegEntry &
LoadRegisters::entry(unsigned index) const
{
    ruu_assert(index < _entries.size(), "load register %u out of range",
               index);
    return _entries[index];
}

unsigned
LoadRegisters::countActive() const
{
    unsigned n = 0;
    for (const auto &entry : _entries)
        n += entry.active ? 1 : 0;
    return n;
}

void
LoadRegisters::reset()
{
    for (auto &entry : _entries)
        entry = LoadRegEntry{};
}

void
LoadRegisters::exposePorts(inject::FaultPortSet &ports,
                           const std::string &prefix)
{
    for (unsigned i = 0; i < _entries.size(); ++i) {
        LoadRegEntry &e = _entries[i];
        std::string name = prefix + "[" + std::to_string(i) + "]";
        ports.addFlag(name + ".active", e.active);
        ports.add(name + ".addr", inject::PortClass::Address, e.addr,
                  32);
        ports.add(name + ".tag", inject::PortClass::Tag, e.tag, 32);
        ports.add(name + ".pending", inject::PortClass::Control,
                  e.pending, 8);
        ports.addFlag(name + ".hasValue", e.hasValue);
        ports.add(name + ".value", inject::PortClass::Data, e.value,
                  64);
    }
}

} // namespace ruu
