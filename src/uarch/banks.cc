#include "uarch/banks.hh"

#include "common/logging.hh"
#include "inject/fault_port.hh"

namespace ruu
{

MemoryBanks::MemoryBanks(unsigned count, unsigned busy_cycles)
    : _busyCycles(busy_cycles), _freeAt(count, 0)
{
    if (count != 0) {
        ruu_assert((count & (count - 1)) == 0,
                   "bank count %u must be a power of two", count);
        ruu_assert(busy_cycles >= 1, "bank busy time must be positive");
    }
}

bool
MemoryBanks::canAccess(Addr addr, Cycle cycle) const
{
    if (!enabled())
        return true;
    return _freeAt[bankOf(addr)] <= cycle;
}

void
MemoryBanks::access(Addr addr, Cycle cycle)
{
    if (!enabled())
        return;
    ruu_assert(canAccess(addr, cycle), "bank busy at access time");
    _freeAt[bankOf(addr)] = cycle + _busyCycles;
}

void
MemoryBanks::reset()
{
    for (auto &free_at : _freeAt)
        free_at = 0;
    _conflicts = 0;
}

void
MemoryBanks::exposePorts(inject::FaultPortSet &ports,
                         const std::string &prefix)
{
    for (std::size_t i = 0; i < _freeAt.size(); ++i)
        ports.add(prefix + "[" + std::to_string(i) + "].freeAt",
                  inject::PortClass::Sequence, _freeAt[i], 32);
}

} // namespace ruu
