#include "uarch/config.hh"

namespace ruu
{

const char *
bypassModeName(BypassMode mode)
{
    switch (mode) {
      case BypassMode::Full: return "full";
      case BypassMode::None: return "none";
      case BypassMode::LimitedA: return "limited_a";
      case BypassMode::FutureFile: return "future_file";
    }
    return "?";
}

const char *
predictorKindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::AlwaysTaken: return "always_taken";
      case PredictorKind::AlwaysNotTaken: return "always_not_taken";
      case PredictorKind::Btfn: return "btfn";
      case PredictorKind::Smith2Bit: return "smith_2bit";
    }
    return "?";
}

std::string
UarchConfig::validate() const
{
    if (predictorTableBits < 1 || predictorTableBits > 20)
        return "predictorTableBits must be in 1..20";
    if (poolEntries < 1)
        return "poolEntries must be at least 1";
    if (counterBits < 1 || counterBits > 8)
        return "counterBits must be in 1..8";
    if (loadRegisters < 1)
        return "loadRegisters must be at least 1";
    if (dispatchPaths < 1 || dispatchPaths > 4)
        return "dispatchPaths must be in 1..4";
    if (commitWidth < 1 || commitWidth > 4)
        return "commitWidth must be in 1..4";
    if (resultBuses < 1 || resultBuses > 4)
        return "resultBuses must be in 1..4";
    if (memoryBanks != 0 && (memoryBanks & (memoryBanks - 1)) != 0)
        return "memoryBanks must be zero or a power of two";
    if (memoryBanks != 0 && bankBusyCycles < 1)
        return "bankBusyCycles must be positive";
    if (tuEntries < 1)
        return "tuEntries must be at least 1";
    if (historyEntries < 2)
        return "historyEntries must be at least 2";
    if (rsPerFu < 1)
        return "rsPerFu must be at least 1";
    if (storeLatency < 1)
        return "storeLatency must be at least 1";
    if (forwardLatency < 1)
        return "forwardLatency must be at least 1";
    if (latency(FuKind::Memory) < 1)
        return "memory latency must be at least 1";
    for (unsigned i = 0; i < kNumFuKinds - 1; ++i) {
        if (fuLatency[i] < 1)
            return std::string("latency of ") +
                   fuKindName(static_cast<FuKind>(i)) +
                   " must be at least 1";
    }
    for (unsigned i = 0; i < kNumFuKinds; ++i) {
        if (fuCount[i] < 1 || fuCount[i] > 8)
            return std::string("unit count of ") +
                   fuKindName(static_cast<FuKind>(i)) +
                   " must be in 1..8";
    }
    return "";
}

} // namespace ruu
