#include "uarch/scoreboard.hh"

#include <algorithm>

#include "common/logging.hh"
#include "inject/fault_port.hh"

namespace ruu
{

unsigned
BusyBits::countBusy() const
{
    unsigned n = 0;
    for (bool b : _busy)
        n += b ? 1 : 0;
    return n;
}

InstanceCounters::InstanceCounters(unsigned bits) : _bits(bits)
{
    ruu_assert(bits >= 1 && bits <= 8, "counter width %u out of range",
               bits);
    reset();
}

unsigned
InstanceCounters::allocate(RegId reg)
{
    unsigned flat = reg.flat();
    ruu_assert(canAllocate(reg), "NI counter of %s saturated",
               reg.toString().c_str());
    ++_ni[flat];
    _li[flat] = static_cast<std::uint8_t>((_li[flat] + 1) &
                                          ((1u << _bits) - 1));
    return _li[flat];
}

void
InstanceCounters::release(RegId reg)
{
    unsigned flat = reg.flat();
    ruu_assert(_ni[flat] > 0, "release of %s with NI == 0",
               reg.toString().c_str());
    --_ni[flat];
}

void
InstanceCounters::rollback(RegId reg)
{
    unsigned flat = reg.flat();
    ruu_assert(_ni[flat] > 0, "rollback of %s with NI == 0",
               reg.toString().c_str());
    --_ni[flat];
    unsigned mask = (1u << _bits) - 1;
    _li[flat] = static_cast<std::uint8_t>((_li[flat] + mask) & mask);
}

Tag
InstanceCounters::makeTag(RegId reg, unsigned instance) const
{
    ruu_assert(instance < (1u << _bits), "instance %u out of range",
               instance);
    return (static_cast<Tag>(reg.flat()) << _bits) |
           static_cast<Tag>(instance);
}

void
InstanceCounters::reset()
{
    _ni.fill(0);
    _li.fill(0);
}

void
BusyBits::exposePorts(inject::FaultPortSet &ports,
                      const std::string &prefix)
{
    for (unsigned f = 0; f < kNumArchRegs; ++f)
        ports.addFlag(prefix + "." + RegId::fromFlat(f).toString(),
                      _busy[f]);
}

void
InstanceCounters::exposePorts(inject::FaultPortSet &ports,
                              const std::string &prefix)
{
    // Counter values above 2^n - 1 are unrepresentable in n bits, so
    // flips confined to the counter width always yield legal counts.
    for (unsigned f = 0; f < kNumArchRegs; ++f) {
        std::string reg = RegId::fromFlat(f).toString();
        ports.add(prefix + ".ni." + reg, inject::PortClass::Control,
                  _ni[f], _bits);
        ports.add(prefix + ".li." + reg, inject::PortClass::Tag,
                  _li[f], _bits);
    }
}

} // namespace ruu
