/**
 * @file
 * Load registers — the paper's memory-disambiguation mechanism
 * (§3.2.1.2).
 *
 * A load register holds the address of a "currently active" memory
 * location, the tag of the newest in-flight producer of that location,
 * and a count of in-flight memory operations referencing it. A load
 * whose address matches an active register is *not* submitted to
 * memory: it takes the register's tag (or its already-latched value)
 * and completes by forwarding. A store that matches becomes the newest
 * producer by replacing the tag. A register frees when no pending load
 * or store references its address.
 */

#ifndef RUU_UARCH_LOAD_REGS_HH
#define RUU_UARCH_LOAD_REGS_HH

#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "uarch/result_bus.hh"

namespace ruu
{

/** One load register. */
struct LoadRegEntry
{
    bool active = false;   //!< holds a currently active address
    Addr addr = 0;         //!< the memory word address
    Tag tag = kNoTag;      //!< tag of the newest in-flight producer
    unsigned pending = 0;  //!< in-flight memory ops on this address
    bool hasValue = false; //!< producer's data already latched
    Word value = 0;        //!< latched data (valid when hasValue)
};

/** The set of load registers. */
class LoadRegisters
{
  public:
    /** @param count number of registers (the paper uses 6). */
    explicit LoadRegisters(unsigned count);

    /** Number of registers. */
    unsigned size() const { return static_cast<unsigned>(_entries.size()); }

    /** True when at least one register is free. */
    bool hasFree() const;

    /** Index of the active register holding @p addr, if any. */
    std::optional<unsigned> find(Addr addr) const;

    /**
     * Allocate a free register for @p addr with producer @p tag
     * (pending = 1). Panics when none is free — callers check
     * hasFree() and stall otherwise.
     * @return the register index.
     */
    unsigned allocate(Addr addr, Tag tag);

    /**
     * A new producer (store) or consumer (forwarded load) joined
     * register @p index: pending++. When @p new_tag is given the
     * operation is a store and becomes the newest producer, replacing
     * the tag and invalidating any latched value.
     */
    void join(unsigned index, std::optional<Tag> new_tag);

    /**
     * One memory operation on register @p index completed: pending--;
     * the register frees when the count reaches zero.
     */
    void complete(unsigned index);

    /**
     * A result-bus or commit-bus delivery: latch @p value into any
     * register whose current tag is @p tag.
     */
    void onBroadcast(Tag tag, Word value);

    /** Entry @p index (diagnostics and tests). */
    const LoadRegEntry &entry(unsigned index) const;

    /** Number of active registers. */
    unsigned countActive() const;

    /** Free everything (reset between runs / after an interrupt). */
    void reset();

    /** Register every load-register field as a fault port. */
    void exposePorts(inject::FaultPortSet &ports,
                     const std::string &prefix);

  private:
    std::vector<LoadRegEntry> _entries;
};

} // namespace ruu

#endif // RUU_UARCH_LOAD_REGS_HH
