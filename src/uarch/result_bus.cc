#include "uarch/result_bus.hh"

#include "common/logging.hh"
#include "inject/fault_port.hh"

namespace ruu
{

ResultBus::ResultBus(unsigned width, unsigned horizon) : _width(width)
{
    ruu_assert(width >= 1, "at least one result bus is required");
    ruu_assert(horizon >= 2, "result-bus horizon of %u cycles", horizon);
    _slots.resize(static_cast<std::size_t>(width) * horizon);
}

void
ResultBus::reserve(Cycle cycle, Tag tag, Word value, SeqNum seq)
{
    ruu_assert(free(cycle),
               "all %u result-bus slots at cycle %llu already reserved",
               _width, static_cast<unsigned long long>(cycle));
    for (Slot &slot : _slots) {
        if (slot.used)
            continue;
        slot.used = true;
        slot.cycle = cycle;
        slot.stamp = _nextStamp++;
        slot.broadcast = {tag, value, seq};
        return;
    }
    ruu_panic("result-bus schedule exceeded its %zu-latch window; a "
              "delivery is pending further ahead than the horizon "
              "covers",
              _slots.size());
}

unsigned
ResultBus::countAt(Cycle cycle) const
{
    unsigned n = 0;
    for (const Slot &slot : _slots)
        if (slot.used && slot.cycle == cycle)
            ++n;
    return n;
}

std::optional<Broadcast>
ResultBus::at(Cycle cycle) const
{
    const Slot *found = nullptr;
    for (const Slot &slot : _slots) {
        if (!slot.used || slot.cycle != cycle)
            continue;
        if (!found || slot.stamp < found->stamp)
            found = &slot;
    }
    if (!found)
        return std::nullopt;
    return found->broadcast;
}

void
ResultBus::retireBefore(Cycle cycle)
{
    for (Slot &slot : _slots)
        if (slot.used && slot.cycle < cycle)
            slot.used = false;
}

void
ResultBus::cancelFrom(SeqNum seq)
{
    for (Slot &slot : _slots)
        if (slot.used && slot.broadcast.seq != kNoSeqNum &&
            slot.broadcast.seq >= seq)
            slot.used = false;
}

std::size_t
ResultBus::pending() const
{
    std::size_t n = 0;
    for (const Slot &slot : _slots)
        if (slot.used)
            ++n;
    return n;
}

void
ResultBus::reset()
{
    for (Slot &slot : _slots)
        slot.used = false;
    _nextStamp = 1;
}

void
ResultBus::exposePorts(inject::FaultPortSet &ports,
                       const std::string &prefix)
{
    for (std::size_t i = 0; i < _slots.size(); ++i) {
        Slot &slot = _slots[i];
        std::string name = prefix + "[" + std::to_string(i) + "]";
        ports.addFlag(name + ".used", slot.used);
        ports.add(name + ".cycle", inject::PortClass::Sequence,
                  slot.cycle, 32);
        ports.add(name + ".tag", inject::PortClass::Tag,
                  slot.broadcast.tag, 32);
        ports.add(name + ".value", inject::PortClass::Data,
                  slot.broadcast.value, 64);
    }
}

} // namespace ruu
