#include "uarch/result_bus.hh"

#include "common/logging.hh"

namespace ruu
{

ResultBus::ResultBus(unsigned width) : _width(width)
{
    ruu_assert(width >= 1, "at least one result bus is required");
}

void
ResultBus::reserve(Cycle cycle, Tag tag, Word value, SeqNum seq)
{
    ruu_assert(free(cycle),
               "all %u result-bus slots at cycle %llu already reserved",
               _width, static_cast<unsigned long long>(cycle));
    _schedule.emplace(cycle, Broadcast{tag, value, seq});
}

unsigned
ResultBus::countAt(Cycle cycle) const
{
    return static_cast<unsigned>(_schedule.count(cycle));
}

std::optional<Broadcast>
ResultBus::at(Cycle cycle) const
{
    auto it = _schedule.find(cycle);
    if (it == _schedule.end())
        return std::nullopt;
    return it->second;
}

void
ResultBus::retireBefore(Cycle cycle)
{
    _schedule.erase(_schedule.begin(), _schedule.lower_bound(cycle));
}

void
ResultBus::cancelFrom(SeqNum seq)
{
    for (auto it = _schedule.begin(); it != _schedule.end();) {
        if (it->second.seq != kNoSeqNum && it->second.seq >= seq)
            it = _schedule.erase(it);
        else
            ++it;
    }
}

} // namespace ruu
