/**
 * @file
 * Configuration of the modeled microarchitecture.
 *
 * Defaults reproduce the paper's model architecture (§2): CRAY-1 scalar
 * functional-unit latencies, a single result bus, a single decode-and-
 * issue unit, 6 load registers, and 3-bit NI/LI instance counters.
 */

#ifndef RUU_UARCH_CONFIG_HH
#define RUU_UARCH_CONFIG_HH

#include <array>
#include <cstdint>
#include <string>

#include "isa/opcode.hh"

namespace ruu
{

/** RUU source-operand bypass variants evaluated in the paper's §6. */
enum class BypassMode : std::uint8_t
{
    Full,     //!< §6.1, Table 4: read executed results out of the RUU
    None,     //!< §6.2, Table 5: monitor the result and commit buses only
    LimitedA, //!< §6.3, Table 6: duplicate (future) A register file
    /**
     * §4's full future file (Smith & Pleszkun): every register file is
     * duplicated and updated from the result bus; the architectural
     * copy is updated in order at commit. The paper asserts this
     * "achieves the same performance as a reorder buffer with bypass
     * logic" — the reproduction verifies the equivalence exactly
     * (tests/test_ruu_core.cc).
     */
    FutureFile,
};

/** Printable bypass-mode name. */
const char *bypassModeName(BypassMode mode);

/** Branch predictors for the §7 conditional-execution extension. */
enum class PredictorKind : std::uint8_t
{
    AlwaysTaken,    //!< static: predict every branch taken
    AlwaysNotTaken, //!< static: predict every branch not taken
    Btfn,           //!< static: backward taken, forward not taken
    Smith2Bit,      //!< dynamic: table of 2-bit saturating counters
};

/** Printable predictor name. */
const char *predictorKindName(PredictorKind kind);

/** All tunables of the modeled machine. */
struct UarchConfig
{
    /**
     * Functional-unit latency by FuKind, in cycles from dispatch to the
     * result appearing on the result bus. Defaults are the CRAY-1
     * scalar unit times the paper models.
     */
    std::array<unsigned, kNumFuKinds> fuLatency = {
        2,  // AddrAdd
        6,  // AddrMul
        3,  // ScalarAdd
        1,  // ScalarLogical
        2,  // ScalarShift
        3,  // PopLz
        6,  // FpAdd
        7,  // FpMul
        14, // FpRecip
        11, // Memory (scalar load)
        1,  // Transmit
        0,  // None (branches resolve in the issue stage)
    };

    /**
     * Functional units per FuKind. The paper's model machine has one
     * unit of every class (the CRAY-1 scalar unit set); larger counts
     * are consumed by the resource-bound analyzer
     * (lint/resource_bound.hh), whose per-class service floors divide
     * by them. The timing cores currently always model one unit per
     * class, so counts above one only loosen the analyzer's floor —
     * which keeps the bound sound.
     */
    std::array<unsigned, kNumFuKinds> fuCount = {
        1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
    };

    /**
     * Cycles for a store to hand its address/data to the memory unit
     * and publish the data for load forwarding.
     */
    unsigned storeLatency = 1;

    /** Cycles for a load satisfied by load-register forwarding. */
    unsigned forwardLatency = 1;

    /** Dead cycles after a taken branch resolves (CRAY-1-like). */
    unsigned branchTakenPenalty = 5;

    /** Dead cycles after an untaken conditional branch resolves. */
    unsigned branchUntakenPenalty = 2;

    /** Load registers for memory disambiguation (§3.2.1.2). */
    unsigned loadRegisters = 6;

    /** Width n of the NI/LI instance counters (§5); max 2^n-1 copies. */
    unsigned counterBits = 3;

    /** Entries in the RSTU pool / RUU queue. */
    unsigned poolEntries = 10;

    /** Data paths from the merged pool to the FUs (Table 2 vs 3). */
    unsigned dispatchPaths = 1;

    /** Instructions the RUU may commit per cycle. */
    unsigned commitWidth = 1;

    /**
     * Result buses (same-cycle delivery slots). The paper's model has
     * one; the real CRAY-1 scalar unit had separate address and scalar
     * result buses, approximated by 2 (§2; ablation_result_buses).
     */
    unsigned resultBuses = 1;

    /**
     * Interleaved memory banks; 0 disables bank-conflict modeling,
     * matching the paper's §2.2 assumption (i). The CRAY-1 had 16.
     */
    unsigned memoryBanks = 0;

    /** Bank recovery time after an access (CRAY-1: 4 cycles). */
    unsigned bankBusyCycles = 4;

    /** History-buffer entries (HistoryCore, the §4 alternative). */
    unsigned historyEntries = 16;

    /** Tag Unit entries (TomasuloCore). */
    unsigned tuEntries = 10;

    /** Reservation stations per functional unit (TomasuloCore). */
    unsigned rsPerFu = 2;

    /** RUU bypass variant (RuuCore). */
    BypassMode bypass = BypassMode::Full;

    // --- §7 conditional-execution extension (SpecRuuCore) --------------

    /** Branch predictor driving conditional execution. */
    PredictorKind predictor = PredictorKind::Smith2Bit;

    /** log2 of the Smith counter table size. */
    unsigned predictorTableBits = 8;

    /** Fetch bubble after a predicted-taken branch (with a BTB). */
    unsigned predictedTakenPenalty = 1;

    /** Dead cycles from a mispredicted branch's resolution to redirect. */
    unsigned mispredictPenalty = 5;

    /**
     * Run the microarchitectural invariant checker
     * (lint/invariant_checker.hh) every cycle; Core::run panics when a
     * run finishes with violations. Also enabled for every core by
     * setting the RUU_CHECK_INVARIANTS environment variable non-empty.
     */
    bool checkInvariants = false;

    /** Latency of @p kind. */
    unsigned latency(FuKind kind) const
    {
        return fuLatency[static_cast<unsigned>(kind)];
    }

    /** Number of units of @p kind. */
    unsigned units(FuKind kind) const
    {
        return fuCount[static_cast<unsigned>(kind)];
    }

    /** The paper's model machine (all defaults). */
    static UarchConfig cray1() { return UarchConfig{}; }

    /** Validate ranges; returns an error message or "" when valid. */
    std::string validate() const;
};

} // namespace ruu

#endif // RUU_UARCH_CONFIG_HH
