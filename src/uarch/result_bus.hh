/**
 * @file
 * The result bus(es) of the model architecture.
 *
 * The paper's model machine (§2) lets only one functional unit place a
 * result on the bus per clock — a deliberate simplification of the
 * CRAY-1, which had separate address and scalar result buses. ResultBus
 * models a configurable number of same-cycle delivery slots (width 1 =
 * the paper's machine, width 2 ≈ the real CRAY-1), so the bench
 * `ablation_result_buses` can quantify the simplification.
 *
 * A producer reserves a delivery slot at dispatch time (the
 * Weiss–Smith policy the paper cites); dispatch must stall when every
 * slot in its delivery cycle is taken. Broadcasts carry a tag and a
 * value: reservation stations, the tag units, the load registers and
 * the future files all monitor them.
 *
 * The schedule is a fixed array of reservation latches (width × a
 * delivery horizon comfortably beyond the longest unit latency), not a
 * dynamic map: the latches are stable storage for the lifetime of a
 * run, which is what lets the fault-injection layer (src/inject)
 * register every bus latch as a flippable FaultPort.
 */

#ifndef RUU_UARCH_RESULT_BUS_HH
#define RUU_UARCH_RESULT_BUS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ruu
{

namespace inject
{
class FaultPortSet;
} // namespace inject

/** An opaque result tag; each core defines its own tag namespace. */
using Tag = std::uint32_t;

/** Sentinel for "no tag". */
inline constexpr Tag kNoTag = 0xffffffffu;

/** One value delivery on a result bus. */
struct Broadcast
{
    Tag tag = kNoTag;
    Word value = 0;
    SeqNum seq = kNoSeqNum; //!< producing dynamic instruction
};

/** Reservation schedule of the result bus(es). */
class ResultBus
{
  public:
    /**
     * @param width   deliveries allowed per cycle (buses)
     * @param horizon delivery cycles the latch array covers; must
     *                exceed the longest functional-unit latency
     */
    explicit ResultBus(unsigned width = 1, unsigned horizon = 64);

    /** Number of buses. */
    unsigned width() const { return _width; }

    /** True when a delivery slot remains at @p cycle. */
    bool free(Cycle cycle) const { return countAt(cycle) < _width; }

    /**
     * Reserve a slot at @p cycle for a delivery of (@p tag, @p value).
     * Panics when no slot remains — callers check free() first.
     */
    void reserve(Cycle cycle, Tag tag, Word value, SeqNum seq);

    /** Deliveries scheduled for @p cycle. */
    unsigned countAt(Cycle cycle) const;

    /** The first delivery scheduled for @p cycle, if any. */
    std::optional<Broadcast> at(Cycle cycle) const;

    /** Drop deliveries scheduled before @p cycle (bookkeeping). */
    void retireBefore(Cycle cycle);

    /** Cancel every delivery from @p seq onward (squash support). */
    void cancelFrom(SeqNum seq);

    /** Number of reservations currently scheduled. */
    std::size_t pending() const;

    /** Clear all reservations. */
    void reset();

    /** Register every reservation latch as a fault port. */
    void exposePorts(inject::FaultPortSet &ports,
                     const std::string &prefix);

  private:
    /** One reservation latch. */
    struct Slot
    {
        bool used = false;
        Cycle cycle = 0;
        std::uint64_t stamp = 0; //!< reservation order among equals
        Broadcast broadcast;
    };

    unsigned _width;
    std::vector<Slot> _slots;
    std::uint64_t _nextStamp = 1;
};

} // namespace ruu

#endif // RUU_UARCH_RESULT_BUS_HH
