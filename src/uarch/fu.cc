#include "uarch/fu.hh"

#include "common/logging.hh"
#include "inject/fault_port.hh"

namespace ruu
{

FuPipes::FuPipes(const UarchConfig &config) : _config(config)
{
    reset();
}

bool
FuPipes::canStart(FuKind kind, Cycle cycle) const
{
    unsigned idx = static_cast<unsigned>(kind);
    ruu_assert(kind != FuKind::None, "FuKind::None never dispatches");
    return _lastStart[idx] == kNoCycle || _lastStart[idx] != cycle;
}

void
FuPipes::start(FuKind kind, Cycle cycle)
{
    unsigned idx = static_cast<unsigned>(kind);
    ruu_assert(canStart(kind, cycle),
               "unit %s already started an operation at cycle %llu",
               fuKindName(kind), static_cast<unsigned long long>(cycle));
    _lastStart[idx] = cycle;
}

void
FuPipes::reset()
{
    _lastStart.fill(kNoCycle);
}

void
FuPipes::exposePorts(inject::FaultPortSet &ports,
                     const std::string &prefix)
{
    for (unsigned k = 0; k < kNumFuKinds; ++k) {
        if (static_cast<FuKind>(k) == FuKind::None)
            continue;
        ports.add(prefix + ".lastStart." +
                      fuKindName(static_cast<FuKind>(k)),
                  inject::PortClass::Sequence, _lastStart[k], 32);
    }
}

} // namespace ruu
