/**
 * @file
 * CRAY-1-style instruction buffers.
 *
 * The paper assumes every instruction reference hits the buffers (§2.2
 * assumptions (ii)–(iii)), so the cores run with this model disabled by
 * default; it exists for the fetch-penalty ablation bench, which lifts
 * the assumption and measures the effect of out-of-buffer branches.
 *
 * The CRAY-1 has four buffers of 64 parcels each, filled as aligned
 * blocks; a fetch that misses replaces the least-recently-filled buffer
 * and pays a fixed refill penalty.
 */

#ifndef RUU_UARCH_IBUFFER_HH
#define RUU_UARCH_IBUFFER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ruu
{

namespace inject
{
class FaultPortSet;
} // namespace inject

/** The instruction-buffer array. */
class IBuffers
{
  public:
    /**
     * @param count        number of buffers (CRAY-1: 4)
     * @param parcels_each parcels per buffer (CRAY-1: 64; power of two)
     * @param miss_penalty cycles to refill a buffer on a miss
     */
    IBuffers(unsigned count = 4, unsigned parcels_each = 64,
             unsigned miss_penalty = 14);

    /**
     * Fetch the parcel at @p pc at time @p now.
     * @return the cycle at which the parcel is available (now on a hit,
     *         now + missPenalty on a miss; the miss fills a buffer).
     */
    Cycle fetch(ParcelAddr pc, Cycle now);

    /** True when @p pc currently hits a buffer (no state change). */
    bool present(ParcelAddr pc) const;

    /** Fetches that missed (diagnostics). */
    std::uint64_t misses() const { return _misses; }

    /** Total fetches (diagnostics). */
    std::uint64_t accesses() const { return _accesses; }

    /** Refill penalty in cycles. */
    unsigned missPenalty() const { return _missPenalty; }

    /** Invalidate all buffers and zero the counters. */
    void reset();

    /** Register base/valid/victim state as fault ports. */
    void exposePorts(inject::FaultPortSet &ports,
                     const std::string &prefix);

  private:
    unsigned _parcelsEach;
    unsigned _missPenalty;
    unsigned _nextVictim = 0;
    std::vector<ParcelAddr> _base; //!< aligned base per buffer
    // Byte-backed (not std::vector<bool>) so each flag is addressable
    // as a fault port.
    std::vector<std::uint8_t> _valid;
    std::uint64_t _misses = 0;
    std::uint64_t _accesses = 0;
};

} // namespace ruu

#endif // RUU_UARCH_IBUFFER_HH
