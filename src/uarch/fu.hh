/**
 * @file
 * Functional-unit pipeline model.
 *
 * The CRAY-1 scalar functional units the paper models are fully
 * pipelined with an initiation interval of one: each unit can accept
 * one new operation per cycle and delivers its result a fixed number of
 * cycles later. The only structural hazard is therefore starting two
 * operations on the *same* unit in the same cycle (possible only with
 * more than one dispatch path) — plus the shared result bus, which is
 * modeled separately in result_bus.hh.
 */

#ifndef RUU_UARCH_FU_HH
#define RUU_UARCH_FU_HH

#include <array>
#include <string>

#include "common/types.hh"
#include "isa/opcode.hh"
#include "uarch/config.hh"

namespace ruu
{

namespace inject
{
class FaultPortSet;
} // namespace inject

/** Tracks per-unit initiation so one operation starts per cycle. */
class FuPipes
{
  public:
    explicit FuPipes(const UarchConfig &config);

    /** True when unit @p kind can start an operation at @p cycle. */
    bool canStart(FuKind kind, Cycle cycle) const;

    /** Record that unit @p kind started an operation at @p cycle. */
    void start(FuKind kind, Cycle cycle);

    /** Result latency of @p kind. */
    unsigned latency(FuKind kind) const { return _config.latency(kind); }

    /** Forget all initiations (reset between runs). */
    void reset();

    /** Register every per-unit initiation latch as a fault port. */
    void exposePorts(inject::FaultPortSet &ports,
                     const std::string &prefix);

  private:
    UarchConfig _config;
    std::array<Cycle, kNumFuKinds> _lastStart;
};

} // namespace ruu

#endif // RUU_UARCH_FU_HH
