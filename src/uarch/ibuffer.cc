#include "uarch/ibuffer.hh"

#include <algorithm>

#include "common/logging.hh"
#include "inject/fault_port.hh"

namespace ruu
{

IBuffers::IBuffers(unsigned count, unsigned parcels_each,
                   unsigned miss_penalty)
    : _parcelsEach(parcels_each), _missPenalty(miss_penalty),
      _base(count, 0), _valid(count, false)
{
    ruu_assert(count >= 1, "at least one instruction buffer is required");
    ruu_assert(parcels_each >= 2 &&
                   (parcels_each & (parcels_each - 1)) == 0,
               "buffer size %u must be a power of two", parcels_each);
}

bool
IBuffers::present(ParcelAddr pc) const
{
    ParcelAddr base = pc & ~static_cast<ParcelAddr>(_parcelsEach - 1);
    for (std::size_t i = 0; i < _base.size(); ++i)
        if (_valid[i] && _base[i] == base)
            return true;
    return false;
}

Cycle
IBuffers::fetch(ParcelAddr pc, Cycle now)
{
    ++_accesses;
    if (present(pc))
        return now;

    ++_misses;
    ParcelAddr base = pc & ~static_cast<ParcelAddr>(_parcelsEach - 1);
    _base[_nextVictim] = base;
    _valid[_nextVictim] = true;
    _nextVictim = (_nextVictim + 1) % static_cast<unsigned>(_base.size());
    return now + _missPenalty;
}

void
IBuffers::reset()
{
    std::fill(_valid.begin(), _valid.end(), std::uint8_t{0});
    _nextVictim = 0;
    _misses = 0;
    _accesses = 0;
}

void
IBuffers::exposePorts(inject::FaultPortSet &ports,
                      const std::string &prefix)
{
    for (std::size_t i = 0; i < _base.size(); ++i) {
        std::string name = prefix + "[" + std::to_string(i) + "]";
        ports.add(name + ".base", inject::PortClass::Address, _base[i],
                  32);
        ports.addRaw(name + ".valid", inject::PortClass::Control,
                     &_valid[i], 1, 1);
    }
    ports.add(prefix + ".nextVictim", inject::PortClass::Sequence,
              _nextVictim, 32, _base.size());
}

} // namespace ruu
