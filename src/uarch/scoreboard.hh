/**
 * @file
 * Register scoreboards.
 *
 * BusyBits is the classic per-register busy flag used by the simple
 * issue mechanism and by the Tag-Unit cores (Tomasulo/RSTU): a register
 * is busy while an outstanding instruction will write it.
 *
 * InstanceCounters is the paper's §5 replacement for associative tag
 * search in the RUU: each register carries two n-bit counters, the
 * Number of Instances (NI) and the Latest Instance (LI). A tag is then
 * simply (register, LI) — no associative lookup needed — and issue
 * blocks when NI saturates at 2^n - 1.
 */

#ifndef RUU_UARCH_SCOREBOARD_HH
#define RUU_UARCH_SCOREBOARD_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/reg.hh"
#include "uarch/result_bus.hh"

namespace ruu
{

/** Per-register busy flags (one outstanding-writer bit per register). */
class BusyBits
{
  public:
    BusyBits() { reset(); }

    /** True while some in-flight instruction will write @p reg. */
    bool busy(RegId reg) const { return _busy[reg.flat()]; }

    /** Mark @p reg busy (a writer issued). */
    void setBusy(RegId reg) { _busy[reg.flat()] = true; }

    /** Clear @p reg (the latest writer delivered its result). */
    void clear(RegId reg) { _busy[reg.flat()] = false; }

    /** Number of busy registers (diagnostics). */
    unsigned countBusy() const;

    /** Clear everything. */
    void reset() { _busy.fill(false); }

    /** Register every busy bit as a fault port. */
    void exposePorts(inject::FaultPortSet &ports,
                     const std::string &prefix);

  private:
    std::array<bool, kNumArchRegs> _busy;
};

/**
 * NI/LI instance counters for every architectural register (§5).
 *
 * Tags formed by makeTag() are (flat register << n) | instance, which
 * keeps them unique across registers and distinguishable from the
 * store pseudo-tags (kStoreTagBit set) used for memory forwarding.
 */
class InstanceCounters
{
  public:
    /** @param bits counter width n; at most 2^n - 1 live instances. */
    explicit InstanceCounters(unsigned bits);

    /** Counter width n. */
    unsigned bits() const { return _bits; }

    /** Maximum simultaneously live instances (2^n - 1). */
    unsigned maxInstances() const { return (1u << _bits) - 1; }

    /** True while any instruction in the RUU will write @p reg. */
    bool busy(RegId reg) const { return _ni[reg.flat()] != 0; }

    /** Current NI counter of @p reg. */
    unsigned instances(RegId reg) const { return _ni[reg.flat()]; }

    /** Current LI counter of @p reg. */
    unsigned latest(RegId reg) const { return _li[reg.flat()]; }

    /** True when another instance of @p reg may be created. */
    bool canAllocate(RegId reg) const
    {
        return _ni[reg.flat()] < maxInstances();
    }

    /**
     * Create a new instance of @p reg: NI++ and LI++ (mod 2^n).
     * @return the new instance number (the new LI).
     */
    unsigned allocate(RegId reg);

    /** Release one instance of @p reg at commit: NI--. */
    void release(RegId reg);

    /**
     * Undo the most recent allocate() of @p reg: NI-- and LI--
     * (mod 2^n). Used when nullifying conditionally issued
     * instructions (§7) — undo must run newest-first.
     */
    void rollback(RegId reg);

    /** Tag of instance @p instance of @p reg. */
    Tag makeTag(RegId reg, unsigned instance) const;

    /** Tag of the *latest* instance of @p reg. */
    Tag latestTag(RegId reg) const
    {
        return makeTag(reg, latest(reg));
    }

    /** Reset all counters (new run or post-interrupt recovery). */
    void reset();

    /** Register every NI/LI counter as a fault port. */
    void exposePorts(inject::FaultPortSet &ports,
                     const std::string &prefix);

  private:
    unsigned _bits;
    std::array<std::uint8_t, kNumArchRegs> _ni;
    std::array<std::uint8_t, kNumArchRegs> _li;
};

/** High bit marking a store pseudo-tag (memory forwarding namespace). */
inline constexpr Tag kStoreTagBit = 0x8000'0000u;

} // namespace ruu

#endif // RUU_UARCH_SCOREBOARD_HH
