/**
 * @file
 * Error-reporting helpers in the gem5 style.
 *
 * panic()  — an internal simulator invariant was violated (a ruusim bug);
 *            aborts so a debugger or core dump can capture the state.
 * fatal()  — the simulation cannot continue because of a user error (bad
 *            configuration, malformed program); exits with status 1.
 * warn()   — something suspicious happened but simulation continues.
 * inform() — status information for the user.
 */

#ifndef RUU_COMMON_LOGGING_HH
#define RUU_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ruu
{

namespace detail
{

/** Format, print, and abort. Implementation for the panic/fatal macros. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Minimal printf-style formatting into a std::string. */
std::string vformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace ruu

/** Abort on an internal invariant violation (simulator bug). */
#define ruu_panic(...) \
    ::ruu::detail::panicImpl(__FILE__, __LINE__, \
                             ::ruu::detail::vformat(__VA_ARGS__))

/** Exit on an unrecoverable user error (bad config or input). */
#define ruu_fatal(...) \
    ::ruu::detail::fatalImpl(__FILE__, __LINE__, \
                             ::ruu::detail::vformat(__VA_ARGS__))

/** Print a warning and continue. */
#define ruu_warn(...) \
    ::ruu::detail::warnImpl(::ruu::detail::vformat(__VA_ARGS__))

/** Print an informational message. */
#define ruu_inform(...) \
    ::ruu::detail::informImpl(::ruu::detail::vformat(__VA_ARGS__))

/** Panic when @p cond is false; message describes the broken invariant. */
#define ruu_assert(cond, ...) \
    do { \
        if (!(cond)) \
            ruu_panic(__VA_ARGS__); \
    } while (0)

#endif // RUU_COMMON_LOGGING_HH
