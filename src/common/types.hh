/**
 * @file
 * Fundamental scalar types shared by every ruusim subsystem.
 *
 * The model architecture is a CRAY-1-like scalar machine: memory is
 * word-addressed (64-bit words), instructions are composed of 16-bit
 * parcels, and time advances in integral clock cycles.
 */

#ifndef RUU_COMMON_TYPES_HH
#define RUU_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace ruu
{

/** A simulation clock cycle. Cycle 0 is the first cycle of execution. */
using Cycle = std::uint64_t;

/** A word address in the model machine's data memory. */
using Addr = std::uint64_t;

/**
 * A parcel address in instruction memory. Instructions occupy one or two
 * 16-bit parcels; branch targets are parcel addresses.
 */
using ParcelAddr = std::uint32_t;

/** Raw 64-bit register/memory contents (integer or IEEE double bits). */
using Word = std::uint64_t;

/** A 16-bit instruction parcel. */
using Parcel = std::uint16_t;

/** Index of a dynamic instruction within a trace (0-based). */
using SeqNum = std::uint64_t;

/** Sentinel for "no cycle" / "not scheduled". */
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for "no dynamic instruction". */
inline constexpr SeqNum kNoSeqNum = std::numeric_limits<SeqNum>::max();

} // namespace ruu

#endif // RUU_COMMON_TYPES_HH
