#include "common/backoff.hh"

#include <algorithm>

#include "par/pool.hh"

namespace ruu
{

std::uint64_t
backoffDelayUs(const BackoffPolicy &policy, unsigned attempt)
{
    // Cap the shift first: 64 doublings overflow long before any sane
    // policy caps, so clamp the exponent to the cap-reaching attempt.
    std::uint64_t delay = policy.capUs;
    if (policy.baseUs == 0)
        return 0;
    if (attempt < 63) {
        std::uint64_t scaled = policy.baseUs << attempt;
        // Detect shift wrap-around (scaled no longer a doubling).
        if ((scaled >> attempt) == policy.baseUs)
            delay = std::min(scaled, policy.capUs);
    }
    if (delay <= 1)
        return delay;
    // Deterministic jitter into [delay/2, delay]: an independent
    // stream per (seed, attempt), never a shared generator.
    std::uint64_t half = delay / 2;
    std::uint64_t state = par::jobSeed(policy.seed, attempt);
    return half + par::splitmix64(state) % (delay - half + 1);
}

} // namespace ruu
