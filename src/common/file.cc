#include "common/file.hh"

#include <fstream>
#include <sstream>

namespace ruu
{

Expected<std::string>
readTextFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Error("cannot open '" + path + "' for reading");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad())
        return Error("read error while loading '" + path + "'");
    return buffer.str();
}

} // namespace ruu
