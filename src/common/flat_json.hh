/**
 * @file
 * The flat one-line JSON dialect shared by every durable line format
 * in the repo: the inject campaign journal (inject/journal.cc), the
 * serve protocol (serve/protocol.hh), the serve result cache and
 * recovery journal. One object per line, values only strings and
 * unsigned integers, so readers need no JSON dependency and a torn
 * line is detectable by a failed parse.
 *
 * Hoisted out of inject/journal.cc when the serve subsystem arrived;
 * the grammar is pinned by the journal format and must not grow
 * richer types.
 */

#ifndef RUU_COMMON_FLAT_JSON_HH
#define RUU_COMMON_FLAT_JSON_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/error.hh"

namespace ruu::flat
{

/** One parsed value of the flat object grammar. */
struct Value
{
    bool isString = false;
    std::string text;         //!< unescaped string / number spelling
    std::uint64_t number = 0; //!< valid when !isString
};

using Object = std::map<std::string, Value>;

/**
 * Parse one line holding a single flat object. Errors carry the
 * column, so a torn or hand-edited line points at the damage.
 */
Expected<Object> parseObject(const std::string &text);

/** Escape @p text for embedding in a flat-JSON string literal. */
std::string escape(const std::string &text);

/** The value of @p key, which must be a number. */
Expected<std::uint64_t> getNumber(const Object &object,
                                  const std::string &key);

/** The value of @p key, which must be a string. */
Expected<std::string> getString(const Object &object,
                                const std::string &key);

/** The number at @p key, or std::nullopt when absent. */
std::optional<std::uint64_t> optNumber(const Object &object,
                                       const std::string &key);

/** The string at @p key, or std::nullopt when absent. */
std::optional<std::string> optString(const Object &object,
                                     const std::string &key);

} // namespace ruu::flat

#endif // RUU_COMMON_FLAT_JSON_HH
