#include "common/io_faults.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace ruu::io
{

namespace
{

/**
 * What the schedule decreed for one op: an errno to inject (0 = run
 * the real syscall), and whether a genuine partial write should land
 * first.
 */
struct Decision
{
    int err = 0;
    bool shortWrite = false;
};

struct Injector
{
    std::mutex mutex;
    FaultPlan plan;
    bool armed = false;
    std::uint64_t scheduleIndex = 0; //!< eligible ops since arming
    FaultStats stats;
    std::once_flag envOnce;
};

Injector &
injector()
{
    static Injector g;
    return g;
}

/** SplitMix64 step (private copy: common code must not depend on par). */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Arm from RUU_IO_FAULTS exactly once, before the first op or the
 * first programmatic plan change — so a forked daemon inherits its
 * schedule, while setFaultPlan()/clearFaultPlan() always win over the
 * environment afterwards.
 */
void
armFromEnv(Injector &g)
{
    std::call_once(g.envOnce, [&g] {
        const char *env = std::getenv("RUU_IO_FAULTS");
        if (!env || !*env)
            return;
        auto plan = parseFaultPlan(env);
        if (!plan) {
            // A bad schedule must not kill the process it was meant to
            // torture; diagnose and run unarmed.
            std::fprintf(stderr, "ruusim: io_faults: ignoring "
                         "RUU_IO_FAULTS: %s\n",
                         plan.error().message().c_str());
            return;
        }
        std::lock_guard<std::mutex> lock(g.mutex);
        g.plan = *plan;
        g.armed = g.plan.armed();
        g.scheduleIndex = 0;
    });
}

/** The schedule's verdict for one checked op. May not return (crash). */
Decision
decide(const char *opName, const std::string &path, bool isWrite)
{
    Injector &g = injector();
    armFromEnv(g);
    std::lock_guard<std::mutex> lock(g.mutex);
    ++g.stats.ops;
    if (!g.armed)
        return {};
    if (!g.plan.pathPrefix.empty() &&
        path.compare(0, g.plan.pathPrefix.size(), g.plan.pathPrefix) !=
            0)
        return {};
    std::uint64_t k = ++g.scheduleIndex;
    if (g.plan.crashAtOp && k == g.plan.crashAtOp) {
        // The explicit verdict, then death at the syscall boundary —
        // exactly what a machine losing power mid-op looks like to the
        // file, but never silent to a supervisor reading stderr.
        std::fprintf(stderr,
                     "ruusim: io_faults: injected crash at op %llu "
                     "(%s '%s')\n",
                     static_cast<unsigned long long>(k), opName,
                     path.c_str());
        std::fflush(stderr);
        ::_exit(kCrashExitCode);
    }
    if (!g.plan.errorRate)
        return {};
    std::uint64_t state = g.plan.seed ^ (k * 0x9e3779b97f4a7c15ull);
    std::uint64_t u = splitmix64(state);
    if ((u & 0xff) >= g.plan.errorRate)
        return {};
    ++g.stats.injected;
    switch ((u >> 8) % 3) {
      case 0:
        ++g.stats.enospcFaults;
        return {ENOSPC, false};
      case 1:
        ++g.stats.eioFaults;
        return {EIO, false};
      default:
        if (isWrite) {
            ++g.stats.shortWrites;
            return {ENOSPC, true};
        }
        ++g.stats.eioFaults;
        return {EIO, false};
    }
}

Error
opError(const char *opName, const std::string &path, int err,
        bool injected)
{
    return Error(std::string(opName) + " '" + path + "': " +
                 std::strerror(err) +
                 (injected ? " (injected)" : ""));
}

Expected<int>
openChecked(const std::string &path, int flags)
{
    Decision d = decide("open", path, false);
    if (d.err)
        return opError("open", path, d.err, true);
    int fd;
    do {
        fd = ::open(path.c_str(), flags, 0666);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0)
        return opError("open", path, errno, false);
    return fd;
}

} // namespace

Expected<FaultPlan>
parseFaultPlan(const std::string &text)
{
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find(':', pos);
        std::string token = text.substr(
            pos, end == std::string::npos ? std::string::npos
                                          : end - pos);
        pos = end == std::string::npos ? text.size() : end + 1;
        if (token.empty())
            continue;
        std::size_t eq = token.find('=');
        if (eq == std::string::npos)
            return Error("io fault plan: expected key=value, got '" +
                         token + "'");
        std::string key = token.substr(0, eq);
        std::string value = token.substr(eq + 1);
        if (key == "seed") {
            plan.seed = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "rate") {
            unsigned long rate = std::strtoul(value.c_str(), nullptr, 10);
            if (rate > 256)
                return Error("io fault plan: rate " + value +
                             " is out of [0, 256]");
            plan.errorRate = static_cast<unsigned>(rate);
        } else if (key == "crash_at") {
            plan.crashAtOp = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "prefix") {
            plan.pathPrefix = value;
        } else {
            return Error("io fault plan: unknown key '" + key + "'");
        }
    }
    return plan;
}

void
setFaultPlan(const FaultPlan &plan)
{
    Injector &g = injector();
    armFromEnv(g); // consume the once-flag so the env cannot override
    std::lock_guard<std::mutex> lock(g.mutex);
    g.plan = plan;
    g.armed = plan.armed();
    g.scheduleIndex = 0;
}

void
clearFaultPlan()
{
    setFaultPlan(FaultPlan{});
}

FaultPlan
currentFaultPlan()
{
    Injector &g = injector();
    armFromEnv(g);
    std::lock_guard<std::mutex> lock(g.mutex);
    return g.armed ? g.plan : FaultPlan{};
}

FaultStats
faultStats()
{
    Injector &g = injector();
    std::lock_guard<std::mutex> lock(g.mutex);
    return g.stats;
}

void
resetFaultStats()
{
    Injector &g = injector();
    std::lock_guard<std::mutex> lock(g.mutex);
    g.stats = FaultStats{};
}

Expected<int>
openTrunc(const std::string &path)
{
    return openChecked(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC);
}

Expected<int>
openAppend(const std::string &path)
{
    return openChecked(path,
                       O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC);
}

Expected<bool>
writeAll(int fd, const std::string &path, const char *data,
         std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        Decision d = decide("write", path, true);
        if (d.err) {
            if (d.shortWrite && size - done > 1) {
                // Land a genuine partial prefix before failing — the
                // on-disk signature of a disk filling mid-write, which
                // is exactly what torn-tail recovery must eat.
                std::size_t part = (size - done) / 2;
                std::size_t landed = 0;
                while (landed < part) {
                    ssize_t n = ::write(fd, data + done + landed,
                                        part - landed);
                    if (n < 0) {
                        if (errno == EINTR)
                            continue;
                        break;
                    }
                    landed += static_cast<std::size_t>(n);
                }
            }
            return opError("write", path, d.err, true);
        }
        ssize_t n = ::write(fd, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return opError("write", path, errno, false);
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

Expected<bool>
fsyncFd(int fd, const std::string &path)
{
    Decision d = decide("fsync", path, false);
    if (d.err)
        return opError("fsync", path, d.err, true);
    int rc;
    do {
        rc = ::fsync(fd);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0)
        return opError("fsync", path, errno, false);
    return true;
}

Expected<bool>
closeFd(int fd, const std::string &path)
{
    Decision d = decide("close", path, false);
    if (d.err) {
        // Even a failed close must not leak the descriptor: callers
        // treat the op as finished either way.
        ::close(fd);
        return opError("close", path, d.err, true);
    }
    if (::close(fd) != 0 && errno != EINTR)
        return opError("close", path, errno, false);
    return true;
}

Expected<bool>
renameFile(const std::string &from, const std::string &to)
{
    Decision d = decide("rename", from, false);
    if (d.err)
        return opError("rename", from, d.err, true);
    if (::rename(from.c_str(), to.c_str()) != 0)
        return opError("rename", from, errno, false);
    return true;
}

Expected<bool>
truncateFile(const std::string &path, std::uint64_t size)
{
    Decision d = decide("truncate", path, false);
    if (d.err)
        return opError("truncate", path, d.err, true);
    int rc;
    do {
        rc = ::truncate(path.c_str(), static_cast<off_t>(size));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0)
        return opError("truncate", path, errno, false);
    return true;
}

Expected<bool>
fsyncParentDir(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos
                          ? std::string(".")
                          : path.substr(0, slash == 0 ? 1 : slash);
    Decision d = decide("fsync", dir, false);
    if (d.err)
        return opError("fsync", dir, d.err, true);
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0)
        return opError("open", dir, errno, false);
    int rc;
    do {
        rc = ::fsync(fd);
    } while (rc != 0 && errno == EINTR);
    int err = rc != 0 ? errno : 0;
    ::close(fd);
    if (err)
        return opError("fsync", dir, err, false);
    return true;
}

void
ensureDir(const std::string &path)
{
    ::mkdir(path.c_str(), 0777); // EEXIST and friends: open() reports
}

Expected<bool>
atomicWriteFile(const std::string &path, const std::string &contents)
{
    std::string tmp = path + ".tmp";
    auto fd = openTrunc(tmp);
    if (!fd)
        return fd.error();
    if (auto written =
            writeAll(*fd, tmp, contents.data(), contents.size());
        !written) {
        ::close(*fd);
        ::unlink(tmp.c_str());
        return written.error();
    }
    if (auto synced = fsyncFd(*fd, tmp); !synced) {
        ::close(*fd);
        ::unlink(tmp.c_str());
        return synced.error();
    }
    if (auto closed = closeFd(*fd, tmp); !closed) {
        ::unlink(tmp.c_str());
        return closed.error();
    }
    // fsync *before* rename: the payload must be durable before the
    // name points at it, or a crash can leave a valid-looking name
    // over unwritten blocks.
    if (auto renamed = renameFile(tmp, path); !renamed) {
        ::unlink(tmp.c_str());
        return renamed.error();
    }
    // And the rename itself must be durable: sync the directory entry.
    // (If this fails the file is still fully valid under its final
    // name; the caller only loses the durability guarantee.)
    return fsyncParentDir(path);
}

Expected<bool>
AppendFile::create(const std::string &path)
{
    close();
    auto fd = openTrunc(path);
    if (!fd)
        return fd.error();
    _fd = *fd;
    _path = path;
    return true;
}

Expected<bool>
AppendFile::append(const std::string &path)
{
    close();
    auto fd = openAppend(path);
    if (!fd)
        return fd.error();
    _fd = *fd;
    _path = path;
    return true;
}

Expected<bool>
AppendFile::appendText(const std::string &text)
{
    if (_fd < 0)
        return Error("append file is not open");
    if (_damaged)
        return Error("append '" + _path +
                     "': tail is damaged; refusing further appends");
    off_t before = ::lseek(_fd, 0, SEEK_END);
    if (auto written = writeAll(_fd, _path, text.data(), text.size());
        !written) {
        // A failed append may have landed a partial line. Repair the
        // tail in place (raw ftruncate — repair must not inject); if
        // the repair cannot be trusted, poison the appender so the
        // damage stays a torn *tail* instead of becoming interior
        // corruption under later successful appends.
        if (before < 0 || ::ftruncate(_fd, before) != 0)
            _damaged = true;
        return written.error();
    }
    return fsyncFd(_fd, _path);
}

Expected<bool>
AppendFile::appendLine(const std::string &line)
{
    return appendText(line + "\n");
}

void
AppendFile::close()
{
    if (_fd >= 0)
        ::close(_fd); // unchecked: cleanup must not inject
    _fd = -1;
    _damaged = false;
}

} // namespace ruu::io
