#include "common/flat_json.hh"

#include <cctype>
#include <cstdio>

namespace ruu::flat
{

namespace
{

/**
 * Parser for the one-line flat subset of JSON: a single object whose
 * values are strings or unsigned integers.
 */
class FlatParser
{
  public:
    explicit FlatParser(const std::string &text) : _text(text) {}

    Expected<Object> parse()
    {
        Object object;
        skipSpace();
        if (!consume('{'))
            return fail("expected '{'");
        skipSpace();
        if (consume('}')) {
            skipSpace();
            if (_pos != _text.size())
                return fail("trailing text after object");
            return object;
        }
        while (true) {
            skipSpace();
            std::string key;
            if (auto r = parseString(key); !r)
                return r.error();
            skipSpace();
            if (!consume(':'))
                return fail("expected ':' after key '" + key + "'");
            skipSpace();
            Value value;
            if (peek() == '"') {
                value.isString = true;
                if (auto r = parseString(value.text); !r)
                    return r.error();
            } else {
                if (auto r = parseNumber(value); !r)
                    return r.error();
            }
            object[key] = std::move(value);
            skipSpace();
            if (consume(','))
                continue;
            if (consume('}'))
                break;
            return fail("expected ',' or '}'");
        }
        skipSpace();
        if (_pos != _text.size())
            return fail("trailing text after object");
        return object;
    }

  private:
    char peek() const { return _pos < _text.size() ? _text[_pos] : '\0'; }
    bool consume(char c)
    {
        if (peek() != c)
            return false;
        ++_pos;
        return true;
    }
    void skipSpace()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
    }
    Error fail(const std::string &what) const
    {
        return Error(what + " at column " + std::to_string(_pos + 1));
    }

    Expected<bool> parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        while (true) {
            if (_pos >= _text.size())
                return fail("unterminated string");
            char c = _text[_pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_pos >= _text.size())
                return fail("unterminated escape");
            char e = _text[_pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (_pos + 4 > _text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = _text[_pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code |= h - 'A' + 10;
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // The writers only ever escape control bytes, so a
                // single byte is enough to reconstruct them.
                out += static_cast<char>(code & 0xff);
                break;
              }
              default:
                return fail(std::string("unknown escape '\\") + e +
                            "'");
            }
        }
    }

    Expected<bool> parseNumber(Value &out)
    {
        std::size_t start = _pos;
        while (_pos < _text.size() &&
               std::isdigit(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
        if (_pos == start)
            return fail("expected a value");
        out.text = _text.substr(start, _pos - start);
        out.number = 0;
        for (char c : out.text) {
            if (out.number > (UINT64_MAX - (c - '0')) / 10)
                return fail("number out of range");
            out.number = out.number * 10 + (c - '0');
        }
        return true;
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

} // namespace

Expected<Object>
parseObject(const std::string &text)
{
    FlatParser parser(text);
    return parser.parse();
}

std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

Expected<std::uint64_t>
getNumber(const Object &object, const std::string &key)
{
    auto it = object.find(key);
    if (it == object.end())
        return Error("missing key '" + key + "'");
    if (it->second.isString)
        return Error("key '" + key + "' is a string, expected a number");
    return it->second.number;
}

Expected<std::string>
getString(const Object &object, const std::string &key)
{
    auto it = object.find(key);
    if (it == object.end())
        return Error("missing key '" + key + "'");
    if (!it->second.isString)
        return Error("key '" + key + "' is a number, expected a string");
    return it->second.text;
}

std::optional<std::uint64_t>
optNumber(const Object &object, const std::string &key)
{
    auto it = object.find(key);
    if (it == object.end() || it->second.isString)
        return std::nullopt;
    return it->second.number;
}

std::optional<std::string>
optString(const Object &object, const std::string &key)
{
    auto it = object.find(key);
    if (it == object.end() || !it->second.isString)
        return std::nullopt;
    return it->second.text;
}

} // namespace ruu::flat
