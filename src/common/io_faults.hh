/**
 * @file
 * Checked, fault-injectable I/O primitives for every durable writer in
 * the repo (docs/FAULTS.md).
 *
 * PR 4 pointed bit-exact fault injection at the simulated cores; this
 * shim points the same discipline at the daemon's *own* filesystem
 * state. Every open / write / fsync / rename / close / truncate that
 * backs a journal, the result cache, or the campaign queue goes
 * through here, which buys two things at once:
 *
 *   1. **Checked durability.** Each primitive loops over EINTR and OS
 *      short writes, reports failures as ruu::Error instead of
 *      silently losing bytes, and the composite helpers pin the
 *      crash-safety idioms: atomicWriteFile() is tmp + write + fsync +
 *      rename + directory fsync (an entry is fully durable or absent,
 *      never torn under its final name), and AppendFile fsyncs every
 *      appended line (a journal record returned as written survives a
 *      power cut).
 *
 *   2. **Deterministic torture.** A seeded FaultPlan injects ENOSPC,
 *      EIO, short writes (some bytes genuinely land, then the op
 *      fails — the classic disk-full tear), or a process crash at
 *      exactly the Nth shim operation. The schedule is a pure function
 *      of (seed, op index), so a failing torture run replays exactly.
 *      Plans arm programmatically (tests) or from the RUU_IO_FAULTS
 *      environment variable (forked daemons in
 *      scripts/ci_chaos_smoke.sh), optionally scoped to a path prefix
 *      so only the daemon's state directory is tortured.
 *
 * Injected errors are marked "(injected)" in the diagnostic; injected
 * crashes print an explicit verdict line to stderr and _exit with
 * kCrashExitCode, so a supervisor can always tell a scheduled kill
 * from an organic one.
 */

#ifndef RUU_COMMON_IO_FAULTS_HH
#define RUU_COMMON_IO_FAULTS_HH

#include <cstdint>
#include <string>

#include "common/error.hh"

namespace ruu::io
{

/** Exit code of an injected crash-at-op fault — the explicit verdict. */
constexpr int kCrashExitCode = 86;

/** A deterministic fault schedule over the checked primitives. */
struct FaultPlan
{
    /** Seed of the per-op SplitMix64 decision stream. */
    std::uint64_t seed = 0;

    /** Inject an error on ~rate/256 of eligible ops (0 = never). */
    unsigned errorRate = 0;

    /** _exit(kCrashExitCode) at the Nth eligible op (1-based; 0 = off). */
    std::uint64_t crashAtOp = 0;

    /** Only ops on paths starting with this are eligible ("" = all). */
    std::string pathPrefix;

    bool armed() const { return errorRate > 0 || crashAtOp > 0; }
};

/** Observable shim counters. */
struct FaultStats
{
    std::uint64_t ops = 0;          //!< checked ops attempted
    std::uint64_t injected = 0;     //!< faults injected (all kinds)
    std::uint64_t enospcFaults = 0;
    std::uint64_t eioFaults = 0;
    std::uint64_t shortWrites = 0;
};

/**
 * Parse a plan spelled "seed=S:rate=R:crash_at=N:prefix=P" (any subset
 * of keys, colon-separated) — the RUU_IO_FAULTS grammar.
 */
Expected<FaultPlan> parseFaultPlan(const std::string &text);

/** Arm @p plan process-wide, restarting the op schedule at 1. */
void setFaultPlan(const FaultPlan &plan);

/** Disarm fault injection (checked wrappers keep running). */
void clearFaultPlan();

/** The currently armed plan (errorRate 0 / crashAtOp 0 when unarmed). */
FaultPlan currentFaultPlan();

FaultStats faultStats();
void resetFaultStats();

/** open(O_WRONLY|O_CREAT|O_TRUNC) with checked errors. */
Expected<int> openTrunc(const std::string &path);

/** open(O_WRONLY|O_CREAT|O_APPEND) with checked errors. */
Expected<int> openAppend(const std::string &path);

/**
 * Write all of @p size bytes, looping over EINTR and OS short writes.
 * An injected short write lands a genuine partial prefix before
 * failing — exactly the torn-line signature torn-tail recovery eats.
 */
Expected<bool> writeAll(int fd, const std::string &path,
                        const char *data, std::size_t size);

Expected<bool> fsyncFd(int fd, const std::string &path);

/** Checked close (the last point a buffered write error can surface). */
Expected<bool> closeFd(int fd, const std::string &path);

Expected<bool> renameFile(const std::string &from, const std::string &to);

Expected<bool> truncateFile(const std::string &path, std::uint64_t size);

/** fsync the directory containing @p path (durability of a rename). */
Expected<bool> fsyncParentDir(const std::string &path);

/** Best-effort mkdir (EEXIST is fine; open() reports real trouble). */
void ensureDir(const std::string &path);

/**
 * The atomic-store idiom, checked end to end: write @p contents to
 * "<path>.tmp", fsync, close, rename over @p path, fsync the parent
 * directory. On any failure the tmp file is unlinked and @p path still
 * holds its previous contents (or stays absent) — never a torn file
 * under the final name.
 */
Expected<bool> atomicWriteFile(const std::string &path,
                               const std::string &contents);

/**
 * Durable line appender: every appendLine/appendText is written and
 * fsynced before returning, so a record handed back as "added" has
 * reached the disk. A failed append repairs the file's tail —
 * truncating away any partial line the failure left behind — so
 * in-process damage can never sit *between* later successful appends
 * as interior corruption; if even the repair cannot be trusted the
 * appender poisons itself and refuses further appends, keeping the
 * damage a torn tail (which the journal readers forgive). A process
 * crash mid-append leaves at most that same torn final line.
 */
class AppendFile
{
  public:
    AppendFile() = default;
    ~AppendFile() { close(); }
    AppendFile(const AppendFile &) = delete;
    AppendFile &operator=(const AppendFile &) = delete;

    /** Open @p path truncating. */
    Expected<bool> create(const std::string &path);

    /** Open @p path appending. */
    Expected<bool> append(const std::string &path);

    /** Write @p line plus '\n', then fsync. */
    Expected<bool> appendLine(const std::string &line);

    /** Write @p text verbatim, then fsync. */
    Expected<bool> appendText(const std::string &text);

    bool isOpen() const { return _fd >= 0; }

    /** Best-effort close (unchecked — cleanup must not inject). */
    void close();

    const std::string &path() const { return _path; }

  private:
    int _fd = -1;
    std::string _path;
    bool _damaged = false; //!< un-repairable tail; appends refuse
};

} // namespace ruu::io

#endif // RUU_COMMON_IO_FAULTS_HH
