/**
 * @file
 * Checked file loading. Every path that pulls bytes off the filesystem
 * (CLI inputs, test fixtures, journals) goes through readTextFile so a
 * missing or unreadable file surfaces as a diagnosable Error instead of
 * an empty string or a crash downstream.
 */

#ifndef RUU_COMMON_FILE_HH
#define RUU_COMMON_FILE_HH

#include <string>

#include "common/error.hh"

namespace ruu
{

/**
 * Read the whole of @p path as text. Errors name the path and the
 * failure (nonexistent, unreadable, read error mid-stream).
 */
Expected<std::string> readTextFile(const std::string &path);

} // namespace ruu

#endif // RUU_COMMON_FILE_HH
