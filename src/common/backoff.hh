/**
 * @file
 * Capped exponential backoff with deterministic jitter.
 *
 * Every retry loop in the repo that waits out transient host trouble —
 * sandbox fork/pipe failure under fd or process pressure, a serve
 * client connecting before the daemon has bound its socket, serve
 * worker respawn — shares this one policy object, so retry behavior is
 * uniform, capped (a wedged host fails fast instead of sleeping
 * forever), and reproducible: the jitter of attempt k is drawn from an
 * independent SplitMix64 stream keyed on (seed, k) via par::jobSeed,
 * exactly the per-index randomness rule the parallel engine pins.
 * Identical (policy, seed) always produces the identical delay
 * sequence, so retry schedules can be asserted in tests and replayed
 * byte-for-byte.
 */

#ifndef RUU_COMMON_BACKOFF_HH
#define RUU_COMMON_BACKOFF_HH

#include <cstdint>

namespace ruu
{

/** Shape of one capped-exponential retry schedule. */
struct BackoffPolicy
{
    /** Nominal delay before the first retry, in microseconds. */
    std::uint64_t baseUs = 10'000;

    /** Hard ceiling on any single delay, in microseconds. */
    std::uint64_t capUs = 1'000'000;

    /** Retries granted after the initial attempt. */
    unsigned maxRetries = 5;

    /** Jitter stream selector; same seed, same delay sequence. */
    std::uint64_t seed = 0;
};

/**
 * The delay before retry @p attempt (0-based) under @p policy:
 * min(capUs, baseUs << attempt), jittered deterministically into
 * [delay/2, delay] from the (seed, attempt) SplitMix64 stream.
 */
std::uint64_t backoffDelayUs(const BackoffPolicy &policy,
                             unsigned attempt);

/**
 * Stateful walk of one retry schedule:
 *
 *   Backoff backoff(policy);
 *   while (failed_transiently) {
 *       if (backoff.exhausted())
 *           return give_up();
 *       sleep(backoff.nextDelayUs());
 *       retry();
 *   }
 *
 * The caller owns the sleeping, so tests can assert on the schedule
 * without waiting it out.
 */
class Backoff
{
  public:
    explicit Backoff(const BackoffPolicy &policy = {})
        : _policy(policy)
    {}

    /** True once every granted retry has been handed out. */
    bool exhausted() const { return _attempts >= _policy.maxRetries; }

    /** Retries handed out so far. */
    unsigned attempts() const { return _attempts; }

    /** The next retry's delay; advances the schedule. */
    std::uint64_t nextDelayUs() { return backoffDelayUs(_policy, _attempts++); }

  private:
    BackoffPolicy _policy;
    unsigned _attempts = 0;
};

} // namespace ruu

#endif // RUU_COMMON_BACKOFF_HH
