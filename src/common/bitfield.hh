/**
 * @file
 * Bit-manipulation helpers used by the instruction encoder and the
 * floating-point executor.
 */

#ifndef RUU_COMMON_BITFIELD_HH
#define RUU_COMMON_BITFIELD_HH

#include <cstdint>
#include <cstring>

#include "common/types.hh"

namespace ruu
{

/** Extract bits [lo, lo+width) of @p value (lo = 0 is the LSB). */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned lo, unsigned width)
{
    if (width >= 64)
        return value >> lo;
    return (value >> lo) & ((std::uint64_t{1} << width) - 1);
}

/** Insert @p field into bits [lo, lo+width) of @p value. */
constexpr std::uint64_t
insertBits(std::uint64_t value, unsigned lo, unsigned width,
           std::uint64_t field)
{
    std::uint64_t mask = (width >= 64) ? ~std::uint64_t{0}
                                       : ((std::uint64_t{1} << width) - 1);
    return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/** Sign-extend the low @p width bits of @p value to 64 bits. */
constexpr std::int64_t
sext(std::uint64_t value, unsigned width)
{
    if (width == 0 || width >= 64)
        return static_cast<std::int64_t>(value);
    std::uint64_t sign = std::uint64_t{1} << (width - 1);
    std::uint64_t masked = bits(value, 0, width);
    return static_cast<std::int64_t>((masked ^ sign) - sign);
}

/** Reinterpret a 64-bit word as an IEEE double. */
inline double
wordToDouble(Word w)
{
    double d;
    std::memcpy(&d, &w, sizeof(d));
    return d;
}

/** Reinterpret an IEEE double as a 64-bit word. */
inline Word
doubleToWord(double d)
{
    Word w;
    std::memcpy(&w, &d, sizeof(w));
    return w;
}

} // namespace ruu

#endif // RUU_COMMON_BITFIELD_HH
