/**
 * @file
 * Recoverable error values.
 *
 * The gem5-style macros in common/logging.hh terminate the process:
 * panic() for simulator bugs, fatal() for unrecoverable user errors.
 * That is the right behavior deep inside a timing loop, but not for
 * the I/O boundary — a malformed trace file or a truncated JSON
 * configuration is ordinary hostile input, and the tools must report
 * it and exit cleanly (the CLI convention is status 2) rather than
 * abort. Error/Expected carry such diagnostics to the caller.
 */

#ifndef RUU_COMMON_ERROR_HH
#define RUU_COMMON_ERROR_HH

#include <optional>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace ruu
{

/** A human-readable diagnostic for a recoverable failure. */
class Error
{
  public:
    Error() = default;

    explicit Error(std::string message) : _message(std::move(message)) {}

    const std::string &message() const { return _message; }

    /** Prefix the diagnostic with "<what>: " (outermost first). */
    Error &
    context(const std::string &what)
    {
        _message = what + ": " + _message;
        return *this;
    }

  private:
    std::string _message;
};

/**
 * A value of type T, or the Error explaining why it could not be
 * produced. The minimal subset of std::expected (C++23) the tools
 * need, for a C++20 toolchain.
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : _value(std::move(value)) {}

    Expected(Error error) : _error(std::move(error)) {}

    bool ok() const { return _value.has_value(); }
    explicit operator bool() const { return ok(); }

    const T &
    value() const
    {
        ruu_assert(ok(), "Expected::value() on an error result");
        return *_value;
    }

    /** Move the value out (consumes the Expected). */
    T
    take()
    {
        ruu_assert(ok(), "Expected::take() on an error result");
        return std::move(*_value);
    }

    const Error &
    error() const
    {
        ruu_assert(!ok(), "Expected::error() on a success result");
        return _error;
    }

    /** The error, or nullptr on success — for batch validation. */
    const Error *errorOrNull() const { return ok() ? nullptr : &_error; }

    const T &operator*() const { return value(); }
    const T *operator->() const { return &value(); }

  private:
    std::optional<T> _value;
    Error _error;
};

} // namespace ruu

#endif // RUU_COMMON_ERROR_HH
