/**
 * @file
 * The paper's §7 extension: conditional execution of instructions from
 * a predicted branch path, with RUU-based nullification.
 *
 * The base RuuCore stalls decode on every conditional branch until the
 * condition register can be read, then pays dead fetch cycles. Here a
 * branch predictor lets decode continue past unresolved branches:
 * conditional branches occupy RUU entries, instructions behind them
 * issue and execute in conditional mode, and in-order commit stops at
 * the oldest unresolved branch so no conditional instruction can ever
 * update the architectural state. When a branch resolves:
 *
 *  - predicted correctly: the branch commits and the conditional
 *    instructions behind it become unconditional;
 *  - mispredicted: every younger RUU entry is *nullified* — exactly
 *    the mechanism the paper says makes conditional execution "very
 *    easy" — the NI/LI instance counters roll back, load-register
 *    claims are returned, pending result-bus deliveries are cancelled,
 *    and fetch redirects to the correct path.
 *
 * Wrong-path instructions are genuinely fetched from the static
 * program image (the trace only records the correct path), so
 * mispredicted work competes for RUU slots, register instances,
 * functional units, and the result bus, as it would in hardware.
 * Wrong-path memory operations occupy entries but do not probe the
 * load registers (their addresses are unknowable), and conditional
 * stores do not resolve until every older branch is decided — a store
 * that has updated a load-register tag cannot be nullified.
 *
 * There is no limit on outstanding predicted branches: as the paper
 * notes, the instance counters provide register copies per path.
 * Precise interrupts are preserved unchanged.
 *
 * This core requires a trace whose Program is available (not a stub)
 * and uses full bypass.
 */

#ifndef RUU_CORE_SPEC_RUU_CORE_HH
#define RUU_CORE_SPEC_RUU_CORE_HH

#include "core/core.hh"

namespace ruu
{

/** RUU with branch prediction and conditional execution (paper §7). */
class SpecRuuCore : public Core
{
  public:
    explicit SpecRuuCore(const UarchConfig &config);

    const char *name() const override { return "spec_ruu"; }

    /**
     * Everything — branches included — enters the RUU and retires from
     * the head, so the commit stream is totally ordered.
     */
    CommitOrder commitOrder() const override
    {
        return CommitOrder::Total;
    }

    /** §7: speculation reuses the RUU's machinery; still precise. */
    bool preciseInterrupts() const override { return true; }

  protected:
    RunResult runImpl(const Trace &trace,
                      const RunOptions &options) override;

  private:
    /** The issue loop, templated over the engine's trace view. */
    template <class View>
    RunResult runLoop(const Trace &trace, const RunOptions &options,
                      const View &view);
};

} // namespace ruu

#endif // RUU_CORE_SPEC_RUU_CORE_HH
