#include "core/predictor.hh"

#include "common/logging.hh"

namespace ruu
{

std::unique_ptr<BranchPredictor>
BranchPredictor::make(PredictorKind kind, unsigned table_bits)
{
    if (kind == PredictorKind::Smith2Bit)
        return std::make_unique<SmithPredictor>(table_bits);
    return std::make_unique<StaticPredictor>(kind);
}

SmithPredictor::SmithPredictor(unsigned table_bits)
    : _table(std::size_t{1} << table_bits, 2),
      _mask((1u << table_bits) - 1)
{
    ruu_assert(table_bits >= 1 && table_bits <= 20,
               "predictor table bits %u out of range", table_bits);
}

bool
SmithPredictor::predict(ParcelAddr pc, bool /*target_backward*/)
{
    return _table[pc & _mask] >= 2;
}

void
SmithPredictor::update(ParcelAddr pc, bool taken)
{
    std::uint8_t &counter = _table[pc & _mask];
    if (taken && counter < 3)
        ++counter;
    else if (!taken && counter > 0)
        --counter;
}

unsigned
SmithPredictor::counterAt(ParcelAddr pc) const
{
    return _table[pc & _mask];
}

StaticPredictor::StaticPredictor(PredictorKind kind) : _kind(kind)
{
    ruu_assert(kind != PredictorKind::Smith2Bit,
               "SmithPredictor handles the dynamic kind");
}

bool
StaticPredictor::predict(ParcelAddr /*pc*/, bool target_backward)
{
    switch (_kind) {
      case PredictorKind::AlwaysTaken: return true;
      case PredictorKind::AlwaysNotTaken: return false;
      case PredictorKind::Btfn: return target_backward;
      default: return true;
    }
}

void
StaticPredictor::update(ParcelAddr /*pc*/, bool /*taken*/)
{
}

} // namespace ruu
