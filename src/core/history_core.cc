#include "core/history_core.hh"

#include <algorithm>
#include <deque>
#include <sstream>
#include <vector>

#include "core/ooo_support.hh"
#include "engine/view.hh"
#include "inject/ports.hh"
#include "uarch/banks.hh"
#include "uarch/fu.hh"
#include "uarch/scoreboard.hh"

namespace ruu
{

namespace
{

/** One history-buffer entry: what to restore if we must unwind. */
struct HistoryEntry
{
    bool valid = false;
    SeqNum seq = kNoSeqNum;
    ParcelAddr pc = 0;
    unsigned regFlat = kNumArchRegs; //!< destination; kNumArchRegs = none
    Word oldValue = 0;               //!< register contents at issue
    bool isStore = false;
    Addr memAddr = 0;
    Word oldMemValue = 0;  //!< memory contents just before the store
    bool memWritten = false;
    bool done = false;      //!< instruction completed (or was cancelled)
    bool wroteReg = false;  //!< register update actually happened
    bool faulted = false;
};

} // namespace

HistoryCore::HistoryCore(const UarchConfig &config) : Core(config)
{
}

RunResult
HistoryCore::runImpl(const Trace &trace, const RunOptions &options)
{
    if (activeEngine() == engine::Kind::Compiled)
        return runLoop(trace, options,
                       engine::CompiledView(trace, stream()));
    return runLoop(trace, options, engine::InterpView(trace));
}

template <class View>
RunResult
HistoryCore::runLoop(const Trace &trace, const RunOptions &options,
                     const View &view)
{
    RunResult result = makeInitialResult(trace, options);
    const unsigned pool_size = _config.poolEntries;
    const unsigned hb_size = _config.historyEntries;

    std::vector<InflightOp> pool(pool_size);
    std::vector<HistoryEntry> hb(hb_size);
    unsigned hb_head = 0, hb_tail = 0, hb_count = 0;
    // Pool slot -> history index, for cross-marking at completion.
    std::vector<unsigned> hb_of_slot(pool_size, 0);

    std::vector<unsigned> mem_queue;
    std::deque<SeqNum> store_queue;
    BusyBits busy;
    LoadRegisters load_regs(_config.loadRegisters);
    FuPipes pipes(_config);
    MemoryBanks banks(_config.memoryBanks, _config.bankBusyCycles);
    typename View::Bus bus(_config.resultBuses);

    Counter &c_insts = _stats.counter("instructions");
    Counter &c_branches = _stats.counter("branches");
    Counter &c_dead = _stats.counter("branch_dead_cycles");
    Counter &c_branch_wait = _stats.counter("stall_branch_cond_cycles");
    Counter &c_no_slot = _stats.counter("stall_no_pool_slot_cycles");
    Counter &c_no_hb = _stats.counter("stall_history_full_cycles");
    Counter &c_waw = _stats.counter("stall_dest_busy_cycles");
    Counter &c_no_lr = _stats.counter("stall_no_load_reg_cycles");
    Counter &c_dispatched = _stats.counter("dispatches");
    Counter &c_forwarded = _stats.counter("forwarded_loads");
    Counter &c_rollback = _stats.counter("rollback_cycles");
    Histogram &h_hb = _stats.histogram("history_occupancy");

    SeqNum decode_seq = options.startSeq;
    Cycle next_decode = 0;
    Cycle last_event = 0;
    bool halted = false;
    bool draining = false;  //!< a fault reached the head; unwinding soon
    bool unwinding = false; //!< restoring old values, one per cycle
    const auto &records = trace.records();
    lint::InvariantChecker *ck = invariants();
    // A faulted or cancelled op leaves its busy bit set until the
    // unwind; the scoreboard cross-check is meaningless from then on.
    bool fault_seen = false;

    // Fault/snapshot port registration (only when a tap is attached).
    // History sequence numbers index the trace, so they wrap to its
    // length; the slot-to-history map and the cursors wrap to the
    // buffer size. regFlat keeps its "no destination" sentinel
    // (kNumArchRegs) representable by wrapping one past it.
    inject::FaultPortSet fault_ports;
    if (options.tap) {
        for (unsigned i = 0; i < pool_size; ++i)
            inject::exposeInflightOp(
                fault_ports, "pool[" + std::to_string(i) + "]",
                pool[i]);
        for (unsigned i = 0; i < hb_size; ++i) {
            std::string name = "hb[" + std::to_string(i) + "]";
            HistoryEntry &h = hb[i];
            fault_ports.addFlag(name + ".valid", h.valid);
            fault_ports.add(name + ".seq", inject::PortClass::Sequence,
                            h.seq, 32, records.size());
            fault_ports.add(name + ".pc", inject::PortClass::Address,
                            h.pc, 32);
            fault_ports.add(name + ".regFlat", inject::PortClass::Tag,
                            h.regFlat, 32, kNumArchRegs + 1);
            fault_ports.add(name + ".oldValue",
                            inject::PortClass::Data, h.oldValue, 64);
            fault_ports.addFlag(name + ".isStore", h.isStore);
            fault_ports.add(name + ".memAddr",
                            inject::PortClass::Address, h.memAddr, 32);
            fault_ports.add(name + ".oldMemValue",
                            inject::PortClass::Data, h.oldMemValue,
                            64);
            fault_ports.addFlag(name + ".memWritten", h.memWritten);
            fault_ports.addFlag(name + ".done", h.done);
            fault_ports.addFlag(name + ".wroteReg", h.wroteReg);
            fault_ports.addFlag(name + ".faulted", h.faulted);
        }
        inject::exposeCursor(fault_ports, "hbHead", hb_head, hb_size);
        inject::exposeCursor(fault_ports, "hbTail", hb_tail, hb_size);
        inject::exposeCursor(fault_ports, "hbCount", hb_count,
                             hb_size + 1);
        for (unsigned i = 0; i < pool_size; ++i)
            inject::exposeCursor(fault_ports,
                                 "hbOfSlot[" + std::to_string(i) + "]",
                                 hb_of_slot[i], hb_size);
        busy.exposePorts(fault_ports, "busy");
        load_regs.exposePorts(fault_ports, "loadReg");
        pipes.exposePorts(fault_ports, "fu");
        banks.exposePorts(fault_ports, "banks");
        bus.exposePorts(fault_ports, "bus");
        result.state.exposePorts(fault_ports, "regs");
        fault_ports.add("decodeSeq", inject::PortClass::Sequence,
                        decode_seq, 32, records.size() + 1);
        fault_ports.add("nextDecode", inject::PortClass::Sequence,
                        next_decode, 32);
        options.tap->onRunStart(fault_ports);
    }

    auto occupancy = [&]() {
        unsigned n = 0;
        for (const auto &e : pool)
            n += e.valid ? 1 : 0;
        return n;
    };

    auto free_slot = [&]() -> int {
        for (unsigned i = 0; i < pool_size; ++i)
            if (!pool[i].valid)
                return static_cast<int>(i);
        return -1;
    };

    auto wedge_detail = [&]() {
        std::ostringstream os;
        os << "  pool occupancy " << occupancy() << "/" << pool_size
           << ", history buffer " << hb_count << "/" << hb_size
           << (unwinding  ? ", unwinding"
               : draining ? ", draining after fault"
                          : "")
           << "\n";
        for (unsigned i = 0; i < pool_size; ++i) {
            const InflightOp &e = pool[i];
            if (!e.valid)
                continue;
            FuKind kind = e.isMem() ? FuKind::Memory : e.rec->inst.fu();
            os << "    slot " << i << ": seq " << e.seq << " "
               << fuKindName(kind)
               << (e.executed          ? " executed"
                   : e.dispatched      ? " dispatched"
                   : e.readyToDispatch() ? " ready (no unit/bus)"
                                         : " waiting on operands")
               << "\n";
        }
        return os.str();
    };

    std::vector<unsigned> candidates; // reused every cycle
    std::vector<unsigned> completing; // reused every cycle
    for (Cycle cycle = 0;; ++cycle) {
        if (cycle > options.maxCycles) {
            markWedged(result, trace, cycle, options, decode_seq,
                       wedge_detail());
            return result;
        }
        if (options.tap)
            options.tap->onCycle(cycle, fault_ports);
        if (ck)
            ck->beginCycle(cycle);

        // ---- rollback: unwind the buffer one entry per cycle ---------
        if (unwinding) {
            if (hb_count == 1) {
                // Only the faulting entry remains: the state is the
                // sequential prefix before it. Interrupt delivered.
                HistoryEntry &f = hb[hb_head];
                result.interrupted = true;
                result.fault = records[f.seq].fault;
                result.faultSeq = f.seq;
                result.faultPc = f.pc;
                result.cycles = cycle + 1;
                break;
            }
            unsigned slot = (hb_head + hb_count - 1) % hb_size;
            HistoryEntry &e = hb[slot];
            if (e.wroteReg)
                result.state.write(RegId::fromFlat(e.regFlat),
                                   e.oldValue);
            if (e.memWritten) {
                bool ok = result.memory.store(e.memAddr, e.oldMemValue);
                ruu_assert(ok, "rollback store out of range");
            }
            // The entry was counted when it executed, but it is no
            // longer part of the committed prefix the interrupted
            // RunResult reports (the "instructions" stat keeps its
            // executed semantics; c_rollback records the difference).
            if (e.wroteReg || e.memWritten)
                --result.instructions;
            e.valid = false;
            --hb_count;
            ++c_rollback;
            last_event = cycle;
            continue;
        }

        // ---- dispatch (before completions: wakeup-to-select takes a
        //      cycle, as in the other out-of-order cores) --------------
        {
            candidates.clear();
            for (unsigned i = 0; i < pool_size; ++i)
                if (pool[i].valid && pool[i].readyToDispatch())
                    candidates.push_back(i);
            std::sort(candidates.begin(), candidates.end(),
                      [&](unsigned a, unsigned b) {
                          bool am = pool[a].isMem(), bm = pool[b].isMem();
                          if (am != bm)
                              return am;
                          return pool[a].seq < pool[b].seq;
                      });
            unsigned started = 0;
            bool store_started = false;
            for (unsigned slot : candidates) {
                if (started == _config.dispatchPaths)
                    break;
                InflightOp &e = pool[slot];
                if (e.isStore &&
                    (store_started || store_queue.empty() ||
                     store_queue.front() != e.seq)) {
                    continue;
                }
                FuKind kind = e.isMem() ? FuKind::Memory
                                        : view.fuAt(e.seq);
                unsigned latency =
                    e.isStore ? _config.storeLatency
                    : e.forwarded ? _config.forwardLatency
                                  : _config.latency(kind);
                if (!pipes.canStart(kind, cycle))
                    continue;
                bool to_memory = e.isMem() && !e.forwarded;
                if (to_memory &&
                    !banks.canAccess(e.rec->memAddr, cycle)) {
                    continue;
                }
                bool needs_bus = !e.isStore;
                if (needs_bus && !bus.free(cycle + latency))
                    continue;
                pipes.start(kind, cycle);
                if (to_memory)
                    banks.access(e.rec->memAddr, cycle);
                if (needs_bus)
                    bus.reserve(cycle + latency, e.destTag,
                                e.rec->result, e.seq);
                if (e.isStore) {
                    store_queue.pop_front();
                    store_started = true;
                }
                e.dispatched = true;
                e.completeCycle = cycle + latency;
                ++c_dispatched;
                ++started;
            }
        }

        // ---- completions (in seq order within the cycle) --------------
        {
            completing.clear();
            for (unsigned i = 0; i < pool_size; ++i) {
                const InflightOp &e = pool[i];
                if (e.valid && e.dispatched && !e.executed &&
                    e.completeCycle == cycle) {
                    completing.push_back(i);
                }
            }
            std::sort(completing.begin(), completing.end(),
                      [&](unsigned a, unsigned b) {
                          return pool[a].seq < pool[b].seq;
                      });
            for (unsigned slot : completing) {
                InflightOp &e = pool[slot];
                e.executed = true;
                last_event = cycle;
                HistoryEntry &h = hb[hb_of_slot[slot]];

                if (e.rec->fault != Fault::None) {
                    // No state change; the entry surfaces the fault
                    // when it reaches the buffer head.
                    h.done = true;
                    h.faulted = true;
                    fault_seen = true;
                    if (result.drainStartCycle == kNoCycle)
                        result.drainStartCycle = cycle;
                    if (e.isMem())
                        load_regs.complete(
                            static_cast<unsigned>(e.loadReg));
                    e.valid = false;
                    std::erase(mem_queue, slot);
                    continue;
                }

                Tag tag = e.isStore ? storeTagFor(e.seq) : e.destTag;
                Word value = e.isStore ? e.rec->storeValue
                                       : e.rec->result;
                for (auto &other : pool)
                    if (other.valid)
                        other.wakeup(tag);
                load_regs.onBroadcast(tag, value);
                if (ck) {
                    if (e.isStore)
                        ck->onStoreBroadcast(tag);
                    else
                        ck->onResultBroadcast(cycle, tag);
                    // The register file updates right here, so the tag
                    // dies with its broadcast.
                    ck->onTagReleased(tag);
                }

                // The register file updates immediately — this is the
                // defining difference from the RUU.
                if (e.rec->inst.dst.valid()) {
                    result.state.write(e.rec->inst.dst, e.rec->result);
                    busy.clear(e.rec->inst.dst);
                    h.wroteReg = true;
                }
                if (e.isStore) {
                    h.oldMemValue = result.memory.at(e.rec->memAddr);
                    h.memWritten = true;
                    bool ok = result.memory.store(e.rec->memAddr,
                                                  e.rec->storeValue);
                    ruu_assert(ok, "store to unmapped address");
                }
                if (e.isMem())
                    load_regs.complete(static_cast<unsigned>(e.loadReg));

                h.done = true;
                ++c_insts;
                ++result.instructions;
                e.valid = false;
                std::erase(mem_queue, slot);
            }
        }

        // ---- retire done entries from the head; surface faults -------
        while (hb_count > 0 && hb[hb_head].done) {
            if (hb[hb_head].faulted) {
                if (!draining) {
                    // Cancel everything not yet dispatched: without the
                    // faulting result their operands may never arrive.
                    draining = true;
                    for (unsigned i = 0; i < pool_size; ++i) {
                        InflightOp &e = pool[i];
                        if (e.valid && !e.dispatched) {
                            if (e.isMem() && e.addrResolved)
                                load_regs.complete(
                                    static_cast<unsigned>(e.loadReg));
                            hb[hb_of_slot[i]].done = true;
                            e.valid = false;
                            std::erase(mem_queue, i);
                        }
                    }
                }
                // Unwind once every younger entry has drained.
                bool all_done = true;
                for (unsigned i = 0, s = hb_head; i < hb_count;
                     ++i, s = (s + 1) % hb_size) {
                    all_done &= hb[s].done;
                }
                if (all_done && occupancy() == 0)
                    unwinding = true;
                break;
            }
            if (ck)
                ck->onCommit(hb[hb_head].seq);
            notifyCommit(hb[hb_head].seq, records[hb[hb_head].seq]);
            hb[hb_head].valid = false;
            hb_head = (hb_head + 1) % hb_size;
            --hb_count;
        }

        // ---- memory-address resolution, in program order --------------
        for (unsigned slot : mem_queue) {
            InflightOp &e = pool[slot];
            if (e.addrResolved)
                continue;
            if (!e.src[0].ready)
                break;
            if (!resolveMemOp(e, load_regs))
                break;
            if (e.forwarded)
                ++c_forwarded;
        }

        // ---- decode and issue ------------------------------------------
        // An external interrupt stops decode; everything already issued
        // drains and retires through the history buffer, so the cut at
        // decode_seq is the sequential prefix. A synchronous fault
        // surfacing during the drain wins (it is architecturally older
        // and takes the rollback path instead).
        const bool irq_stop = options.interruptAt != kNoCycle &&
                              cycle >= options.interruptAt &&
                              decode_seq >= options.interruptMinSeq;
        if (irq_stop && result.drainStartCycle == kNoCycle)
            result.drainStartCycle = cycle;
        if (!irq_stop && !halted && !draining &&
            decode_seq < records.size() && cycle >= next_decode) {
            const TraceRecord &rec = records[decode_seq];
            const Instruction &inst = rec.inst;

            if (view.haltAt(decode_seq)) {
                halted = true;
                last_event = std::max(last_event, cycle);
                ++c_insts;
                ++result.instructions;
                notifyCommit(decode_seq, rec);
                ++decode_seq;
            } else if (view.nopLikeAt(decode_seq)) {
                last_event = std::max(last_event, cycle);
                ++c_insts;
                ++result.instructions;
                notifyCommit(decode_seq, rec);
                ++decode_seq;
                next_decode = cycle + 1;
            } else if (view.branchAt(decode_seq)) {
                if (inst.src1.valid() && busy.busy(inst.src1)) {
                    ++c_branch_wait;
                } else {
                    ++c_branches;
                    ++c_insts;
                    ++result.instructions;
                    notifyCommit(decode_seq, rec);
                    unsigned penalty = branchPenalty(rec.taken);
                    c_dead += penalty;
                    next_decode = cycle + penalty;
                    last_event = std::max(last_event, cycle);
                    ++decode_seq;
                }
            } else {
                int slot = free_slot();
                if (slot < 0) {
                    ++c_no_slot;
                } else if (hb_count == hb_size) {
                    ++c_no_hb;
                } else if (inst.dst.valid() && busy.busy(inst.dst)) {
                    // The scoreboard interlock: one writer at a time.
                    ++c_waw;
                } else if (view.memAt(decode_seq) &&
                           !load_regs.hasFree()) {
                    ++c_no_lr;
                } else {
                    InflightOp &e = pool[static_cast<unsigned>(slot)];
                    e = InflightOp{};
                    e.valid = true;
                    e.seq = decode_seq;
                    e.rec = &rec;
                    e.isLoad = view.loadAt(decode_seq);
                    e.isStore = view.storeAt(decode_seq);
                    e.destTag = inst.dst.valid()
                                    ? static_cast<Tag>(inst.dst.flat())
                                    : kNoTag;
                    if (ck && e.destTag != kNoTag)
                        ck->onTagAllocated(e.destTag, e.seq);
                    if (ck && e.isStore)
                        ck->onTagAllocated(storeTagFor(e.seq), e.seq);

                    for (unsigned s = 0; s < 2; ++s) {
                        RegId reg = s == 0 ? inst.src1 : inst.src2;
                        if (!reg.valid())
                            continue;
                        e.src[s].needed = true;
                        if (busy.busy(reg)) {
                            e.src[s].ready = false;
                            e.src[s].tag =
                                static_cast<Tag>(reg.flat());
                        }
                    }

                    HistoryEntry &h = hb[hb_tail];
                    h = HistoryEntry{};
                    h.valid = true;
                    h.seq = decode_seq;
                    h.pc = rec.pc;
                    if (inst.dst.valid()) {
                        h.regFlat = inst.dst.flat();
                        h.oldValue = result.state.read(inst.dst);
                        busy.setBusy(inst.dst);
                    }
                    h.isStore = e.isStore;
                    h.memAddr = rec.memAddr;
                    hb_of_slot[static_cast<unsigned>(slot)] = hb_tail;
                    hb_tail = (hb_tail + 1) % hb_size;
                    ++hb_count;

                    if (e.isMem())
                        mem_queue.push_back(
                            static_cast<unsigned>(slot));
                    if (e.isStore)
                        store_queue.push_back(e.seq);

                    ++decode_seq;
                    next_decode = cycle + 1;
                }
            }
        }

        h_hb.sample(hb_count);

        if (ck && !fault_seen) {
            // The scoreboard's busy bits must match the set of
            // in-flight register writers (§4's one-writer interlock).
            unsigned writers = 0;
            for (const InflightOp &e : pool)
                if (e.valid && e.rec->inst.dst.valid())
                    ++writers;
            ck->onScoreboardSample(busy.countBusy(), writers);
            ck->require(hb_count <= hb_size,
                        "history buffer exceeds capacity");
        }

        if ((halted || decode_seq >= records.size() || irq_stop) &&
            occupancy() == 0 && hb_count == 0) {
            if (irq_stop && !halted && decode_seq < records.size()) {
                result.interrupted = true;
                result.fault = Fault::Interrupt;
                result.faultSeq = decode_seq;
                result.faultPc = records[decode_seq].pc;
            }
            result.cycles = last_event + 1;
            break;
        }
        bus.retireBefore(cycle);
    }

    _stats.counter("cycles") += result.cycles;
    return result;
}

} // namespace ruu
