/**
 * @file
 * The RSTU: merged reservation-station pool + Tag Unit (§3.2.3,
 * Figure 4, Tables 2 and 3).
 *
 * Every issued instruction obtains one pool entry that is
 * simultaneously its tag and its reservation station. Source operands
 * of busy registers take the tag of the pool entry holding the latest
 * copy of that register (an associative lookup in hardware; a direct
 * map here). Entries dispatch to the functional units — up to
 * `dispatchPaths` per cycle through shared data paths — and are freed
 * when their result is delivered over the single result bus and
 * written to the register file.
 *
 * Results update the register file as soon as they complete, out of
 * program order: the RSTU resolves dependencies but is *imprecise*.
 * The fault experiments use it to show the state corruption the RUU
 * eliminates.
 */

#ifndef RUU_CORE_RSTU_CORE_HH
#define RUU_CORE_RSTU_CORE_HH

#include "core/core.hh"

namespace ruu
{

/** Merged reservation-station/tag-unit core (paper §3.2.3). */
class RstuCore : public Core
{
  public:
    explicit RstuCore(const UarchConfig &config);

    const char *name() const override { return "rstu"; }

    /** The register file updates in completion order (§3.2.3). */
    CommitOrder commitOrder() const override { return CommitOrder::None; }

    /** Out-of-order completion: imprecise by construction. */
    bool preciseInterrupts() const override { return false; }

  protected:
    RunResult runImpl(const Trace &trace,
                      const RunOptions &options) override;

  private:
    /** The issue loop, templated over the engine's trace view. */
    template <class View>
    RunResult runLoop(const Trace &trace, const RunOptions &options,
                      const View &view);
};

} // namespace ruu

#endif // RUU_CORE_RSTU_CORE_HH
