/**
 * @file
 * The paper's baseline: the simple in-order issue mechanism of the
 * CRAY-1-like model architecture (§2, Table 1).
 *
 * One instruction is decoded per cycle, in program order. An
 * instruction issues — and starts its functional unit the same cycle —
 * only when (i) all its source registers are available, (ii) its
 * destination register is not reserved by an earlier instruction,
 * and (iii) the single result bus is free at issue + latency. A blocked
 * instruction waits in the decode-and-issue stage, stalling everything
 * behind it. Branches resolve in the issue stage once their condition
 * register is available and are followed by dead fetch cycles.
 *
 * Instructions issue in order but complete out of order, so this
 * machine's interrupts are imprecise — the fault experiments use it to
 * demonstrate the problem the RUU solves.
 */

#ifndef RUU_CORE_SIMPLE_CORE_HH
#define RUU_CORE_SIMPLE_CORE_HH

#include "core/core.hh"

namespace ruu
{

/** In-order, blocking issue (the paper's Table 1 machine). */
class SimpleCore : public Core
{
  public:
    explicit SimpleCore(const UarchConfig &config);

    const char *name() const override { return "simple"; }

    /** Sequential issue: every instruction commits strictly in order. */
    CommitOrder commitOrder() const override
    {
        return CommitOrder::Total;
    }

    /** In-order issue is not in-order completion: imprecise (§2). */
    bool preciseInterrupts() const override { return false; }

  protected:
    RunResult runImpl(const Trace &trace,
                      const RunOptions &options) override;

  private:
    /** The issue loop, templated over the engine's trace view. */
    template <class View>
    RunResult runLoop(const Trace &trace, const RunOptions &options,
                      const View &view);
};

} // namespace ruu

#endif // RUU_CORE_SIMPLE_CORE_HH
