/**
 * @file
 * Tomasulo's algorithm with a separate Tag Unit and distributed
 * reservation stations (§3.1–§3.2.1, Figure 2).
 *
 * Instead of tagging every one of the 144 registers, a common pool of
 * tags — the Tag Unit — holds one entry per *currently active*
 * destination register (§3.2.1). Each functional unit owns a private
 * set of reservation stations; issue blocks when the target unit's
 * stations are full or the Tag Unit has no free tag, even if stations
 * of other units sit idle — the inefficiency that motivates merging
 * the pools (§3.2.2) and that the distributed-vs-merged ablation bench
 * quantifies. Unlike the merged RSTU, a station is released as soon as
 * its instruction dispatches, and each unit can accept one instruction
 * per cycle (subject to the shared result bus).
 *
 * Like the RSTU, this machine updates registers out of program order
 * and is therefore imprecise.
 */

#ifndef RUU_CORE_TOMASULO_CORE_HH
#define RUU_CORE_TOMASULO_CORE_HH

#include "core/core.hh"

namespace ruu
{

/** Tag Unit + distributed reservation stations (paper Figure 2). */
class TomasuloCore : public Core
{
  public:
    explicit TomasuloCore(const UarchConfig &config);

    const char *name() const override { return "tomasulo"; }

    /** The register file updates in completion order (§3.2.1). */
    CommitOrder commitOrder() const override { return CommitOrder::None; }

    /** Out-of-order completion: imprecise by construction. */
    bool preciseInterrupts() const override { return false; }

  protected:
    RunResult runImpl(const Trace &trace,
                      const RunOptions &options) override;

  private:
    /** The issue loop, templated over the engine's trace view. */
    template <class View>
    RunResult runLoop(const Trace &trace, const RunOptions &options,
                      const View &view);
};

} // namespace ruu

#endif // RUU_CORE_TOMASULO_CORE_HH
