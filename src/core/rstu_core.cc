#include "core/rstu_core.hh"

#include <algorithm>
#include <deque>
#include <sstream>
#include <vector>

#include "core/ooo_support.hh"
#include "engine/view.hh"
#include "inject/ports.hh"
#include "uarch/banks.hh"
#include "uarch/fu.hh"
#include "uarch/ibuffer.hh"
#include "uarch/scoreboard.hh"

namespace ruu
{

namespace
{

/** One RSTU pool entry: a tag and a reservation station in one. */
struct RstuEntry : InflightOp
{
    bool latestCopy = false; //!< this entry holds the register's newest tag
};

} // namespace

RstuCore::RstuCore(const UarchConfig &config) : Core(config)
{
}

RunResult
RstuCore::runImpl(const Trace &trace, const RunOptions &options)
{
    if (activeEngine() == engine::Kind::Compiled)
        return runLoop(trace, options,
                       engine::CompiledView(trace, stream()));
    return runLoop(trace, options, engine::InterpView(trace));
}

template <class View>
RunResult
RstuCore::runLoop(const Trace &trace, const RunOptions &options,
                  const View &view)
{
    RunResult result = makeInitialResult(trace, options);
    const unsigned pool_size = _config.poolEntries;

    std::vector<RstuEntry> pool(pool_size);
    // Compiled path only: the valid slots, kept in seq order (decode
    // issues in program order and only completion removes), so the
    // hot loops walk live entries instead of scanning every slot.
    std::vector<unsigned> live;
    std::vector<unsigned> mem_queue; //!< pool slots of live memory ops,
                                     //!< in program order
    std::deque<SeqNum> store_queue;  //!< undispatched stores, in order:
                                     //!< stores reach memory in program
                                     //!< order (same-address updates)
    BusyBits busy;
    std::array<int, kNumArchRegs> latest_slot;
    latest_slot.fill(-1);
    LoadRegisters load_regs(_config.loadRegisters);
    FuPipes pipes(_config);
    MemoryBanks banks(_config.memoryBanks, _config.bankBusyCycles);
    typename View::Bus bus(_config.resultBuses);
    IBuffers ibuffers;

    Counter &c_insts = _stats.counter("instructions");
    Counter &c_branches = _stats.counter("branches");
    Counter &c_dead = _stats.counter("branch_dead_cycles");
    Counter &c_branch_wait = _stats.counter("stall_branch_cond_cycles");
    Counter &c_no_slot = _stats.counter("stall_no_pool_slot_cycles");
    Counter &c_no_lr = _stats.counter("stall_no_load_reg_cycles");
    Counter &c_dispatched = _stats.counter("dispatches");
    Counter &c_forwarded = _stats.counter("forwarded_loads");
    Histogram &h_occupancy = _stats.histogram("pool_occupancy");

    SeqNum decode_seq = options.startSeq;
    Cycle next_decode = 0;    //!< decode stalls until this cycle
    Cycle last_event = 0;
    bool halted = false;
    bool fault_raised = false;
    const auto &records = trace.records();
    lint::InvariantChecker *ck = invariants();

    // Fault/snapshot port registration (only when a tap is attached).
    // A pool slot doubles as its tag, so destination tags wrap to the
    // pool size, as do the per-register latest-slot pointers.
    inject::FaultPortSet fault_ports;
    if (options.tap) {
        for (unsigned i = 0; i < pool_size; ++i) {
            std::string name = "rstu[" + std::to_string(i) + "]";
            inject::exposeInflightOp(fault_ports, name, pool[i],
                                     pool_size);
            fault_ports.addFlag(name + ".latestCopy",
                                pool[i].latestCopy);
        }
        for (unsigned f = 0; f < kNumArchRegs; ++f)
            fault_ports.add("latestSlot." +
                                RegId::fromFlat(f).toString(),
                            inject::PortClass::Tag, latest_slot[f], 32,
                            pool_size);
        busy.exposePorts(fault_ports, "busy");
        load_regs.exposePorts(fault_ports, "loadReg");
        pipes.exposePorts(fault_ports, "fu");
        banks.exposePorts(fault_ports, "banks");
        bus.exposePorts(fault_ports, "bus");
        if (options.modelIBuffers)
            ibuffers.exposePorts(fault_ports, "ibuf");
        result.state.exposePorts(fault_ports, "regs");
        fault_ports.add("decodeSeq", inject::PortClass::Sequence,
                        decode_seq, 32, records.size() + 1);
        fault_ports.add("nextDecode", inject::PortClass::Sequence,
                        next_decode, 32);
        options.tap->onRunStart(fault_ports);
    }

    auto occupancy = [&]() -> unsigned {
        if constexpr (View::kCompiled) {
            return static_cast<unsigned>(live.size());
        } else {
            unsigned n = 0;
            for (const auto &e : pool)
                n += e.valid ? 1 : 0;
            return n;
        }
    };

    auto free_slot = [&]() -> int {
        for (unsigned i = 0; i < pool_size; ++i)
            if (!pool[i].valid)
                return static_cast<int>(i);
        return -1;
    };

    auto wedge_detail = [&]() {
        std::ostringstream os;
        os << "  pool occupancy " << occupancy() << "/" << pool_size
           << "\n";
        for (unsigned i = 0; i < pool_size; ++i) {
            const RstuEntry &e = pool[i];
            if (!e.valid)
                continue;
            FuKind kind = e.isMem() ? FuKind::Memory : e.rec->inst.fu();
            os << "    slot " << i << ": seq " << e.seq << " "
               << fuKindName(kind)
               << (e.executed          ? " executed"
                   : e.dispatched      ? " dispatched"
                   : e.readyToDispatch() ? " ready (no unit/bus)"
                                         : " waiting on operands")
               << "\n";
        }
        return os.str();
    };

    std::vector<unsigned> candidates; // reused every cycle
    std::vector<unsigned> completing; // reused every cycle (compiled)
    for (Cycle cycle = 0;; ++cycle) {
        if (cycle > options.maxCycles) {
            markWedged(result, trace, cycle, options, decode_seq,
                       wedge_detail());
            return result;
        }
        if (options.tap)
            options.tap->onCycle(cycle, fault_ports);
        if (ck)
            ck->beginCycle(cycle);

        // ---- phase 3: dispatch up to dispatchPaths ready entries --------
        {
            candidates.clear();
            if constexpr (View::kCompiled) {
                // `live` is in seq order, so two passes (memory ops,
                // then the rest) reproduce the sort below.
                for (int pass = 0; pass < 2; ++pass)
                    for (unsigned slot : live) {
                        const RstuEntry &e = pool[slot];
                        if (e.valid && e.readyToDispatch() &&
                            e.isMem() == (pass == 0)) {
                            candidates.push_back(slot);
                        }
                    }
            } else {
                for (unsigned i = 0; i < pool_size; ++i)
                    if (pool[i].valid && pool[i].readyToDispatch())
                        candidates.push_back(i);
                std::sort(candidates.begin(), candidates.end(),
                          [&](unsigned a, unsigned b) {
                              bool am = pool[a].isMem(),
                                   bm = pool[b].isMem();
                              if (am != bm)
                                  return am; // loads/stores first (§5)
                              return pool[a].seq < pool[b].seq;
                          });
            }
            unsigned started = 0;
            bool store_started = false;
            for (unsigned slot : candidates) {
                if (started == _config.dispatchPaths)
                    break;
                RstuEntry &e = pool[slot];
                // Stores go to memory strictly in program order, at
                // most one per cycle, so same-address updates land in
                // the right sequence.
                if (e.isStore &&
                    (store_started || store_queue.empty() ||
                     store_queue.front() != e.seq)) {
                    continue;
                }
                FuKind kind = e.isMem() ? FuKind::Memory
                                        : view.fuAt(e.seq);
                unsigned latency =
                    e.isStore ? _config.storeLatency
                    : e.forwarded ? _config.forwardLatency
                                  : _config.latency(kind);
                if (!pipes.canStart(kind, cycle))
                    continue;
                // Memory operations also need their bank (when bank
                // conflicts are modeled); forwarded loads skip memory.
                bool to_memory = e.isMem() && !e.forwarded;
                if (to_memory && !banks.canAccess(e.rec->memAddr, cycle))
                    continue;
                // Register-result producers reserve the single result
                // bus at dispatch; stores go straight to memory.
                bool needs_bus = !e.isStore;
                if (needs_bus && !bus.free(cycle + latency))
                    continue;
                pipes.start(kind, cycle);
                if (needs_bus)
                    bus.reserve(cycle + latency, e.destTag,
                                e.rec->result, e.seq);
                if (to_memory)
                    banks.access(e.rec->memAddr, cycle);
                e.dispatched = true;
                e.completeCycle = cycle + latency;
                if (e.isStore) {
                    store_queue.pop_front();
                    store_started = true;
                }
                ++c_dispatched;
                ++started;
            }
        }
        // ---- phase 1: completions scheduled for this cycle -------------
        // The compiled path collects completing slots from `live` and
        // visits them in ascending slot order — exactly the order of
        // the interpretive full scan (the commit stream depends on
        // it), at the cost of a sort over the handful completing.
        auto complete_entry = [&](unsigned i) {
            RstuEntry &e = pool[i];
            e.executed = true;
            last_event = cycle;

            if (e.rec->fault != Fault::None) {
                // The trap is detected inside the functional unit. The
                // register file already contains results of younger
                // instructions — the interrupt is imprecise. Freeze.
                result.interrupted = true;
                result.fault = e.rec->fault;
                result.faultSeq = e.seq;
                result.faultPc = e.rec->pc;
                fault_raised = true;
                if (result.drainStartCycle == kNoCycle)
                    result.drainStartCycle = cycle;
                return;
            }

            Tag tag = e.isStore ? storeTagFor(e.seq) : e.destTag;
            Word value = e.isStore ? e.rec->storeValue : e.rec->result;
            if constexpr (View::kCompiled) {
                for (unsigned s : live)
                    if (pool[s].valid)
                        pool[s].wakeup(tag);
            } else {
                for (auto &other : pool) {
                    if (other.valid)
                        other.wakeup(tag);
                }
            }
            load_regs.onBroadcast(tag, value);
            if (ck) {
                if (e.isStore)
                    ck->onStoreBroadcast(tag);
                else
                    ck->onResultBroadcast(cycle, tag);
                // The pool slot doubles as the tag; completion frees
                // both, so the entry never outlives its broadcast.
                ck->onTagReleased(tag);
            }

            if (e.rec->inst.dst.valid()) {
                // Only the latest copy may update the register file and
                // unlock the register; stale copies feed waiting
                // reservation stations over the bus only.
                if (e.latestCopy) {
                    result.state.write(e.rec->inst.dst, e.rec->result);
                    busy.clear(e.rec->inst.dst);
                    latest_slot[e.rec->inst.dst.flat()] = -1;
                }
            }
            if (e.isStore) {
                bool ok = result.memory.store(e.rec->memAddr,
                                              e.rec->storeValue);
                ruu_assert(ok, "store to unmapped address in trace");
            }
            if (e.isMem())
                load_regs.complete(static_cast<unsigned>(e.loadReg));

            ++c_insts;
            ++result.instructions;
            notifyCommit(e.seq, *e.rec);
            e.valid = false;
            std::erase(mem_queue, i);
            if constexpr (View::kCompiled)
                std::erase(live, i);
        };
        if constexpr (View::kCompiled) {
            completing.clear();
            for (unsigned slot : live) {
                const RstuEntry &e = pool[slot];
                if (e.valid && e.dispatched && !e.executed &&
                    e.completeCycle == cycle) {
                    completing.push_back(slot);
                }
            }
            std::sort(completing.begin(), completing.end());
            for (unsigned slot : completing)
                complete_entry(slot);
        } else {
            for (unsigned i = 0; i < pool_size; ++i) {
                const RstuEntry &e = pool[i];
                if (e.valid && e.dispatched && !e.executed &&
                    e.completeCycle == cycle) {
                    complete_entry(i);
                }
            }
        }

        if (fault_raised) {
            result.cycles = cycle + 1;
            break;
        }

        // ---- phase 2: memory-address resolution, in program order ------
        for (unsigned slot : mem_queue) {
            RstuEntry &e = pool[slot];
            if (e.addrResolved)
                continue;
            // The base register value is the address; a younger memory
            // op may not look up the load registers before this one.
            if (!e.src[0].ready)
                break;
            if (!resolveMemOp(e, load_regs))
                break;
            if (e.forwarded)
                ++c_forwarded;
        }


        // ---- phase 4: decode and issue (one instruction per cycle) ------
        // An external interrupt stops decode; everything already in the
        // pool drains, so the cut at decode_seq is the sequential
        // prefix. A synchronous fault raised during the drain wins (it
        // is architecturally older).
        const bool irq_stop = options.interruptAt != kNoCycle &&
                              cycle >= options.interruptAt &&
                              decode_seq >= options.interruptMinSeq;
        if (irq_stop && result.drainStartCycle == kNoCycle)
            result.drainStartCycle = cycle;
        if (!irq_stop && !halted && decode_seq < records.size() &&
            cycle >= next_decode) {
            const TraceRecord &rec = records[decode_seq];
            const Instruction &inst = rec.inst;
            Cycle avail = cycle;
            bool stalled = false;

            if (options.modelIBuffers) {
                avail = ibuffers.fetch(rec.pc, cycle);
                if (avail > cycle) {
                    next_decode = avail;
                    stalled = true;
                }
            }

            if (!stalled && view.haltAt(decode_seq)) {
                halted = true;
                last_event = std::max(last_event, cycle);
                ++c_insts;
                ++result.instructions;
                notifyCommit(decode_seq, rec);
                ++decode_seq;
            } else if (!stalled && view.nopLikeAt(decode_seq)) {
                last_event = std::max(last_event, cycle);
                ++c_insts;
                ++result.instructions;
                notifyCommit(decode_seq, rec);
                ++decode_seq;
                next_decode = cycle + 1;
            } else if (!stalled && view.branchAt(decode_seq)) {
                // The branch waits in the decode-and-issue stage until
                // its condition register is readable.
                if (inst.src1.valid() && busy.busy(inst.src1)) {
                    ++c_branch_wait;
                } else {
                    ++c_branches;
                    ++c_insts;
                    ++result.instructions;
                    notifyCommit(decode_seq, rec);
                    unsigned penalty = branchPenalty(rec.taken);
                    c_dead += penalty;
                    next_decode = cycle + penalty;
                    last_event = std::max(last_event, cycle);
                    ++decode_seq;
                }
            } else if (!stalled) {
                int slot = free_slot();
                if (slot < 0) {
                    ++c_no_slot;
                } else if (view.memAt(decode_seq) &&
                           !load_regs.hasFree()) {
                    ++c_no_lr;
                } else {
                    RstuEntry &e = pool[static_cast<unsigned>(slot)];
                    e = RstuEntry{};
                    e.valid = true;
                    e.seq = decode_seq;
                    e.rec = &rec;
                    e.isLoad = view.loadAt(decode_seq);
                    e.isStore = view.storeAt(decode_seq);
                    e.destTag = inst.dst.valid()
                                    ? static_cast<Tag>(slot)
                                    : kNoTag;
                    if (ck && e.destTag != kNoTag)
                        ck->onTagAllocated(e.destTag, e.seq);
                    if (ck && e.isStore)
                        ck->onTagAllocated(storeTagFor(e.seq), e.seq);

                    for (unsigned s = 0; s < 2; ++s) {
                        RegId reg = s == 0 ? inst.src1 : inst.src2;
                        if (!reg.valid())
                            continue;
                        e.src[s].needed = true;
                        if (busy.busy(reg)) {
                            int producer = latest_slot[reg.flat()];
                            ruu_assert(producer >= 0,
                                       "busy register %s without a "
                                       "latest tag",
                                       reg.toString().c_str());
                            e.src[s].ready = false;
                            e.src[s].tag = static_cast<Tag>(producer);
                        }
                    }

                    if (inst.dst.valid()) {
                        // Newest copy of the destination register: any
                        // previous holder loses its latest-copy right.
                        int prev = latest_slot[inst.dst.flat()];
                        if (prev >= 0)
                            pool[static_cast<unsigned>(prev)]
                                .latestCopy = false;
                        e.latestCopy = true;
                        latest_slot[inst.dst.flat()] = slot;
                        busy.setBusy(inst.dst);
                    }
                    if (e.isMem())
                        mem_queue.push_back(
                            static_cast<unsigned>(slot));
                    if (e.isStore)
                        store_queue.push_back(e.seq);
                    if constexpr (View::kCompiled)
                        live.push_back(static_cast<unsigned>(slot));

                    ++decode_seq;
                    next_decode = cycle + 1;
                }
            }
        }

        h_occupancy.sample(occupancy());

        if (ck) {
            // One busy bit per register with a latest-copy pool entry.
            unsigned with_latest = 0;
            for (int slot : latest_slot)
                with_latest += slot >= 0 ? 1 : 0;
            ck->onScoreboardSample(busy.countBusy(), with_latest);
        }

        // ---- termination -------------------------------------------------
        if ((halted || decode_seq >= records.size() || irq_stop) &&
            occupancy() == 0) {
            if (irq_stop && !halted && decode_seq < records.size()) {
                result.interrupted = true;
                result.fault = Fault::Interrupt;
                result.faultSeq = decode_seq;
                result.faultPc = records[decode_seq].pc;
            }
            result.cycles = last_event + 1;
            break;
        }
        bus.retireBefore(cycle);
    }

    _stats.counter("cycles") += result.cycles;
    return result;
}

} // namespace ruu
