/**
 * @file
 * A history-buffer machine — the §4 alternative to the RUU, made
 * concrete so the two precise-interrupt philosophies can be compared
 * on equal terms.
 *
 * Where the RUU *withholds* state updates until commitment, the
 * history buffer (Smith & Pleszkun's scheme, cited as [5]) lets
 * results update the register file as soon as they complete — out of
 * program order — and logs the *old* value of every destination in a
 * queue ordered by issue. Entries retire from the head when their
 * instruction has completed; on an exception the buffer is unwound
 * from the tail, restoring old register and memory values one entry
 * per cycle, which makes interrupts precise at the price of a
 * recovery latency proportional to the in-flight window.
 *
 * To keep rollback sound, this machine allows only a single
 * outstanding writer per register (a classic scoreboard interlock, so
 * the flat register number itself is the result tag — no tag unit at
 * all) and sends stores to memory in program order. That WAW
 * restriction is precisely the cost the RUU's NI/LI multiple-instance
 * counters were invented to remove, and the
 * `bench/ablation_precise_schemes` comparison quantifies it.
 *
 * A fault surfaces when its history-buffer entry reaches the head:
 * issue stops, un-dispatched younger instructions are cancelled,
 * dispatched ones drain, and the buffer unwinds — after which the
 * architectural state equals the sequential prefix, verified by the
 * same oracle as the RUU's.
 */

#ifndef RUU_CORE_HISTORY_CORE_HH
#define RUU_CORE_HISTORY_CORE_HH

#include "core/core.hh"

namespace ruu
{

/** History-buffer machine (paper §4 / Smith & Pleszkun). */
class HistoryCore : public Core
{
  public:
    explicit HistoryCore(const UarchConfig &config);

    const char *name() const override { return "history"; }

    /**
     * Buffered instructions retire from the history-buffer head in
     * order; branches, NOP and HALT never enter the buffer and are
     * reported from decode.
     */
    CommitOrder commitOrder() const override
    {
        return CommitOrder::DataInOrder;
    }

    /** §4: the history buffer restores the precise state on a fault. */
    bool preciseInterrupts() const override { return true; }

  protected:
    RunResult runImpl(const Trace &trace,
                      const RunOptions &options) override;

  private:
    /** The issue loop, templated over the engine's trace view. */
    template <class View>
    RunResult runLoop(const Trace &trace, const RunOptions &options,
                      const View &view);
};

} // namespace ruu

#endif // RUU_CORE_HISTORY_CORE_HH
