/**
 * @file
 * Shared machinery of the out-of-order cores (Tomasulo, RSTU, RUU).
 *
 * InflightOp is one reservation-station's worth of state: source
 * operands waiting on tags, memory-disambiguation status, and dispatch/
 * execution progress. The memory-resolution helper implements the
 * paper's §3.2.1.2 load-register protocol, which is identical in all
 * three organizations.
 */

#ifndef RUU_CORE_OOO_SUPPORT_HH
#define RUU_CORE_OOO_SUPPORT_HH

#include <array>

#include "common/logging.hh"
#include "trace/trace.hh"
#include "uarch/load_regs.hh"
#include "uarch/result_bus.hh"
#include "uarch/scoreboard.hh"

namespace ruu
{

/** One source operand of an in-flight instruction. */
struct SrcOperand
{
    bool needed = false; //!< the instruction has this operand
    bool ready = true;   //!< value available (or not needed)
    Tag tag = kNoTag;    //!< tag monitored while not ready
};

/** One in-flight instruction (a reservation station's contents). */
struct InflightOp
{
    bool valid = false;
    SeqNum seq = kNoSeqNum;
    const TraceRecord *rec = nullptr;

    /** Destination tag broadcast with the result (kNoTag for stores). */
    Tag destTag = kNoTag;

    /** Source operands: [0] = src1 (or base), [1] = src2 (or data). */
    std::array<SrcOperand, 2> src;

    // --- memory state (§3.2.1.2) ---------------------------------------
    bool isLoad = false;
    bool isStore = false;
    bool addrResolved = false;  //!< load-register lookup performed
    bool forwarded = false;     //!< load satisfied without memory
    bool fwdDataReady = false;  //!< forwarded data arrived
    Tag fwdTag = kNoTag;        //!< tag the forwarded load monitors
    int loadReg = -1;           //!< load register index in use

    // --- progress --------------------------------------------------------
    bool dispatched = false;
    bool executed = false;
    bool faulted = false;
    bool lrReleased = false; //!< load-register pending already returned
    Cycle completeCycle = kNoCycle;

    bool isMem() const { return isLoad || isStore; }

    /**
     * True when the operation may be selected for dispatch:
     * loads need a resolved address (and, if forwarded, their data);
     * stores need a resolved address and their data operand; everything
     * else needs all register sources.
     */
    bool
    readyToDispatch() const
    {
        if (dispatched)
            return false;
        if (isLoad)
            return addrResolved && (!forwarded || fwdDataReady);
        if (isStore)
            return addrResolved && src[1].ready;
        return src[0].ready && src[1].ready;
    }

    /**
     * A value with @p tag was broadcast: satisfy matching sources and
     * forwarded-load waits.
     */
    void
    wakeup(Tag tag)
    {
        for (auto &s : src) {
            if (s.needed && !s.ready && s.tag == tag)
                s.ready = true;
        }
        if (forwarded && !fwdDataReady && fwdTag == tag)
            fwdDataReady = true;
    }
};

/** Store pseudo-tag for dynamic instruction @p seq. */
inline Tag
storeTagFor(SeqNum seq)
{
    return kStoreTagBit | static_cast<Tag>(seq & 0x7fffffffu);
}

/**
 * Perform the load-register lookup for memory operation @p op (§3.2.1.2).
 *
 * Callers guarantee program order among memory operations: this is
 * invoked for the oldest unresolved memory op only, and only once its
 * address (base register) is available.
 *
 * @return false when a load register is needed but none is free — the
 *         op stays unresolved and blocks younger memory ops.
 */
inline bool
resolveMemOp(InflightOp &op, LoadRegisters &load_regs)
{
    ruu_assert(op.isMem() && !op.addrResolved,
               "resolveMemOp on a non-memory or resolved op");
    Addr addr = op.rec->memAddr;
    auto match = load_regs.find(addr);

    if (op.isLoad) {
        if (match) {
            // A pending operation already targets this address: take its
            // tag (or its latched data) and never touch memory.
            const LoadRegEntry &entry = load_regs.entry(*match);
            op.forwarded = true;
            op.fwdTag = entry.tag;
            op.fwdDataReady = entry.hasValue;
            op.loadReg = static_cast<int>(*match);
            load_regs.join(*match, std::nullopt);
        } else {
            if (!load_regs.hasFree())
                return false;
            op.loadReg = static_cast<int>(
                load_regs.allocate(addr, op.destTag));
        }
    } else {
        Tag tag = storeTagFor(op.seq);
        if (match) {
            // The store becomes the newest producer of the address.
            op.loadReg = static_cast<int>(*match);
            load_regs.join(*match, tag);
        } else {
            if (!load_regs.hasFree())
                return false;
            op.loadReg = static_cast<int>(load_regs.allocate(addr, tag));
        }
    }
    op.addrResolved = true;
    return true;
}

} // namespace ruu

#endif // RUU_CORE_OOO_SUPPORT_HH
