#include "core/core.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace ruu
{

namespace
{

bool
invariantsForced()
{
    const char *env = std::getenv("RUU_CHECK_INVARIANTS");
    return env && *env != '\0' && std::string(env) != "0";
}

} // namespace

const char *
commitOrderName(CommitOrder order)
{
    switch (order) {
      case CommitOrder::Total: return "total";
      case CommitOrder::DataInOrder: return "data_in_order";
      case CommitOrder::None: return "none";
    }
    return "?";
}

Core::Core(const UarchConfig &config) : _config(config)
{
    std::string problem = config.validate();
    if (!problem.empty())
        ruu_fatal("bad UarchConfig: %s", problem.c_str());
}

RunResult
Core::run(const Trace &trace, const RunOptions &options)
{
    ruu_assert(options.startSeq <= trace.size(),
               "startSeq %llu beyond trace end",
               static_cast<unsigned long long>(options.startSeq));
    _stats.reset();
    _invariants.reset();
    _observer = options.observer;
    if (_config.checkInvariants || invariantsForced()) {
        lint::InvariantChecker::Limits limits;
        limits.resultBuses = _config.resultBuses;
        limits.commitWidth = _config.commitWidth;
        _invariants = std::make_unique<lint::InvariantChecker>(name(),
                                                               limits);
    }
    RunResult result = runImpl(trace, options);
    if (_invariants) {
        _invariants->onRunEnd(result.interrupted);
        if (!_invariants->ok())
            ruu_panic("%s: %zu microarchitectural invariant "
                      "violation(s):\n%s",
                      name(), _invariants->violations().size(),
                      _invariants->report().c_str());
    }
    return result;
}

RunResult
Core::makeInitialResult(const Trace &trace,
                        const RunOptions &options) const
{
    RunResult result;
    if (options.initialState)
        result.state = *options.initialState;
    if (options.initialMemory) {
        result.memory = *options.initialMemory;
    } else if (trace.programPtr()) {
        for (const auto &init : trace.program().dataInits())
            result.memory.set(init.addr, init.value);
    }
    return result;
}

} // namespace ruu
