#include "core/core.hh"

#include <cstdlib>
#include <sstream>

#include "common/logging.hh"
#include "engine/stream.hh"
#include "isa/disasm.hh"

namespace ruu
{

namespace
{

bool
invariantsForced()
{
    const char *env = std::getenv("RUU_CHECK_INVARIANTS");
    return env && *env != '\0' && std::string(env) != "0";
}

} // namespace

const char *
commitOrderName(CommitOrder order)
{
    switch (order) {
      case CommitOrder::Total: return "total";
      case CommitOrder::DataInOrder: return "data_in_order";
      case CommitOrder::None: return "none";
    }
    return "?";
}

Core::Core(const UarchConfig &config) : _config(config)
{
    std::string problem = config.validate();
    if (!problem.empty())
        ruu_fatal("bad UarchConfig: %s", problem.c_str());
}

RunResult
Core::run(const Trace &trace, const RunOptions &options)
{
    ruu_assert(options.startSeq <= trace.size(),
               "startSeq %llu beyond trace end",
               static_cast<unsigned long long>(options.startSeq));
    _stats.reset();
    _invariants.reset();
    _observer = options.observer;
    _activeEngine = engine::activeFor(options.tap != nullptr);
    if (_activeEngine == engine::Kind::Compiled)
        _stream = engine::cachedStream(trace);
    else
        _stream.reset();
    if (_config.checkInvariants || invariantsForced()) {
        lint::InvariantChecker::Limits limits;
        limits.resultBuses = _config.resultBuses;
        limits.commitWidth = _config.commitWidth;
        _invariants = std::make_unique<lint::InvariantChecker>(name(),
                                                               limits);
    }
    RunResult result = runImpl(trace, options);
    // A wedged run was stopped mid-flight: its in-flight bookkeeping
    // (unfreed tags, unretired entries) is expected, not a bug — the
    // watchdog diagnostic is the report.
    if (_invariants && !result.wedged) {
        _invariants->onRunEnd(result.interrupted);
        if (!_invariants->ok())
            ruu_panic("%s: %zu microarchitectural invariant "
                      "violation(s):\n%s",
                      name(), _invariants->violations().size(),
                      _invariants->report().c_str());
    }
    return result;
}

void
Core::markWedged(RunResult &result, const Trace &trace, Cycle cycle,
                 const RunOptions &options, SeqNum decodeSeq,
                 const std::string &detail) const
{
    std::ostringstream os;
    os << "watchdog: core '" << name() << "' exceeded its cycle budget\n"
       << "  cycle " << cycle << " of " << options.maxCycles
       << " allowed; " << result.instructions << " of " << trace.size()
       << " instruction(s) committed\n";
    if (decodeSeq < trace.size()) {
        const TraceRecord &rec = trace.at(decodeSeq);
        os << "  next undecoded: seq " << decodeSeq << " pc " << rec.pc
           << "  " << disassemble(rec.inst) << "\n";
    } else {
        os << "  decode finished; the pipeline never drained\n";
    }
    if (!detail.empty())
        os << detail;
    result.wedged = true;
    result.diagnostic = os.str();
    result.cycles = cycle;
}

RunResult
Core::makeInitialResult(const Trace &trace,
                        const RunOptions &options) const
{
    RunResult result;
    if (options.initialState)
        result.state = *options.initialState;
    if (options.initialMemory) {
        result.memory = *options.initialMemory;
    } else {
        result.memory = Memory();
        if (trace.programPtr()) {
            for (const auto &init : trace.program().dataInits())
                result.memory.set(init.addr, init.value);
        }
    }
    return result;
}

} // namespace ruu
