#include "core/core.hh"

#include "common/logging.hh"

namespace ruu
{

Core::Core(const UarchConfig &config) : _config(config)
{
    std::string problem = config.validate();
    if (!problem.empty())
        ruu_fatal("bad UarchConfig: %s", problem.c_str());
}

RunResult
Core::run(const Trace &trace, const RunOptions &options)
{
    ruu_assert(options.startSeq <= trace.size(),
               "startSeq %llu beyond trace end",
               static_cast<unsigned long long>(options.startSeq));
    _stats.reset();
    return runImpl(trace, options);
}

RunResult
Core::makeInitialResult(const Trace &trace,
                        const RunOptions &options) const
{
    RunResult result;
    if (options.initialState)
        result.state = *options.initialState;
    if (options.initialMemory) {
        result.memory = *options.initialMemory;
    } else if (trace.programPtr()) {
        for (const auto &init : trace.program().dataInits())
            result.memory.set(init.addr, init.value);
    }
    return result;
}

} // namespace ruu
