#include "core/spec_ruu_core.hh"

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/ooo_support.hh"
#include "core/predictor.hh"
#include "engine/view.hh"
#include "inject/ports.hh"
#include "uarch/banks.hh"
#include "uarch/fu.hh"
#include "uarch/scoreboard.hh"

namespace ruu
{

namespace
{

/** An RUU entry extended with conditional-execution state. */
struct SpecEntry : InflightOp
{
    std::uint64_t issueId = 0;  //!< global decode order (wrong path too)
    bool wrongPath = false;     //!< fetched past a mispredicted branch
    bool isBranchEntry = false; //!< a conditional branch in the RUU
    bool resolvedBranch = false;
    bool predictedTaken = false;
    Instruction wpInst;         //!< instruction image for wrong-path ops

    /** The instruction, from the trace record or the wrong-path image. */
    const Instruction &inst() const { return rec ? rec->inst : wpInst; }
};

} // namespace

SpecRuuCore::SpecRuuCore(const UarchConfig &config) : Core(config)
{
    if (config.bypass != BypassMode::Full)
        ruu_fatal("SpecRuuCore models the full-bypass RUU only");
}

RunResult
SpecRuuCore::runImpl(const Trace &trace, const RunOptions &options)
{
    if (activeEngine() == engine::Kind::Compiled)
        return runLoop(trace, options,
                       engine::CompiledView(trace, stream()));
    return runLoop(trace, options, engine::InterpView(trace));
}

template <class View>
RunResult
SpecRuuCore::runLoop(const Trace &trace, const RunOptions &options,
                     const View &view)
{
    RunResult result = makeInitialResult(trace, options);
    ruu_assert(trace.programPtr() && !trace.program().empty(),
               "SpecRuuCore needs the static program for wrong-path "
               "fetch; run it on traces from runFunctional()");
    const Program &program = trace.program();
    const unsigned ruu_size = _config.poolEntries;

    std::vector<SpecEntry> ruu(ruu_size);
    unsigned head = 0, tail = 0, count = 0;
    std::uint64_t next_issue_id = 1;

    std::vector<unsigned> mem_queue;
    InstanceCounters counters(_config.counterBits);
    LoadRegisters load_regs(_config.loadRegisters);
    FuPipes pipes(_config);
    MemoryBanks banks(_config.memoryBanks, _config.bankBusyCycles);
    typename View::Bus bus(_config.resultBuses);
    auto predictor = BranchPredictor::make(_config.predictor,
                                           _config.predictorTableBits);

    Counter &c_insts = _stats.counter("instructions");
    Counter &c_branches = _stats.counter("branches");
    Counter &c_pred_correct = _stats.counter("predicted_correct");
    Counter &c_mispredicts = _stats.counter("mispredicts");
    Counter &c_squashed = _stats.counter("squashed_entries");
    Counter &c_wrong_path = _stats.counter("wrong_path_decoded");
    Counter &c_no_slot = _stats.counter("stall_ruu_full_cycles");
    Counter &c_ni = _stats.counter("stall_ni_saturated_cycles");
    Counter &c_no_lr = _stats.counter("stall_no_load_reg_cycles");
    Counter &c_dispatched = _stats.counter("dispatches");
    Counter &c_forwarded = _stats.counter("forwarded_loads");
    Counter &c_commits = _stats.counter("commits");
    Histogram &h_occupancy = _stats.histogram("ruu_occupancy");

    SeqNum decode_seq = options.startSeq;
    Cycle next_decode = 0;
    Cycle last_event = 0;
    bool done = false;

    // Wrong-path fetch state: active after a mispredicted branch's
    // wrong direction was followed, until that branch resolves.
    bool wp_active = false;
    bool wp_stuck = false;       //!< wrong path ran off the program
    std::size_t wp_index = 0;    //!< static index being fetched

    const auto &records = trace.records();
    lint::InvariantChecker *ck = invariants();

    // Fault/snapshot port registration (only when a tap is attached):
    // the RUU entries with their speculation flags, the cursors, the
    // NI/LI counters and the shared latches. The predictor's internal
    // tables and the wrong-path instruction images are not ports.
    inject::FaultPortSet fault_ports;
    if (options.tap) {
        for (unsigned i = 0; i < ruu_size; ++i) {
            SpecEntry &e = ruu[i];
            std::string name = "ruu[" + std::to_string(i) + "]";
            inject::exposeInflightOp(fault_ports, name, e);
            fault_ports.add(name + ".issueId",
                            inject::PortClass::Sequence, e.issueId,
                            32);
            fault_ports.addFlag(name + ".wrongPath", e.wrongPath);
            fault_ports.addFlag(name + ".isBranchEntry",
                                e.isBranchEntry);
            fault_ports.addFlag(name + ".resolvedBranch",
                                e.resolvedBranch);
            fault_ports.addFlag(name + ".predictedTaken",
                                e.predictedTaken);
        }
        inject::exposeCursor(fault_ports, "head", head, ruu_size);
        inject::exposeCursor(fault_ports, "tail", tail, ruu_size);
        inject::exposeCursor(fault_ports, "count", count, ruu_size + 1);
        fault_ports.add("nextIssueId", inject::PortClass::Sequence,
                        next_issue_id, 32);
        counters.exposePorts(fault_ports, "counters");
        load_regs.exposePorts(fault_ports, "loadReg");
        pipes.exposePorts(fault_ports, "fu");
        banks.exposePorts(fault_ports, "banks");
        bus.exposePorts(fault_ports, "bus");
        result.state.exposePorts(fault_ports, "regs");
        fault_ports.addFlag("wpActive", wp_active);
        fault_ports.addFlag("wpStuck", wp_stuck);
        fault_ports.add("wpIndex", inject::PortClass::Sequence,
                        wp_index, 32, program.size());
        fault_ports.add("decodeSeq", inject::PortClass::Sequence,
                        decode_seq, 32, records.size() + 1);
        fault_ports.add("nextDecode", inject::PortClass::Sequence,
                        next_decode, 32);
        options.tap->onRunStart(fault_ports);
    }

    /** Queue position (0 = head) of slot @p slot. */
    auto queue_pos = [&](unsigned slot) {
        return (slot + ruu_size - head) % ruu_size;
    };

    /**
     * Visit the live window [head, head+count) oldest-first. Entries
     * are allocated at the tail in issue order (and squashes only
     * truncate the tail), so window order is issueId order; live
     * entries are exactly the window. The compiled loops below walk
     * it instead of scanning every slot.
     */
    auto for_window = [&](auto &&fn) {
        unsigned s = head;
        for (unsigned k = 0; k < count; ++k) {
            fn(s);
            ++s;
            if (s == ruu_size)
                s = 0;
        }
    };

    // Compiled fast path only: incremental indices that let the hot
    // loop touch exactly the entries with work instead of walking the
    // window every cycle (same scheme as RuuCore; the interpretive
    // path keeps unconditional scans because a fault-injection tap may
    // rewrite entry flags between cycles, and taps force interp).
    //
    //  - undispatched: valid, not-executed, not-dispatched non-branch
    //    entries; zero skips the dispatch walk. Squash decrements it
    //    for every nullified entry that was still counted.
    //  - waiting: slots that still need a broadcast (an unready
    //    source — branch conditions included — or a forwarded load
    //    awaiting data). Wakeups only flip not-ready to ready, so
    //    delivering to just these slots is state-identical; stale or
    //    duplicate slots (e.g. after a squash) are harmless and are
    //    dropped on the next broadcast.
    //  - comp_ring: dispatch schedules its completion cycle here. The
    //    ring outlives the longest latency and complete_entry's guard
    //    skips slots whose schedule a squash made stale; if a reused
    //    slot passes the guard early, the within-cycle commutativity
    //    of completions (see phase 1) makes that order change
    //    invisible.
    //  - unresolved_branches: branch entries not yet resolved; zero
    //    skips the resolution walk and the older-branch store check.
    unsigned undispatched = 0;
    unsigned unresolved_branches = 0;
    std::vector<unsigned> waiting;
    std::vector<std::vector<unsigned>> comp_ring;
    unsigned comp_mask = 0;
    auto needs_wakeup = [](const InflightOp &e) {
        return (e.src[0].needed && !e.src[0].ready) ||
               (e.src[1].needed && !e.src[1].ready) ||
               (e.forwarded && !e.fwdDataReady);
    };
    if constexpr (View::kCompiled) {
        unsigned max_latency =
            std::max(_config.storeLatency, _config.forwardLatency);
        for (unsigned i = 0; i < kNumFuKinds; ++i)
            max_latency = std::max(
                max_latency, _config.latency(static_cast<FuKind>(i)));
        unsigned ring = 1;
        while (ring <= max_latency)
            ring <<= 1;
        comp_ring.resize(ring);
        comp_mask = ring - 1;
    }

    auto entry_with_tag = [&](Tag tag) -> SpecEntry * {
        if constexpr (View::kCompiled) {
            SpecEntry *found = nullptr;
            for_window([&](unsigned s) {
                SpecEntry &e = ruu[s];
                if (!found && e.valid && e.destTag == tag)
                    found = &e;
            });
            return found;
        } else {
            for (auto &e : ruu)
                if (e.valid && e.destTag == tag)
                    return &e;
            return nullptr;
        }
    };

    /** Full-bypass readability of @p reg at decode. */
    auto readable = [&](RegId reg) {
        if (!counters.busy(reg))
            return true;
        SpecEntry *producer = entry_with_tag(counters.latestTag(reg));
        return producer && producer->executed && !producer->faulted;
    };

    /** True when a branch entry older than @p issue_id is unresolved. */
    auto older_unresolved_branch = [&](std::uint64_t issue_id) {
        if constexpr (View::kCompiled) {
            if (unresolved_branches == 0)
                return false;
        }
        for (unsigned i = 0, slot = head; i < count;
             ++i, slot = (slot + 1) % ruu_size) {
            const SpecEntry &e = ruu[slot];
            if (e.valid && e.isBranchEntry && !e.resolvedBranch &&
                e.issueId < issue_id) {
                return true;
            }
        }
        return false;
    };

    auto broadcast = [&](Tag tag, Word value) {
        if constexpr (View::kCompiled) {
            // Only the waiting slots can be affected; see the index
            // comment above. Ready (or squashed) slots retire here.
            for (std::size_t i = 0; i < waiting.size();) {
                SpecEntry &e = ruu[waiting[i]];
                if (e.valid)
                    e.wakeup(tag);
                if (!e.valid || !needs_wakeup(e)) {
                    waiting[i] = waiting.back();
                    waiting.pop_back();
                } else {
                    ++i;
                }
            }
        } else {
            for (auto &e : ruu)
                if (e.valid)
                    e.wakeup(tag);
        }
        load_regs.onBroadcast(tag, value);
    };

    /**
     * Nullify every entry younger than the one at @p branch_slot:
     * roll back instance counters newest-first, return load-register
     * claims, cancel undelivered results, and reset the tail.
     */
    auto squash_younger = [&](unsigned branch_slot) {
        std::uint64_t branch_issue = ruu[branch_slot].issueId;
        unsigned keep = queue_pos(branch_slot) + 1;
        // Walk from the newest entry back to the first squashed one.
        for (unsigned i = count; i-- > keep;) {
            unsigned slot = (head + i) % ruu_size;
            SpecEntry &e = ruu[slot];
            ruu_assert(e.valid && e.issueId > branch_issue,
                       "squash walked onto an older entry");
            RegId dst = e.inst().dst;
            if (dst.valid())
                counters.rollback(dst);
            if (ck && dst.valid())
                ck->onTagSquashed(e.destTag);
            if (ck && e.isStore)
                ck->onTagSquashed(storeTagFor(e.seq));
            if (e.isMem() && e.addrResolved && !e.lrReleased)
                load_regs.complete(static_cast<unsigned>(e.loadReg));
            if constexpr (View::kCompiled) {
                if (!e.executed && !e.dispatched && !e.isBranchEntry)
                    --undispatched;
                if (e.isBranchEntry && !e.resolvedBranch)
                    --unresolved_branches;
            }
            e.valid = false;
            std::erase(mem_queue, slot);
            ++c_squashed;
        }
        bus.cancelFrom(branch_issue + 1);
        tail = (head + keep) % ruu_size;
        count = keep;
    };

    auto wedge_detail = [&]() {
        std::ostringstream os;
        os << "  ruu occupancy " << count << "/" << ruu_size;
        if (wp_active)
            os << " (wrong-path fetch" << (wp_stuck ? ", stuck" : "")
               << ")";
        os << "\n";
        for (unsigned i = 0, slot = head; i < count;
             ++i, slot = (slot + 1) % ruu_size) {
            const SpecEntry &e = ruu[slot];
            if (!e.valid)
                continue;
            FuKind kind = e.isMem() ? FuKind::Memory : e.inst().fu();
            os << "    slot " << slot << ": seq ";
            if (e.seq == kNoSeqNum)
                os << "wrong-path";
            else
                os << e.seq;
            os << " " << fuKindName(kind)
               << (e.isBranchEntry && !e.resolvedBranch
                       ? " unresolved branch"
                   : e.executed          ? " executed"
                   : e.dispatched        ? " dispatched"
                   : e.readyToDispatch() ? " ready (no unit/bus)"
                                         : " waiting on operands")
               << (e.faulted ? ", faulted" : "") << "\n";
        }
        return os.str();
    };

    std::vector<unsigned> candidates; // reused every cycle
    for (Cycle cycle = 0; !done; ++cycle) {
        if (cycle > options.maxCycles) {
            markWedged(result, trace, cycle, options, decode_seq,
                       wedge_detail());
            return result;
        }
        if (options.tap)
            options.tap->onCycle(cycle, fault_ports);
        if (ck)
            ck->beginCycle(cycle);

        // ---- phase 5: dispatch -------------------------------------------
        {
            candidates.clear();
            if constexpr (View::kCompiled) {
                // Window order is issueId order: two passes (memory
                // ops, then the rest) reproduce the sort below.
                if (undispatched > 0) {
                    for (int pass = 0; pass < 2; ++pass) {
                        for_window([&](unsigned s) {
                            const SpecEntry &e = ruu[s];
                            if (e.valid && !e.executed &&
                                !e.isBranchEntry &&
                                e.isMem() == (pass == 0) &&
                                e.readyToDispatch()) {
                                candidates.push_back(s);
                            }
                        });
                    }
                }
            } else {
                for (unsigned i = 0; i < ruu_size; ++i) {
                    const SpecEntry &e = ruu[i];
                    if (e.valid && !e.executed && !e.isBranchEntry &&
                        e.readyToDispatch()) {
                        candidates.push_back(i);
                    }
                }
                std::sort(candidates.begin(), candidates.end(),
                          [&](unsigned a, unsigned b) {
                              bool am = ruu[a].isMem(),
                                   bm = ruu[b].isMem();
                              if (am != bm)
                                  return am;
                              return ruu[a].issueId < ruu[b].issueId;
                          });
            }
            unsigned started = 0;
            for (unsigned slot : candidates) {
                if (started == _config.dispatchPaths)
                    break;
                SpecEntry &e = ruu[slot];
                FuKind kind = e.isMem()  ? FuKind::Memory
                              : e.rec    ? view.fuAt(e.seq)
                                         : e.wpInst.fu();
                unsigned latency =
                    e.isStore ? _config.storeLatency
                    : e.forwarded ? _config.forwardLatency
                                  : _config.latency(kind);
                if (!pipes.canStart(kind, cycle))
                    continue;
                // Memory operations also need their bank (when bank
                // conflicts are modeled); forwarded loads skip memory.
                bool to_memory = e.isMem() && !e.forwarded;
                if (to_memory && !banks.canAccess(e.rec->memAddr, cycle))
                    continue;
                bool needs_bus = !e.isStore;
                if (needs_bus && !bus.free(cycle + latency))
                    continue;
                pipes.start(kind, cycle);
                if (needs_bus)
                    bus.reserve(cycle + latency, e.destTag,
                                e.rec ? e.rec->result : 0,
                                static_cast<SeqNum>(e.issueId));
                if (to_memory)
                    banks.access(e.rec->memAddr, cycle);
                e.dispatched = true;
                e.completeCycle = cycle + latency;
                if constexpr (View::kCompiled) {
                    --undispatched;
                    comp_ring[e.completeCycle & comp_mask].push_back(
                        slot);
                }
                ++c_dispatched;
                ++started;
            }
        }
        // ---- phase 1: completions --------------------------------------
        // Per-completion effects commute within a cycle (unique tags,
        // set-like wakeups), so the compiled path walks the window in
        // issue order while the interpretive path scans slots.
        auto complete_entry = [&](SpecEntry &e) {
            if (!e.valid || !e.dispatched || e.executed ||
                e.completeCycle != cycle) {
                return;
            }
            e.executed = true;
            last_event = cycle;
            if (e.rec && e.rec->fault != Fault::None) {
                e.faulted = true;
                if (result.drainStartCycle == kNoCycle)
                    result.drainStartCycle = cycle;
                return;
            }
            // Stores broadcast the seq-based pseudo-tag resolveMemOp
            // registered in the load registers (wrong-path entries are
            // never marked isStore, so seq is always valid here).
            Tag tag = e.isStore ? storeTagFor(e.seq) : e.destTag;
            Word value = !e.rec ? 0
                         : e.isStore ? e.rec->storeValue
                                     : e.rec->result;
            broadcast(tag, value);
            if (ck) {
                if (e.isStore)
                    ck->onStoreBroadcast(tag);
                else
                    ck->onResultBroadcast(cycle, tag);
            }
            if (e.isLoad && !e.lrReleased) {
                load_regs.complete(static_cast<unsigned>(e.loadReg));
                e.lrReleased = true;
            }
        };
        if constexpr (View::kCompiled) {
            auto &due = comp_ring[cycle & comp_mask];
            if (!due.empty()) {
                for (unsigned s : due)
                    complete_entry(ruu[s]);
                due.clear();
            }
        } else {
            for (auto &e : ruu)
                complete_entry(e);
        }

        // ---- phase 2: branch resolution (oldest first) ------------------
        bool resolve_walk = true;
        if constexpr (View::kCompiled)
            resolve_walk = unresolved_branches > 0;
        for (unsigned i = 0, slot = head; resolve_walk && i < count;
             ++i, slot = (slot + 1) % ruu_size) {
            SpecEntry &e = ruu[slot];
            if (!e.valid || !e.isBranchEntry || e.resolvedBranch)
                continue;
            if (e.src[0].needed && !e.src[0].ready)
                continue;
            e.resolvedBranch = true;
            e.executed = true;
            if constexpr (View::kCompiled)
                --unresolved_branches;
            last_event = cycle;
            if (e.wrongPath)
                continue; // outcome is irrelevant; it will be nullified
            bool actual = e.rec->taken;
            predictor->update(e.rec->pc, actual);
            if (actual == e.predictedTaken) {
                ++c_pred_correct;
            } else {
                ++c_mispredicts;
                squash_younger(slot);
                // Fetch redirects to the correct path, which is where
                // the trace pointer already stands.
                wp_active = false;
                wp_stuck = false;
                next_decode = cycle + _config.mispredictPenalty;
                break; // younger branches were just nullified
            }
        }

        // ---- phase 3: in-order commit -----------------------------------
        for (unsigned w = 0; w < _config.commitWidth && count > 0; ++w) {
            SpecEntry &e = ruu[head];
            if (!e.executed)
                break;
            if (e.isBranchEntry && !e.resolvedBranch)
                break;
            ruu_assert(!e.wrongPath,
                       "a wrong-path entry survived to the head");

            if (e.faulted) {
                result.interrupted = true;
                result.fault = e.rec->fault;
                result.faultSeq = e.seq;
                result.faultPc = e.rec->pc;
                result.cycles = cycle + 1;
                done = true;
                break;
            }

            const TraceRecord &rec = *e.rec;
            if (ck)
                ck->onCommit(e.seq);
            notifyCommit(e.seq, rec);
            if (rec.inst.dst.valid()) {
                result.state.write(rec.inst.dst, rec.result);
                counters.release(rec.inst.dst);
                broadcast(e.destTag, rec.result);
                if (ck) {
                    ck->onCommitBroadcast(cycle, e.destTag);
                    ck->onTagReleased(e.destTag);
                }
            }
            if (e.isStore) {
                bool ok = result.memory.store(rec.memAddr,
                                              rec.storeValue);
                ruu_assert(ok, "store to unmapped address in trace");
                load_regs.complete(static_cast<unsigned>(e.loadReg));
                if (ck)
                    ck->onTagReleased(storeTagFor(e.seq));
            }
            ++c_commits;
            ++c_insts;
            ++result.instructions;
            last_event = cycle;

            bool was_halt = view.haltAt(e.seq);
            e.valid = false;
            std::erase(mem_queue, head);
            head = (head + 1) % ruu_size;
            --count;
            if (was_halt) {
                result.cycles = cycle + 1;
                done = true;
                break;
            }
        }
        if (done)
            break;

        // ---- phase 4: memory resolution, in program order ---------------
        for (unsigned slot : mem_queue) {
            SpecEntry &e = ruu[slot];
            if (e.addrResolved)
                continue;
            if (!e.src[0].ready)
                break;
            // A conditional store must not perturb the load registers:
            // wait until every older branch is decided.
            if (e.isStore && older_unresolved_branch(e.issueId))
                break;
            if (!resolveMemOp(e, load_regs))
                break;
            if (e.forwarded) {
                ++c_forwarded;
                // The forwarded-data wait arises here, after issue, so
                // the slot may not be on the waiting list yet.
                if constexpr (View::kCompiled) {
                    if (needs_wakeup(e))
                        waiting.push_back(slot);
                }
            }
        }


        // ---- phase 6: decode --------------------------------------------
        // An external interrupt stops both fetch streams; in-flight
        // work drains (unresolved branches resolve, wrong-path entries
        // squash) and everything older commits, so the cut at
        // decode_seq is the sequential prefix. A synchronous fault
        // reaching the RUU head during the drain wins (it is
        // architecturally older).
        const bool irq_stop = options.interruptAt != kNoCycle &&
                              cycle >= options.interruptAt &&
                              decode_seq >= options.interruptMinSeq;
        if (irq_stop && result.drainStartCycle == kNoCycle)
            result.drainStartCycle = cycle;
        bool on_trace = !wp_active && decode_seq < records.size();
        bool on_wrong = wp_active && !wp_stuck;
        if (!irq_stop && (on_trace || on_wrong) && cycle >= next_decode) {
            const TraceRecord *rec = on_trace ? &records[decode_seq]
                                              : nullptr;
            const Instruction &inst = on_trace ? rec->inst
                                               : program.inst(wp_index);
            ParcelAddr pc = on_trace ? rec->pc : program.pc(wp_index);

            // Structural checks shared by both fetch paths.
            bool can_issue = true;
            if (count == ruu_size) {
                ++c_no_slot;
                can_issue = false;
            } else if (inst.dst.valid() &&
                       !counters.canAllocate(inst.dst)) {
                ++c_ni;
                can_issue = false;
            } else if (on_trace && view.memAt(decode_seq) &&
                       !load_regs.hasFree()) {
                ++c_no_lr;
                can_issue = false;
            }

            if (can_issue && on_wrong && isProgramExit(inst.op)) {
                wp_stuck = true; // wrong path ran into program end
            } else if (can_issue) {
                SpecEntry &e = ruu[tail];
                e = SpecEntry{};
                e.valid = true;
                e.issueId = next_issue_id++;
                e.seq = on_trace ? decode_seq : kNoSeqNum;
                e.rec = rec;
                e.wrongPath = on_wrong;
                e.wpInst = inst;
                e.isLoad = on_trace && view.loadAt(decode_seq);
                e.isStore = on_trace && view.storeAt(decode_seq);

                bool is_cond = isCondBranch(inst.op);
                bool is_jump = inst.op == Opcode::J;

                for (unsigned s = 0; s < 2; ++s) {
                    RegId reg = s == 0 ? inst.src1 : inst.src2;
                    if (!reg.valid())
                        continue;
                    e.src[s].needed = true;
                    if (counters.busy(reg) && !readable(reg)) {
                        e.src[s].ready = false;
                        e.src[s].tag = counters.latestTag(reg);
                    }
                }

                if (inst.dst.valid())
                    e.destTag = counters.makeTag(
                        inst.dst, counters.allocate(inst.dst));
                if (ck && inst.dst.valid())
                    ck->onTagAllocated(e.destTag, e.seq);
                if (ck && e.isStore)
                    ck->onTagAllocated(storeTagFor(e.seq), e.seq);

                if (inst.fu() == FuKind::None && !is_cond)
                    e.executed = true; // NOP, HALT, J

                bool taken_fetch = false;

                if (is_cond) {
                    e.isBranchEntry = true;
                    if (on_trace)
                        ++c_branches; // wrong-path branches count as
                                      // wrong_path_decoded only
                    bool backward = inst.target < pc;
                    if (e.src[0].ready) {
                        // Condition readable at decode: no speculation.
                        e.resolvedBranch = true;
                        e.executed = true;
                        bool actual = on_trace ? rec->taken
                                               : predictor->predict(
                                                     pc, backward);
                        if (on_trace)
                            predictor->update(pc, actual);
                        e.predictedTaken = actual;
                        taken_fetch = actual;
                    } else {
                        bool p = predictor->predict(pc, backward);
                        e.predictedTaken = p;
                        taken_fetch = p;
                        if (on_trace && p != rec->taken) {
                            // Following the wrong direction: fetch the
                            // wrong path from the program image. The
                            // trace pointer stays on the correct path.
                            wp_active = true;
                            wp_stuck = false;
                            wp_index = p
                                ? *program.indexOfPc(inst.target)
                                : rec->staticIndex + 1;
                        }
                    }
                } else if (is_jump) {
                    taken_fetch = true;
                }

                // Advance whichever fetch stream is active.
                if (on_trace && !wp_active) {
                    ++decode_seq;
                } else if (on_trace && wp_active) {
                    ++decode_seq; // branch consumed; trace waits here
                } else {
                    ++c_wrong_path;
                    if (taken_fetch) {
                        auto target = program.indexOfPc(inst.target);
                        if (target)
                            wp_index = *target;
                        else
                            wp_stuck = true;
                    } else {
                        ++wp_index;
                        if (wp_index >= program.size())
                            wp_stuck = true;
                    }
                }

                if (e.isMem())
                    mem_queue.push_back(tail);

                if constexpr (View::kCompiled) {
                    if (!e.executed && !e.isBranchEntry)
                        ++undispatched;
                    if (e.isBranchEntry && !e.resolvedBranch)
                        ++unresolved_branches;
                    if (needs_wakeup(e))
                        waiting.push_back(tail);
                }

                tail = (tail + 1) % ruu_size;
                ++count;
                next_decode = cycle + 1 +
                              (taken_fetch ? _config.predictedTakenPenalty
                                           : 0);
                if (on_trace && isProgramExit(inst.op))
                    decode_seq = records.size(); // stop trace fetch
            }
        }

        h_occupancy.sample(count);

        if (ck) {
            // §5: the NI counters must agree with the set of RUU
            // entries (correct or wrong path) holding a register
            // writer whose instance is not yet committed or squashed.
            unsigned writers = 0;
            for (const SpecEntry &e : ruu)
                if (e.valid && e.inst().dst.valid())
                    ++writers;
            unsigned ni_total = 0;
            for (unsigned f = 0; f < kNumArchRegs; ++f)
                ni_total += counters.instances(RegId::fromFlat(f));
            ck->onScoreboardSample(ni_total, writers);
            ck->require(count <= ruu_size,
                        "RUU occupancy exceeds capacity");
        }

        if ((decode_seq >= records.size() || irq_stop) && !wp_active &&
            count == 0) {
            if (decode_seq < records.size()) {
                result.interrupted = true;
                result.fault = Fault::Interrupt;
                result.faultSeq = decode_seq;
                result.faultPc = records[decode_seq].pc;
            }
            result.cycles = last_event + 1;
            break;
        }
        bus.retireBefore(cycle);
    }

    _stats.counter("cycles") += result.cycles;
    return result;
}

} // namespace ruu
