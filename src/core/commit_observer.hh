/**
 * @file
 * The architectural-commit observation hook of the timing cores.
 *
 * Every core reports each architecturally-committed dynamic instruction
 * to an optional CommitObserver (RunOptions::observer). The observer
 * sees the commit *stream* — the order in which the machine made
 * instructions architectural — which is the core's side of the paper's
 * central contract: the RUU commits strictly in program order (that is
 * what makes its interrupts precise), while the §2/§3 machines update
 * state in completion order.
 *
 * The primary consumer is oracle::CommitOracle (src/oracle), which runs
 * the functional simulator in lockstep against the stream; but the hook
 * is deliberately minimal so tracers, profilers, or custom checkers can
 * attach the same way.
 */

#ifndef RUU_CORE_COMMIT_OBSERVER_HH
#define RUU_CORE_COMMIT_OBSERVER_HH

#include "common/types.hh"

namespace ruu
{

struct TraceRecord;

/**
 * The order discipline of a core's commit stream, declared by each core
 * (Core::commitOrder) and enforced by the commit oracle.
 */
enum class CommitOrder
{
    /**
     * Every dynamic instruction commits in trace-sequence order
     * (SimpleCore: sequential issue; SpecRuuCore: everything, branches
     * included, retires from the RUU head).
     */
    Total,

    /**
     * State-changing instructions (register writers and stores) commit
     * in trace-sequence order among themselves, but effect-free
     * instructions — branches, NOP, HALT — may be reported early, from
     * the decode stage, while older state-changers are still in flight
     * (RuuCore: branches resolve at decode; HistoryCore: branches, NOP
     * and HALT never enter the history buffer). Each of the two
     * subsequences must still be internally ordered.
     */
    DataInOrder,

    /**
     * Commits happen in completion order with no ordering guarantee —
     * the imprecise machines of §2/§3 (TomasuloCore, RstuCore).
     */
    None,
};

/** Printable commit-order name. */
const char *commitOrderName(CommitOrder order);

/** Receives every architecturally-committed instruction of one run. */
class CommitObserver
{
  public:
    virtual ~CommitObserver() = default;

    /**
     * Dynamic instruction @p seq became architectural. @p record is the
     * trace record the core committed (its seq-th record).
     */
    virtual void onCommit(SeqNum seq, const TraceRecord &record) = 0;
};

} // namespace ruu

#endif // RUU_CORE_COMMIT_OBSERVER_HH
