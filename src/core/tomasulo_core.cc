#include "core/tomasulo_core.hh"

#include <algorithm>
#include <array>
#include <deque>
#include <sstream>
#include <vector>

#include "core/ooo_support.hh"
#include "engine/view.hh"
#include "inject/ports.hh"
#include "uarch/banks.hh"
#include "uarch/fu.hh"
#include "uarch/ibuffer.hh"
#include "uarch/scoreboard.hh"

namespace ruu
{

namespace
{

/** One Tag Unit entry (§3.2.1): a tag for a currently active register. */
struct TuEntry
{
    bool free = true;
    bool latest = false;  //!< newest tag for its register
    unsigned regFlat = 0; //!< flat register number
};

} // namespace

TomasuloCore::TomasuloCore(const UarchConfig &config) : Core(config)
{
}

RunResult
TomasuloCore::runImpl(const Trace &trace, const RunOptions &options)
{
    if (activeEngine() == engine::Kind::Compiled)
        return runLoop(trace, options,
                       engine::CompiledView(trace, stream()));
    return runLoop(trace, options, engine::InterpView(trace));
}

template <class View>
RunResult
TomasuloCore::runLoop(const Trace &trace, const RunOptions &options,
                      const View &view)
{
    RunResult result = makeInitialResult(trace, options);

    // Tag Unit.
    std::vector<TuEntry> tu(_config.tuEntries);
    std::array<int, kNumArchRegs> latest_slot;
    latest_slot.fill(-1);
    BusyBits busy;

    // Distributed reservation stations: one private pool per unit.
    std::array<std::vector<InflightOp>, kNumFuKinds> rs;
    for (auto &pool : rs)
        pool.resize(_config.rsPerFu);

    // Dispatched instructions in their functional units.
    std::vector<InflightOp> flight;

    // Unresolved memory operations, in program order (RS indices in
    // the memory unit's pool).
    std::deque<unsigned> mem_queue;

    // Undispatched stores, in program order: stores reach memory in
    // program order so same-address updates land in sequence.
    std::deque<SeqNum> store_queue;

    LoadRegisters load_regs(_config.loadRegisters);
    FuPipes pipes(_config);
    MemoryBanks banks(_config.memoryBanks, _config.bankBusyCycles);
    typename View::Bus bus(_config.resultBuses);
    IBuffers ibuffers;

    Counter &c_insts = _stats.counter("instructions");
    Counter &c_branches = _stats.counter("branches");
    Counter &c_dead = _stats.counter("branch_dead_cycles");
    Counter &c_branch_wait = _stats.counter("stall_branch_cond_cycles");
    Counter &c_no_rs = _stats.counter("stall_no_rs_cycles");
    Counter &c_no_tu = _stats.counter("stall_no_tu_cycles");
    Counter &c_no_lr = _stats.counter("stall_no_load_reg_cycles");
    Counter &c_dispatched = _stats.counter("dispatches");
    Counter &c_forwarded = _stats.counter("forwarded_loads");
    Histogram &h_rs_busy = _stats.histogram("rs_occupancy");

    SeqNum decode_seq = options.startSeq;
    Cycle next_decode = 0;
    Cycle last_event = 0;
    bool halted = false;
    bool fault_raised = false;
    const auto &records = trace.records();
    lint::InvariantChecker *ck = invariants();

    // Fault/snapshot port registration (only when a tap is attached):
    // the reservation stations, the Tag Unit, the per-register latest
    // maps, the scoreboard and the shared latches. Entries copied into
    // `flight` and the program-order deques live in dynamic containers
    // whose addresses move, so they are not ports. Destination tags
    // index the Tag Unit, so they wrap to its capacity.
    inject::FaultPortSet fault_ports;
    if (options.tap) {
        for (unsigned k = 0; k < kNumFuKinds; ++k) {
            auto &pool = rs[k];
            for (unsigned i = 0; i < pool.size(); ++i)
                inject::exposeInflightOp(
                    fault_ports,
                    std::string("rs.") +
                        fuKindName(static_cast<FuKind>(k)) + "[" +
                        std::to_string(i) + "]",
                    pool[i], _config.tuEntries);
        }
        for (unsigned i = 0; i < tu.size(); ++i) {
            std::string name = "tu[" + std::to_string(i) + "]";
            fault_ports.addFlag(name + ".free", tu[i].free);
            fault_ports.addFlag(name + ".latest", tu[i].latest);
            fault_ports.add(name + ".regFlat",
                            inject::PortClass::Tag, tu[i].regFlat, 32,
                            kNumArchRegs);
        }
        for (unsigned f = 0; f < kNumArchRegs; ++f)
            fault_ports.add("latestSlot." +
                                RegId::fromFlat(f).toString(),
                            inject::PortClass::Tag, latest_slot[f], 32,
                            _config.tuEntries);
        busy.exposePorts(fault_ports, "busy");
        load_regs.exposePorts(fault_ports, "loadReg");
        pipes.exposePorts(fault_ports, "fu");
        banks.exposePorts(fault_ports, "banks");
        bus.exposePorts(fault_ports, "bus");
        if (options.modelIBuffers)
            ibuffers.exposePorts(fault_ports, "ibuf");
        result.state.exposePorts(fault_ports, "regs");
        fault_ports.add("decodeSeq", inject::PortClass::Sequence,
                        decode_seq, 32, records.size() + 1);
        fault_ports.add("nextDecode", inject::PortClass::Sequence,
                        next_decode, 32);
        options.tap->onRunStart(fault_ports);
    }

    auto rs_occupancy = [&]() {
        unsigned n = 0;
        for (const auto &pool : rs)
            for (const auto &e : pool)
                n += e.valid ? 1 : 0;
        return n;
    };

    auto wake_all = [&](Tag tag) {
        for (auto &pool : rs)
            for (auto &e : pool)
                if (e.valid)
                    e.wakeup(tag);
    };

    auto wedge_detail = [&]() {
        std::ostringstream os;
        for (unsigned k = 0; k < kNumFuKinds; ++k) {
            const auto &pool = rs[k];
            unsigned n = 0;
            for (const auto &e : pool)
                n += e.valid ? 1 : 0;
            if (n == 0)
                continue;
            os << "  " << fuKindName(static_cast<FuKind>(k))
               << " rs: " << n << "/" << pool.size() << " busy\n";
            for (const auto &e : pool) {
                if (!e.valid)
                    continue;
                os << "    seq " << e.seq
                   << (e.readyToDispatch() ? " ready (no unit/bus)"
                                           : " waiting on operands")
                   << "\n";
            }
        }
        os << "  in flight: " << flight.size() << " op(s)\n";
        for (const auto &e : flight)
            os << "    seq " << e.seq << " completes cycle "
               << e.completeCycle << "\n";
        return os.str();
    };

    for (Cycle cycle = 0;; ++cycle) {
        if (cycle > options.maxCycles) {
            markWedged(result, trace, cycle, options, decode_seq,
                       wedge_detail());
            return result;
        }
        if (options.tap)
            options.tap->onCycle(cycle, fault_ports);
        if (ck)
            ck->beginCycle(cycle);

        // ---- phase 3: dispatch (each unit may accept one per cycle) ----
        // The memory unit gets bus priority (§5), then the other units.
        static constexpr std::array<FuKind, 11> kDispatchOrder = {
            FuKind::Memory,    FuKind::AddrAdd,   FuKind::AddrMul,
            FuKind::ScalarAdd, FuKind::ScalarLogical,
            FuKind::ScalarShift, FuKind::PopLz,   FuKind::FpAdd,
            FuKind::FpMul,     FuKind::FpRecip,   FuKind::Transmit,
        };
        for (FuKind kind : kDispatchOrder) {
            auto &pool = rs[static_cast<unsigned>(kind)];
            int best = -1;
            for (unsigned i = 0; i < pool.size(); ++i) {
                if (pool[i].valid && pool[i].readyToDispatch() &&
                    (best < 0 || pool[i].seq <
                                     pool[static_cast<unsigned>(best)]
                                         .seq)) {
                    best = static_cast<int>(i);
                }
            }
            if (best < 0)
                continue;
            InflightOp &e = pool[static_cast<unsigned>(best)];
            if (e.isStore && (store_queue.empty() ||
                              store_queue.front() != e.seq)) {
                continue;
            }
            unsigned latency = e.isStore ? _config.storeLatency
                               : e.forwarded
                                   ? _config.forwardLatency
                                   : _config.latency(kind);
            if (!pipes.canStart(kind, cycle))
                continue;
            bool to_memory = e.isMem() && !e.forwarded;
            if (to_memory && !banks.canAccess(e.rec->memAddr, cycle))
                continue;
            bool needs_bus = !e.isStore;
            if (needs_bus && !bus.free(cycle + latency))
                continue;
            pipes.start(kind, cycle);
            if (needs_bus)
                bus.reserve(cycle + latency, e.destTag, e.rec->result,
                            e.seq);
            if (to_memory)
                banks.access(e.rec->memAddr, cycle);
            e.dispatched = true;
            e.completeCycle = cycle + latency;
            if (e.isStore)
                store_queue.pop_front();
            ++c_dispatched;
            // The reservation station is released at dispatch (§3.1).
            flight.push_back(e);
            e.valid = false;
        }
        // ---- phase 1: completions ----------------------------------------
        for (auto it = flight.begin(); it != flight.end();) {
            InflightOp &e = *it;
            if (e.completeCycle != cycle) {
                ++it;
                continue;
            }
            last_event = cycle;

            if (e.rec->fault != Fault::None) {
                result.interrupted = true;
                result.fault = e.rec->fault;
                result.faultSeq = e.seq;
                result.faultPc = e.rec->pc;
                fault_raised = true;
                if (result.drainStartCycle == kNoCycle)
                    result.drainStartCycle = cycle;
                ++it;
                continue;
            }

            Tag tag = e.isStore ? storeTagFor(e.seq) : e.destTag;
            Word value = e.isStore ? e.rec->storeValue : e.rec->result;
            wake_all(tag);
            load_regs.onBroadcast(tag, value);
            if (ck) {
                if (e.isStore)
                    ck->onStoreBroadcast(tag);
                else
                    ck->onResultBroadcast(cycle, tag);
            }

            RegId dst = e.rec->inst.dst;
            if (dst.valid()) {
                TuEntry &slot = tu[e.destTag];
                if (slot.latest) {
                    result.state.write(dst, e.rec->result);
                    busy.clear(dst);
                    latest_slot[dst.flat()] = -1;
                }
                slot = TuEntry{}; // release the tag
                if (ck)
                    ck->onTagReleased(e.destTag);
            }
            if (ck && e.isStore)
                ck->onTagReleased(tag);
            if (e.isStore) {
                bool ok = result.memory.store(e.rec->memAddr,
                                              e.rec->storeValue);
                ruu_assert(ok, "store to unmapped address in trace");
            }
            if (e.isMem())
                load_regs.complete(static_cast<unsigned>(e.loadReg));

            ++c_insts;
            ++result.instructions;
            notifyCommit(e.seq, *e.rec);
            it = flight.erase(it);
        }

        if (fault_raised) {
            result.cycles = cycle + 1;
            break;
        }

        // ---- phase 2: memory-address resolution, in program order ------
        auto &mem_rs = rs[static_cast<unsigned>(FuKind::Memory)];
        while (!mem_queue.empty()) {
            InflightOp &e = mem_rs[mem_queue.front()];
            if (!e.src[0].ready)
                break;
            if (!resolveMemOp(e, load_regs))
                break;
            if (e.forwarded)
                ++c_forwarded;
            mem_queue.pop_front();
        }


        // ---- phase 4: decode and issue ------------------------------------
        // An external interrupt stops decode; everything already in the
        // machine drains, so the cut at decode_seq is the sequential
        // prefix. A synchronous fault raised during the drain wins (it
        // is architecturally older).
        const bool irq_stop = options.interruptAt != kNoCycle &&
                              cycle >= options.interruptAt &&
                              decode_seq >= options.interruptMinSeq;
        if (irq_stop && result.drainStartCycle == kNoCycle)
            result.drainStartCycle = cycle;
        if (!irq_stop && !halted && decode_seq < records.size() &&
            cycle >= next_decode) {
            const TraceRecord &rec = records[decode_seq];
            const Instruction &inst = rec.inst;
            bool stalled = false;

            if (options.modelIBuffers) {
                Cycle avail = ibuffers.fetch(rec.pc, cycle);
                if (avail > cycle) {
                    next_decode = avail;
                    stalled = true;
                }
            }

            if (!stalled && view.haltAt(decode_seq)) {
                halted = true;
                last_event = std::max(last_event, cycle);
                ++c_insts;
                ++result.instructions;
                notifyCommit(decode_seq, rec);
                ++decode_seq;
            } else if (!stalled && view.nopLikeAt(decode_seq)) {
                last_event = std::max(last_event, cycle);
                ++c_insts;
                ++result.instructions;
                notifyCommit(decode_seq, rec);
                ++decode_seq;
                next_decode = cycle + 1;
            } else if (!stalled && view.branchAt(decode_seq)) {
                if (inst.src1.valid() && busy.busy(inst.src1)) {
                    ++c_branch_wait;
                } else {
                    ++c_branches;
                    ++c_insts;
                    ++result.instructions;
                    notifyCommit(decode_seq, rec);
                    unsigned penalty = branchPenalty(rec.taken);
                    c_dead += penalty;
                    next_decode = cycle + penalty;
                    last_event = std::max(last_event, cycle);
                    ++decode_seq;
                }
            } else if (!stalled) {
                FuKind kind = view.memAt(decode_seq)
                                  ? FuKind::Memory
                                  : view.fuAt(decode_seq);
                auto &pool = rs[static_cast<unsigned>(kind)];
                int rs_slot = -1;
                for (unsigned i = 0; i < pool.size(); ++i) {
                    if (!pool[i].valid) {
                        rs_slot = static_cast<int>(i);
                        break;
                    }
                }
                int tu_slot = -1;
                if (inst.dst.valid()) {
                    for (unsigned i = 0; i < tu.size(); ++i) {
                        if (tu[i].free) {
                            tu_slot = static_cast<int>(i);
                            break;
                        }
                    }
                }

                if (rs_slot < 0) {
                    ++c_no_rs;
                } else if (inst.dst.valid() && tu_slot < 0) {
                    ++c_no_tu;
                } else if (view.memAt(decode_seq) &&
                           !load_regs.hasFree()) {
                    ++c_no_lr;
                } else {
                    InflightOp &e = pool[static_cast<unsigned>(rs_slot)];
                    e = InflightOp{};
                    e.valid = true;
                    e.seq = decode_seq;
                    e.rec = &rec;
                    e.isLoad = view.loadAt(decode_seq);
                    e.isStore = view.storeAt(decode_seq);

                    for (unsigned s = 0; s < 2; ++s) {
                        RegId reg = s == 0 ? inst.src1 : inst.src2;
                        if (!reg.valid())
                            continue;
                        e.src[s].needed = true;
                        if (busy.busy(reg)) {
                            int producer = latest_slot[reg.flat()];
                            ruu_assert(producer >= 0,
                                       "busy register %s without a tag",
                                       reg.toString().c_str());
                            e.src[s].ready = false;
                            e.src[s].tag = static_cast<Tag>(producer);
                        }
                    }

                    if (inst.dst.valid()) {
                        int prev = latest_slot[inst.dst.flat()];
                        if (prev >= 0)
                            tu[static_cast<unsigned>(prev)].latest =
                                false;
                        tu[static_cast<unsigned>(tu_slot)] =
                            TuEntry{false, true, inst.dst.flat()};
                        latest_slot[inst.dst.flat()] = tu_slot;
                        busy.setBusy(inst.dst);
                        e.destTag = static_cast<Tag>(tu_slot);
                        if (ck)
                            ck->onTagAllocated(e.destTag, e.seq);
                    }
                    if (ck && e.isStore)
                        ck->onTagAllocated(storeTagFor(e.seq), e.seq);
                    if (e.isMem())
                        mem_queue.push_back(
                            static_cast<unsigned>(rs_slot));
                    if (e.isStore)
                        store_queue.push_back(e.seq);

                    ++decode_seq;
                    next_decode = cycle + 1;
                }
            }
        }

        h_rs_busy.sample(rs_occupancy());

        if (ck) {
            // One busy bit per register with a latest Tag Unit entry.
            unsigned with_tag = 0;
            for (int slot : latest_slot)
                with_tag += slot >= 0 ? 1 : 0;
            ck->onScoreboardSample(busy.countBusy(), with_tag);
        }

        if ((halted || decode_seq >= records.size() || irq_stop) &&
            rs_occupancy() == 0 && flight.empty()) {
            if (irq_stop && !halted && decode_seq < records.size()) {
                result.interrupted = true;
                result.fault = Fault::Interrupt;
                result.faultSeq = decode_seq;
                result.faultPc = records[decode_seq].pc;
            }
            result.cycles = last_event + 1;
            break;
        }
        bus.retireBefore(cycle);
    }

    _stats.counter("cycles") += result.cycles;
    return result;
}

} // namespace ruu
