/**
 * @file
 * Branch predictors for the paper's §7 extension (conditional
 * execution of instructions from a predicted branch path).
 *
 * The paper cites Smith's branch-prediction study [6]; the dynamic
 * predictor here is the classic Smith 2-bit saturating-counter table.
 * Static always-taken / never-taken / backward-taken-forward-not-taken
 * variants exist for the predictor ablation bench.
 */

#ifndef RUU_CORE_PREDICTOR_HH
#define RUU_CORE_PREDICTOR_HH

#include <memory>
#include <vector>

#include "common/types.hh"
#include "uarch/config.hh"

namespace ruu
{

/** A direction predictor for conditional branches. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /**
     * Predict the branch at parcel address @p pc.
     * @param target_backward true when the branch target is at a lower
     *        address than the branch (loop-closing), for BTFN.
     */
    virtual bool predict(ParcelAddr pc, bool target_backward) = 0;

    /** Train with the resolved outcome. */
    virtual void update(ParcelAddr pc, bool taken) = 0;

    /** Factory over PredictorKind. */
    static std::unique_ptr<BranchPredictor> make(PredictorKind kind,
                                                 unsigned table_bits);
};

/** Table of 2-bit saturating counters, indexed by low PC bits. */
class SmithPredictor : public BranchPredictor
{
  public:
    /** @param table_bits log2 of the table size. */
    explicit SmithPredictor(unsigned table_bits);

    bool predict(ParcelAddr pc, bool target_backward) override;
    void update(ParcelAddr pc, bool taken) override;

    /** Counter value at @p pc's slot (tests). */
    unsigned counterAt(ParcelAddr pc) const;

  private:
    std::vector<std::uint8_t> _table; //!< counters initialized weakly taken
    unsigned _mask;
};

/** The static predictors (always taken / never taken / BTFN). */
class StaticPredictor : public BranchPredictor
{
  public:
    explicit StaticPredictor(PredictorKind kind);

    bool predict(ParcelAddr pc, bool target_backward) override;
    void update(ParcelAddr pc, bool taken) override;

  private:
    PredictorKind _kind;
};

} // namespace ruu

#endif // RUU_CORE_PREDICTOR_HH
