#include "core/simple_core.hh"

#include <algorithm>
#include <array>

#include "common/logging.hh"
#include "engine/view.hh"
#include "inject/fault_port.hh"
#include "uarch/banks.hh"
#include "uarch/ibuffer.hh"
#include "uarch/result_bus.hh"

namespace ruu
{

SimpleCore::SimpleCore(const UarchConfig &config) : Core(config)
{
}

RunResult
SimpleCore::runImpl(const Trace &trace, const RunOptions &options)
{
    if (activeEngine() == engine::Kind::Compiled)
        return runLoop(trace, options,
                       engine::CompiledView(trace, stream()));
    return runLoop(trace, options, engine::InterpView(trace));
}

template <class View>
RunResult
SimpleCore::runLoop(const Trace &trace, const RunOptions &options,
                    const View &view)
{
    RunResult result = makeInitialResult(trace, options);

    // Cycle at which each register's pending write completes (readable
    // from that cycle on). Zero means available now.
    std::array<Cycle, kNumArchRegs> reg_ready{};
    reg_ready.fill(0);

    typename View::Bus bus(_config.resultBuses);
    IBuffers ibuffers;
    MemoryBanks banks(_config.memoryBanks, _config.bankBusyCycles);

    Counter &c_insts = _stats.counter("instructions");
    Counter &c_branches = _stats.counter("branches");
    Counter &c_taken = _stats.counter("taken_branches");
    Counter &c_src = _stats.counter("stall_src_cycles");
    Counter &c_dst = _stats.counter("stall_dst_cycles");
    Counter &c_bus = _stats.counter("stall_bus_cycles");
    Counter &c_branch_wait = _stats.counter("stall_branch_cond_cycles");
    Counter &c_dead = _stats.counter("branch_dead_cycles");
    Counter &c_ibuf = _stats.counter("ibuffer_miss_cycles");

    Cycle next_issue = 0;  //!< earliest cycle the next instruction issues
    Cycle last_event = 0;  //!< latest issue or completion cycle seen
    Cycle fault_cycle = kNoCycle; //!< detection time of a raised fault
    lint::InvariantChecker *ck = invariants();

    auto src_ready = [&](const Instruction &inst) {
        Cycle ready = 0;
        if (inst.src1.valid())
            ready = std::max(ready, reg_ready[inst.src1.flat()]);
        if (inst.src2.valid())
            ready = std::max(ready, reg_ready[inst.src2.flat()]);
        return ready;
    };

    // Fault/snapshot port registration (only when a tap is attached;
    // a tap always selects the interpretive engine). The simple
    // machine's state is the interlock scoreboard, the register file,
    // the bus schedule and the issue clock itself.
    inject::FaultPortSet fault_ports;
    if constexpr (!View::kCompiled) {
        if (options.tap) {
            for (unsigned f = 0; f < kNumArchRegs; ++f)
                fault_ports.add("regReady." +
                                    RegId::fromFlat(f).toString(),
                                inject::PortClass::Sequence,
                                reg_ready[f], 32);
            result.state.exposePorts(fault_ports, "regs");
            bus.exposePorts(fault_ports, "bus");
            if (options.modelIBuffers)
                ibuffers.exposePorts(fault_ports, "ibuf");
            banks.exposePorts(fault_ports, "banks");
            fault_ports.add("nextIssue", inject::PortClass::Sequence,
                            next_issue, 32);
            options.tap->onRunStart(fault_ports);
        }
    }

    const auto &records = trace.records();
    for (SeqNum seq = options.startSeq; seq < records.size(); ++seq) {
        const TraceRecord &record = records[seq];
        const Instruction &inst = record.inst;

        // This core has no explicit cycle loop; the tap sees the
        // (monotonically nondecreasing) issue clock per instruction.
        if constexpr (!View::kCompiled) {
            if (options.tap)
                options.tap->onCycle(next_issue, fault_ports);
        }

        // The decode stage stops accepting work once a fault has been
        // detected; everything issued before that drains.
        if (fault_cycle != kNoCycle && next_issue >= fault_cycle)
            break;

        // An external interrupt stops decode. Everything older has
        // already updated the state in program order, so the cut at
        // this seq is the sequential prefix — precise by construction.
        // A previously-detected synchronous fault is architecturally
        // older and wins; the interrupt stays pending with its source.
        if (options.interruptAt != kNoCycle && fault_cycle == kNoCycle &&
            next_issue >= options.interruptAt &&
            seq >= options.interruptMinSeq) {
            result.interrupted = true;
            result.fault = Fault::Interrupt;
            result.faultSeq = seq;
            result.faultPc = record.pc;
            if (result.drainStartCycle == kNoCycle)
                result.drainStartCycle = next_issue;
            break;
        }

        if (next_issue > options.maxCycles) {
            markWedged(result, trace, next_issue, options, seq, "");
            return result;
        }

        if (options.modelIBuffers) {
            Cycle avail = ibuffers.fetch(record.pc, next_issue);
            c_ibuf += avail - next_issue;
            next_issue = avail;
        }

        bus.retireBefore(next_issue);
        if (ck)
            ck->beginCycle(next_issue);

        if (view.haltAt(seq)) {
            last_event = std::max(last_event, next_issue);
            ++c_insts;
            ++result.instructions;
            if (ck)
                ck->onCommit(seq);
            notifyCommit(seq, record);
            break;
        }

        if (view.nopLikeAt(seq)) {
            last_event = std::max(last_event, next_issue);
            ++c_insts;
            ++result.instructions;
            if (ck)
                ck->onCommit(seq);
            notifyCommit(seq, record);
            next_issue += 1;
            continue;
        }

        if (view.branchAt(seq)) {
            Cycle cond_ready = src_ready(inst);
            Cycle t = std::max(next_issue, cond_ready);
            c_branch_wait += t - next_issue;
            ++c_branches;
            if (record.taken)
                ++c_taken;
            unsigned penalty = branchPenalty(record.taken);
            c_dead += penalty;
            next_issue = t + penalty;
            last_event = std::max(last_event, t);
            ++c_insts;
            ++result.instructions;
            if (ck)
                ck->onCommit(seq);
            notifyCommit(seq, record);
            continue;
        }

        // Register-interlock issue conditions.
        Cycle t_src = src_ready(inst);
        Cycle t_dst = inst.dst.valid() ? reg_ready[inst.dst.flat()] : 0;
        Cycle t0 = std::max({next_issue, t_src, t_dst});
        c_src += std::max(t_src, next_issue) - next_issue;
        c_dst += t0 - std::max(t_src, next_issue);

        const bool is_store = view.storeAt(seq);
        unsigned latency = is_store ? _config.latency(FuKind::Memory)
                                    : _config.latency(view.fuAt(seq));

        // Reserve a result-bus delivery slot (stores produce no
        // register result) and, for memory operations, a free bank.
        Cycle t = t0;
        bool is_mem = view.memAt(seq);
        auto constraints_ok = [&](Cycle at) {
            if (!is_store && !bus.free(at + latency))
                return false;
            if (is_mem && !banks.canAccess(record.memAddr, at))
                return false;
            return true;
        };
        while (!constraints_ok(t))
            ++t;
        c_bus += t - t0;
        if (!is_store) {
            bus.reserve(t + latency, kNoTag, record.result, seq);
            // Independent recount of the Weiss-Smith reservation: the
            // delivery cycle must still have a bus available.
            if (ck)
                ck->onResultBroadcast(t + latency, kNoTag);
        }
        if (is_mem)
            banks.access(record.memAddr, t);

        Cycle completion = t + latency;
        last_event = std::max(last_event, completion);

        if (record.fault != Fault::None) {
            // Fault detected when the instruction reaches the faulting
            // point in its unit (its completion slot). No register or
            // memory update happens; issue continues until detection —
            // this is exactly the imprecise-interrupt behaviour.
            result.interrupted = true;
            result.fault = record.fault;
            result.faultSeq = seq;
            result.faultPc = record.pc;
            fault_cycle = completion;
            if (result.drainStartCycle == kNoCycle)
                result.drainStartCycle = completion;
            next_issue = t + 1;
            continue;
        }

        if (inst.dst.valid()) {
            reg_ready[inst.dst.flat()] = completion;
            result.state.write(inst.dst, record.result);
        }
        if (is_store) {
            bool ok = result.memory.store(record.memAddr,
                                          record.storeValue);
            ruu_assert(ok, "store to unmapped address in trace");
        }

        ++c_insts;
        ++result.instructions;
        if (ck)
            ck->onCommit(seq);
        notifyCommit(seq, record);
        next_issue = t + 1;
    }

    result.cycles = last_event + 1;
    _stats.counter("cycles") += result.cycles;
    return result;
}

} // namespace ruu
