/**
 * @file
 * The Register Update Unit (§5–§6, Figure 5, Tables 4–6) — the paper's
 * central contribution.
 *
 * The RUU is the RSTU managed as a circular queue: instructions enter
 * at the tail in program order, execute out of order, and *commit* —
 * update the register file and memory — strictly in program order from
 * the head. In-order commitment makes every interrupt precise; it also
 * eliminates the associative tag search, because per-register NI/LI
 * instance counters (uarch/scoreboard.hh) generate tags directly.
 *
 * Three source-operand bypass variants are modeled, matching the
 * paper's evaluation:
 *  - BypassMode::Full     (Table 4): executed results are readable out
 *    of the RUU at issue time.
 *  - BypassMode::None     (Table 5): waiting operands monitor the
 *    functional-unit result bus *and* the RUU-to-register-file commit
 *    bus (the paper's deadlock-avoidance extension), but completed
 *    results sitting in the RUU are not readable.
 *  - BypassMode::LimitedA (Table 6): no RUU read, but a duplicated
 *    A register file — a future file for the eight A registers — is
 *    updated from the result bus and serves A-register operands and
 *    branch conditions.
 *
 * A fault annotated on a dynamic instruction surfaces when that
 * instruction reaches the head: everything younger is discarded and
 * the architectural state equals the sequential prefix — the precise-
 * interrupt guarantee the tests verify.
 */

#ifndef RUU_CORE_RUU_CORE_HH
#define RUU_CORE_RUU_CORE_HH

#include "core/core.hh"

namespace ruu
{

/** The Register Update Unit core (paper §5). */
class RuuCore : public Core
{
  public:
    explicit RuuCore(const UarchConfig &config);

    const char *name() const override { return "ruu"; }

    /**
     * State-changers commit in order from the head; branches resolve
     * (and are reported) in the decode-and-issue stage.
     */
    CommitOrder commitOrder() const override
    {
        return CommitOrder::DataInOrder;
    }

    /** The paper's guarantee: every interrupt is precise (§5). */
    bool preciseInterrupts() const override { return true; }

  protected:
    RunResult runImpl(const Trace &trace,
                      const RunOptions &options) override;

  private:
    /** The issue loop, templated over the engine's trace view. */
    template <class View>
    RunResult runLoop(const Trace &trace, const RunOptions &options,
                      const View &view);
};

} // namespace ruu

#endif // RUU_CORE_RUU_CORE_HH
