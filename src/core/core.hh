/**
 * @file
 * The common interface of every issue-logic core.
 *
 * A core is a trace-driven, cycle-level timing model of one of the
 * paper's instruction-issue mechanisms. All cores consume the same
 * Trace, commit the architecturally correct values carried in it, and
 * report cycle counts plus detailed stall statistics through a StatSet.
 */

#ifndef RUU_CORE_CORE_HH
#define RUU_CORE_CORE_HH

#include <memory>
#include <string>

#include "arch/memory.hh"
#include "arch/state.hh"
#include "core/commit_observer.hh"
#include "engine/engine.hh"
#include "lint/invariant_checker.hh"
#include "stats/stat_set.hh"
#include "trace/trace.hh"
#include "uarch/config.hh"

namespace ruu
{

namespace inject
{
class MachineTap;
} // namespace inject

namespace engine
{
struct CompiledStream;
} // namespace engine

/** Options controlling one timing run. */
struct RunOptions
{
    /** First dynamic instruction to execute (resume after interrupt). */
    SeqNum startSeq = 0;

    /** Register state to start from (resume); zeroed when null. */
    const ArchState *initialState = nullptr;

    /**
     * Memory image to start from (resume); when null, memory is built
     * from the trace's program data initializers.
     */
    const Memory *initialMemory = nullptr;

    /** Model the CRAY-1 instruction buffers instead of assuming hits. */
    bool modelIBuffers = false;

    /**
     * Receives every architecturally-committed instruction of the run
     * (oracle::CommitOracle attaches here); null disables observation.
     */
    CommitObserver *observer = nullptr;

    /**
     * Watchdog budget: when a run exceeds this many cycles the core
     * stops with RunResult::wedged set and a structured pipeline dump
     * instead of hanging (or aborting) the simulator.
     */
    std::uint64_t maxCycles = 2'000'000'000ull;

    /**
     * Cycle at which an asynchronous external interrupt arrives
     * (kNoCycle: never). From that cycle on the core stops decoding new
     * instructions, drains every instruction already fetched to
     * completion, and reports Fault::Interrupt with faultSeq = the
     * first undecoded dynamic instruction — which makes the interrupt
     * *precise on every core*, since the drained state equals the
     * sequential prefix. A synchronous fault that surfaces while
     * draining wins (it is architecturally older); the interrupt then
     * stays pending with its source. Trap delivery itself — exchange
     * package, handler trace, RTI — is the trap controller's job
     * (src/trap/controller.hh); the core only provides the drain.
     */
    Cycle interruptAt = kNoCycle;

    /**
     * Earliest dynamic instruction allowed to be cut off by
     * interruptAt. The drain point p satisfies p >= interruptMinSeq:
     * decode keeps running until then even past the interrupt cycle.
     * The controller uses this to keep a nested interrupt from landing
     * before the EINT that re-enabled interrupts inside a handler.
     */
    SeqNum interruptMinSeq = 0;

    /**
     * Machine tap for fault injection and snapshot/restore
     * (src/inject): when set, the core registers every flippable state
     * bit of its live pipeline structures as FaultPorts at run start
     * and calls the tap at the top of every cycle. Null (the default)
     * skips registration entirely — plain runs pay nothing.
     */
    inject::MachineTap *tap = nullptr;
};

/** Outcome of one timing run. */
struct RunResult
{
    /** Total clock cycles consumed. */
    Cycle cycles = 0;

    /** Dynamic instructions completed/committed (includes HALT). */
    std::uint64_t instructions = 0;

    /** An instruction-generated trap surfaced. */
    bool interrupted = false;

    /** Kind of trap (valid when interrupted). */
    Fault fault = Fault::None;

    /** Dynamic index of the faulting instruction. */
    SeqNum faultSeq = kNoSeqNum;

    /** Parcel address of the faulting instruction (the precise PC). */
    ParcelAddr faultPc = 0;

    /**
     * Cycle the drain to the stopping point began: the first cycle the
     * decode stage observed the interrupt stop condition, or the cycle
     * a synchronous fault was detected in its unit — whichever came
     * first. kNoCycle when the run ended without either. The measured
     * residue `cycles - drainStartCycle` is asserted against the
     * certified WCIRT cut ceiling (lint/wcirt.hh) on every delivery.
     */
    Cycle drainStartCycle = kNoCycle;

    /**
     * Register state at the end of the run. For the RUU this is the
     * precise committed state; for the imprecise cores it is whatever
     * the register file contains when the machine stops.
     */
    ArchState state;

    /**
     * Memory state at the end of the run. Empty (zero words) until
     * Core::makeInitialResult materializes it — a default-sized image
     * is 8 MiB of memset, paid once per core restart, and the trap
     * controller restarts the core once per interrupt delivery.
     */
    Memory memory{0};

    /**
     * The watchdog fired: the run exceeded RunOptions::maxCycles
     * without finishing. The partial results above are whatever the
     * machine held when it was stopped; diagnostic carries the
     * structured pipeline-state dump.
     */
    bool wedged = false;

    /** Pipeline-state dump of a wedged run (empty otherwise). */
    std::string diagnostic;

    /** Instructions per cycle ("instruction issue rate" in the paper). */
    double issueRate() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/** Abstract issue-logic core. */
class Core
{
  public:
    explicit Core(const UarchConfig &config);
    virtual ~Core() = default;

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    /** Short machine-readable name ("simple", "rstu", "ruu", ...). */
    virtual const char *name() const = 0;

    /**
     * The ordering discipline of this core's commit stream; the commit
     * oracle (src/oracle) verifies the stream against it.
     */
    virtual CommitOrder commitOrder() const = 0;

    /**
     * True when the core guarantees precise interrupts: at any fault
     * the architectural state equals the sequential execution of every
     * instruction before the faulting one, and nothing else (§5). The
     * interrupt-sweep harness holds precise cores to that contract at
     * every interrupt point and only *measures* imprecision on the
     * others.
     */
    virtual bool preciseInterrupts() const = 0;

    /**
     * Simulate @p trace.
     * Statistics are reset at the start of every run.
     */
    RunResult run(const Trace &trace, const RunOptions &options = {});

    /** Statistics of the most recent run. */
    const StatSet &stats() const { return _stats; }
    StatSet &stats() { return _stats; }

    /** The configuration this core was built with. */
    const UarchConfig &config() const { return _config; }

    /**
     * The engine the most recent (or currently executing) run used.
     * run() resolves it per run: RUU_ENGINE / the process default,
     * forced to Interp when a fault tap is attached
     * (engine::activeFor).
     */
    engine::Kind activeEngine() const { return _activeEngine; }

  protected:
    /** Subclass timing loop. */
    virtual RunResult runImpl(const Trace &trace,
                              const RunOptions &options) = 0;

    /**
     * Build the initial RunResult: state/memory from the options or
     * from the trace's program image.
     */
    RunResult makeInitialResult(const Trace &trace,
                                const RunOptions &options) const;

    /**
     * The run's invariant checker, or null when checking is off
     * (UarchConfig::checkInvariants / RUU_CHECK_INVARIANTS). Core
     * timing loops report tag, bus, commit, and scoreboard events to
     * it; run() panics when a run ends with violations.
     */
    lint::InvariantChecker *invariants() { return _invariants.get(); }

    /**
     * Report that dynamic instruction @p seq architecturally committed
     * @p record. Cores call this at every commit point — including
     * branches, NOP and HALT, which carry no state change but occupy a
     * position in the sequential execution the lockstep oracle replays.
     * Also feeds the invariant checker's commit-order check for cores
     * whose stream is totally ordered.
     */
    void notifyCommit(SeqNum seq, const TraceRecord &record)
    {
        if (_observer)
            _observer->onCommit(seq, record);
    }

    /**
     * Fill in @p result for a run the watchdog stopped at @p cycle:
     * sets wedged and builds the pipeline-state dump from the header
     * (core, cycle budget, next undecoded instruction of @p trace at
     * @p decodeSeq) plus the core-specific occupancy lines in
     * @p detail (one per line: per-FU busy state, per-entry contents,
     * oldest unissued instruction).
     */
    void markWedged(RunResult &result, const Trace &trace, Cycle cycle,
                    const RunOptions &options, SeqNum decodeSeq,
                    const std::string &detail) const;

    /** Dead cycles after a branch with outcome @p taken. */
    unsigned branchPenalty(bool taken) const
    {
        return taken ? _config.branchTakenPenalty
                     : _config.branchUntakenPenalty;
    }

    /**
     * The pre-decoded stream of the current run's trace; non-null
     * exactly when activeEngine() == Compiled. Set by run() before
     * runImpl, from the process-wide engine::cachedStream memo.
     */
    const engine::CompiledStream &stream() const { return *_stream; }

    UarchConfig _config;
    StatSet _stats;

  private:
    std::unique_ptr<lint::InvariantChecker> _invariants;
    CommitObserver *_observer = nullptr;
    engine::Kind _activeEngine = engine::Kind::Interp;
    std::shared_ptr<const engine::CompiledStream> _stream;
};

} // namespace ruu

#endif // RUU_CORE_CORE_HH
