#include "core/ruu_core.hh"

#include <algorithm>
#include <vector>

#include "core/ooo_support.hh"
#include "engine/view.hh"
#include "inject/ports.hh"
#include "uarch/banks.hh"
#include "uarch/fu.hh"
#include "uarch/ibuffer.hh"
#include "uarch/scoreboard.hh"

namespace ruu
{

RuuCore::RuuCore(const UarchConfig &config) : Core(config)
{
}

RunResult
RuuCore::runImpl(const Trace &trace, const RunOptions &options)
{
    if (activeEngine() == engine::Kind::Compiled)
        return runLoop(trace, options,
                       engine::CompiledView(trace, stream()));
    return runLoop(trace, options, engine::InterpView(trace));
}

template <class View>
RunResult
RuuCore::runLoop(const Trace &trace, const RunOptions &options,
                 const View &view)
{
    RunResult result = makeInitialResult(trace, options);
    const unsigned ruu_size = _config.poolEntries;
    const BypassMode bypass = _config.bypass;

    // The RUU proper: a circular queue of reservation-station entries.
    std::vector<InflightOp> ruu(ruu_size);
    unsigned head = 0, tail = 0, count = 0;

    std::vector<unsigned> mem_queue; //!< RUU slots of live memory ops
    InstanceCounters counters(_config.counterBits);
    LoadRegisters load_regs(_config.loadRegisters);
    FuPipes pipes(_config);
    MemoryBanks banks(_config.memoryBanks, _config.bankBusyCycles);
    typename View::Bus bus(_config.resultBuses);
    IBuffers ibuffers;

    // The duplicated register files: §6.3's A future file (LimitedA
    // covers the eight A registers) or §4's full future file
    // (FutureFile covers all 144). Indexed by flat register number; a
    // register's duplicate is valid when its latest instance's value
    // has appeared on the result bus.
    std::array<bool, kNumArchRegs> future_valid;
    future_valid.fill(true);
    auto future_covers = [bypass](RegId reg) {
        if (bypass == BypassMode::FutureFile)
            return true;
        return bypass == BypassMode::LimitedA &&
               reg.file() == RegFile::A;
    };

    // Tags broadcast this cycle on either bus; a branch stalled in
    // decode watches these to pick its condition value off a bus.
    std::vector<Tag> cycle_tags;

    Counter &c_insts = _stats.counter("instructions");
    Counter &c_branches = _stats.counter("branches");
    Counter &c_dead = _stats.counter("branch_dead_cycles");
    Counter &c_branch_wait = _stats.counter("stall_branch_cond_cycles");
    Counter &c_no_slot = _stats.counter("stall_ruu_full_cycles");
    Counter &c_no_lr = _stats.counter("stall_no_load_reg_cycles");
    Counter &c_ni = _stats.counter("stall_ni_saturated_cycles");
    Counter &c_dispatched = _stats.counter("dispatches");
    Counter &c_forwarded = _stats.counter("forwarded_loads");
    Counter &c_bypass = _stats.counter("bypass_reads");
    Counter &c_future = _stats.counter("future_file_reads");
    Counter &c_commits = _stats.counter("commits");
    Histogram &h_occupancy = _stats.histogram("ruu_occupancy");

    SeqNum decode_seq = options.startSeq;
    Cycle next_decode = 0;
    Cycle last_event = 0;
    bool done = false;
    const auto &records = trace.records();
    lint::InvariantChecker *ck = invariants();

    // Fault/snapshot port registration (only when a tap is attached):
    // every RUU entry, the queue cursors, the NI/LI counters, the load
    // registers, the unit/bus/bank latches, the future file and the
    // committed register file. The `rec` host pointers are not ports.
    inject::FaultPortSet fault_ports;
    if (options.tap) {
        for (unsigned i = 0; i < ruu_size; ++i)
            inject::exposeInflightOp(
                fault_ports, "ruu[" + std::to_string(i) + "]", ruu[i]);
        inject::exposeCursor(fault_ports, "head", head, ruu_size);
        inject::exposeCursor(fault_ports, "tail", tail, ruu_size);
        inject::exposeCursor(fault_ports, "count", count, ruu_size + 1);
        counters.exposePorts(fault_ports, "counters");
        load_regs.exposePorts(fault_ports, "loadReg");
        pipes.exposePorts(fault_ports, "fu");
        banks.exposePorts(fault_ports, "banks");
        bus.exposePorts(fault_ports, "bus");
        if (options.modelIBuffers)
            ibuffers.exposePorts(fault_ports, "ibuf");
        for (unsigned f = 0; f < kNumArchRegs; ++f)
            fault_ports.addFlag(
                "futureValid." + RegId::fromFlat(f).toString(),
                future_valid[f]);
        result.state.exposePorts(fault_ports, "regs");
        fault_ports.add("decodeSeq", inject::PortClass::Sequence,
                        decode_seq, 32, records.size() + 1);
        fault_ports.add("nextDecode", inject::PortClass::Sequence,
                        next_decode, 32);
        options.tap->onRunStart(fault_ports);
    }

    /**
     * Visit the live window [head, head+count) oldest-first. The
     * queue issues in program order, so window order is seq order;
     * the compiled loops below iterate it instead of scanning every
     * slot (live entries are exactly the window, §5's circular
     * queue), which is what makes large pools cheap.
     */
    auto for_window = [&](auto &&fn) {
        unsigned s = head;
        for (unsigned k = 0; k < count; ++k) {
            fn(s);
            ++s;
            if (s == ruu_size)
                s = 0;
        }
    };

    // Compiled fast path only: incremental indices that let the hot
    // loop touch exactly the entries with work instead of walking the
    // window every cycle. The interpretive path keeps unconditional
    // scans: a fault-injection tap may rewrite entry flags between
    // cycles, which would stale these indices (taps force the interp
    // engine for exactly that reason).
    //
    //  - undispatched: count of valid, not-executed, not-dispatched
    //    entries; zero lets the dispatch walk be skipped outright.
    //  - waiting: slots holding an entry that still needs a broadcast
    //    (an unready source, or a forwarded load awaiting its data).
    //    Wakeups only ever flip not-ready to ready, so delivering them
    //    to just these slots is state-identical to the full scan;
    //    stale or duplicate slots are harmless (wakeup is idempotent)
    //    and are dropped on the next broadcast.
    //  - comp_ring: dispatch schedules its completion cycle here, so
    //    the completion phase visits exactly the completing slots.
    //    The ring outlives the longest latency, and complete_entry's
    //    guard (dispatched, not executed, completeCycle == cycle)
    //    skips any slot a stale schedule left behind. Bucket order is
    //    dispatch order; within a cycle completion effects commute
    //    (see the completion phase below).
    unsigned undispatched = 0;
    std::vector<unsigned> waiting;
    std::vector<std::vector<unsigned>> comp_ring;
    unsigned comp_mask = 0;
    auto needs_wakeup = [](const InflightOp &e) {
        return (e.src[0].needed && !e.src[0].ready) ||
               (e.src[1].needed && !e.src[1].ready) ||
               (e.forwarded && !e.fwdDataReady);
    };
    if constexpr (View::kCompiled) {
        unsigned max_latency =
            std::max(_config.storeLatency, _config.forwardLatency);
        for (unsigned i = 0; i < kNumFuKinds; ++i)
            max_latency = std::max(
                max_latency, _config.latency(static_cast<FuKind>(i)));
        unsigned ring = 1;
        while (ring <= max_latency)
            ring <<= 1;
        comp_ring.resize(ring);
        comp_mask = ring - 1;
    }

    /** Pool entry currently holding tag @p tag, or nullptr. */
    auto entry_with_tag = [&](Tag tag) -> InflightOp * {
        if constexpr (View::kCompiled) {
            InflightOp *found = nullptr;
            for_window([&](unsigned s) {
                InflightOp &e = ruu[s];
                if (!found && e.valid && e.destTag == tag)
                    found = &e;
            });
            return found;
        } else {
            for (auto &e : ruu)
                if (e.valid && e.destTag == tag)
                    return &e;
            return nullptr;
        }
    };

    /**
     * Can a value of @p reg be obtained right now by the decode stage
     * (for a source operand or a branch condition)?
     */
    auto readable = [&](RegId reg) {
        if (!counters.busy(reg))
            return true; // architectural register file
        Tag tag = counters.latestTag(reg);
        switch (bypass) {
          case BypassMode::Full: {
            InflightOp *producer = entry_with_tag(tag);
            if (producer && producer->executed && !producer->faulted) {
                ++c_bypass;
                return true;
            }
            return false;
          }
          case BypassMode::LimitedA:
          case BypassMode::FutureFile:
            if (future_covers(reg) && future_valid[reg.flat()]) {
                ++c_future;
                return true;
            }
            return false;
          case BypassMode::None:
            return false;
        }
        return false;
    };

    /** Deliver a broadcast of (@p tag, @p value) to all monitors. */
    auto broadcast = [&](Tag tag, Word value) {
        if constexpr (View::kCompiled) {
            // Only the waiting slots can be affected; see the index
            // comment above the cycle loop. Slots that became ready
            // (or whose entry is gone) retire from the list here.
            for (std::size_t i = 0; i < waiting.size();) {
                InflightOp &e = ruu[waiting[i]];
                if (e.valid)
                    e.wakeup(tag);
                if (!e.valid || !needs_wakeup(e)) {
                    waiting[i] = waiting.back();
                    waiting.pop_back();
                } else {
                    ++i;
                }
            }
        } else {
            for (auto &e : ruu)
                if (e.valid)
                    e.wakeup(tag);
        }
        load_regs.onBroadcast(tag, value);
        cycle_tags.push_back(tag);
    };

    /** Watchdog dump: one line per live RUU entry, oldest first. */
    auto wedge_detail = [&]() {
        std::string out = "  ruu occupancy " + std::to_string(count) +
                          "/" + std::to_string(ruu_size) + "\n";
        for (unsigned k = 0; k < count; ++k) {
            const InflightOp &e = ruu[(head + k) % ruu_size];
            if (!e.valid)
                continue;
            out += "  entry " + std::to_string((head + k) % ruu_size) +
                   ": seq " + std::to_string(e.seq) + " fu " +
                   fuKindName(e.isMem() ? FuKind::Memory
                                        : e.rec->inst.fu()) +
                   (e.executed ? " executed"
                    : e.dispatched ? " dispatched"
                    : e.readyToDispatch() ? " ready (no unit/bus)"
                                          : " waiting on operands") +
                   (e.faulted ? " faulted" : "") + "\n";
        }
        return out;
    };

    std::vector<unsigned> candidates; // reused every cycle

    for (Cycle cycle = 0; !done; ++cycle) {
        if (cycle > options.maxCycles) {
            markWedged(result, trace, cycle, options, decode_seq,
                       wedge_detail());
            return result;
        }
        if (options.tap)
            options.tap->onCycle(cycle, fault_ports);
        cycle_tags.clear();
        if (ck)
            ck->beginCycle(cycle);

        // ---- phase 4: dispatch to the functional units -------------------
        {
            candidates.clear();
            if constexpr (View::kCompiled) {
                // Window order is seq order, so two passes (memory
                // ops, then the rest) yield exactly the sorted order
                // below without the scan-and-sort.
                if (undispatched > 0) {
                    for (int pass = 0; pass < 2; ++pass) {
                        for_window([&](unsigned s) {
                            const InflightOp &e = ruu[s];
                            if (e.valid && !e.executed &&
                                e.isMem() == (pass == 0) &&
                                e.readyToDispatch()) {
                                candidates.push_back(s);
                            }
                        });
                    }
                }
            } else {
                for (unsigned i = 0; i < ruu_size; ++i) {
                    const InflightOp &e = ruu[i];
                    if (e.valid && !e.executed && e.readyToDispatch())
                        candidates.push_back(i);
                }
                std::sort(candidates.begin(), candidates.end(),
                          [&](unsigned a, unsigned b) {
                              bool am = ruu[a].isMem(),
                                   bm = ruu[b].isMem();
                              if (am != bm)
                                  return am; // §5: loads/stores first
                              return ruu[a].seq < ruu[b].seq;
                          });
            }
            unsigned started = 0;
            for (unsigned slot : candidates) {
                if (started == _config.dispatchPaths)
                    break;
                InflightOp &e = ruu[slot];
                FuKind kind = e.isMem() ? FuKind::Memory
                                        : view.fuAt(e.seq);
                unsigned latency =
                    e.isStore ? _config.storeLatency
                    : e.forwarded ? _config.forwardLatency
                                  : _config.latency(kind);
                if (!pipes.canStart(kind, cycle))
                    continue;
                // Memory operations also need their bank (when bank
                // conflicts are modeled); forwarded loads skip memory.
                bool to_memory = e.isMem() && !e.forwarded;
                if (to_memory && !banks.canAccess(e.rec->memAddr, cycle))
                    continue;
                bool needs_bus = !e.isStore;
                if (needs_bus && !bus.free(cycle + latency))
                    continue;
                pipes.start(kind, cycle);
                if (needs_bus)
                    bus.reserve(cycle + latency, e.destTag,
                                e.rec->result, e.seq);
                if (to_memory)
                    banks.access(e.rec->memAddr, cycle);
                e.dispatched = true;
                e.completeCycle = cycle + latency;
                if constexpr (View::kCompiled) {
                    --undispatched;
                    comp_ring[e.completeCycle & comp_mask].push_back(
                        slot);
                }
                ++c_dispatched;
                ++started;
            }
        }
        // ---- phase 1: completions (functional-unit result bus) ---------
        // Within a cycle the per-completion effects commute (tags are
        // unique, wakeups and cycle_tags are set-like), so the compiled
        // path may visit the live window in seq order while the
        // interpretive path keeps its slot-order scan: same state.
        auto complete_entry = [&](InflightOp &e) {
            if (!e.valid || !e.dispatched || e.executed ||
                e.completeCycle != cycle) {
                return;
            }
            e.executed = true;
            last_event = cycle;

            if (e.rec->fault != Fault::None) {
                // Detected in the unit; surfaced only when the entry
                // reaches the head, keeping the interrupt precise.
                e.faulted = true;
                if (result.drainStartCycle == kNoCycle)
                    result.drainStartCycle = cycle;
                return;
            }

            Tag tag = e.isStore ? storeTagFor(e.seq) : e.destTag;
            Word value = e.isStore ? e.rec->storeValue : e.rec->result;
            broadcast(tag, value);
            if (ck) {
                if (e.isStore)
                    ck->onStoreBroadcast(tag);
                else
                    ck->onResultBroadcast(cycle, tag);
            }

            // Loads are finished with their load register once their
            // data is delivered; stores hold theirs until commit.
            if (e.isLoad)
                load_regs.complete(static_cast<unsigned>(e.loadReg));

            // Maintain the future file(s) (§6.3 / §4).
            RegId dst = e.rec->inst.dst;
            if (dst.valid() && future_covers(dst) &&
                counters.latestTag(dst) == e.destTag) {
                future_valid[dst.flat()] = true;
            }
        };
        if constexpr (View::kCompiled) {
            auto &due = comp_ring[cycle & comp_mask];
            if (!due.empty()) {
                for (unsigned s : due)
                    complete_entry(ruu[s]);
                due.clear();
            }
        } else {
            for (auto &e : ruu)
                complete_entry(e);
        }

        // ---- phase 2: in-order commit from the head ---------------------
        for (unsigned w = 0; w < _config.commitWidth && count > 0; ++w) {
            InflightOp &e = ruu[head];
            if (!e.executed)
                break;

            if (e.faulted) {
                // Precise interrupt: the committed state is exactly the
                // sequential execution of instructions [start, seq).
                result.interrupted = true;
                result.fault = e.rec->fault;
                result.faultSeq = e.seq;
                result.faultPc = e.rec->pc;
                result.cycles = cycle + 1;
                done = true;
                break;
            }

            const TraceRecord &rec = *e.rec;
            if (ck)
                ck->onCommit(e.seq);
            notifyCommit(e.seq, rec);
            if (rec.inst.dst.valid()) {
                result.state.write(rec.inst.dst, rec.result);
                counters.release(rec.inst.dst);
                // The RUU-to-register-file bus is itself monitored by
                // the reservation stations (§6.2), so commitment is a
                // second broadcast of the same tag.
                broadcast(e.destTag, rec.result);
                if (ck) {
                    ck->onCommitBroadcast(cycle, e.destTag);
                    ck->onTagReleased(e.destTag);
                }
            }
            if (e.isStore) {
                bool ok = result.memory.store(rec.memAddr,
                                              rec.storeValue);
                ruu_assert(ok, "store to unmapped address in trace");
                load_regs.complete(static_cast<unsigned>(e.loadReg));
                if (ck)
                    ck->onTagReleased(storeTagFor(e.seq));
            }

            ++c_commits;
            ++c_insts;
            ++result.instructions;
            last_event = cycle;

            bool was_halt = view.haltAt(e.seq);
            e.valid = false;
            std::erase(mem_queue, head);
            head = (head + 1) % ruu_size;
            --count;

            if (was_halt) {
                result.cycles = cycle + 1;
                done = true;
                break;
            }
        }
        if (done)
            break;

        // ---- phase 3: memory-address resolution, in program order ------
        for (unsigned slot : mem_queue) {
            InflightOp &e = ruu[slot];
            if (e.addrResolved)
                continue;
            if (!e.src[0].ready)
                break;
            if (!resolveMemOp(e, load_regs))
                break;
            if (e.forwarded) {
                ++c_forwarded;
                // A forwarded load now monitors its producer's tag —
                // that wait arises here, after issue, so the slot may
                // not be on the waiting list yet.
                if constexpr (View::kCompiled) {
                    if (needs_wakeup(e))
                        waiting.push_back(slot);
                }
            }
        }


        // An external interrupt gates decode from its arrival cycle on
        // (but never before interruptMinSeq); the entries already in
        // the RUU drain to completion below, so the cut at decode_seq
        // is the sequential prefix. A synchronous fault reaching the
        // head during the drain is older and wins — the commit phase
        // above runs first and sets done.
        const bool irq_stop = options.interruptAt != kNoCycle &&
                              cycle >= options.interruptAt &&
                              decode_seq >= options.interruptMinSeq;
        if (irq_stop && result.drainStartCycle == kNoCycle)
            result.drainStartCycle = cycle;

        // ---- phase 5: decode and issue (one instruction per cycle) ------
        if (!irq_stop && decode_seq < records.size() &&
            cycle >= next_decode) {
            const TraceRecord &rec = records[decode_seq];
            const Instruction &inst = rec.inst;
            bool stalled = false;

            if (options.modelIBuffers) {
                Cycle avail = ibuffers.fetch(rec.pc, cycle);
                if (avail > cycle) {
                    next_decode = avail;
                    stalled = true;
                }
            }

            if (!stalled && view.branchAt(decode_seq)) {
                // Branches resolve in the decode-and-issue stage once
                // the condition register value can be obtained — from
                // the register file, a bypass path, or a bus broadcast
                // happening this cycle.
                bool cond_ok = !inst.src1.valid() || readable(inst.src1);
                if (!cond_ok && inst.src1.valid() &&
                    counters.busy(inst.src1)) {
                    Tag watch = counters.latestTag(inst.src1);
                    cond_ok = std::find(cycle_tags.begin(),
                                        cycle_tags.end(),
                                        watch) != cycle_tags.end();
                }
                if (cond_ok) {
                    ++c_branches;
                    ++c_insts;
                    ++result.instructions;
                    notifyCommit(decode_seq, rec);
                    unsigned penalty = branchPenalty(rec.taken);
                    c_dead += penalty;
                    next_decode = cycle + penalty;
                    last_event = std::max(last_event, cycle);
                    ++decode_seq;
                } else {
                    ++c_branch_wait;
                }
            } else if (!stalled) {
                bool can_issue = true;
                if (count == ruu_size) {
                    ++c_no_slot;
                    can_issue = false;
                } else if (inst.dst.valid() &&
                           !counters.canAllocate(inst.dst)) {
                    ++c_ni;
                    can_issue = false;
                } else if (view.memAt(decode_seq) &&
                           !load_regs.hasFree()) {
                    ++c_no_lr;
                    can_issue = false;
                }

                if (can_issue) {
                    InflightOp &e = ruu[tail];
                    e = InflightOp{};
                    e.valid = true;
                    e.seq = decode_seq;
                    e.rec = &rec;
                    e.isLoad = view.loadAt(decode_seq);
                    e.isStore = view.storeAt(decode_seq);

                    for (unsigned s = 0; s < 2; ++s) {
                        RegId reg = s == 0 ? inst.src1 : inst.src2;
                        if (!reg.valid())
                            continue;
                        e.src[s].needed = true;
                        if (counters.busy(reg) && !readable(reg)) {
                            e.src[s].ready = false;
                            e.src[s].tag = counters.latestTag(reg);
                        }
                    }

                    if (inst.dst.valid()) {
                        unsigned instance = counters.allocate(inst.dst);
                        e.destTag = counters.makeTag(inst.dst, instance);
                        if (future_covers(inst.dst))
                            future_valid[inst.dst.flat()] = false;
                        if (ck)
                            ck->onTagAllocated(e.destTag, e.seq);
                    }
                    if (ck && e.isStore)
                        ck->onTagAllocated(storeTagFor(e.seq), e.seq);

                    // Instructions with no functional unit (NOP, HALT)
                    // are complete on arrival and only wait to commit.
                    if (view.fuAt(decode_seq) == FuKind::None)
                        e.executed = true;
                    else if constexpr (View::kCompiled)
                        ++undispatched;
                    if constexpr (View::kCompiled) {
                        if (needs_wakeup(e))
                            waiting.push_back(tail);
                    }

                    if (e.isMem())
                        mem_queue.push_back(tail);

                    tail = (tail + 1) % ruu_size;
                    ++count;
                    ++decode_seq;
                    next_decode = cycle + 1;
                }
            }
        }

        h_occupancy.sample(count);

        if (ck) {
            // §5: the NI counters must agree with the set of RUU
            // entries holding an uncommitted register writer.
            unsigned writers = 0;
            for (const InflightOp &e : ruu)
                if (e.valid && e.rec && e.rec->inst.dst.valid())
                    ++writers;
            unsigned ni_total = 0;
            for (unsigned f = 0; f < kNumArchRegs; ++f)
                ni_total += counters.instances(RegId::fromFlat(f));
            ck->onScoreboardSample(ni_total, writers);
            ck->require(count <= ruu_size,
                        "RUU occupancy exceeds capacity");
        }

        if ((decode_seq >= records.size() || irq_stop) && count == 0) {
            if (decode_seq < records.size()) {
                result.interrupted = true;
                result.fault = Fault::Interrupt;
                result.faultSeq = decode_seq;
                result.faultPc = records[decode_seq].pc;
            }
            result.cycles = last_event + 1;
            break;
        }
        bus.retireBefore(cycle);
    }

    _stats.counter("cycles") += result.cycles;
    return result;
}

} // namespace ruu
