#include "core/ruu_core.hh"

#include <algorithm>
#include <vector>

#include "core/ooo_support.hh"
#include "inject/ports.hh"
#include "uarch/banks.hh"
#include "uarch/fu.hh"
#include "uarch/ibuffer.hh"
#include "uarch/scoreboard.hh"

namespace ruu
{

RuuCore::RuuCore(const UarchConfig &config) : Core(config)
{
}

RunResult
RuuCore::runImpl(const Trace &trace, const RunOptions &options)
{
    RunResult result = makeInitialResult(trace, options);
    const unsigned ruu_size = _config.poolEntries;
    const BypassMode bypass = _config.bypass;

    // The RUU proper: a circular queue of reservation-station entries.
    std::vector<InflightOp> ruu(ruu_size);
    unsigned head = 0, tail = 0, count = 0;

    std::vector<unsigned> mem_queue; //!< RUU slots of live memory ops
    InstanceCounters counters(_config.counterBits);
    LoadRegisters load_regs(_config.loadRegisters);
    FuPipes pipes(_config);
    MemoryBanks banks(_config.memoryBanks, _config.bankBusyCycles);
    ResultBus bus(_config.resultBuses);
    IBuffers ibuffers;

    // The duplicated register files: §6.3's A future file (LimitedA
    // covers the eight A registers) or §4's full future file
    // (FutureFile covers all 144). Indexed by flat register number; a
    // register's duplicate is valid when its latest instance's value
    // has appeared on the result bus.
    std::array<bool, kNumArchRegs> future_valid;
    future_valid.fill(true);
    auto future_covers = [bypass](RegId reg) {
        if (bypass == BypassMode::FutureFile)
            return true;
        return bypass == BypassMode::LimitedA &&
               reg.file() == RegFile::A;
    };

    // Tags broadcast this cycle on either bus; a branch stalled in
    // decode watches these to pick its condition value off a bus.
    std::vector<Tag> cycle_tags;

    Counter &c_insts = _stats.counter("instructions");
    Counter &c_branches = _stats.counter("branches");
    Counter &c_dead = _stats.counter("branch_dead_cycles");
    Counter &c_branch_wait = _stats.counter("stall_branch_cond_cycles");
    Counter &c_no_slot = _stats.counter("stall_ruu_full_cycles");
    Counter &c_no_lr = _stats.counter("stall_no_load_reg_cycles");
    Counter &c_ni = _stats.counter("stall_ni_saturated_cycles");
    Counter &c_dispatched = _stats.counter("dispatches");
    Counter &c_forwarded = _stats.counter("forwarded_loads");
    Counter &c_bypass = _stats.counter("bypass_reads");
    Counter &c_future = _stats.counter("future_file_reads");
    Counter &c_commits = _stats.counter("commits");
    Histogram &h_occupancy = _stats.histogram("ruu_occupancy");

    SeqNum decode_seq = options.startSeq;
    Cycle next_decode = 0;
    Cycle last_event = 0;
    bool done = false;
    const auto &records = trace.records();
    lint::InvariantChecker *ck = invariants();

    // Fault/snapshot port registration (only when a tap is attached):
    // every RUU entry, the queue cursors, the NI/LI counters, the load
    // registers, the unit/bus/bank latches, the future file and the
    // committed register file. The `rec` host pointers are not ports.
    inject::FaultPortSet fault_ports;
    if (options.tap) {
        for (unsigned i = 0; i < ruu_size; ++i)
            inject::exposeInflightOp(
                fault_ports, "ruu[" + std::to_string(i) + "]", ruu[i]);
        inject::exposeCursor(fault_ports, "head", head, ruu_size);
        inject::exposeCursor(fault_ports, "tail", tail, ruu_size);
        inject::exposeCursor(fault_ports, "count", count, ruu_size + 1);
        counters.exposePorts(fault_ports, "counters");
        load_regs.exposePorts(fault_ports, "loadReg");
        pipes.exposePorts(fault_ports, "fu");
        banks.exposePorts(fault_ports, "banks");
        bus.exposePorts(fault_ports, "bus");
        if (options.modelIBuffers)
            ibuffers.exposePorts(fault_ports, "ibuf");
        for (unsigned f = 0; f < kNumArchRegs; ++f)
            fault_ports.addFlag(
                "futureValid." + RegId::fromFlat(f).toString(),
                future_valid[f]);
        result.state.exposePorts(fault_ports, "regs");
        fault_ports.add("decodeSeq", inject::PortClass::Sequence,
                        decode_seq, 32, records.size() + 1);
        fault_ports.add("nextDecode", inject::PortClass::Sequence,
                        next_decode, 32);
        options.tap->onRunStart(fault_ports);
    }

    /** Pool entry currently holding tag @p tag, or nullptr. */
    auto entry_with_tag = [&](Tag tag) -> InflightOp * {
        for (auto &e : ruu)
            if (e.valid && e.destTag == tag)
                return &e;
        return nullptr;
    };

    /**
     * Can a value of @p reg be obtained right now by the decode stage
     * (for a source operand or a branch condition)?
     */
    auto readable = [&](RegId reg) {
        if (!counters.busy(reg))
            return true; // architectural register file
        Tag tag = counters.latestTag(reg);
        switch (bypass) {
          case BypassMode::Full: {
            InflightOp *producer = entry_with_tag(tag);
            if (producer && producer->executed && !producer->faulted) {
                ++c_bypass;
                return true;
            }
            return false;
          }
          case BypassMode::LimitedA:
          case BypassMode::FutureFile:
            if (future_covers(reg) && future_valid[reg.flat()]) {
                ++c_future;
                return true;
            }
            return false;
          case BypassMode::None:
            return false;
        }
        return false;
    };

    /** Deliver a broadcast of (@p tag, @p value) to all monitors. */
    auto broadcast = [&](Tag tag, Word value) {
        for (auto &e : ruu)
            if (e.valid)
                e.wakeup(tag);
        load_regs.onBroadcast(tag, value);
        cycle_tags.push_back(tag);
    };

    /** Watchdog dump: one line per live RUU entry, oldest first. */
    auto wedge_detail = [&]() {
        std::string out = "  ruu occupancy " + std::to_string(count) +
                          "/" + std::to_string(ruu_size) + "\n";
        for (unsigned k = 0; k < count; ++k) {
            const InflightOp &e = ruu[(head + k) % ruu_size];
            if (!e.valid)
                continue;
            out += "  entry " + std::to_string((head + k) % ruu_size) +
                   ": seq " + std::to_string(e.seq) + " fu " +
                   fuKindName(e.isMem() ? FuKind::Memory
                                        : e.rec->inst.fu()) +
                   (e.executed ? " executed"
                    : e.dispatched ? " dispatched"
                    : e.readyToDispatch() ? " ready (no unit/bus)"
                                          : " waiting on operands") +
                   (e.faulted ? " faulted" : "") + "\n";
        }
        return out;
    };

    std::vector<unsigned> candidates; // reused every cycle
    for (Cycle cycle = 0; !done; ++cycle) {
        if (cycle > options.maxCycles) {
            markWedged(result, trace, cycle, options, decode_seq,
                       wedge_detail());
            return result;
        }
        if (options.tap)
            options.tap->onCycle(cycle, fault_ports);
        cycle_tags.clear();
        if (ck)
            ck->beginCycle(cycle);

        // ---- phase 4: dispatch to the functional units -------------------
        {
            candidates.clear();
            for (unsigned i = 0; i < ruu_size; ++i) {
                const InflightOp &e = ruu[i];
                if (e.valid && !e.executed && e.readyToDispatch())
                    candidates.push_back(i);
            }
            std::sort(candidates.begin(), candidates.end(),
                      [&](unsigned a, unsigned b) {
                          bool am = ruu[a].isMem(), bm = ruu[b].isMem();
                          if (am != bm)
                              return am; // §5: loads/stores first
                          return ruu[a].seq < ruu[b].seq;
                      });
            unsigned started = 0;
            for (unsigned slot : candidates) {
                if (started == _config.dispatchPaths)
                    break;
                InflightOp &e = ruu[slot];
                FuKind kind = e.isMem() ? FuKind::Memory
                                        : e.rec->inst.fu();
                unsigned latency =
                    e.isStore ? _config.storeLatency
                    : e.forwarded ? _config.forwardLatency
                                  : _config.latency(kind);
                if (!pipes.canStart(kind, cycle))
                    continue;
                // Memory operations also need their bank (when bank
                // conflicts are modeled); forwarded loads skip memory.
                bool to_memory = e.isMem() && !e.forwarded;
                if (to_memory && !banks.canAccess(e.rec->memAddr, cycle))
                    continue;
                bool needs_bus = !e.isStore;
                if (needs_bus && !bus.free(cycle + latency))
                    continue;
                pipes.start(kind, cycle);
                if (needs_bus)
                    bus.reserve(cycle + latency, e.destTag,
                                e.rec->result, e.seq);
                if (to_memory)
                    banks.access(e.rec->memAddr, cycle);
                e.dispatched = true;
                e.completeCycle = cycle + latency;
                ++c_dispatched;
                ++started;
            }
        }
        // ---- phase 1: completions (functional-unit result bus) ---------
        for (auto &e : ruu) {
            if (!e.valid || !e.dispatched || e.executed ||
                e.completeCycle != cycle) {
                continue;
            }
            e.executed = true;
            last_event = cycle;

            if (e.rec->fault != Fault::None) {
                // Detected in the unit; surfaced only when the entry
                // reaches the head, keeping the interrupt precise.
                e.faulted = true;
                if (result.drainStartCycle == kNoCycle)
                    result.drainStartCycle = cycle;
                continue;
            }

            Tag tag = e.isStore ? storeTagFor(e.seq) : e.destTag;
            Word value = e.isStore ? e.rec->storeValue : e.rec->result;
            broadcast(tag, value);
            if (ck) {
                if (e.isStore)
                    ck->onStoreBroadcast(tag);
                else
                    ck->onResultBroadcast(cycle, tag);
            }

            // Loads are finished with their load register once their
            // data is delivered; stores hold theirs until commit.
            if (e.isLoad)
                load_regs.complete(static_cast<unsigned>(e.loadReg));

            // Maintain the future file(s) (§6.3 / §4).
            RegId dst = e.rec->inst.dst;
            if (dst.valid() && future_covers(dst) &&
                counters.latestTag(dst) == e.destTag) {
                future_valid[dst.flat()] = true;
            }
        }

        // ---- phase 2: in-order commit from the head ---------------------
        for (unsigned w = 0; w < _config.commitWidth && count > 0; ++w) {
            InflightOp &e = ruu[head];
            if (!e.executed)
                break;

            if (e.faulted) {
                // Precise interrupt: the committed state is exactly the
                // sequential execution of instructions [start, seq).
                result.interrupted = true;
                result.fault = e.rec->fault;
                result.faultSeq = e.seq;
                result.faultPc = e.rec->pc;
                result.cycles = cycle + 1;
                done = true;
                break;
            }

            const TraceRecord &rec = *e.rec;
            if (ck)
                ck->onCommit(e.seq);
            notifyCommit(e.seq, rec);
            if (rec.inst.dst.valid()) {
                result.state.write(rec.inst.dst, rec.result);
                counters.release(rec.inst.dst);
                // The RUU-to-register-file bus is itself monitored by
                // the reservation stations (§6.2), so commitment is a
                // second broadcast of the same tag.
                broadcast(e.destTag, rec.result);
                if (ck) {
                    ck->onCommitBroadcast(cycle, e.destTag);
                    ck->onTagReleased(e.destTag);
                }
            }
            if (e.isStore) {
                bool ok = result.memory.store(rec.memAddr,
                                              rec.storeValue);
                ruu_assert(ok, "store to unmapped address in trace");
                load_regs.complete(static_cast<unsigned>(e.loadReg));
                if (ck)
                    ck->onTagReleased(storeTagFor(e.seq));
            }

            ++c_commits;
            ++c_insts;
            ++result.instructions;
            last_event = cycle;

            bool was_halt = rec.inst.op == Opcode::HALT;
            e.valid = false;
            std::erase(mem_queue, head);
            head = (head + 1) % ruu_size;
            --count;

            if (was_halt) {
                result.cycles = cycle + 1;
                done = true;
                break;
            }
        }
        if (done)
            break;

        // ---- phase 3: memory-address resolution, in program order ------
        for (unsigned slot : mem_queue) {
            InflightOp &e = ruu[slot];
            if (e.addrResolved)
                continue;
            if (!e.src[0].ready)
                break;
            if (!resolveMemOp(e, load_regs))
                break;
            if (e.forwarded)
                ++c_forwarded;
        }


        // An external interrupt gates decode from its arrival cycle on
        // (but never before interruptMinSeq); the entries already in
        // the RUU drain to completion below, so the cut at decode_seq
        // is the sequential prefix. A synchronous fault reaching the
        // head during the drain is older and wins — the commit phase
        // above runs first and sets done.
        const bool irq_stop = options.interruptAt != kNoCycle &&
                              cycle >= options.interruptAt &&
                              decode_seq >= options.interruptMinSeq;
        if (irq_stop && result.drainStartCycle == kNoCycle)
            result.drainStartCycle = cycle;

        // ---- phase 5: decode and issue (one instruction per cycle) ------
        if (!irq_stop && decode_seq < records.size() &&
            cycle >= next_decode) {
            const TraceRecord &rec = records[decode_seq];
            const Instruction &inst = rec.inst;
            bool stalled = false;

            if (options.modelIBuffers) {
                Cycle avail = ibuffers.fetch(rec.pc, cycle);
                if (avail > cycle) {
                    next_decode = avail;
                    stalled = true;
                }
            }

            if (!stalled && isBranch(inst.op)) {
                // Branches resolve in the decode-and-issue stage once
                // the condition register value can be obtained — from
                // the register file, a bypass path, or a bus broadcast
                // happening this cycle.
                bool cond_ok = !inst.src1.valid() || readable(inst.src1);
                if (!cond_ok && inst.src1.valid() &&
                    counters.busy(inst.src1)) {
                    Tag watch = counters.latestTag(inst.src1);
                    cond_ok = std::find(cycle_tags.begin(),
                                        cycle_tags.end(),
                                        watch) != cycle_tags.end();
                }
                if (cond_ok) {
                    ++c_branches;
                    ++c_insts;
                    ++result.instructions;
                    notifyCommit(decode_seq, rec);
                    unsigned penalty = branchPenalty(rec.taken);
                    c_dead += penalty;
                    next_decode = cycle + penalty;
                    last_event = std::max(last_event, cycle);
                    ++decode_seq;
                } else {
                    ++c_branch_wait;
                }
            } else if (!stalled) {
                bool can_issue = true;
                if (count == ruu_size) {
                    ++c_no_slot;
                    can_issue = false;
                } else if (inst.dst.valid() &&
                           !counters.canAllocate(inst.dst)) {
                    ++c_ni;
                    can_issue = false;
                } else if (isMemory(inst.op) && !load_regs.hasFree()) {
                    ++c_no_lr;
                    can_issue = false;
                }

                if (can_issue) {
                    InflightOp &e = ruu[tail];
                    e = InflightOp{};
                    e.valid = true;
                    e.seq = decode_seq;
                    e.rec = &rec;
                    e.isLoad = isLoad(inst.op);
                    e.isStore = isStore(inst.op);

                    for (unsigned s = 0; s < 2; ++s) {
                        RegId reg = s == 0 ? inst.src1 : inst.src2;
                        if (!reg.valid())
                            continue;
                        e.src[s].needed = true;
                        if (counters.busy(reg) && !readable(reg)) {
                            e.src[s].ready = false;
                            e.src[s].tag = counters.latestTag(reg);
                        }
                    }

                    if (inst.dst.valid()) {
                        unsigned instance = counters.allocate(inst.dst);
                        e.destTag = counters.makeTag(inst.dst, instance);
                        if (future_covers(inst.dst))
                            future_valid[inst.dst.flat()] = false;
                        if (ck)
                            ck->onTagAllocated(e.destTag, e.seq);
                    }
                    if (ck && e.isStore)
                        ck->onTagAllocated(storeTagFor(e.seq), e.seq);

                    // Instructions with no functional unit (NOP, HALT)
                    // are complete on arrival and only wait to commit.
                    if (inst.fu() == FuKind::None)
                        e.executed = true;

                    if (e.isMem())
                        mem_queue.push_back(tail);

                    tail = (tail + 1) % ruu_size;
                    ++count;
                    ++decode_seq;
                    next_decode = cycle + 1;
                }
            }
        }

        h_occupancy.sample(count);

        if (ck) {
            // §5: the NI counters must agree with the set of RUU
            // entries holding an uncommitted register writer.
            unsigned writers = 0;
            for (const InflightOp &e : ruu)
                if (e.valid && e.rec && e.rec->inst.dst.valid())
                    ++writers;
            unsigned ni_total = 0;
            for (unsigned f = 0; f < kNumArchRegs; ++f)
                ni_total += counters.instances(RegId::fromFlat(f));
            ck->onScoreboardSample(ni_total, writers);
            ck->require(count <= ruu_size,
                        "RUU occupancy exceeds capacity");
        }

        if ((decode_seq >= records.size() || irq_stop) && count == 0) {
            if (decode_seq < records.size()) {
                result.interrupted = true;
                result.fault = Fault::Interrupt;
                result.faultSeq = decode_seq;
                result.faultPc = records[decode_seq].pc;
            }
            result.cycles = last_event + 1;
            break;
        }
        bus.retireBefore(cycle);
    }

    _stats.counter("cycles") += result.cycles;
    return result;
}

} // namespace ruu
