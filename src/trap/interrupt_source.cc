#include "trap/interrupt_source.hh"

#include <algorithm>

namespace ruu::trap
{

InterruptSource
InterruptSource::periodic(Cycle period, unsigned priority)
{
    InterruptSource source;
    source._period = period > 0 ? period : 1;
    source._priority = priority;
    source._nextTick = source._period;
    return source;
}

InterruptSource
InterruptSource::schedule(std::vector<InterruptEvent> events)
{
    InterruptSource source;
    source._events = std::move(events);
    std::sort(source._events.begin(), source._events.end(),
              [](const InterruptEvent &a, const InterruptEvent &b) {
                  if (a.cycle != b.cycle)
                      return a.cycle < b.cycle;
                  return a.priority > b.priority;
              });
    return source;
}

std::optional<InterruptEvent>
InterruptSource::next(unsigned minPriority) const
{
    for (const InterruptEvent &e : _events)
        if (e.priority > minPriority)
            return e;
    if (_period != 0 && _priority > minPriority)
        return InterruptEvent{_nextTick, _priority};
    return std::nullopt;
}

void
InterruptSource::delivered(const InterruptEvent &event, Cycle at)
{
    ++_delivered;
    for (auto it = _events.begin(); it != _events.end(); ++it) {
        if (it->cycle == event.cycle && it->priority == event.priority) {
            _events.erase(it);
            return;
        }
    }
    if (_period != 0)
        _nextTick = (at / _period + 1) * _period;
}

} // namespace ruu::trap
