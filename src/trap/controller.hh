/**
 * @file
 * End-to-end interrupt servicing over the trace-driven timing cores.
 *
 * The cores are trace replayers: they can stop decoding at a cycle
 * (RunOptions::interruptAt) and drain to the sequential prefix, but
 * they cannot fetch a handler — there is no handler in their trace.
 * The TrapController closes the loop by running the machine as a
 * sequence of *segments*:
 *
 *   1. run the core on the current context's trace, with interruptAt
 *      set to the next eligible InterruptSource event (or to nothing);
 *   2. at an interrupt cut — or a synchronous fault on a precise
 *      core — perform the architectural delivery between segments:
 *      exchange packages (trap/trap.hh), cause/epc update, a charged
 *      exchange latency;
 *   3. generate the handler's trace functionally (the handler is a
 *      real in-ISA program; MFEPC/MFCAUSE read the live trap
 *      registers) and run it as the next segment *on the same core* —
 *      handlers pay the same structural hazards as any other code;
 *   4. at the handler's RTI, exchange back and resume the interrupted
 *      context at the restored epc, regenerating its remaining trace
 *      (the handler may have written memory the pre-computed trace
 *      values no longer reflect — or edited the saved frame/epc, which
 *      is how a handler repairs a restartable fault);
 *   5. nested interrupts: inside a handler's EINT..DINT window a
 *      higher-priority event may cut the handler segment itself, and
 *      delivery recurses one level deeper. The per-level exchange
 *      packages are the nesting stack.
 *
 * Every delivery is recorded in a log ordered by global committed-
 * instruction count; replayFunctional() re-executes the whole run —
 * program, handlers, exchanges — on the sequential machine from that
 * log alone. A timing run and its replay must agree bit-exactly on
 * final registers, memory and trap state; that is the storm sweep's
 * whole-run oracle.
 */

#ifndef RUU_TRAP_CONTROLLER_HH
#define RUU_TRAP_CONTROLLER_HH

#include <memory>
#include <string>
#include <vector>

#include "core/core.hh"
#include "trap/handlers.hh"
#include "trap/interrupt_source.hh"
#include "trap/trap.hh"

namespace ruu::trap
{

/** Controller configuration. */
struct TrapConfig
{
    TrapLayout layout;

    /** Cycles charged for each exchange (delivery and RTI). */
    Cycle exchangeCycles = 8;

    /**
     * Data-memory capacity in words for the run and its replay. The
     * exchange packages must fit below it (TrapLayout::fits). Storm
     * sweeps restart the core once per delivery, and every restart
     * copies the memory image — a compact memory makes a
     * thousand-delivery sweep dramatically cheaper.
     */
    std::size_t memoryWords = Memory::kDefaultWords;

    /** The handler kernel; counterHandler() when null. */
    std::shared_ptr<const Program> handler;

    /** Per-segment watchdog budget (RunOptions::maxCycles). */
    std::uint64_t maxCyclesPerSegment = 2'000'000'000ull;

    /** Handler runaway guard (dynamic instructions per activation). */
    std::uint64_t maxHandlerInstructions = 100'000;

    /** Total-delivery guard against synchronous fault storms. */
    std::uint64_t maxDeliveries = 1u << 20;

    /** Attach the lockstep commit oracle to every segment. */
    bool checkOracle = false;
};

/** One delivered interrupt or fault, in chronological (DFS) order. */
struct Delivery
{
    Word cause = 0;
    unsigned level = 0;   //!< handler level entered
    bool sync = false;    //!< synchronous fault (else external)
    ParcelAddr epc = 0;   //!< saved exception PC

    /**
     * Instructions committed — across all contexts — before this
     * delivery. replayFunctional() steps the sequential machine to
     * exactly this count before performing the exchange.
     */
    std::uint64_t globalInstr = 0;

    Cycle cycle = 0;        //!< global delivery cycle
    Cycle handlerCycles = 0; //!< delivery to matching RTI, nested incl.

    /**
     * Global cycle the external request was raised. kNoCycle for
     * synchronous faults, which have no external arrival.
     */
    Cycle arrivalCycle = kNoCycle;

    /**
     * Arrival to handler entry, exchange included (async deliveries;
     * kNoCycle when unmeasured). Asserted against the certified
     * end-to-end response ceiling (lint::WcirtBound::responseCeiling)
     * when the arrival process makes that ceiling applicable — a
     * purely periodic source with no synchronous deliveries in play.
     */
    Cycle responseCycles = kNoCycle;

    /**
     * Measured drain residue of the cut segment: cycles from the
     * first cycle the core held the stop condition (or detected the
     * fault) to the end of the segment. kNoCycle when the core did
     * not report a drain start. Asserted <= the certified WCIRT cut
     * ceiling (lint::WcirtBreakdown::cut) on every delivery.
     */
    Cycle drainCycles = kNoCycle;
};

/** Outcome of one interrupt-serviced run. */
struct TrapRunResult
{
    bool completed = false; //!< the program ran to HALT
    bool failed = false;    //!< unrecoverable servicing error
    bool wedged = false;    //!< a segment tripped the cycle watchdog
    std::string error;      //!< diagnostic when failed or wedged

    Cycle cycles = 0;                  //!< total, exchanges included
    std::uint64_t instructions = 0;    //!< committed, all contexts
    std::uint64_t handlerInstructions = 0;
    std::uint64_t dropped = 0; //!< events pending at program end
    unsigned maxDepth = 0;     //!< deepest handler level reached

    /**
     * Synchronous deliveries taken from an imprecise machine state
     * (non-precise core): serviced best-effort, but the run is no
     * longer replayable bit-exactly.
     */
    std::uint64_t impreciseSyncDeliveries = 0;

    ArchState state;
    Memory memory;
    TrapRegs trapRegs;
    std::vector<Delivery> deliveries;

    /** First per-segment commit-oracle divergence (empty when none). */
    std::string oracleFailure;

    /**
     * Certified worst-case delivery ceiling for this (core scheme,
     * config) — lint::WcirtBound::cycles, i.e. drain + restart +
     * exchange. 0 when the core's scheme could not be resolved
     * (test-only cores) and no bound was asserted.
     */
    std::uint64_t wcirtCeiling = 0;

    /**
     * Worst measured delivery latency across all deliveries: drain
     * residue + exchange. 0 when no delivery reported a measured
     * drain. Always <= wcirtCeiling when the ceiling is nonzero —
     * the controller asserts this per delivery, in-run.
     */
    Cycle maxDeliveryLatency = 0;

    /** Worst measured drain residue across deliveries (0 when none). */
    Cycle maxDrainCycles() const;

    bool ok() const
    {
        return completed && !failed && !wedged && oracleFailure.empty();
    }

    double meanHandlerCycles() const;
    Cycle maxHandlerCycles() const;
};

/** Segmented trap-servicing executor over one timing core. */
class TrapController
{
  public:
    TrapController(Core &core, TrapConfig config);

    /**
     * Run @p trace's program on the core, delivering interrupts from
     * @p source and servicing synchronous faults.
     *
     * @p injectAt lists outer-program dynamic-instruction positions to
     * annotate with @p injectKind — positions count committed outer
     * instructions, so they stay meaningful across the resume
     * boundaries where the trace is regenerated. Each injected fault
     * fires once and is then considered repaired by the handler.
     */
    TrapRunResult run(const Trace &trace, InterruptSource source,
                      const std::vector<SeqNum> &injectAt = {},
                      Fault injectKind = Fault::PageFault);

    const TrapConfig &config() const { return _config; }

  private:
    Core &_core;
    TrapConfig _config;
};

/** Outcome of a functional replay of a delivery log. */
struct ReplayResult
{
    bool ok = false;
    std::string error;
    ArchState state;
    Memory memory;
    TrapRegs trapRegs;
    std::uint64_t instructions = 0;
};

/**
 * Re-execute a TrapController run purely functionally: the program and
 * handler step on the sequential machine, and each logged delivery's
 * exchange is performed when the global committed-instruction count
 * reaches its recorded position. The delivery log alone determines the
 * replay — injected faults need no replica here, because a faulting
 * instruction never executes before its delivery and restarts cleanly
 * from the restored epc afterwards. The timing run's final state,
 * memory and trap registers must match this bit-exactly (async-only
 * runs and precise-core sync runs; see
 * TrapRunResult::impreciseSyncDeliveries).
 */
ReplayResult replayFunctional(std::shared_ptr<const Program> program,
                              const TrapConfig &config,
                              const std::vector<Delivery> &deliveries);

} // namespace ruu::trap

#endif // RUU_TRAP_CONTROLLER_HH
