#include "trap/controller.hh"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "arch/executor.hh"
#include "arch/func_sim.hh"
#include "common/logging.hh"
#include "lint/wcirt.hh"
#include "oracle/commit_oracle.hh"
#include "sim/machine.hh"

namespace ruu::trap
{

namespace
{

/** One live execution context: the outer program or a handler level. */
struct Ctx
{
    std::shared_ptr<const Program> prog;
    Trace trace;              //!< remaining dynamic instructions
    SeqNum segStart = 0;      //!< next dynamic instruction to run
    unsigned level = 0;       //!< 0 = the interrupted program
    bool ieAtTraceStart = true;
    bool needsRegen = false;  //!< an RTI ran; trace values may be stale
    bool rtiShadow = false;   //!< one instruction guaranteed post-RTI
    std::uint64_t committed = 0; //!< instructions committed, this ctx
    std::size_t deliveryIndex = 0; //!< handler ctx: its Delivery entry
    Cycle entryCycle = 0;     //!< handler ctx: global cycle of the cut
};

/** Interrupt-eligible cut range [minSeq, maxSeq] within a trace. */
struct IrqWindow
{
    bool open = false;
    SeqNum minSeq = 0;
    SeqNum maxSeq = 0;
};

/**
 * Compute where in @p trace (from @p segStart) an asynchronous cut may
 * legally land, given the EINT/DINT instructions the trace itself
 * carries. A cut at seq s commits exactly [segStart, s), so a cut at a
 * DINT's own seq is still inside the window — the DINT has not
 * committed yet.
 */
IrqWindow
irqWindow(const Trace &trace, SeqNum segStart, bool ieInitial)
{
    bool ie = ieInitial;
    for (SeqNum s = 0; s < segStart && s < trace.size(); ++s) {
        Opcode op = trace.at(s).inst.op;
        if (op == Opcode::EINT)
            ie = true;
        else if (op == Opcode::DINT)
            ie = false;
    }

    IrqWindow win;
    if (ie) {
        win.minSeq = segStart;
    } else {
        SeqNum eint = kNoSeqNum;
        for (SeqNum s = segStart; s < trace.size(); ++s) {
            if (trace.at(s).inst.op == Opcode::EINT) {
                eint = s;
                break;
            }
        }
        if (eint == kNoSeqNum)
            return win;
        win.minSeq = eint + 1;
    }
    win.open = true;
    win.maxSeq = trace.size();
    for (SeqNum s = win.minSeq; s < trace.size(); ++s) {
        if (trace.at(s).inst.op == Opcode::DINT) {
            win.maxSeq = s;
            break;
        }
    }
    return win;
}

/** A functionally generated handler trace, or why it could not be. */
struct HandlerGen
{
    Trace trace;
    bool ok = false;
    std::string error;
};

/**
 * Execute the handler functionally from @p startIndex on *copies* of
 * the architectural triple and record its trace, stopping at RTI. The
 * live trap registers are passed by value for the same reason: MFEPC /
 * MFCAUSE read them, and generation must not disturb the real machine.
 * A fault mid-handler is recorded and generation stops — the timing
 * core will surface it and the controller reports the double fault.
 */
HandlerGen
generateHandlerTrace(const std::shared_ptr<const Program> &prog,
                     std::size_t startIndex, const ArchState &state,
                     const Memory &memory, TrapRegs trap,
                     std::uint64_t maxInstructions)
{
    HandlerGen gen;
    gen.trace = Trace(prog);
    ArchState st = state;
    Memory mem = memory;
    std::size_t index = startIndex;
    while (true) {
        if (gen.trace.size() >= maxInstructions) {
            std::ostringstream oss;
            oss << "handler '" << prog->name() << "' ran "
                << maxInstructions << " instructions without RTI";
            gen.error = oss.str();
            return gen;
        }
        if (index >= prog->size()) {
            gen.error = "handler control flow ran off the program end";
            return gen;
        }
        ExecOutcome out = execute(*prog, index, st, mem, &trap);
        TraceRecord rec;
        rec.inst = prog->inst(index);
        rec.staticIndex = index;
        rec.pc = prog->pc(index);
        rec.memAddr = out.memAddr;
        rec.result = out.value;
        rec.storeValue = out.storeValue;
        rec.taken = out.taken;
        rec.fault = out.fault;
        gen.trace.append(rec);
        if (out.fault != Fault::None || out.rti) {
            gen.ok = true;
            return gen;
        }
        if (out.halted) {
            gen.error = "handler reached HALT; handlers must end in RTI";
            return gen;
        }
        index = *out.nextIndex;
    }
}

/**
 * Annotate the one-shot injected faults that fall inside @p trace.
 * Positions count committed outer instructions, so a position j maps
 * to trace seq j - @p committed after each regeneration.
 */
void
annotateInjects(Trace &trace, const std::vector<SeqNum> &injects,
                std::uint64_t committed, Fault kind)
{
    for (SeqNum seq : injects) {
        if (seq >= committed && seq - committed < trace.size())
            trace.injectFault(seq - committed, kind);
    }
}

/** Measured drain residue of one segment, or kNoCycle when the core
 * reported no drain start (the segment ended without a stop). */
Cycle
measuredDrain(const RunResult &seg)
{
    if (seg.drainStartCycle == kNoCycle)
        return kNoCycle;
    return seg.cycles > seg.drainStartCycle
               ? seg.cycles - seg.drainStartCycle
               : 0;
}

// Watchdog derivation: a segment can never legitimately run past its
// certified serialized ceiling, so the per-segment budget is the
// ceiling with generous slack instead of the old magic constant.
constexpr std::uint64_t kWatchdogSlack = 4;
constexpr std::uint64_t kWatchdogHeadroom = 1024;

/**
 * Per-segment watchdog budget. The configured constant remains both
 * the fallback (no certified ceiling: test-only cores whose name is
 * not a scheme) and an upper clamp (a deliberately tiny configured
 * budget still wins, so wedge-detection tests keep their semantics).
 */
std::uint64_t
watchdogBudget(std::uint64_t configured, std::uint64_t ceiling)
{
    if (ceiling == lint::kWcirtUnbounded)
        return configured;
    constexpr std::uint64_t kMax =
        std::numeric_limits<std::uint64_t>::max();
    if (ceiling > (kMax - kWatchdogHeadroom) / kWatchdogSlack)
        return configured;
    return std::min(configured,
                    ceiling * kWatchdogSlack + kWatchdogHeadroom);
}

/**
 * The in-run soundness gates of the certified WCIRT ceiling: every
 * measured drain residue must fit the cut ceiling, and — when
 * @p responseCovered says the arrival process is one the end-to-end
 * ceiling models — the measured arrival-to-entry response must fit
 * responseCeiling(). A violation is a simulator (or analysis) bug, so
 * both are fatal, exactly like the resource-bound cycle floor.
 */
void
checkDeliveryAgainstBound(const lint::WcirtBound &bound,
                          const Delivery &d, const char *core,
                          bool responseCovered)
{
    if (d.drainCycles != kNoCycle &&
        d.drainCycles > bound.breakdown.cut) {
        ruu_fatal("WCIRT violation on %s: measured drain residue %llu "
                  "exceeds the certified cut ceiling %llu",
                  core, static_cast<unsigned long long>(d.drainCycles),
                  static_cast<unsigned long long>(bound.breakdown.cut));
    }
    const std::uint64_t response = bound.responseCeiling();
    if (responseCovered && d.responseCycles != kNoCycle &&
        response != lint::kWcirtUnbounded && d.responseCycles > response) {
        ruu_fatal("WCIRT violation on %s: measured response %llu "
                  "exceeds the certified end-to-end ceiling %llu",
                  core,
                  static_cast<unsigned long long>(d.responseCycles),
                  static_cast<unsigned long long>(response));
    }
}

} // namespace

double
TrapRunResult::meanHandlerCycles() const
{
    if (deliveries.empty())
        return 0.0;
    double sum = 0.0;
    for (const Delivery &d : deliveries)
        sum += static_cast<double>(d.handlerCycles);
    return sum / static_cast<double>(deliveries.size());
}

Cycle
TrapRunResult::maxHandlerCycles() const
{
    Cycle best = 0;
    for (const Delivery &d : deliveries)
        best = std::max(best, d.handlerCycles);
    return best;
}

Cycle
TrapRunResult::maxDrainCycles() const
{
    Cycle best = 0;
    for (const Delivery &d : deliveries)
        if (d.drainCycles != kNoCycle)
            best = std::max(best, d.drainCycles);
    return best;
}

TrapController::TrapController(Core &core, TrapConfig config)
    : _core(core), _config(std::move(config))
{
}

TrapRunResult
TrapController::run(const Trace &trace, InterruptSource source,
                    const std::vector<SeqNum> &injectAt, Fault injectKind)
{
    TrapRunResult res;
    if (!trace.programPtr()) {
        res.failed = true;
        res.error = "trap controller needs a trace bound to its program";
        return res;
    }

    std::shared_ptr<const Program> handlerProg =
        _config.handler
            ? _config.handler
            : std::make_shared<const Program>(counterHandler());

    // Certified WCIRT ceiling of this (scheme, config, workload,
    // handler): the cut ceiling is asserted against every measured
    // drain residue below, and the per-segment watchdog budgets derive
    // from trace ceilings instead of the configured constant. A
    // test-only core whose name is not one of the six schemes runs
    // without a bound, on the constant alone.
    std::optional<CoreKind> kind = coreKindFromName(_core.name());
    const lint::WcirtBound *bound = nullptr;
    if (kind) {
        lint::WcirtParams params;
        params.exchangeCycles = _config.exchangeCycles;
        params.maxLevels = _config.layout.maxLevels;
        bound = &lint::cachedWcirtBound(trace, *handlerProg,
                                        _core.config(), *kind, params);
        res.wcirtCeiling = bound->cycles;
    }

    // The architectural triple every segment threads through.
    ArchState state;
    Memory memory(_config.memoryWords);
    for (const auto &init : trace.program().dataInits())
        memory.set(init.addr, init.value);
    if (!initTrapMemory(memory, _config.layout)) {
        res.failed = true;
        res.error = "exchange packages do not fit in data memory";
        return res;
    }
    TrapRegs regs;
    regs.setIe(true);

    std::vector<SeqNum> injects(injectAt.begin(), injectAt.end());
    std::sort(injects.begin(), injects.end());
    injects.erase(std::unique(injects.begin(), injects.end()),
                  injects.end());

    std::vector<Ctx> stack;
    {
        Ctx outer;
        outer.prog = trace.programPtr();
        outer.trace = trace;
        annotateInjects(outer.trace, injects, 0, injectKind);
        stack.push_back(std::move(outer));
    }

    Cycle now = 0;
    std::uint64_t globalInstr = 0;

    // Progress marker of the last synchronous delivery, for detecting
    // a fault whose handler did not repair it (outer instructions
    // committed is the progress measure — the global count also moves
    // with handler instructions and would mask the loop).
    bool sawSync = false;
    std::uint64_t lastSyncCommitted = 0;
    ParcelAddr lastSyncEpc = 0;

    auto fail = [&res](std::string message) {
        res.failed = true;
        res.error = std::move(message);
    };

    // The end-to-end response ceiling models a purely periodic arrival
    // process on an undisturbed run: no injected faults, and no
    // synchronous delivery so far (a repair handler's cycles are
    // queueing the model does not cover).
    const bool arrivalsCovered = injectAt.empty();
    auto recordDelivery = [&](const Delivery &d) {
        if (bound)
            checkDeliveryAgainstBound(*bound, d, _core.name(),
                                      !d.sync && arrivalsCovered &&
                                          !sawSync &&
                                          source.periodicOnly());
        if (d.drainCycles != kNoCycle)
            res.maxDeliveryLatency =
                std::max(res.maxDeliveryLatency,
                         d.drainCycles + _config.exchangeCycles);
        res.deliveries.push_back(d);
    };

    while (true) {
        Ctx &ctx = stack.back();

        if (ctx.needsRegen) {
            // The handler underneath may have written memory this
            // trace's precomputed values depend on, or edited the
            // saved epc/frame in its exchange package — so the rest of
            // the context is always re-derived from the restored
            // architectural state. This is also exactly what makes a
            // repaired restartable fault work.
            auto index = ctx.prog->indexOfPc(
                static_cast<ParcelAddr>(regs.epc));
            if (!index) {
                std::ostringstream oss;
                oss << "restored epc " << regs.epc
                    << " is not an instruction boundary of '"
                    << ctx.prog->name() << "'";
                fail(oss.str());
                break;
            }
            if (ctx.level == 0) {
                FuncResult fr =
                    resumeFunctional(ctx.prog, *index, state, memory);
                ctx.trace = std::move(fr.trace);
                annotateInjects(ctx.trace, injects, ctx.committed,
                                injectKind);
            } else {
                HandlerGen gen = generateHandlerTrace(
                    ctx.prog, *index, state, memory, regs,
                    _config.maxHandlerInstructions);
                if (!gen.ok) {
                    fail(std::move(gen.error));
                    break;
                }
                ctx.trace = std::move(gen.trace);
            }
            ctx.segStart = 0;
            ctx.ieAtTraceStart = regs.ie();
            ctx.needsRegen = false;
        }

        if (res.deliveries.size() >= _config.maxDeliveries) {
            std::ostringstream oss;
            oss << "delivery storm: " << res.deliveries.size()
                << " deliveries without completing '"
                << stack.front().prog->name() << "'";
            fail(oss.str());
            break;
        }

        IrqWindow win =
            irqWindow(ctx.trace, ctx.segStart, ctx.ieAtTraceStart);
        bool canNest = ctx.level + 1 < _config.layout.maxLevels;
        std::optional<InterruptEvent> event;
        if (win.open && canNest)
            event = source.next(ctx.level);

        RunOptions opts;
        opts.startSeq = ctx.segStart;
        opts.initialState = &state;
        opts.initialMemory = &memory;
        opts.maxCycles = _config.maxCyclesPerSegment;
        if (kind)
            opts.maxCycles = watchdogBudget(
                _config.maxCyclesPerSegment,
                lint::wcirtTraceCeiling(ctx.trace, _core.config(),
                                        *kind));
        if (event) {
            opts.interruptAt = event->cycle > now ? event->cycle - now : 0;
            opts.interruptMinSeq = win.minSeq;
            // The instruction shadow of RTI: the resumed context always
            // commits at least one instruction before the next delivery,
            // so an interrupt storm degrades throughput instead of
            // starving the program forever.
            if (ctx.rtiShadow)
                opts.interruptMinSeq =
                    std::max(opts.interruptMinSeq, ctx.segStart + 1);
        }
        ctx.rtiShadow = false;

        std::optional<oracle::CommitOracle> orc;
        if (_config.checkOracle && res.oracleFailure.empty()) {
            orc.emplace(ctx.trace, _core, opts);
            orc->seedTrapRegs(regs);
            opts.observer = &*orc;
        }

        RunResult seg = _core.run(ctx.trace, opts);

        now += seg.cycles;
        globalInstr += seg.instructions;
        ctx.committed += seg.instructions;
        if (ctx.level > 0)
            res.handlerInstructions += seg.instructions;

        if (seg.wedged) {
            res.wedged = true;
            res.error = seg.diagnostic;
            state = std::move(seg.state);
            memory = std::move(seg.memory);
            break;
        }

        if (orc && !orc->finish(seg))
            res.oracleFailure = orc->report();

        state = std::move(seg.state);
        memory = std::move(seg.memory);

        if (!seg.interrupted) {
            if (ctx.level == 0) {
                res.completed = true;
                break;
            }
            // The handler drained through its RTI: exchange back and
            // resume the interrupted context below.
            if (!returnFromTrap(state, memory, regs, _config.layout)) {
                fail("RTI executed outside an active trap level");
                break;
            }
            now += _config.exchangeCycles;
            res.deliveries[ctx.deliveryIndex].handlerCycles =
                now - ctx.entryCycle;
            stack.pop_back();
            stack.back().needsRegen = true;
            stack.back().rtiShadow = true;
            continue;
        }

        if (seg.fault == Fault::Interrupt) {
            // Asynchronous cut: instructions [segStart, faultSeq) have
            // committed and the drained state is the sequential prefix.
            ctx.segStart = seg.faultSeq;
            bool within = event && seg.faultSeq >= win.minSeq &&
                          seg.faultSeq <= win.maxSeq;
            if (!within)
                continue; // window closed first; the event stays pending

            unsigned level = ctx.level + 1;
            Word cause = kCauseExternal + event->priority;
            regs.setIe(true); // the cut point was interrupt-enabled
            if (!deliverTrap(state, memory, regs, _config.layout, level,
                             cause, seg.faultPc)) {
                fail("trap delivery failed: exchange package unmapped");
                break;
            }
            source.delivered(*event, now);
            now += _config.exchangeCycles;

            Delivery d;
            d.cause = cause;
            d.level = level;
            d.sync = false;
            d.epc = seg.faultPc;
            d.globalInstr = globalInstr;
            d.cycle = now;
            d.arrivalCycle = event->cycle;
            d.responseCycles =
                now - std::min<Cycle>(event->cycle, now);
            d.drainCycles = measuredDrain(seg);
            recordDelivery(d);
            res.maxDepth = std::max(res.maxDepth, level);

            HandlerGen gen = generateHandlerTrace(
                handlerProg, 0, state, memory, regs,
                _config.maxHandlerInstructions);
            if (!gen.ok) {
                fail(std::move(gen.error));
                break;
            }
            Ctx h;
            h.prog = handlerProg;
            h.trace = std::move(gen.trace);
            h.level = level;
            h.ieAtTraceStart = false;
            h.deliveryIndex = res.deliveries.size() - 1;
            h.entryCycle = now - _config.exchangeCycles;
            stack.push_back(std::move(h));
            continue;
        }

        // A synchronous fault surfaced.
        if (ctx.level > 0) {
            std::ostringstream oss;
            oss << "double fault: handler at level " << ctx.level
                << " raised " << faultName(seg.fault) << " at pc "
                << seg.faultPc;
            fail(oss.str());
            break;
        }
        if (!_core.preciseInterrupts())
            ++res.impreciseSyncDeliveries;

        // An unrepaired fault re-fires at the same spot with no
        // progress in between; catch the loop at its second lap.
        if (sawSync && lastSyncCommitted == ctx.committed &&
            lastSyncEpc == seg.faultPc) {
            std::ostringstream oss;
            oss << "unrepaired " << faultName(seg.fault) << " at pc "
                << seg.faultPc
                << ": the instruction faulted again after its handler "
                   "returned";
            fail(oss.str());
            break;
        }
        sawSync = true;
        lastSyncCommitted = ctx.committed;
        lastSyncEpc = seg.faultPc;

        unsigned level = ctx.level + 1;
        Word cause = causeForFault(seg.fault);
        if (!deliverTrap(state, memory, regs, _config.layout, level,
                         cause, seg.faultPc)) {
            fail("trap delivery failed: exchange package unmapped");
            break;
        }
        now += _config.exchangeCycles;

        Delivery d;
        d.cause = cause;
        d.level = level;
        d.sync = true;
        d.epc = seg.faultPc;
        d.globalInstr = globalInstr;
        d.cycle = now;
        d.drainCycles = measuredDrain(seg);
        recordDelivery(d);
        res.maxDepth = std::max(res.maxDepth, level);

        // If this position was an injected fault, it has now fired;
        // the regenerated trace restarts the instruction cleanly, which
        // models the handler repairing the cause (mapping the page).
        auto it =
            std::find(injects.begin(), injects.end(), ctx.committed);
        if (it != injects.end())
            injects.erase(it);

        ctx.needsRegen = true; // resume is epc-driven after the RTI

        HandlerGen gen =
            generateHandlerTrace(handlerProg, 0, state, memory, regs,
                                 _config.maxHandlerInstructions);
        if (!gen.ok) {
            fail(std::move(gen.error));
            break;
        }
        Ctx h;
        h.prog = handlerProg;
        h.trace = std::move(gen.trace);
        h.level = level;
        h.ieAtTraceStart = false;
        h.deliveryIndex = res.deliveries.size() - 1;
        h.entryCycle = now - _config.exchangeCycles;
        stack.push_back(std::move(h));
    }

    res.cycles = now;
    res.instructions = globalInstr;
    res.dropped = source.pendingCount();
    res.state = std::move(state);
    res.memory = std::move(memory);
    res.trapRegs = regs;
    return res;
}

ReplayResult
replayFunctional(std::shared_ptr<const Program> program,
                 const TrapConfig &config,
                 const std::vector<Delivery> &deliveries)
{
    ReplayResult res;
    if (!program || program->size() == 0) {
        res.error = "replay needs a non-empty program";
        return res;
    }
    std::shared_ptr<const Program> handlerProg =
        config.handler ? config.handler
                       : std::make_shared<const Program>(counterHandler());

    ArchState state;
    Memory memory(config.memoryWords);
    for (const auto &init : program->dataInits())
        memory.set(init.addr, init.value);
    if (!initTrapMemory(memory, config.layout)) {
        res.error = "exchange packages do not fit in data memory";
        return res;
    }
    TrapRegs regs;
    regs.setIe(true);

    struct Frame
    {
        std::shared_ptr<const Program> prog;
        std::size_t index = 0;
        bool handler = false;
    };
    std::vector<Frame> stack;
    stack.push_back({program, 0, false});

    std::uint64_t count = 0;
    std::size_t nextDelivery = 0;
    // Hard stop so a corrupt delivery log cannot hang the replay.
    const std::uint64_t limit =
        50'000'000ull + static_cast<std::uint64_t>(deliveries.size()) *
                            config.maxHandlerInstructions;

    bool halted = false;
    while (!halted) {
        // Perform every exchange logged at this commit count. The
        // faulting instruction of a sync delivery is *not* executed
        // first — the cut lands before it, and after the handler's RTI
        // it restarts from the restored epc.
        while (nextDelivery < deliveries.size() &&
               deliveries[nextDelivery].globalInstr == count) {
            const Delivery &d = deliveries[nextDelivery];
            regs.setIe(true);
            if (!deliverTrap(state, memory, regs, config.layout, d.level,
                             d.cause, d.epc)) {
                res.error = "replay: trap delivery failed";
                return res;
            }
            stack.push_back({handlerProg, 0, true});
            ++nextDelivery;
        }

        Frame &frame = stack.back();
        if (frame.index >= frame.prog->size()) {
            res.error = "replay: control flow ran off the program end";
            return res;
        }
        // Handlers execute against the live trap registers; the outer
        // program runs with a null trap context, exactly as its trace
        // was generated.
        ExecOutcome out = execute(*frame.prog, frame.index, state, memory,
                                  frame.handler ? &regs : nullptr);
        if (out.fault != Fault::None) {
            std::ostringstream oss;
            oss << "replay: unserviced " << faultName(out.fault)
                << " at pc " << frame.prog->pc(frame.index);
            res.error = oss.str();
            return res;
        }
        ++count;
        if (count > limit) {
            res.error = "replay: instruction limit exceeded";
            return res;
        }
        if (out.rti) {
            if (!frame.handler || stack.size() < 2) {
                res.error = "replay: RTI outside a handler";
                return res;
            }
            if (!returnFromTrap(state, memory, regs, config.layout)) {
                res.error = "replay: RTI with no active trap level";
                return res;
            }
            stack.pop_back();
            Frame &parent = stack.back();
            auto index = parent.prog->indexOfPc(
                static_cast<ParcelAddr>(regs.epc));
            if (!index) {
                res.error =
                    "replay: restored epc is not an instruction boundary";
                return res;
            }
            parent.index = *index;
            continue;
        }
        if (out.halted) {
            if (stack.size() != 1) {
                res.error = "replay: HALT inside a handler";
                return res;
            }
            halted = true;
            continue;
        }
        frame.index = *out.nextIndex;
    }

    if (nextDelivery != deliveries.size()) {
        res.error = "replay: program halted before every logged delivery";
        return res;
    }
    res.ok = true;
    res.state = std::move(state);
    res.memory = std::move(memory);
    res.trapRegs = regs;
    res.instructions = count;
    return res;
}

} // namespace ruu::trap
