#include "trap/trap.hh"

#include "isa/reg.hh"

namespace ruu::trap
{

namespace
{

/** Swap the live A0..A7 / S0..S7 with package words [0..15]. */
void
exchangeFrame(ArchState &state, Memory &memory, Addr pkg)
{
    for (unsigned i = 0; i < 8; ++i) {
        RegId a = regA(i);
        Word live = state.read(a);
        state.write(a, memory.at(pkg + kPkgA + i));
        memory.set(pkg + kPkgA + i, live);
    }
    for (unsigned i = 0; i < 8; ++i) {
        RegId s = regS(i);
        Word live = state.read(s);
        state.write(s, memory.at(pkg + kPkgS + i));
        memory.set(pkg + kPkgS + i, live);
    }
}

} // namespace

bool
initTrapMemory(Memory &memory, const TrapLayout &layout)
{
    if (layout.maxLevels < 2 || !layout.fits(memory) ||
        !memory.mapped(layout.scratchBase)) {
        return false;
    }
    for (unsigned level = 1; level < layout.maxLevels; ++level) {
        Addr pkg = layout.packageBase(level);
        for (unsigned w = 0; w < kExchangeWords; ++w)
            memory.set(pkg + w, 0);
        // The handler frame's anchors: its own package (so it can read
        // and patch the interrupted context) and the scratch area.
        memory.set(pkg + kPkgA + 7, pkg);
        memory.set(pkg + kPkgA + 6, layout.scratchBase);
    }
    return true;
}

bool
deliverTrap(ArchState &state, Memory &memory, TrapRegs &trap,
            const TrapLayout &layout, unsigned level, Word cause,
            Word epc)
{
    if (level == 0 || level >= layout.maxLevels || !layout.fits(memory))
        return false;
    Addr pkg = layout.packageBase(level);
    exchangeFrame(state, memory, pkg);
    // The interrupted context's resume point and the delivery cause
    // ride in the package — RTI reads them back from there, which is
    // exactly how a handler's store to the saved epc (or a frame slot)
    // becomes architectural. Status carries the interrupted context's
    // IE bit and level, so RTI re-enters it unchanged.
    memory.set(pkg + kPkgEpc, epc);
    memory.set(pkg + kPkgCause, cause);
    memory.set(pkg + kPkgStatus, trap.status);
    trap.epc = epc;
    trap.cause = cause;
    trap.status = 0;
    trap.setIe(false);
    trap.setLevel(level);
    return true;
}

bool
returnFromTrap(ArchState &state, Memory &memory, TrapRegs &trap,
               const TrapLayout &layout)
{
    unsigned level = trap.level();
    if (level == 0 || level >= layout.maxLevels || !layout.fits(memory))
        return false;
    Addr pkg = layout.packageBase(level);
    trap.epc = memory.at(pkg + kPkgEpc);
    trap.cause = memory.at(pkg + kPkgCause);
    trap.status = memory.at(pkg + kPkgStatus);
    exchangeFrame(state, memory, pkg);
    return true;
}

} // namespace ruu::trap
