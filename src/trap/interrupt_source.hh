/**
 * @file
 * Asynchronous interrupt arrival schedules.
 *
 * An InterruptSource models external devices raising interrupts at
 * predetermined cycles with priorities. The trap controller polls it at
 * segment boundaries: the earliest pending event whose priority exceeds
 * the current interrupt level becomes the next delivery target, and
 * lower-priority events simply stay pending until the level drops.
 *
 * Two schedule shapes cover the experiments:
 *   - explicit: a fixed list of (cycle, priority) events, for tests;
 *   - periodic: a device firing every K cycles, for the `ruusim storm`
 *     arrival-rate sweeps. Ticks missed while the machine is masked
 *     coalesce — after a delivery, the next tick is the first multiple
 *     of K strictly after the delivery cycle, as a level-triggered
 *     device line would behave.
 *
 * Everything is deterministic: the same schedule replayed against the
 * same machine produces the same deliveries.
 */

#ifndef RUU_TRAP_INTERRUPT_SOURCE_HH
#define RUU_TRAP_INTERRUPT_SOURCE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace ruu::trap
{

/** One asynchronous interrupt request. */
struct InterruptEvent
{
    Cycle cycle = 0;       //!< global cycle the request is raised
    unsigned priority = 1; //!< delivery eligibility: priority > level
};

/** A deterministic schedule of interrupt requests. */
class InterruptSource
{
  public:
    /** A source that never fires. */
    InterruptSource() = default;

    /** A device firing every @p period cycles at @p priority. */
    static InterruptSource periodic(Cycle period, unsigned priority = 1);

    /** An explicit event list (any order; sorted internally). */
    static InterruptSource
    schedule(std::vector<InterruptEvent> events);

    /**
     * The earliest pending event with priority > @p minPriority; ties
     * on cycle go to the highest priority. nullopt when none pends.
     */
    std::optional<InterruptEvent> next(unsigned minPriority) const;

    /**
     * Mark @p event delivered at global cycle @p at. For a periodic
     * source this coalesces missed ticks: the next request is the
     * first multiple of the period strictly after @p at.
     */
    void delivered(const InterruptEvent &event, Cycle at);

    /** Requests delivered so far. */
    std::uint64_t deliveredCount() const { return _delivered; }

    /** Pending explicit events (periodic sources always pend). */
    std::size_t pendingCount() const { return _events.size(); }

    /** True when no event can ever fire again. */
    bool exhausted() const { return _period == 0 && _events.empty(); }

    /**
     * True for a purely periodic source (no explicit events). Periodic
     * arrivals are the only shape whose queueing delay is bounded by
     * the certified per-level ceilings, so the trap controller's
     * end-to-end WCIRT response assertion (lint/wcirt.hh) is gated on
     * this predicate.
     */
    bool periodicOnly() const { return _period != 0 && _events.empty(); }

  private:
    // Explicit schedule, kept sorted by (cycle, -priority).
    std::vector<InterruptEvent> _events;

    // Periodic mode (0 = disabled).
    Cycle _period = 0;
    unsigned _priority = 1;
    Cycle _nextTick = 0;

    std::uint64_t _delivered = 0;
};

} // namespace ruu::trap

#endif // RUU_TRAP_INTERRUPT_SOURCE_HH
