#include "trap/handlers.hh"

#include "asm/builder.hh"
#include "isa/reg.hh"

namespace ruu::trap
{

// Both handlers live in the frame their exchange package provides:
// A7 = package base (unused here, but the contract of every handler),
// A6 = scratch base. Neither A6 nor A7 is clobbered, so the frame
// swapped back into the package at RTI keeps the anchors intact for
// the next delivery.

Program
counterHandler()
{
    ProgramBuilder b("trap_counter_handler");
    b.handler();                           // RTI terminator (RUU-W302)
    b.mfcause(regS(1));                    // S1 = cause code
    b.movas(regA(1), regS(1));             // A1 = cause
    b.aadd(regA(2), regA(6), regA(1));     // A2 = &scratch[cause]
    b.lds(regS(2), regA(2), 0);
    b.smovi(regS(3), 1);
    b.sadd(regS(2), regS(2), regS(3));
    b.sts(regA(2), 0, regS(2));            // scratch[cause]++
    b.mfepc(regS(4));
    b.sts(regA(6), kScratchLastEpc, regS(4));
    b.rti();
    return b.build();
}

Program
nestedCounterHandler()
{
    ProgramBuilder b("trap_nested_handler");
    b.handler();                           // RTI terminator (RUU-W302)
    // Snapshot cause and epc while still masked; a nested delivery
    // would save and restore them anyway, but reading first keeps the
    // handler's data flow independent of preemption points.
    b.mfcause(regS(1));
    b.mfepc(regS(4));
    b.eint();                              // preemption window opens
    b.movas(regA(1), regS(1));
    b.aadd(regA(2), regA(6), regA(1));
    b.lds(regS(2), regA(2), 0);
    b.smovi(regS(3), 1);
    b.sadd(regS(2), regS(2), regS(3));
    b.sts(regA(2), 0, regS(2));
    b.sts(regA(6), kScratchLastEpc, regS(4));
    b.dint();                              // window closes
    b.rti();
    return b.build();
}

} // namespace ruu::trap
