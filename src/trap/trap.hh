/**
 * @file
 * Exchange packages: the architectural mechanism of trap entry/return.
 *
 * Following the CRAY-1's exchange-package design, every interrupt level
 * owns a fixed block of memory words that holds a complete A/S register
 * frame plus the saved trap registers. Delivering a trap at level L
 * swaps the live A and S registers with level L's package, saves the
 * interrupted context's epc/cause/status into the package, and loads
 * the handler's trap state; RTI performs the inverse swap. Two
 * consequences carry the whole design:
 *
 *   - The handler needs no free registers to save state into — the
 *     exchange *is* the save. Its package is pre-set (initTrapMemory)
 *     with its working frame, including A7 = its own package base, so
 *     the handler can inspect and patch the interrupted context's
 *     registers with plain loads and stores into [A7].
 *   - The per-level packages are the nesting stack: a level-2 trap
 *     arriving inside the level-1 handler exchanges through a different
 *     package, so nothing is ever overwritten.
 *
 * B and T registers are not exchanged (handlers must not touch them),
 * exactly as the CRAY-1 exchange package covered only a subset of the
 * register space.
 *
 * These routines mutate an (ArchState, Memory, TrapRegs) triple
 * directly; they are invoked *between* timing segments by the trap
 * controller (trap/controller.hh), never by the cores — the cores only
 * provide the drain-to-precise-state cut (RunOptions::interruptAt).
 */

#ifndef RUU_TRAP_TRAP_HH
#define RUU_TRAP_TRAP_HH

#include "arch/memory.hh"
#include "arch/state.hh"
#include "arch/trap_regs.hh"

namespace ruu::trap
{

/** Words per exchange package. */
inline constexpr unsigned kExchangeWords = 24;

/** Package word offsets. */
inline constexpr unsigned kPkgA = 0;       //!< words 0..7:  A0..A7
inline constexpr unsigned kPkgS = 8;       //!< words 8..15: S0..S7
inline constexpr unsigned kPkgEpc = 16;    //!< saved exception PC
inline constexpr unsigned kPkgCause = 17;  //!< saved cause
inline constexpr unsigned kPkgStatus = 18; //!< saved status
                                           //   words 19..23 reserved

/** Where the trap machinery lives in data memory. */
struct TrapLayout
{
    /** Base of the per-level exchange packages. */
    Addr exchangeBase = 0xff000;

    /** Nesting depth: levels 1..maxLevels-1 are handler levels. */
    unsigned maxLevels = 4;

    /**
     * Base of the handler scratch area (cause counters and the like;
     * see trap/handlers.hh for the layout the stock handlers use).
     */
    Addr scratchBase = 0xff800;

    /** Package base address of @p level. */
    Addr packageBase(unsigned level) const
    {
        return exchangeBase + static_cast<Addr>(level) * kExchangeWords;
    }

    /** True when every package fits in @p memory. */
    bool fits(const Memory &memory) const
    {
        return memory.mapped(packageBase(maxLevels - 1) +
                             kExchangeWords - 1);
    }
};

/**
 * Pre-set the exchange packages in @p memory: every handler level's
 * package gets a clean working frame with A7 = its own package base
 * and A6 = the scratch base. Call once before the first delivery.
 * @return false when the packages do not fit in @p memory.
 */
bool initTrapMemory(Memory &memory, const TrapLayout &layout);

/**
 * Deliver a trap: exchange the A/S frame with level @p level's
 * package, save the interrupted context's trap registers into it, and
 * enter the handler context (epc = @p epc, cause = @p cause, IE off,
 * level = @p level).
 * @return false when @p level is out of range or the package is
 *         unmapped; no state is changed then.
 */
bool deliverTrap(ArchState &state, Memory &memory, TrapRegs &trap,
                 const TrapLayout &layout, unsigned level, Word cause,
                 Word epc);

/**
 * Return from the current trap level: exchange the A/S frame back and
 * restore epc/cause/status from the package. Handler stores into the
 * package (e.g. patching the interrupted context's A3, or editing the
 * saved epc to skip an instruction) thereby become architectural.
 * @return false when no trap is active (level 0) or the package is
 *         unmapped; no state is changed then.
 */
bool returnFromTrap(ArchState &state, Memory &memory, TrapRegs &trap,
                    const TrapLayout &layout);

} // namespace ruu::trap

#endif // RUU_TRAP_TRAP_HH
