/**
 * @file
 * Hand-compiled in-ISA interrupt handler kernels.
 *
 * These are real model-ISA programs, built with the same ProgramBuilder
 * DSL as the Livermore kernels, executed by the same functional
 * simulator and timing cores as any other code. Their register frame is
 * whatever the exchange package holds (trap/trap.hh): A7 = the
 * handler's own package base, A6 = the scratch base, both pre-set by
 * initTrapMemory.
 *
 * Scratch-area layout (word offsets from TrapLayout::scratchBase):
 *   [cause]            delivery count for that cause code, cause < 32
 *   [kScratchLastEpc]  exception PC of the most recent delivery
 */

#ifndef RUU_TRAP_HANDLERS_HH
#define RUU_TRAP_HANDLERS_HH

#include "asm/program.hh"

namespace ruu::trap
{

/** Scratch slots reserved for per-cause delivery counters. */
inline constexpr unsigned kScratchCauseSlots = 32;

/** Scratch slot recording the last delivery's exception PC. */
inline constexpr unsigned kScratchLastEpc = 32;

/** Total scratch words the stock handlers use. */
inline constexpr unsigned kScratchWords = 33;

/**
 * The stock handler: reads MFCAUSE and MFEPC, bumps the per-cause
 * delivery counter in the scratch area, records the exception PC, and
 * returns with RTI. Runs entirely with interrupts masked.
 */
Program counterHandler();

/**
 * The nesting handler: same bookkeeping, but opens an EINT..DINT
 * window around the counter update so a higher-priority interrupt may
 * preempt it mid-service. Precise cores must survive a delivery inside
 * the window and resume this handler bit-exactly.
 */
Program nestedCounterHandler();

} // namespace ruu::trap

#endif // RUU_TRAP_HANDLERS_HH
