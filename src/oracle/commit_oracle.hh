/**
 * @file
 * Lockstep differential co-simulation of a timing core's commit stream.
 *
 * CommitOracle attaches to a timing run (RunOptions::observer) and
 * re-executes the program on the sequential machine (arch/executor.hh)
 * in lockstep with the core's architectural commits. For every
 * committed instruction it cross-checks:
 *
 *   - the record the core committed is the trace's record for that seq;
 *   - the commit stream obeys the core's declared CommitOrder
 *     discipline (no duplicates, state-changers in program order for
 *     the precise machines, fully sequential for the Total machines);
 *   - independently re-executing the instruction reproduces the PC,
 *     destination value, memory address, store value and branch outcome
 *     the trace carries — so a corrupted trace, a broken executor, or a
 *     core committing the wrong values is caught at the first
 *     divergent instruction, not at end-of-run;
 *   - control flow is continuous: each instruction's successor is the
 *     next record's static index.
 *
 * finish() closes the books: on a clean run every dynamic instruction
 * must have committed exactly once and the core's final registers and
 * memory must equal the lockstep machine's; on an interrupted run of a
 * precise core, exactly the pre-fault instructions must have committed
 * and the interrupted state must equal the sequential prefix.
 *
 * The first divergence is reported with a disassembled window of the
 * dynamic trace around the offending instruction.
 */

#ifndef RUU_ORACLE_COMMIT_ORACLE_HH
#define RUU_ORACLE_COMMIT_ORACLE_HH

#include <optional>
#include <string>
#include <vector>

#include "core/core.hh"

namespace ruu::oracle
{

/** Lockstep commit checker; one instance per timing run. */
class CommitOracle : public CommitObserver
{
  public:
    /**
     * Check a run of @p core over @p trace. Reads the core's
     * CommitOrder and precise-interrupt contract; @p options must be
     * the RunOptions the run will use (startSeq / initial state).
     */
    CommitOracle(const Trace &trace, const Core &core,
                 const RunOptions &options = {});

    /** Explicit-contract form (used by the oracle's own tests). */
    CommitOracle(const Trace &trace, CommitOrder order, bool precise,
                 const RunOptions &options = {});

    void onCommit(SeqNum seq, const TraceRecord &record) override;

    /**
     * Verify end-of-run conditions against @p result (completeness,
     * fault bookkeeping, final registers and memory).
     * @return ok().
     */
    bool finish(const RunResult &result);

    /** No divergence observed so far. */
    bool ok() const { return _message.empty(); }

    /** Commits observed. */
    std::uint64_t commits() const { return _commits; }

    /**
     * Seed the lockstep machine's trap-register context. Unseeded,
     * lockstep MFEPC / MFCAUSE read 0 — matching traces produced by
     * the plain functional simulator. The trap controller seeds every
     * handler segment with the live trap registers so the lockstep
     * values match the handler trace it generated from them.
     */
    void seedTrapRegs(const TrapRegs &regs) { _trap = regs; }

    /**
     * Human-readable verdict: "ok" or the first divergence, with a
     * disassembled trace window around it.
     */
    std::string report() const;

  private:
    void fail(SeqNum seq, std::string message);
    void stepLockstep();
    bool stepOne(SeqNum seq);

    const Trace &_trace;
    CommitOrder _order;
    bool _precise;
    SeqNum _startSeq;

    // Lockstep sequential machine.
    ArchState _state;
    Memory _memory;
    std::optional<TrapRegs> _trap; //!< trap context (seedTrapRegs)
    SeqNum _stepped; //!< next dynamic instruction to re-execute
    std::optional<std::size_t> _expectIndex; //!< successor static index

    std::vector<bool> _committed;
    std::uint64_t _commits = 0;
    // Last commit per order class. Under DataInOrder each class must be
    // internally sequential but the classes may interleave freely:
    // branches are reported from decode (RuuCore, HistoryCore), and
    // NOP/HALT commit from the RUU head but from the decode stage of
    // the history machine — so neither is ordered against the other
    // two classes, only against itself.
    std::optional<SeqNum> _lastEffectful; //!< register writers + stores
    std::optional<SeqNum> _lastBranch;    //!< branches
    std::optional<SeqNum> _lastBare;      //!< NOP and HALT

    // First divergence.
    std::string _message;
    SeqNum _failSeq = kNoSeqNum;
};

/** True when @p record changes architectural state when it commits. */
bool isEffectful(const TraceRecord &record);

} // namespace ruu::oracle

#endif // RUU_ORACLE_COMMIT_ORACLE_HH
