/**
 * @file
 * Exhaustive (or sampled) interrupt-sweep verification.
 *
 * The paper's claim for the RUU (§5) is not that *some* interrupt is
 * precise but that *every* interrupt is: at any fault the machine can
 * be stopped, the architectural state handed to software, and
 * execution resumed with no lost or duplicated work. The sweep harness
 * checks exactly that, mechanically: for every faultable dynamic
 * instruction (loads and arithmetic ops — or an evenly-sampled subset
 * when the budget is capped), it
 *
 *   1. injects a fault there and runs the timing core to the interrupt,
 *      with the lockstep commit oracle attached;
 *   2. requires correct fault bookkeeping (interrupted flag, fault
 *      kind, faulting seq, precise PC) from every core;
 *   3. compares the interrupted state against the sequential prefix
 *      (runPrefix) — *required* for cores that declare
 *      preciseInterrupts(), *measured* for the imprecise ones, whose
 *      imprecision frequency is the experiment's datum;
 *   4. reconstructs execution in the functional simulator from the
 *      interrupted state (resumeFunctional) and requires the final
 *      state to match the uninterrupted golden run — again required
 *      only of precise cores.
 */

#ifndef RUU_ORACLE_SWEEP_HH
#define RUU_ORACLE_SWEEP_HH

#include <functional>
#include <memory>
#include <string>

#include "par/pool.hh"
#include "sim/machine.hh"

namespace ruu::oracle
{

/** Options for one interrupt sweep. */
struct SweepOptions
{
    /**
     * Interrupt-point budget; faultable positions are sampled evenly
     * down to this many. 0 sweeps every faultable instruction.
     */
    std::size_t maxPoints = 32;

    /** Fault kind to inject. */
    Fault fault = Fault::PageFault;

    /** Attach the lockstep commit oracle to every interrupted run. */
    bool checkOracle = true;

    /**
     * Parallel execution: with a multi-worker pool *and* a core
     * factory, fault points run concurrently, one factory-built core
     * and one private trace copy per worker. Results are reduced in
     * point order, so counters and the first-failure report are
     * byte-identical to a serial sweep. Null pool (or no factory):
     * the serial reference loop on the caller's core.
     */
    par::Pool *pool = nullptr;

    /** Builds a worker-private core identical to the caller's. */
    std::function<std::unique_ptr<Core>()> coreFactory;
};

/** Aggregate outcome of a sweep over one core and workload. */
struct SweepResult
{
    std::size_t points = 0;       //!< interrupt points exercised
    std::size_t faultable = 0;    //!< faultable positions in the trace
    std::size_t failures = 0;     //!< contract violations (ok == false)
    std::size_t precisePoints = 0; //!< state == sequential prefix
    std::size_t resumedExact = 0; //!< functional resume == golden run

    /**
     * Worst measured drain residue (fault detection to stop) across
     * all points, and the certified WCIRT cut ceiling it was checked
     * against (lint/wcirt.hh). A residue above the ceiling is a
     * contract violation, counted in `failures` like any other.
     * wcirtCut is 0 when the core's scheme could not be resolved and
     * no ceiling applied.
     */
    Cycle maxDrainCycles = 0;
    std::uint64_t wcirtCut = 0;

    /** First contract violation, empty when none. */
    std::string firstFailure;
    SeqNum firstFailureSeq = kNoSeqNum;

    bool ok() const { return failures == 0; }

    /** Fraction of interrupt points that were precise. */
    double preciseFraction() const
    {
        return points ? static_cast<double>(precisePoints) /
                            static_cast<double>(points)
                      : 1.0;
    }
};

/**
 * Sweep interrupts over @p workload on @p core.
 *
 * For a precise core every point must be precise and resumable; for an
 * imprecise core the sweep fails only on broken fault bookkeeping or a
 * commit-oracle divergence, and reports how often the interrupted
 * state happened to be precise.
 */
SweepResult sweepInterrupts(Core &core, const Workload &workload,
                            const SweepOptions &options = {});

} // namespace ruu::oracle

#endif // RUU_ORACLE_SWEEP_HH
