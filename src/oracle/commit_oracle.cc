#include "oracle/commit_oracle.hh"

#include <algorithm>

#include "arch/executor.hh"
#include "common/logging.hh"
#include "isa/disasm.hh"

namespace ruu::oracle
{

using detail::vformat;

bool
isEffectful(const TraceRecord &record)
{
    return record.inst.dst.valid() || isStore(record.inst.op);
}

namespace
{

/** Initial lockstep memory: the program's data image, like a core run. */
Memory
initialMemory(const Trace &trace, const RunOptions &options)
{
    if (options.initialMemory)
        return *options.initialMemory;
    Memory memory;
    if (trace.programPtr()) {
        for (const auto &init : trace.program().dataInits())
            memory.set(init.addr, init.value);
    }
    return memory;
}

} // namespace

CommitOracle::CommitOracle(const Trace &trace, const Core &core,
                           const RunOptions &options)
    : CommitOracle(trace, core.commitOrder(), core.preciseInterrupts(),
                   options)
{
}

CommitOracle::CommitOracle(const Trace &trace, CommitOrder order,
                           bool precise, const RunOptions &options)
    : _trace(trace), _order(order), _precise(precise),
      _startSeq(options.startSeq),
      _state(options.initialState ? *options.initialState : ArchState{}),
      _memory(initialMemory(trace, options)), _stepped(options.startSeq),
      _committed(trace.size(), false)
{
}

void
CommitOracle::fail(SeqNum seq, std::string message)
{
    if (!ok())
        return; // only the first divergence is reported
    _message = std::move(message);
    _failSeq = seq;
}

void
CommitOracle::onCommit(SeqNum seq, const TraceRecord &record)
{
    if (!ok())
        return;

    if (seq >= _trace.size()) {
        fail(seq, vformat("committed seq %llu beyond trace end (%zu)",
                          static_cast<unsigned long long>(seq),
                          _trace.size()));
        return;
    }
    const TraceRecord &expect = _trace.at(seq);
    if (!(record.inst == expect.inst) ||
        record.staticIndex != expect.staticIndex ||
        record.pc != expect.pc || record.memAddr != expect.memAddr ||
        record.result != expect.result ||
        record.storeValue != expect.storeValue ||
        record.taken != expect.taken) {
        fail(seq, vformat("committed record does not match the trace's "
                          "record for seq %llu",
                          static_cast<unsigned long long>(seq)));
        return;
    }
    if (seq < _startSeq) {
        fail(seq, vformat("committed seq %llu before the run's start "
                          "seq %llu",
                          static_cast<unsigned long long>(seq),
                          static_cast<unsigned long long>(_startSeq)));
        return;
    }
    if (_committed[seq]) {
        fail(seq, vformat("seq %llu committed twice",
                          static_cast<unsigned long long>(seq)));
        return;
    }
    if (expect.fault != Fault::None) {
        fail(seq, vformat("committed seq %llu, which faults (%s) — a "
                          "faulting instruction must not become "
                          "architectural",
                          static_cast<unsigned long long>(seq),
                          faultName(expect.fault)));
        return;
    }

    // Order discipline. Total: the whole stream is sequential.
    // DataInOrder: each order class — state-changers, branches, and
    // NOP/HALT — is sequential among itself, but the classes may
    // interleave (decode stages report branches early; see the member
    // comment). None: any order.
    bool effectful = isEffectful(expect);
    std::optional<SeqNum> &last =
        effectful                  ? _lastEffectful
        : isBranch(expect.inst.op) ? _lastBranch
                                   : _lastBare;
    switch (_order) {
      case CommitOrder::Total: {
        SeqNum newest = _startSeq - 1;
        for (const auto &classLast :
             {_lastEffectful, _lastBranch, _lastBare}) {
            if (classLast && (newest == _startSeq - 1 ||
                              *classLast > newest)) {
                newest = *classLast;
            }
        }
        SeqNum expected = newest + 1;
        // A faulting instruction never commits; an imprecise sequential
        // machine (SimpleCore) legitimately commits the instructions
        // already in flight behind it, so the expected seq skips
        // annotated positions.
        while (expected < _trace.size() &&
               _trace.at(expected).fault != Fault::None) {
            ++expected;
        }
        if (seq != expected) {
            fail(seq, vformat("total-order core committed seq %llu, "
                              "expected %llu",
                              static_cast<unsigned long long>(seq),
                              static_cast<unsigned long long>(expected)));
            return;
        }
        break;
      }
      case CommitOrder::DataInOrder:
        if (last && seq < *last) {
            fail(seq, vformat("%s seq %llu committed after younger "
                              "%s seq %llu",
                              effectful ? "state-changing" : "effect-free",
                              static_cast<unsigned long long>(seq),
                              effectful ? "state-changing" : "effect-free",
                              static_cast<unsigned long long>(*last)));
            return;
        }
        break;
      case CommitOrder::None:
        break;
    }
    last = seq;

    _committed[seq] = true;
    ++_commits;
    stepLockstep();
}

void
CommitOracle::stepLockstep()
{
    // Re-execute the contiguous committed prefix. Out-of-order commit
    // streams (None / early effect-free reports) buffer until the gap
    // fills; the sequential machine itself always steps in order.
    while (ok() && _stepped < _trace.size() && _committed[_stepped]) {
        if (!stepOne(_stepped))
            return;
        ++_stepped;
    }
}

bool
CommitOracle::stepOne(SeqNum seq)
{
    const TraceRecord &rec = _trace.at(seq);
    const Program &program = _trace.program();

    if (rec.staticIndex >= program.size()) {
        fail(seq, vformat("static index %zu beyond program end",
                          rec.staticIndex));
        return false;
    }
    if (_expectIndex && rec.staticIndex != *_expectIndex) {
        fail(seq, vformat("control-flow break: predecessor's successor "
                          "is static %zu but seq %llu is static %zu",
                          *_expectIndex,
                          static_cast<unsigned long long>(seq),
                          rec.staticIndex));
        return false;
    }
    if (program.pc(rec.staticIndex) != rec.pc) {
        fail(seq, vformat("trace pc %llu differs from program pc %llu",
                          static_cast<unsigned long long>(rec.pc),
                          static_cast<unsigned long long>(
                              program.pc(rec.staticIndex))));
        return false;
    }

    ExecOutcome out = execute(program, rec.staticIndex, _state, _memory,
                              _trap ? &*_trap : nullptr);

    if (out.fault != Fault::None) {
        fail(seq, vformat("lockstep execution faults (%s) where the "
                          "trace does not",
                          faultName(out.fault)));
        return false;
    }
    if (rec.inst.dst.valid() && out.value != rec.result) {
        fail(seq, vformat("destination value diverges: lockstep %llu, "
                          "trace %llu",
                          static_cast<unsigned long long>(out.value),
                          static_cast<unsigned long long>(rec.result)));
        return false;
    }
    if (isMemory(rec.inst.op) && out.memAddr != rec.memAddr) {
        fail(seq, vformat("memory address diverges: lockstep %llu, "
                          "trace %llu",
                          static_cast<unsigned long long>(out.memAddr),
                          static_cast<unsigned long long>(rec.memAddr)));
        return false;
    }
    if (isStore(rec.inst.op) && out.storeValue != rec.storeValue) {
        fail(seq, vformat("store value diverges: lockstep %llu, "
                          "trace %llu",
                          static_cast<unsigned long long>(out.storeValue),
                          static_cast<unsigned long long>(rec.storeValue)));
        return false;
    }
    if (isBranch(rec.inst.op) && out.taken != rec.taken) {
        fail(seq, vformat("branch outcome diverges: lockstep %staken, "
                          "trace %staken",
                          out.taken ? "" : "not ",
                          rec.taken ? "" : "not "));
        return false;
    }
    if (out.halted != (rec.inst.op == Opcode::HALT)) {
        fail(seq, "halt disagreement between lockstep and trace");
        return false;
    }
    _expectIndex = out.nextIndex;
    return true;
}

bool
CommitOracle::finish(const RunResult &result)
{
    if (!ok())
        return false;

    if (result.interrupted) {
        // Fault bookkeeping must be exact on every core, precise or not.
        if (result.faultSeq >= _trace.size()) {
            fail(result.faultSeq, "reported fault seq beyond trace end");
            return false;
        }
        const TraceRecord &frec = _trace.at(result.faultSeq);
        if (result.fault == Fault::Interrupt) {
            // Asynchronous cut: the core stopped decoding at the cut
            // seq, so even a fault annotation on that record is moot —
            // the instruction never issued. (A cut past an annotated
            // record cannot happen: the older synchronous fault wins
            // and takes the other branch.)
        } else if (frec.fault != result.fault) {
            fail(result.faultSeq,
                 vformat("reported fault %s but the trace faults with "
                         "%s at seq %llu",
                         faultName(result.fault), faultName(frec.fault),
                         static_cast<unsigned long long>(result.faultSeq)));
            return false;
        }
        if (frec.pc != result.faultPc) {
            fail(result.faultSeq,
                 vformat("reported fault pc %llu but seq %llu is at "
                         "pc %llu",
                         static_cast<unsigned long long>(result.faultPc),
                         static_cast<unsigned long long>(result.faultSeq),
                         static_cast<unsigned long long>(frec.pc)));
            return false;
        }
        // An asynchronous drain must land on the sequential prefix on
        // EVERY core — the machine keeps nothing speculative in flight
        // once decode stops, so even the imprecise cores are held to
        // the exact-prefix contract here. Synchronous faults on an
        // imprecise core are merely measured, not failed.
        if (!_precise && result.fault != Fault::Interrupt)
            return ok();

        // Exactly the state-changing instructions older than the fault
        // must have committed, and nothing younger.
        for (SeqNum seq = _startSeq; seq < result.faultSeq; ++seq) {
            if (isEffectful(_trace.at(seq)) && !_committed[seq]) {
                fail(seq, vformat("precise interrupt lost seq %llu, "
                                  "older than the fault at %llu",
                                  static_cast<unsigned long long>(seq),
                                  static_cast<unsigned long long>(
                                      result.faultSeq)));
                return false;
            }
        }
        for (SeqNum seq = result.faultSeq; seq < _trace.size(); ++seq) {
            if (isEffectful(_trace.at(seq)) && _committed[seq]) {
                fail(seq, vformat("precise interrupt committed seq "
                                  "%llu, younger than the fault at %llu",
                                  static_cast<unsigned long long>(seq),
                                  static_cast<unsigned long long>(
                                      result.faultSeq)));
                return false;
            }
        }
        if (_stepped < result.faultSeq) {
            fail(_stepped, vformat("effect-free seq %llu never "
                                   "committed before the interrupt",
                                   static_cast<unsigned long long>(
                                       _stepped)));
            return false;
        }
    } else {
        // Clean run: everything from startSeq on committed exactly once.
        for (SeqNum seq = _startSeq; seq < _trace.size(); ++seq) {
            if (!_committed[seq]) {
                fail(seq, vformat("seq %llu never committed",
                                  static_cast<unsigned long long>(seq)));
                return false;
            }
        }
        if (result.instructions != _commits) {
            fail(kNoSeqNum,
                 vformat("core counted %llu committed instructions but "
                         "reported %llu commits",
                         static_cast<unsigned long long>(
                             result.instructions),
                         static_cast<unsigned long long>(_commits)));
            return false;
        }
    }

    // The core's architectural state must equal the lockstep machine's
    // (for interrupted precise runs, that is the sequential prefix).
    if (result.state != _state) {
        fail(_stepped ? _stepped - 1 : 0,
             vformat("final register state diverges from lockstep "
                     "execution\n-- core:\n%s-- lockstep:\n%s",
                     result.state.dump().c_str(), _state.dump().c_str()));
        return false;
    }
    if (result.memory != _memory) {
        Addr bad = 0;
        for (Addr a = 0; a < _memory.sizeWords(); ++a) {
            if (result.memory.at(a) != _memory.at(a)) {
                bad = a;
                break;
            }
        }
        fail(_stepped ? _stepped - 1 : 0,
             vformat("final memory diverges from lockstep execution: "
                     "word %llu is %llu, lockstep has %llu",
                     static_cast<unsigned long long>(bad),
                     static_cast<unsigned long long>(
                         result.memory.at(bad)),
                     static_cast<unsigned long long>(_memory.at(bad))));
        return false;
    }
    return ok();
}

std::string
CommitOracle::report() const
{
    if (ok())
        return "commit oracle: ok";

    std::string out = "commit oracle: " + _message + "\n";
    if (_failSeq == kNoSeqNum || _trace.empty())
        return out;

    SeqNum center = std::min<SeqNum>(_failSeq, _trace.size() - 1);
    SeqNum first = center >= 4 ? center - 4 : 0;
    SeqNum last = std::min<SeqNum>(center + 4, _trace.size() - 1);
    out += "dynamic trace around the divergence:\n";
    for (SeqNum seq = first; seq <= last; ++seq) {
        const TraceRecord &rec = _trace.at(seq);
        out += vformat("%s %6llu  pc %-6llu %s\n",
                       seq == _failSeq ? ">" : " ",
                       static_cast<unsigned long long>(seq),
                       static_cast<unsigned long long>(rec.pc),
                       disassemble(rec.inst).c_str());
    }
    return out;
}

} // namespace ruu::oracle
