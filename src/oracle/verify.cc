#include "oracle/verify.hh"

#include "common/logging.hh"
#include "oracle/commit_oracle.hh"

namespace ruu::oracle
{

using detail::vformat;

const std::vector<CoreKind> &
allCoreKinds()
{
    static const std::vector<CoreKind> kinds = {
        CoreKind::Simple, CoreKind::Tomasulo, CoreKind::Rstu,
        CoreKind::Ruu,    CoreKind::SpecRuu,  CoreKind::History,
    };
    return kinds;
}

namespace
{

VerifyCase
verifyOne(CoreKind kind, const Workload &workload,
          const lint::ResourceBound &bound, const VerifyOptions &options)
{
    VerifyCase vc;
    vc.workload = workload.name;
    vc.kind = kind;
    vc.bound = bound;

    // The delivery ceiling is handler-independent; verify reports it
    // with an empty handler program, like the sweep's own gate.
    static const Program kNoHandler;
    vc.wcirt = lint::cachedWcirtBound(workload.trace(), kNoHandler,
                                      options.config, kind);

    std::unique_ptr<Core> core = makeCore(kind, options.config);

    // Clean run under the lockstep commit oracle.
    RunOptions runOptions;
    CommitOracle oracle(workload.trace(), *core, runOptions);
    runOptions.observer = &oracle;
    RunResult run = core->run(workload.trace(), runOptions);

    vc.cycles = run.cycles;
    vc.instructions = run.instructions;
    vc.oracleOk = oracle.finish(run);
    if (!vc.oracleOk)
        vc.message = oracle.report();

    vc.matchesFunc = matchesFunctional(run, workload.func);
    if (!vc.matchesFunc && vc.message.empty())
        vc.message = "final state does not match the functional machine";

    vc.boundOk = run.cycles >= bound.cycles;
    vc.pctOfLimit = bound.pctOfLimit(run.cycles);
    vc.pctOfDataflowLimit = bound.dataflow.pctOfLimit(run.cycles);
    if (!vc.boundOk && vc.message.empty()) {
        vc.message = vformat("cycle count %llu beats the %s-bound "
                             "resource lower bound %llu — the bound or "
                             "the core is broken",
                             static_cast<unsigned long long>(run.cycles),
                             bound.bindingName().c_str(),
                             static_cast<unsigned long long>(
                                 bound.cycles));
    }

    bool sweepOk = true;
    if (options.sweep) {
        vc.sweepRan = true;
        SweepOptions sweepOptions = options.sweepOptions;
        sweepOptions.pool = options.pool;
        sweepOptions.coreFactory = [kind, &options] {
            return makeCore(kind, options.config);
        };
        vc.sweep = sweepInterrupts(*core, workload, sweepOptions);
        sweepOk = vc.sweep.ok();
        if (vc.sweep.points)
            vc.pctOfWcirt = vc.wcirt.pctOfCeiling(
                vc.sweep.maxDrainCycles + vc.wcirt.exchangeCycles);
        if (!sweepOk && vc.message.empty()) {
            vc.message = vformat("interrupt sweep: %zu of %zu points "
                                 "failed; first at seq %llu: %s",
                                 vc.sweep.failures, vc.sweep.points,
                                 static_cast<unsigned long long>(
                                     vc.sweep.firstFailureSeq),
                                 vc.sweep.firstFailure.c_str());
        }
    }

    vc.ok = vc.oracleOk && vc.matchesFunc && vc.boundOk && sweepOk;
    return vc;
}

} // namespace

std::vector<VerifyCase>
verifyWorkload(const Workload &workload, const VerifyOptions &options)
{
    const std::vector<CoreKind> &kinds =
        options.cores.empty() ? allCoreKinds() : options.cores;
    const lint::ResourceBound &bound =
        lint::cachedResourceBound(workload.trace(), options.config);

    std::vector<VerifyCase> cases;
    cases.reserve(kinds.size());
    for (CoreKind kind : kinds)
        cases.push_back(verifyOne(kind, workload, bound, options));
    return cases;
}

bool
allOk(const std::vector<VerifyCase> &cases)
{
    for (const VerifyCase &vc : cases) {
        if (!vc.ok)
            return false;
    }
    return true;
}

} // namespace ruu::oracle
