#include "oracle/sweep.hh"

#include <utility>

#include "common/logging.hh"
#include "oracle/commit_oracle.hh"

namespace ruu::oracle
{

using detail::vformat;

namespace
{

/** Evenly sample @p seqs down to @p budget positions (0 = keep all). */
std::vector<SeqNum>
samplePoints(const std::vector<SeqNum> &seqs, std::size_t budget)
{
    if (budget == 0 || seqs.size() <= budget)
        return seqs;
    // Both endpoints are mandatory, so the smallest honest sample is
    // two points; a budget of 1 would also divide by zero below.
    if (budget == 1)
        budget = 2;
    std::vector<SeqNum> picked;
    picked.reserve(budget);
    // Walk the index space in budget even strides; the first and last
    // faultable positions are always included — interrupts at the very
    // start and very end of a run are the classic corner cases.
    for (std::size_t i = 0; i < budget; ++i) {
        std::size_t index = i * (seqs.size() - 1) / (budget - 1);
        if (picked.empty() || seqs[index] != picked.back())
            picked.push_back(seqs[index]);
    }
    return picked;
}

} // namespace

SweepResult
sweepInterrupts(Core &core, const Workload &workload,
                const SweepOptions &options)
{
    SweepResult result;
    const FuncResult &golden = workload.func;
    std::vector<SeqNum> all = faultableSeqs(workload.trace());
    result.faultable = all.size();
    std::vector<SeqNum> points = samplePoints(all, options.maxPoints);

    auto failPoint = [&](SeqNum seq, std::string message) {
        ++result.failures;
        if (result.firstFailure.empty()) {
            result.firstFailure = std::move(message);
            result.firstFailureSeq = seq;
        }
    };

    Trace faulty = workload.trace(); // private copy for annotation
    for (SeqNum seq : points) {
        ++result.points;
        faulty.clearFaults();
        faulty.injectFault(seq, options.fault);

        RunOptions runOptions;
        CommitOracle oracle(faulty, core, runOptions);
        if (options.checkOracle)
            runOptions.observer = &oracle;
        RunResult faulted = core.run(faulty, runOptions);

        // Every core, precise or not, must surface the interrupt and
        // identify the faulting instruction and its PC.
        if (!faulted.interrupted) {
            failPoint(seq, vformat("fault at seq %llu never surfaced",
                                   static_cast<unsigned long long>(seq)));
            continue;
        }
        if (faulted.fault != options.fault ||
            faulted.faultSeq != seq ||
            faulted.faultPc != faulty.at(seq).pc) {
            failPoint(seq,
                      vformat("fault bookkeeping wrong at seq %llu: "
                              "reported %s at seq %llu pc %llu",
                              static_cast<unsigned long long>(seq),
                              faultName(faulted.fault),
                              static_cast<unsigned long long>(
                                  faulted.faultSeq),
                              static_cast<unsigned long long>(
                                  faulted.faultPc)));
            continue;
        }
        if (options.checkOracle && !oracle.finish(faulted)) {
            failPoint(seq, oracle.report());
            continue;
        }

        // Is the interrupted state the sequential prefix?
        FuncResult prefix = runPrefix(workload.program, seq);
        bool precise = faulted.state == prefix.finalState &&
                       faulted.memory == prefix.finalMemory;
        if (precise)
            ++result.precisePoints;
        if (core.preciseInterrupts() && !precise) {
            failPoint(seq,
                      vformat("imprecise interrupt at seq %llu on a "
                              "core that guarantees precision",
                              static_cast<unsigned long long>(seq)));
            continue;
        }

        // Service the fault in software: resume the *functional*
        // machine from the interrupted state. A precise interrupt, by
        // definition, lets the sequential machine finish the program
        // bit-exactly.
        FuncResult resumed =
            resumeFunctional(workload.program,
                             faulty.at(seq).staticIndex, faulted.state,
                             faulted.memory);
        bool exact = resumed.halted &&
                     resumed.finalState == golden.finalState &&
                     resumed.finalMemory == golden.finalMemory;
        if (exact)
            ++result.resumedExact;
        if (core.preciseInterrupts() && !exact) {
            failPoint(seq,
                      vformat("functional resume from the interrupt at "
                              "seq %llu does not reproduce the golden "
                              "run",
                              static_cast<unsigned long long>(seq)));
            continue;
        }
    }
    return result;
}

} // namespace ruu::oracle
