#include "oracle/sweep.hh"

#include <utility>

#include "common/logging.hh"
#include "lint/wcirt.hh"
#include "oracle/commit_oracle.hh"

namespace ruu::oracle
{

using detail::vformat;

namespace
{

/** Evenly sample @p seqs down to @p budget positions (0 = keep all). */
std::vector<SeqNum>
samplePoints(const std::vector<SeqNum> &seqs, std::size_t budget)
{
    if (budget == 0 || seqs.size() <= budget)
        return seqs;
    // Both endpoints are mandatory, so the smallest honest sample is
    // two points; a budget of 1 would also divide by zero below.
    if (budget == 1)
        budget = 2;
    std::vector<SeqNum> picked;
    picked.reserve(budget);
    // Walk the index space in budget even strides; the first and last
    // faultable positions are always included — interrupts at the very
    // start and very end of a run are the classic corner cases.
    for (std::size_t i = 0; i < budget; ++i) {
        std::size_t index = i * (seqs.size() - 1) / (budget - 1);
        if (picked.empty() || seqs[index] != picked.back())
            picked.push_back(seqs[index]);
    }
    return picked;
}

/** Verdict of one fault point, reduced in point order. */
struct PointOutcome
{
    bool failed = false;
    std::string message; //!< failure detail (when failed)
    bool precise = false;
    bool resumedExact = false;
    Cycle drainCycles = kNoCycle; //!< measured residue (when reported)
};

/**
 * Inject at @p seq, run @p core to the interrupt, and check the whole
 * precise-interrupt contract — including, when @p bound is set, the
 * certified WCIRT cut ceiling on the measured drain residue. @p faulty
 * is a private trace copy the point may annotate; it is cleaned before
 * use.
 */
PointOutcome
sweepOnePoint(Core &core, Trace &faulty, const Workload &workload,
              SeqNum seq, const SweepOptions &options,
              const lint::WcirtBound *bound)
{
    PointOutcome outcome;
    const FuncResult &golden = workload.func;
    auto fail = [&](std::string message) {
        outcome.failed = true;
        outcome.message = std::move(message);
        return outcome;
    };

    faulty.clearFaults();
    faulty.injectFault(seq, options.fault);

    RunOptions runOptions;
    CommitOracle oracle(faulty, core, runOptions);
    if (options.checkOracle)
        runOptions.observer = &oracle;
    RunResult faulted = core.run(faulty, runOptions);

    // Every core, precise or not, must surface the interrupt and
    // identify the faulting instruction and its PC.
    if (!faulted.interrupted) {
        return fail(vformat("fault at seq %llu never surfaced",
                            static_cast<unsigned long long>(seq)));
    }
    if (faulted.fault != options.fault || faulted.faultSeq != seq ||
        faulted.faultPc != faulty.at(seq).pc) {
        return fail(vformat("fault bookkeeping wrong at seq %llu: "
                            "reported %s at seq %llu pc %llu",
                            static_cast<unsigned long long>(seq),
                            faultName(faulted.fault),
                            static_cast<unsigned long long>(
                                faulted.faultSeq),
                            static_cast<unsigned long long>(
                                faulted.faultPc)));
    }
    if (options.checkOracle && !oracle.finish(faulted))
        return fail(oracle.report());

    // The measured drain residue — fault detection to machine stop —
    // must fit the certified WCIRT cut ceiling; the same hard gate the
    // trap controller applies on every delivery.
    if (faulted.drainStartCycle != kNoCycle) {
        outcome.drainCycles = faulted.cycles > faulted.drainStartCycle
                                  ? faulted.cycles -
                                        faulted.drainStartCycle
                                  : 0;
        if (bound && outcome.drainCycles > bound->breakdown.cut) {
            return fail(vformat(
                "WCIRT violation at seq %llu: measured drain residue "
                "%llu exceeds the certified cut ceiling %llu",
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(outcome.drainCycles),
                static_cast<unsigned long long>(bound->breakdown.cut)));
        }
    }

    // Is the interrupted state the sequential prefix?
    FuncResult prefix = runPrefix(workload.program, seq);
    outcome.precise = faulted.state == prefix.finalState &&
                      faulted.memory == prefix.finalMemory;
    if (core.preciseInterrupts() && !outcome.precise) {
        return fail(vformat("imprecise interrupt at seq %llu on a "
                            "core that guarantees precision",
                            static_cast<unsigned long long>(seq)));
    }

    // Service the fault in software: resume the *functional*
    // machine from the interrupted state. A precise interrupt, by
    // definition, lets the sequential machine finish the program
    // bit-exactly.
    FuncResult resumed =
        resumeFunctional(workload.program, faulty.at(seq).staticIndex,
                         faulted.state, faulted.memory);
    outcome.resumedExact = resumed.halted &&
                           resumed.finalState == golden.finalState &&
                           resumed.finalMemory == golden.finalMemory;
    if (core.preciseInterrupts() && !outcome.resumedExact) {
        return fail(vformat("functional resume from the interrupt at "
                            "seq %llu does not reproduce the golden "
                            "run",
                            static_cast<unsigned long long>(seq)));
    }
    return outcome;
}

} // namespace

SweepResult
sweepInterrupts(Core &core, const Workload &workload,
                const SweepOptions &options)
{
    SweepResult result;
    std::vector<SeqNum> all = faultableSeqs(workload.trace());
    result.faultable = all.size();
    std::vector<SeqNum> points = samplePoints(all, options.maxPoints);

    // The certified cut ceiling is handler-independent, so the sweep
    // checks it with an empty handler program; test-only cores whose
    // name is not a scheme sweep without a ceiling, as before.
    static const Program kNoHandler;
    std::optional<CoreKind> kind = coreKindFromName(core.name());
    const lint::WcirtBound *bound = nullptr;
    if (kind) {
        bound = &lint::cachedWcirtBound(workload.trace(), kNoHandler,
                                        core.config(), *kind);
        result.wcirtCut = bound->breakdown.cut;
    }

    bool parallel = options.pool && options.pool->workers() > 1 &&
                    options.coreFactory && points.size() > 1;

    // Worker-private machines and trace copies: fault points share
    // nothing, so each worker gets its own core (from the factory) and
    // its own annotatable copy of the trace, built once per worker.
    unsigned workers = parallel ? options.pool->workers() : 1;
    std::vector<std::unique_ptr<Core>> cores(workers);
    std::vector<std::unique_ptr<Trace>> copies(workers);

    return par::mapReduce<PointOutcome>(
        parallel ? options.pool : nullptr, points.size(),
        std::move(result),
        [&](std::size_t job, unsigned worker) {
            Core *job_core = &core;
            if (parallel) {
                if (!cores[worker])
                    cores[worker] = options.coreFactory();
                job_core = cores[worker].get();
            }
            if (!copies[worker]) {
                copies[worker] =
                    std::make_unique<Trace>(workload.trace());
            }
            return sweepOnePoint(*job_core, *copies[worker], workload,
                                 points[job], options, bound);
        },
        [&](SweepResult &acc, const PointOutcome &outcome,
            std::size_t job) {
            ++acc.points;
            if (outcome.precise)
                ++acc.precisePoints;
            if (outcome.resumedExact)
                ++acc.resumedExact;
            if (outcome.drainCycles != kNoCycle)
                acc.maxDrainCycles =
                    std::max(acc.maxDrainCycles, outcome.drainCycles);
            if (outcome.failed) {
                ++acc.failures;
                if (acc.firstFailure.empty()) {
                    acc.firstFailure = outcome.message;
                    acc.firstFailureSeq = points[job];
                }
            }
        });
}

} // namespace ruu::oracle
