/**
 * @file
 * The verification driver behind `ruusim verify` and the oracle tests:
 * run a workload through each issue mechanism with the full checking
 * stack attached —
 *
 *   - the lockstep commit oracle on a clean run (oracle/commit_oracle.hh),
 *   - the static resource-aware bound, asserted as cycles >= bound
 *     (lint/resource_bound.hh; it dominates the PR 2 dataflow bound),
 *     reported as "% of limit" together with the binding resource,
 *   - optionally the interrupt sweep (oracle/sweep.hh)
 *
 * — and report one row per (workload, core) pair.
 */

#ifndef RUU_ORACLE_VERIFY_HH
#define RUU_ORACLE_VERIFY_HH

#include <string>
#include <vector>

#include "lint/resource_bound.hh"
#include "lint/wcirt.hh"
#include "oracle/sweep.hh"
#include "sim/machine.hh"

namespace ruu::oracle
{

/** What to verify and on which mechanisms. */
struct VerifyOptions
{
    UarchConfig config = UarchConfig::cray1();

    /** Cores to verify; empty means all six. */
    std::vector<CoreKind> cores;

    /** Also run the interrupt sweep. */
    bool sweep = false;

    SweepOptions sweepOptions;

    /**
     * Multi-worker pool: each case's interrupt sweep fans its fault
     * points out across the pool (sweepOptions.pool/coreFactory are
     * filled in per case). Results are unchanged at any worker count.
     */
    par::Pool *pool = nullptr;
};

/** Verdict for one (workload, core) pair. */
struct VerifyCase
{
    std::string workload;
    CoreKind kind = CoreKind::Simple;

    std::uint64_t cycles = 0;       //!< clean-run cycle count
    std::uint64_t instructions = 0; //!< clean-run commits

    bool oracleOk = false;     //!< lockstep commit oracle verdict
    bool matchesFunc = false;  //!< final state == functional machine

    /**
     * Static resource-aware bound of (trace, config); its `dataflow`
     * member is the PR 2 dependence-only bound, kept in the row so the
     * tables can show how much the resource floors tightened it.
     */
    lint::ResourceBound bound;
    bool boundOk = false;    //!< cycles >= bound.cycles (certified)
    double pctOfLimit = 0.0; //!< bound.cycles / cycles, in percent

    /** Dependence-only % of limit (the looser PR 2 ratio). */
    double pctOfDataflowLimit = 0.0;

    /**
     * Certified WCIRT ceiling (lint/wcirt.hh) of this scheme and
     * configuration — the dual of `bound`: an *upper* bound on
     * interrupt-delivery latency instead of a lower bound on cycles.
     * The sweep asserts every measured drain residue against its cut
     * component; the worst residue lands in sweep.maxDrainCycles.
     */
    lint::WcirtBound wcirt;

    /** Worst measured delivery latency / WCIRT ceiling, in percent. */
    double pctOfWcirt = 0.0;

    bool sweepRan = false;
    SweepResult sweep;

    /** Everything that was checked passed. */
    bool ok = false;

    /** First failure detail; empty when ok. */
    std::string message;
};

/** All six issue mechanisms, in the paper's order. */
const std::vector<CoreKind> &allCoreKinds();

/** Verify @p workload on every core in @p options (default: all six). */
std::vector<VerifyCase> verifyWorkload(const Workload &workload,
                                       const VerifyOptions &options = {});

/** True when every case passed. */
bool allOk(const std::vector<VerifyCase> &cases);

} // namespace ruu::oracle

#endif // RUU_ORACLE_VERIFY_HH
