#include "serve/cache.hh"

#include <cstdio>
#include <sstream>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/file.hh"
#include "common/flat_json.hh"
#include "common/io_faults.hh"

namespace ruu::serve
{

namespace
{

const char *const kCacheKind = "ruu-serve-cache";

} // namespace

std::uint64_t
fnv1a(const std::string &text, std::uint64_t h)
{
    for (unsigned char c : text)
        h = (h ^ c) * 0x100000001b3ull;
    return h;
}

std::uint64_t
cacheKey(const CacheKeyInputs &inputs)
{
    // Mix string lengths in alongside the strings so no concatenation
    // of two fields can collide with a different split of the same
    // bytes.
    std::uint64_t h = fnv1a(inputs.displayName);
    h = fnv1a(std::to_string(inputs.displayName.size()), h);
    h = fnv1a(std::to_string(inputs.traceFingerprint), h);
    h = fnv1a(std::to_string(inputs.traceLength), h);
    h = fnv1a(inputs.configJson, h);
    h = fnv1a(std::to_string(inputs.configJson.size()), h);
    h = fnv1a(inputs.core, h);
    h = fnv1a(std::to_string(inputs.period), h);
    h = fnv1a(std::to_string(inputs.engineVersion), h);
    return h;
}

std::string
keyToHex(std::uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

std::string
ResultCache::entryPath(std::uint64_t key) const
{
    return _dir + "/" + keyToHex(key) + ".entry";
}

std::optional<std::string>
ResultCache::load(std::uint64_t key)
{
    if (!enabled())
        return std::nullopt;
    std::string path = entryPath(key);
    auto text = readTextFile(path);
    if (!text) {
        ++_stats.misses;
        return std::nullopt;
    }

    // Validate header + payload; any disagreement means the entry is
    // not trustworthy — delete it and recompute rather than serve it.
    auto drop = [&]() -> std::optional<std::string> {
        ::unlink(path.c_str());
        ++_stats.dropped;
        ++_stats.misses;
        return std::nullopt;
    };
    std::size_t eol = text->find('\n');
    if (eol == std::string::npos)
        return drop();
    auto header = flat::parseObject(text->substr(0, eol));
    if (!header)
        return drop();
    auto kind = flat::optString(*header, "kind");
    auto version = flat::optNumber(*header, "version");
    auto keyHex = flat::optString(*header, "key");
    auto checksum = flat::optString(*header, "checksum");
    auto bytes = flat::optNumber(*header, "bytes");
    if (!kind || *kind != kCacheKind || !version || *version != 1 ||
        !keyHex || *keyHex != keyToHex(key) || !checksum || !bytes)
        return drop();
    std::string payload = text->substr(eol + 1);
    if (!payload.empty() && payload.back() == '\n')
        payload.pop_back();
    if (payload.size() != *bytes ||
        keyToHex(fnv1a(payload)) != *checksum)
        return drop();
    ++_stats.hits;
    return payload;
}

Expected<bool>
ResultCache::store(std::uint64_t key, const std::string &payload)
{
    if (!enabled())
        return true;
    io::ensureDir(_dir);
    std::string path = entryPath(key);
    std::ostringstream entry;
    entry << "{\"kind\": \"" << kCacheKind << "\", \"version\": 1"
          << ", \"key\": \"" << keyToHex(key) << "\""
          << ", \"checksum\": \"" << keyToHex(fnv1a(payload)) << "\""
          << ", \"bytes\": " << payload.size() << "}\n"
          << payload << "\n";
    // The checked atomic-store idiom: tmp + write + fsync + rename +
    // directory fsync. A crash (or injected fault) mid-store leaves
    // either the old entry or none under the key — never a torn one —
    // and a reported success is durable, which is what lets journal
    // records vouch for entries across a power cut.
    if (auto stored = io::atomicWriteFile(path, entry.str()); !stored)
        return Error(stored.error()).context("cache entry");
    ++_stats.stores;
    return true;
}

bool
ResultCache::verifyAgainst(std::uint64_t key, std::uint64_t checksum,
                           std::uint64_t bytes)
{
    if (!enabled())
        return false;
    Stats before = _stats;
    auto payload = load(key);
    // A verification probe is bookkeeping, not traffic: restore the
    // hit/miss counters, keep only the drop count.
    std::uint64_t dropped = _stats.dropped;
    _stats = before;
    _stats.dropped = dropped;
    if (!payload)
        return false;
    if (payload->size() != bytes || fnv1a(*payload) != checksum) {
        ::unlink(entryPath(key).c_str());
        ++_stats.dropped;
        return false;
    }
    return true;
}

std::uint64_t
ResultCache::entriesOnDisk() const
{
    if (!enabled())
        return 0;
    DIR *dir = ::opendir(_dir.c_str());
    if (!dir)
        return 0;
    std::uint64_t count = 0;
    while (struct dirent *entry = ::readdir(dir)) {
        std::string name = entry->d_name;
        if (name.size() > 6 &&
            name.compare(name.size() - 6, 6, ".entry") == 0)
            ++count;
    }
    ::closedir(dir);
    return count;
}

} // namespace ruu::serve
