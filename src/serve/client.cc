#include "serve/client.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ruu::serve
{

Expected<bool>
ServeClient::connect(const std::string &socketPath,
                     const BackoffPolicy &retry)
{
    close();
    sockaddr_un addr{};
    if (socketPath.size() >= sizeof(addr.sun_path))
        return Error("socket path '" + socketPath + "' is too long");
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    Backoff backoff(retry);
    while (true) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return Error(std::string("socket: ") + std::strerror(errno));
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            _fd = fd;
            _buffer.clear();
            return true;
        }
        int err = errno;
        ::close(fd);
        // ENOENT / ECONNREFUSED: the daemon is still starting up.
        // Anything else is not going to heal by waiting.
        if ((err != ENOENT && err != ECONNREFUSED) ||
            backoff.exhausted())
            return Error("cannot connect to '" + socketPath + "': " +
                         std::strerror(err));
        ::usleep(static_cast<useconds_t>(backoff.nextDelayUs()));
    }
}

Expected<bool>
ServeClient::sendLine(const std::string &line)
{
    if (_fd < 0)
        return Error("not connected");
    std::string framed = line + "\n";
    std::size_t done = 0;
    while (done < framed.size()) {
        ssize_t n = ::send(_fd, framed.data() + done,
                           framed.size() - done, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Error(std::string("send: ") + std::strerror(errno));
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

Expected<std::string>
ServeClient::recvLine()
{
    if (_fd < 0)
        return Error("not connected");
    char chunk[4096];
    while (true) {
        std::size_t eol = _buffer.find('\n');
        if (eol != std::string::npos) {
            std::string line = _buffer.substr(0, eol);
            _buffer.erase(0, eol + 1);
            return line;
        }
        ssize_t n = ::read(_fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Error(std::string("recv: ") + std::strerror(errno));
        }
        if (n == 0)
            return Error("server closed the connection");
        _buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

Expected<std::string>
ServeClient::request(const std::string &line)
{
    if (auto sent = sendLine(line); !sent)
        return sent.error();
    return recvLine();
}

void
ServeClient::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
    _buffer.clear();
}

} // namespace ruu::serve
