#include "serve/recovery.hh"

#include <fstream>
#include <sstream>

#include "common/file.hh"
#include "common/flat_json.hh"
#include "serve/cache.hh"

namespace ruu::serve
{

namespace
{

const char *const kServeJournalKind = "ruu-serve-journal";

Expected<std::uint64_t>
getHexKey(const flat::Object &object, const std::string &key)
{
    auto text = flat::getString(object, key);
    if (!text)
        return text.error();
    if (text->size() != 16)
        return Error("key '" + key + "' is not a 16-hex-digit value");
    std::uint64_t value = 0;
    for (char c : *text) {
        value <<= 4;
        if (c >= '0' && c <= '9')
            value |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            value |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return Error("key '" + key + "' has a non-hex digit");
    }
    return value;
}

} // namespace

std::string
serveHeaderToLine(const ServeJournalHeader &header)
{
    std::ostringstream os;
    os << "{\"kind\": \"" << kServeJournalKind << "\""
       << ", \"version\": " << header.version
       << ", \"cache\": \"" << flat::escape(header.cacheDir) << "\"}";
    return os.str();
}

std::string
jobRecordToLine(const JobRecord &record)
{
    std::ostringstream os;
    os << "{\"key\": \"" << keyToHex(record.key) << "\""
       << ", \"checksum\": \"" << keyToHex(record.checksum) << "\""
       << ", \"bytes\": " << record.bytes << "}";
    return os.str();
}

Expected<ServeJournalHeader>
parseServeHeaderLine(const std::string &line)
{
    auto object = flat::parseObject(line);
    if (!object)
        return Error(object.error()).context("serve journal header");
    auto kind = flat::getString(*object, "kind");
    if (!kind)
        return Error(kind.error()).context("serve journal header");
    if (*kind != kServeJournalKind)
        return Error("serve journal header: kind '" + *kind +
                     "' is not '" + kServeJournalKind + "'");
    auto version = flat::getNumber(*object, "version");
    auto cache = flat::getString(*object, "cache");
    for (const Error *e : {version.errorOrNull(), cache.errorOrNull()})
        if (e)
            return Error(e->message()).context("serve journal header");
    if (*version != 1)
        return Error("serve journal header: unsupported version " +
                     std::to_string(*version));
    ServeJournalHeader header;
    header.version = *version;
    header.cacheDir = *cache;
    return header;
}

Expected<JobRecord>
parseJobRecordLine(const std::string &line)
{
    auto object = flat::parseObject(line);
    if (!object)
        return object.error();
    auto key = getHexKey(*object, "key");
    auto checksum = getHexKey(*object, "checksum");
    auto bytes = flat::getNumber(*object, "bytes");
    for (const Error *e : {key.errorOrNull(), checksum.errorOrNull(),
                           bytes.errorOrNull()})
        if (e)
            return Error(e->message());
    JobRecord record;
    record.key = *key;
    record.checksum = *checksum;
    record.bytes = *bytes;
    return record;
}

Expected<ServeJournalContents>
readServeJournal(const std::string &path)
{
    auto text = readTextFile(path);
    if (!text)
        return Error(text.error()).context("serve journal");
    ServeJournalContents contents;
    contents.validBytes = text->size();
    struct RawLine
    {
        std::size_t number;
        std::size_t start;
        std::string text;
    };
    std::vector<RawLine> recordLines;
    bool sawHeader = false;
    std::size_t lineNo = 0, pos = 0;
    while (pos < text->size()) {
        std::size_t eol = text->find('\n', pos);
        std::size_t end = eol == std::string::npos ? text->size() : eol;
        std::string line = text->substr(pos, end - pos);
        std::size_t start = pos;
        pos = eol == std::string::npos ? text->size() : eol + 1;
        ++lineNo;
        if (line.empty())
            continue;
        if (!sawHeader) {
            auto header = parseServeHeaderLine(line);
            if (!header)
                return Error(header.error())
                    .context("'" + path + "' line " +
                             std::to_string(lineNo));
            contents.header = *header;
            sawHeader = true;
            continue;
        }
        recordLines.push_back({lineNo, start, std::move(line)});
    }
    if (!sawHeader)
        return Error("serve journal '" + path + "' has no header line");
    for (std::size_t i = 0; i < recordLines.size(); ++i) {
        auto record = parseJobRecordLine(recordLines[i].text);
        if (!record) {
            if (i + 1 == recordLines.size()) {
                // The signature of a server SIGKILLed mid-append.
                contents.tornTail = true;
                contents.validBytes = recordLines[i].start;
                break;
            }
            return Error(record.error())
                .context("'" + path + "' line " +
                         std::to_string(recordLines[i].number));
        }
        contents.records.push_back(*record);
    }
    return contents;
}

Expected<bool>
ServeJournalWriter::create(const std::string &path,
                           const ServeJournalHeader &header)
{
    if (auto opened = _file.create(path); !opened)
        return Error(opened.error()).context("serve journal");
    if (auto wrote = _file.appendLine(serveHeaderToLine(header)); !wrote)
        return Error(wrote.error()).context("serve journal");
    return true;
}

Expected<bool>
ServeJournalWriter::append(const std::string &path)
{
    bool needsNewline = false;
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        if (in && in.tellg() > 0) {
            in.seekg(-1, std::ios::end);
            needsNewline = in.get() != '\n';
        }
    }
    if (auto opened = _file.append(path); !opened)
        return Error(opened.error()).context("serve journal");
    if (needsNewline)
        if (auto isolated = _file.appendText("\n"); !isolated)
            return Error(isolated.error()).context("serve journal");
    return true;
}

Expected<bool>
ServeJournalWriter::add(const JobRecord &record)
{
    if (!_file.isOpen())
        return Error("serve journal writer is not open");
    if (auto wrote = _file.appendLine(jobRecordToLine(record)); !wrote)
        return Error(wrote.error()).context("serve journal");
    return true;
}

} // namespace ruu::serve
