/**
 * @file
 * The ruusimd wire protocol.
 *
 * Newline-delimited flat JSON (common/flat_json.hh — the inject
 * journal's dialect) over a Unix-domain stream socket. A client
 * submits a batch of simulation jobs, then asks for the batch to run;
 * per-job results stream back in submission order, each carrying the
 * exact `ruusim run --json` payload, so serve output is byte-
 * comparable to a cold serial run.
 *
 * Requests (one object per line):
 *
 *   {"op": "ping"}
 *   {"op": "status"}
 *   {"op": "submit", "id": I, ...job fields...}
 *   {"op": "run"}
 *   {"op": "shutdown"}
 *   {"op": "campaign", "id": I, "kind": K, ...campaign fields...}
 *   {"op": "watch", "id": I}
 *   {"op": "cancel", "id": I}
 *
 * Submit job fields: exactly one of "workload" (built-in kernel name)
 * or "program" (assembly source, read client-side — the daemon needs
 * no file access); optional "name" (display name for a program),
 * "core" (default "ruu"), "config" (embedded JSON object text as
 * emitted by configToJson), "period" (periodic external-interrupt
 * arrival period in cycles; 0 = plain run), "deadline_ms" (per-job
 * wall-clock watchdog override).
 *
 * Campaign fields (docs/SERVE.md, serve/queue.hh) name a server-side
 * durable sweep: "kind" is "run", "storm", or "inject"; "workloads"
 * and "cores" are comma lists of built-in kernel and core-scheme
 * names (campaigns carry no program text — they outlive the
 * submitting client, so everything must resolve server-side);
 * "periods" (storm only) is a comma list of arrival periods; "trials"
 * and "seed" (inject only) size the trial sweep; "config" and
 * "deadline_ms" are as for submit. The daemon acks with the unit
 * count and executes in the background; "watch" streams one
 * {"op": "unit", ...} line per unit in unit order, then a
 * {"op": "watch", ...} summary; "cancel" voids units not yet
 * dispatched.
 *
 * Responses: every line carries "ok" (1/0) and echoes "op"; submit
 * acks echo "id"; a shed submit answers ok 0 with error "overloaded".
 * During run, one {"op": "result", "id": I, "status": S, "cached": C,
 * "payload"|"error": ...} line per job in submission order, then a
 * {"op": "run", ...} summary. Unknown operations, unknown keys, and
 * malformed lines produce an error response — never a dead server.
 */

#ifndef RUU_SERVE_PROTOCOL_HH
#define RUU_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/flat_json.hh"

namespace ruu::serve
{

/** Protocol operations. */
enum class Op
{
    Ping,
    Status,
    Submit,
    Run,
    Shutdown,
    Campaign,
    Watch,
    Cancel,
};

/** The name of @p op as it appears on the wire. */
const char *opName(Op op);

/** One simulation job as submitted by a client. */
struct JobSpec
{
    std::string id;         //!< client-chosen identifier, echoed back
    std::string workload;   //!< built-in kernel name (xor program)
    std::string program;    //!< assembly source text (xor workload)
    std::string name;       //!< display name for a program submission
    std::string core = "ruu";
    std::string configJson; //!< empty = default (cray1) configuration
    std::uint64_t period = 0;     //!< interrupt period; 0 = plain run
    std::uint64_t deadlineMs = 0; //!< 0 = server default
};

/** What a campaign sweeps over. */
enum class CampaignKind
{
    Run,   //!< plain runs: workloads × cores
    Storm, //!< interrupt storms: workloads × cores × periods
    Inject, //!< fault injection: one unit per trial
};

/** The wire name of @p kind ("run", "storm", "inject"). */
const char *campaignKindName(CampaignKind kind);

/** Inverse of campaignKindName. */
Expected<CampaignKind> campaignKindFromName(const std::string &name);

/**
 * One durable server-side campaign as submitted by a client. Only
 * built-in names — a campaign outlives its submitting client, so
 * nothing in the spec may depend on client-side file access.
 */
struct CampaignSpec
{
    std::string id; //!< client-chosen identifier, unique per daemon
    CampaignKind kind = CampaignKind::Run;
    std::vector<std::string> workloads; //!< built-in kernel names
    std::vector<std::string> cores;     //!< core-scheme names
    std::vector<std::uint64_t> periods; //!< storm arrival periods
    std::uint64_t trials = 0;           //!< inject trial count
    std::uint64_t seed = 1;             //!< inject campaign seed
    std::string configJson; //!< empty = default configuration
    std::uint64_t deadlineMs = 0; //!< per-unit deadline; 0 = default
};

/** A parsed request line. */
struct Request
{
    Op op = Op::Ping;
    JobSpec job;           //!< meaningful when op == Op::Submit
    CampaignSpec campaign; //!< meaningful when op == Op::Campaign
    std::string target;    //!< campaign id for Op::Watch / Op::Cancel
};

/**
 * Parse one request line. Strict: unknown operations, unknown or
 * ill-typed keys, and submits naming both (or neither of) a workload
 * and a program are errors.
 */
Expected<Request> parseRequest(const std::string &line);

/** Serialize @p request as one wire line (no trailing newline). */
std::string requestToLine(const Request &request);

/** Job outcome classification on the wire. */
enum class JobStatus
{
    Done,     //!< payload holds the result JSON
    Rejected, //!< bad job (unknown kernel, bad program/config/core)
    Crashed,  //!< the sandboxed run died of a signal
    TimedOut, //!< the per-job deadline expired
    Failed,   //!< host trouble (spawn retries exhausted, ...)
};

/** The wire name of @p status ("done", "rejected", ...). */
const char *jobStatusName(JobStatus status);

/** One job's result line. */
std::string resultToLine(const std::string &id, JobStatus status,
                         bool cached, const std::string &payloadOrError);

/** One campaign unit's result line, streamed by watch. */
std::string unitResultToLine(const std::string &id, std::uint64_t unit,
                             JobStatus status, bool cached,
                             const std::string &payloadOrError);

/** A generic error response (ok 0). */
std::string errorToLine(const std::string &message);

} // namespace ruu::serve

#endif // RUU_SERVE_PROTOCOL_HH
