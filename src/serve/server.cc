#include "serve/server.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/io_faults.hh"
#include "common/logging.hh"
#include "engine/engine.hh"
#include "inject/campaign.hh"
#include "inject/sandbox.hh"
#include "kernels/lll.hh"
#include "lint/dataflow_bound.hh"
#include "lint/wcirt.hh"
#include "par/ordered.hh"
#include "serve/cache.hh"
#include "serve/protocol.hh"
#include "serve/queue.hh"
#include "serve/recovery.hh"
#include "sim/json.hh"
#include "sim/machine.hh"
#include "trap/controller.hh"
#include "trap/handlers.hh"
#include "trap/interrupt_source.hh"

namespace ruu::serve
{

namespace
{

/**
 * SIGTERM/SIGINT latch for graceful drain. Installed without
 * SA_RESTART so a signal interrupts the blocking accept/poll, which
 * then notices the latch and starts the drain instead of dying.
 */
volatile std::sig_atomic_t gDrainSignal = 0;

extern "C" void
onDrainSignal(int)
{
    gDrainSignal = 1;
}

/** Keep only the last @p keep characters of @p text. */
std::string
tail(const std::string &text, std::size_t keep)
{
    if (text.size() <= keep)
        return text;
    return "..." + text.substr(text.size() - keep);
}

/** Send all of @p line plus a newline; false once the peer is gone. */
bool
writeLine(int fd, const std::string &line)
{
    std::string framed = line + "\n";
    std::size_t done = 0;
    while (done < framed.size()) {
        ssize_t n = ::send(fd, framed.data() + done,
                           framed.size() - done, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

/** What one job produced, staged for the ordered committer. */
struct JobOutcome
{
    JobStatus status = JobStatus::Failed;
    bool cached = false;
    bool freshResult = false; //!< Done and not from the cache
    std::string text;         //!< payload (Done) or diagnostic
    std::uint64_t key = 0;
};

/**
 * The sandboxed body of a periodic-interrupt job: one cell of the
 * `ruusim storm` sweep (baseline run, compact-layout heuristic,
 * counter handler, WCIRT ceiling, oracle + bit-exact replay checks),
 * reported in the storm --json line format.
 */
std::string
runPeriodicJob(const Workload &workload, CoreKind kind,
               const UarchConfig &config, std::uint64_t period)
{
    trap::TrapConfig tconfig;
    tconfig.checkOracle = true;
    Addr maxAddr = 0;
    for (const auto &record : workload.trace().records())
        maxAddr = std::max(maxAddr, record.memAddr);
    for (const auto &init : workload.program->dataInits())
        maxAddr = std::max(maxAddr, init.addr);
    if (maxAddr < 0xe000) {
        tconfig.layout.exchangeBase = 0xf000;
        tconfig.layout.scratchBase = 0xf800;
        tconfig.memoryWords = 1u << 16;
    }
    auto handlerProg =
        std::make_shared<const Program>(trap::counterHandler());
    tconfig.handler = handlerProg;

    auto core = makeCore(kind, config);
    RunResult baseline = core->run(workload.trace());

    trap::TrapController controller(*core, tconfig);
    trap::TrapRunResult res = controller.run(
        workload.trace(),
        trap::InterruptSource::periodic(static_cast<Cycle>(period), 1));

    bool good = res.ok();
    std::string why = res.error;
    if (good && !res.oracleFailure.empty()) {
        good = false;
        why = res.oracleFailure;
    }
    if (good) {
        auto replay = trap::replayFunctional(workload.program, tconfig,
                                             res.deliveries);
        if (!replay.ok) {
            good = false;
            why = replay.error;
        } else if (replay.state != res.state ||
                   replay.memory != res.memory ||
                   replay.trapRegs != res.trapRegs) {
            good = false;
            why = "timing run and functional replay disagree on the "
                  "final state";
        }
    }
    const double pctCeil =
        res.wcirtCeiling
            ? 100.0 * static_cast<double>(res.maxDeliveryLatency) /
                  static_cast<double>(res.wcirtCeiling)
            : 0.0;
    double degrade =
        baseline.cycles
            ? 100.0 *
                  (static_cast<double>(res.cycles) -
                   static_cast<double>(baseline.cycles)) /
                  static_cast<double>(baseline.cycles)
            : 0.0;
    return detail::vformat(
        "{\"workload\": \"%s\", \"core\": \"%s\", "
        "\"k\": %llu, \"deliveries\": %zu, "
        "\"handler_mean_cycles\": %.2f, "
        "\"handler_max_cycles\": %llu, "
        "\"cycles\": %llu, \"baseline_cycles\": %llu, "
        "\"degradation_pct\": %.2f, \"wcirt\": %llu, "
        "\"max_delivery_latency\": %llu, "
        "\"pct_ceiling\": %.2f, \"ok\": %s, \"pruned\": false}",
        workload.name.c_str(), coreKindName(kind),
        static_cast<unsigned long long>(period), res.deliveries.size(),
        res.meanHandlerCycles(),
        static_cast<unsigned long long>(res.maxHandlerCycles()),
        static_cast<unsigned long long>(res.cycles),
        static_cast<unsigned long long>(baseline.cycles), degrade,
        static_cast<unsigned long long>(res.wcirtCeiling),
        static_cast<unsigned long long>(res.maxDeliveryLatency),
        pctCeil, good ? "true" : "false");
}

class Server
{
  public:
    Server(const ServerOptions &options, ServerStats &stats)
        : _options(options), _stats(stats), _cache(options.cacheDir),
          _pool(options.jobs), _start(std::chrono::steady_clock::now())
    {}

    Expected<int> run();

  private:
    Expected<bool> recover();
    void handleConnection(int fd);
    void runBatch(int fd, bool &connAlive);
    JobOutcome runJob(const JobSpec &job, std::size_t index);
    JobOutcome runInjectUnit(const Lease &lease);
    void dispatchLoop();
    void runUnit(const Lease &lease);
    void runWatch(int fd, const std::string &id, bool &connAlive);
    void startDispatchers();
    void joinDispatchers();
    bool drainRequested() const;
    std::string statusLine();

    const ServerOptions &_options;
    ServerStats &_stats;
    std::mutex _statsMutex; //!< _stats is touched from every thread
    ResultCache _cache;
    std::mutex _cacheMutex;
    ServeJournalWriter _journal;
    CampaignQueue _campaignQueue;
    std::vector<std::thread> _dispatchers;
    par::Pool _pool;
    std::chrono::steady_clock::time_point _start;
    std::vector<JobSpec> _queue;
    int _listenFd = -1; //!< closed in sandbox children
    int _connFd = -1;   //!< closed in sandbox children
    std::atomic<bool> _shutdown{false};
};

Expected<bool>
Server::recover()
{
    if (_options.journalPath.empty())
        return true;
    bool exists = false;
    {
        std::ifstream probe(_options.journalPath);
        exists = probe.good();
    }
    if (!exists) {
        ServeJournalHeader header;
        header.cacheDir = _options.cacheDir;
        return _journal.create(_options.journalPath, header);
    }
    auto contents = readServeJournal(_options.journalPath);
    if (!contents)
        return Error(contents.error()).context("serve recovery");
    // Identity pinning: a journal only vouches for the cache it was
    // written against; replaying it onto a different directory would
    // "recover" entries it knows nothing about.
    if (contents->header.cacheDir != _options.cacheDir)
        return Error("serve journal '" + _options.journalPath +
                     "' pins cache directory '" +
                     contents->header.cacheDir + "', not '" +
                     _options.cacheDir + "'");
    if (contents->tornTail)
        if (auto cut = io::truncateFile(_options.journalPath,
                                        contents->validBytes);
            !cut)
            return Error(cut.error())
                .context("cannot drop the torn tail of serve journal '" +
                         _options.journalPath + "'");
    // Each journaled completion vouches for one cache entry; entries
    // the journal and cache disagree on are deleted so the job simply
    // recomputes — corruption degrades to work, never to wrong bytes.
    for (const JobRecord &record : contents->records)
        if (_cache.verifyAgainst(record.key, record.checksum,
                                 record.bytes))
            ++_stats.recovered;
    return _journal.append(_options.journalPath);
}

std::string
Server::statusLine()
{
    auto uptime =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - _start)
            .count();
    ServerStats stats;
    {
        std::lock_guard<std::mutex> lock(_statsMutex);
        stats = _stats;
    }
    ResultCache::Stats cache;
    std::uint64_t entries = 0;
    {
        std::lock_guard<std::mutex> lock(_cacheMutex);
        cache = _cache.stats();
        entries = _cache.entriesOnDisk();
    }
    CampaignQueue::Stats queue = _campaignQueue.stats();
    io::FaultStats io = io::faultStats();
    std::ostringstream os;
    os << "{\"ok\": 1, \"op\": \"status\""
       << ", \"uptime_ms\": " << uptime
       << ", \"queue_depth\": " << _queue.size()
       << ", \"queue_limit\": " << _options.queueLimit
       << ", \"jobs\": " << _options.jobs
       << ", \"connections\": " << stats.connections
       << ", \"requests\": " << stats.requests
       << ", \"bad_requests\": " << stats.badRequests
       << ", \"jobs_done\": " << stats.jobsDone
       << ", \"jobs_rejected\": " << stats.jobsRejected
       << ", \"jobs_crashed\": " << stats.jobsCrashed
       << ", \"jobs_timed_out\": " << stats.jobsTimedOut
       << ", \"jobs_failed\": " << stats.jobsFailed
       << ", \"shed\": " << stats.shed
       << ", \"recovered\": " << stats.recovered
       << ", \"cache_hits\": " << cache.hits
       << ", \"cache_misses\": " << cache.misses
       << ", \"cache_stores\": " << cache.stores
       << ", \"cache_dropped\": " << cache.dropped
       << ", \"cache_entries\": " << entries
       << ", \"campaigns\": " << queue.campaigns
       << ", \"units_pending\": " << _campaignQueue.unfinishedUnits()
       << ", \"units_done\": " << queue.unitsDone
       << ", \"units_failed\": " << queue.unitsFailed
       << ", \"units_canceled\": " << queue.unitsCanceled
       << ", \"unit_leases\": " << queue.leases
       << ", \"lease_expiries\": " << queue.expiries
       << ", \"unit_duplicates\": " << queue.duplicates
       << ", \"units_recovered\": " << queue.recoveredUnits
       << ", \"queue_journal_errors\": " << queue.journalErrors
       << ", \"campaigns_shed\": " << queue.shed
       << ", \"io_ops\": " << io.ops
       << ", \"io_injected\": " << io.injected
       << ", \"draining\": " << (drainRequested() ? 1 : 0) << "}";
    return os.str();
}

JobOutcome
Server::runJob(const JobSpec &job, std::size_t index)
{
    JobOutcome out;

    auto kind = coreKindFromName(job.core);
    if (!kind) {
        out.status = JobStatus::Rejected;
        out.text = "unknown core '" + job.core + "'";
        return out;
    }

    UarchConfig config = UarchConfig::cray1();
    if (!job.configJson.empty()) {
        auto parsed = parseUarchConfig(job.configJson);
        if (!parsed) {
            out.status = JobStatus::Rejected;
            out.text = "bad config: " + parsed.error().message();
            return out;
        }
        config = parsed.take();
    }
    if (std::string problem = config.validate(); !problem.empty()) {
        out.status = JobStatus::Rejected;
        out.text = "bad config: " + problem;
        return out;
    }

    // Resolve the workload. Kernel names share the process-wide cached
    // workloads; submitted programs are assembled and functionally
    // simulated here, where a faulting or non-halting program is a
    // per-job rejection, never a dead server.
    const Workload *resolved = nullptr;
    Workload built;
    if (!job.workload.empty()) {
        for (const Workload &workload : livermoreWorkloads())
            if (workload.name == job.workload)
                resolved = &workload;
        if (!resolved) {
            out.status = JobStatus::Rejected;
            out.text = "unknown workload '" + job.workload + "'";
            return out;
        }
    } else {
        auto checked = workloadFromSourceChecked(
            job.program, job.name.empty() ? job.id : job.name);
        if (!checked) {
            out.status = JobStatus::Rejected;
            out.text = checked.error().message();
            return out;
        }
        built = checked.take();
        resolved = &built;
    }
    const Workload &workload = *resolved;

    CacheKeyInputs inputs;
    inputs.displayName = workload.name;
    inputs.traceFingerprint = lint::boundTraceFingerprint(workload.trace());
    inputs.traceLength = workload.trace().size();
    inputs.configJson = configToJson(config);
    inputs.core = coreKindName(*kind);
    inputs.period = job.period;
    inputs.engineVersion = engine::kStreamFormatVersion;
    out.key = cacheKey(inputs);

    {
        std::lock_guard<std::mutex> lock(_cacheMutex);
        if (auto hit = _cache.load(out.key)) {
            out.status = JobStatus::Done;
            out.cached = true;
            out.text = std::move(*hit);
            return out;
        }
    }

    // Fresh computation, crash-contained: the simulation runs in a
    // forked child under the job's deadline, so a wedged or crashing
    // run is this job's classification, not the daemon's death.
    unsigned deadline = job.deadlineMs
                            ? static_cast<unsigned>(job.deadlineMs)
                            : _options.defaultDeadlineMs;
    BackoffPolicy policy = _options.spawnBackoff;
    policy.seed = par::jobSeed(_options.seed, index);
    unsigned retries = 0;
    inject::SandboxOutcome sandbox = inject::runSandboxedWithRetry(
        [&](inject::SandboxChannel &channel) {
            // The child inherited the daemon's sockets. Drop them, or
            // an in-flight child outliving a SIGKILLed daemon keeps
            // the listener's inode alive — a client connecting during
            // the restart window then lands in a backlog nobody will
            // ever accept and dies of a reset instead of retrying
            // against the restarted daemon.
            if (_listenFd >= 0)
                ::close(_listenFd);
            if (_connFd >= 0)
                ::close(_connFd);
            if (job.period == 0) {
                auto core = makeCore(*kind, config);
                RunResult run = core->run(workload.trace());
                if (!matchesFunctional(run, workload.func))
                    ruu_fatal("'%s' committed the wrong state "
                              "(simulator bug)",
                              workload.name.c_str());
                channel.send("RES",
                             runToJson(workload.name, core->name(),
                                       run, core->stats()));
            } else {
                channel.send("RES",
                             runPeriodicJob(workload, *kind, config,
                                            job.period));
            }
        },
        deadline, policy, &retries);

    switch (sandbox.status) {
      case inject::SandboxOutcome::Status::Reported:
        out.status = JobStatus::Done;
        out.freshResult = true;
        out.text = sandbox.resLine;
        break;
      case inject::SandboxOutcome::Status::Crashed: {
        out.status = JobStatus::Crashed;
        std::string how =
            sandbox.signal
                ? std::string("signal ") + strsignal(sandbox.signal)
                : "exit code " + std::to_string(sandbox.exitCode);
        out.text = "job process died (" + how + "): " +
                   tail(sandbox.stderrText, 1000);
        break;
      }
      case inject::SandboxOutcome::Status::TimedOut:
        out.status = JobStatus::TimedOut;
        out.text = "deadline (" + std::to_string(deadline) +
                   " ms) expired";
        break;
      case inject::SandboxOutcome::Status::SpawnFailed:
        out.status = JobStatus::Failed;
        out.text = "sandbox spawn failed after " +
                   std::to_string(retries + 1) + " attempts: " +
                   sandbox.spawnError;
        break;
    }
    return out;
}

JobOutcome
Server::runInjectUnit(const Lease &lease)
{
    JobOutcome out;
    const CampaignSpec &spec = lease.spec;
    inject::CampaignOptions options;
    for (const std::string &name : spec.cores) {
        auto kind = coreKindFromName(name);
        if (!kind) {
            out.status = JobStatus::Rejected;
            out.text = "unknown core '" + name + "'";
            return out;
        }
        options.cores.push_back(*kind);
    }
    for (const std::string &name : spec.workloads) {
        const Workload *found = nullptr;
        for (const Workload &workload : livermoreWorkloads())
            if (workload.name == name)
                found = &workload;
        if (!found) {
            out.status = JobStatus::Rejected;
            out.text = "unknown workload '" + name + "'";
            return out;
        }
        options.workloads.push_back(*found);
    }
    if (!spec.configJson.empty()) {
        auto parsed = parseUarchConfig(spec.configJson);
        if (!parsed) {
            out.status = JobStatus::Rejected;
            out.text = "bad config: " + parsed.error().message();
            return out;
        }
        options.config = parsed.take();
        if (std::string problem = options.config.validate();
            !problem.empty()) {
            out.status = JobStatus::Rejected;
            out.text = "bad config: " + problem;
            return out;
        }
    }
    options.trials = spec.trials;
    options.seed = spec.seed;
    options.timeoutMs =
        spec.deadlineMs ? static_cast<unsigned>(spec.deadlineMs)
                        : _options.defaultDeadlineMs;

    // replayTrial runs the trial in its own fork sandbox with the
    // watchdog and spawn retries of a real `ruusim inject` campaign,
    // so a crashing trial is this unit's classification, not the
    // daemon's death. (Unlike runJob's sandbox body, the child has no
    // hook to drop the daemon's inherited socket fds; the hazard is
    // bounded by the per-trial deadline.)
    auto trial = inject::replayTrial(options, lease.unit.trial);
    if (!trial) {
        out.status = JobStatus::Failed;
        out.text = trial.error().message();
        return out;
    }
    out.status = JobStatus::Done;
    out.freshResult = true;
    out.text = inject::trialToLine(*trial);
    return out;
}

void
Server::runUnit(const Lease &lease)
{
    const CampaignSpec &spec = lease.spec;
    JobOutcome out;
    if (spec.kind == CampaignKind::Inject) {
        // An inject unit's cache identity is the campaign identity
        // plus the trial index: (seed, index) fully determine the
        // trial, exactly as --replay-trial pins.
        std::string joinedCores, joinedWorkloads;
        for (const std::string &name : spec.cores)
            joinedCores += (joinedCores.empty() ? "" : ",") + name;
        for (const std::string &name : spec.workloads)
            joinedWorkloads +=
                (joinedWorkloads.empty() ? "" : ",") + name;
        CacheKeyInputs inputs;
        inputs.displayName =
            "inject:" + joinedCores + ":" + joinedWorkloads;
        inputs.traceFingerprint = spec.seed;
        inputs.traceLength = spec.trials;
        inputs.configJson = spec.configJson;
        inputs.core = "inject";
        inputs.period = lease.unit.trial;
        inputs.engineVersion = engine::kStreamFormatVersion;
        out.key = cacheKey(inputs);
        bool haveResult = false;
        {
            std::lock_guard<std::mutex> lock(_cacheMutex);
            if (auto hit = _cache.load(out.key)) {
                out.status = JobStatus::Done;
                out.cached = true;
                out.text = std::move(*hit);
                haveResult = true;
            }
        }
        if (!haveResult) {
            std::uint64_t key = out.key;
            out = runInjectUnit(lease);
            out.key = key;
        }
    } else {
        JobSpec job;
        job.id = spec.id + "#" + std::to_string(lease.unit.index);
        job.workload = lease.unit.workload;
        job.core = lease.unit.core;
        job.configJson = spec.configJson;
        job.period = lease.unit.period;
        job.deadlineMs = spec.deadlineMs;
        out = runJob(job, lease.unit.index);
    }

    // Heartbeat: the run may have consumed most of the lease; renew
    // before committing so the commit can't race our own expiry.
    _campaignQueue.renew(spec.id, lease.unit.index, lease.token,
                         CampaignQueue::Clock::now(), _options.leaseMs);

    std::uint64_t checksum = 0, bytes = 0;
    if (out.status == JobStatus::Done) {
        checksum = fnv1a(out.text);
        bytes = out.text.size();
    }
    if (out.freshResult && _cache.enabled()) {
        std::lock_guard<std::mutex> lock(_cacheMutex);
        // Best effort: on a store failure the payload still lives in
        // memory for this daemon's watchers, and recovery's cache
        // verification will simply fail the journal record, so the
        // unit recomputes after a restart — degraded to extra work,
        // never to wrong bytes.
        (void)_cache.store(out.key, out.text);
    }
    _campaignQueue.complete(spec.id, lease.unit.index, out.status,
                            out.cached, out.key, checksum, bytes,
                            out.text);
}

void
Server::dispatchLoop()
{
    while (!_shutdown.load()) {
        _campaignQueue.expireLeases(CampaignQueue::Clock::now(),
                                    _options.redispatchBackoff);
        auto lease = _campaignQueue.lease(CampaignQueue::Clock::now(),
                                          _options.leaseMs);
        if (!lease) {
            if (_campaignQueue.draining())
                break;
            _campaignQueue.waitForWork(200);
            continue;
        }
        runUnit(*lease);
    }
}

void
Server::startDispatchers()
{
    unsigned count = _options.jobs ? _options.jobs : 1;
    for (unsigned i = 0; i < count; ++i)
        _dispatchers.emplace_back([this] { dispatchLoop(); });
}

void
Server::joinDispatchers()
{
    for (std::thread &dispatcher : _dispatchers)
        if (dispatcher.joinable())
            dispatcher.join();
    _dispatchers.clear();
}

bool
Server::drainRequested() const
{
    return _options.handleSignals && gDrainSignal != 0;
}

void
Server::runWatch(int fd, const std::string &id, bool &connAlive)
{
    auto view = _campaignQueue.campaignView(id);
    if (!view) {
        connAlive =
            writeLine(fd, errorToLine("unknown campaign '" + id + "'"));
        return;
    }
    std::uint64_t done = 0, failed = 0, canceled = 0;
    // Stream strictly in unit order regardless of completion order, so
    // the watch payload stream is byte-identical at any worker count —
    // and across a kill/restart, because units are deterministic.
    for (std::uint64_t u = 0; u < view->unitsTotal && connAlive; ++u) {
        for (;;) {
            auto snap = _campaignQueue.waitForUnit(id, u, 200);
            if (!snap) {
                connAlive = writeLine(
                    fd, errorToLine("campaign '" + id + "' vanished"));
                return;
            }
            if (snap->phase == UnitPhase::Done) {
                std::string payload = snap->text;
                if (payload.empty()) {
                    // Recovered unit: the payload was certified in the
                    // cache, not replayed into memory.
                    std::lock_guard<std::mutex> lock(_cacheMutex);
                    if (auto hit = _cache.load(snap->key))
                        payload = std::move(*hit);
                }
                if (payload.empty()) {
                    // The entry vanished after certification:
                    // recompute rather than fail the watch.
                    _campaignQueue.invalidateUnit(id, u);
                    continue;
                }
                ++done;
                connAlive = writeLine(
                    fd, unitResultToLine(id, u, JobStatus::Done,
                                         snap->cached, payload));
                break;
            }
            if (snap->phase == UnitPhase::Failed) {
                ++failed;
                connAlive = writeLine(
                    fd, unitResultToLine(id, u, snap->status, false,
                                         snap->text));
                break;
            }
            if (snap->phase == UnitPhase::Canceled) {
                ++canceled;
                connAlive = writeLine(
                    fd, unitResultToLine(id, u, JobStatus::Failed,
                                         false, "canceled"));
                break;
            }
            if (_shutdown.load() || drainRequested() ||
                _campaignQueue.draining()) {
                connAlive = writeLine(fd, errorToLine("draining"));
                return;
            }
        }
    }
    if (!connAlive)
        return;
    std::ostringstream os;
    os << "{\"ok\": " << (failed + canceled == 0 ? 1 : 0)
       << ", \"op\": \"watch\", \"id\": \"" << flat::escape(id) << "\""
       << ", \"units\": " << view->unitsTotal << ", \"done\": " << done
       << ", \"failed\": " << failed << ", \"canceled\": " << canceled
       << "}";
    connAlive = writeLine(fd, os.str());
}

void
Server::runBatch(int fd, bool &connAlive)
{
    std::vector<JobSpec> batch;
    batch.swap(_queue);

    std::uint64_t done = 0, failedJobs = 0, hits = 0;
    // Ordered streaming commit: results are staged as workers finish
    // and durably recorded + sent strictly in submission order, so the
    // response stream — and the journal — are byte-identical at any
    // worker count, and a SIGKILL leaves a clean prefix.
    par::OrderedCommitter<JobOutcome> committer(
        [&](std::size_t pos, const JobOutcome &out) -> Expected<bool> {
            if (out.freshResult && _cache.enabled()) {
                std::lock_guard<std::mutex> lock(_cacheMutex);
                // The cache write lands before the journal record
                // vouching for it: a crash between the two costs a
                // recompute, never a journal entry with no payload.
                if (auto stored = _cache.store(out.key, out.text);
                    !stored)
                    return stored.error();
                if (_journal.isOpen()) {
                    JobRecord record;
                    record.key = out.key;
                    record.checksum = fnv1a(out.text);
                    record.bytes = out.text.size();
                    if (auto added = _journal.add(record); !added)
                        return added.error();
                }
            }
            {
                std::lock_guard<std::mutex> lock(_statsMutex);
                switch (out.status) {
                  case JobStatus::Done:
                    ++_stats.jobsDone; ++done; break;
                  case JobStatus::Rejected:
                    ++_stats.jobsRejected; ++failedJobs; break;
                  case JobStatus::Crashed:
                    ++_stats.jobsCrashed; ++failedJobs; break;
                  case JobStatus::TimedOut:
                    ++_stats.jobsTimedOut; ++failedJobs; break;
                  case JobStatus::Failed:
                    ++_stats.jobsFailed; ++failedJobs; break;
                }
            }
            if (out.cached)
                ++hits;
            if (connAlive &&
                !writeLine(fd, resultToLine(batch[pos].id, out.status,
                                            out.cached, out.text))) {
                // The client hung up mid-stream. Keep committing —
                // the work is done and the cache should keep it — but
                // stop writing into the void.
                connAlive = false;
            }
            return true;
        });

    par::forEachIndexed(
        _options.jobs > 1 ? &_pool : nullptr, batch.size(),
        [&](std::size_t pos, unsigned) {
            if (committer.doomed(pos))
                return;
            committer.commit(pos, runJob(batch[pos], pos));
        });

    if (committer.failed()) {
        if (connAlive &&
            !writeLine(fd, errorToLine(committer.error().message())))
            connAlive = false;
        return;
    }
    std::ostringstream os;
    os << "{\"ok\": 1, \"op\": \"run\", \"jobs\": " << batch.size()
       << ", \"done\": " << done << ", \"failed\": " << failedJobs
       << ", \"cache_hits\": " << hits << "}";
    if (connAlive && !writeLine(fd, os.str()))
        connAlive = false;
}

void
Server::handleConnection(int fd)
{
    _queue.clear();
    std::string buffer;
    char chunk[4096];
    bool connAlive = true;
    while (connAlive && !_shutdown.load() && !drainRequested()) {
        std::size_t eol = buffer.find('\n');
        if (eol == std::string::npos) {
            // Bounded wait so a drain signal is noticed even while a
            // client holds the connection idle.
            pollfd waiting{};
            waiting.fd = fd;
            waiting.events = POLLIN;
            int ready = ::poll(&waiting, 1, 200);
            if (ready < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            if (ready == 0)
                continue; // timeout: recheck shutdown/drain
            ssize_t n = ::read(fd, chunk, sizeof(chunk));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                break; // peer closed (or errored): batch abandoned
            buffer.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        std::string line = buffer.substr(0, eol);
        buffer.erase(0, eol + 1);
        if (line.empty())
            continue;
        {
            std::lock_guard<std::mutex> lock(_statsMutex);
            ++_stats.requests;
        }

        auto request = parseRequest(line);
        if (!request) {
            // Hostile or torn input answers with a diagnostic; the
            // connection (and the daemon) stay up.
            {
                std::lock_guard<std::mutex> lock(_statsMutex);
                ++_stats.badRequests;
            }
            connAlive =
                writeLine(fd, errorToLine(request.error().message()));
            continue;
        }
        switch (request->op) {
          case Op::Ping:
            connAlive = writeLine(fd, "{\"ok\": 1, \"op\": \"ping\"}");
            break;
          case Op::Status:
            connAlive = writeLine(fd, statusLine());
            break;
          case Op::Submit:
            if (_queue.size() >= _options.queueLimit) {
                // Bounded admission: shed with an explicit verdict
                // instead of growing without limit.
                {
                    std::lock_guard<std::mutex> lock(_statsMutex);
                    ++_stats.shed;
                }
                connAlive = writeLine(
                    fd, "{\"ok\": 0, \"op\": \"submit\", \"id\": \"" +
                            flat::escape(request->job.id) +
                            "\", \"error\": \"overloaded\", "
                            "\"queue_depth\": " +
                            std::to_string(_queue.size()) + "}");
                break;
            }
            _queue.push_back(request->job);
            connAlive = writeLine(
                fd, "{\"ok\": 1, \"op\": \"submit\", \"id\": \"" +
                        flat::escape(request->job.id) +
                        "\", \"queued\": " +
                        std::to_string(_queue.size()) + "}");
            break;
          case Op::Run:
            runBatch(fd, connAlive);
            break;
          case Op::Campaign: {
            const std::string &id = request->campaign.id;
            auto units = _campaignQueue.submit(
                request->campaign, _options.campaignUnitLimit);
            if (!units) {
                // "overloaded" is the explicit shed verdict; every
                // other message is a refusal (duplicate id with a
                // different spec, journal-append failure, ...).
                connAlive = writeLine(
                    fd, "{\"ok\": 0, \"op\": \"campaign\", \"id\": \"" +
                            flat::escape(id) + "\", \"error\": \"" +
                            flat::escape(units.error().message()) +
                            "\"}");
                break;
            }
            connAlive = writeLine(
                fd, "{\"ok\": 1, \"op\": \"campaign\", \"id\": \"" +
                        flat::escape(id) + "\", \"units\": " +
                        std::to_string(*units) + "}");
            break;
          }
          case Op::Watch:
            runWatch(fd, request->target, connAlive);
            break;
          case Op::Cancel: {
            auto canceled = _campaignQueue.cancel(request->target);
            if (!canceled) {
                connAlive = writeLine(
                    fd, "{\"ok\": 0, \"op\": \"cancel\", \"id\": \"" +
                            flat::escape(request->target) +
                            "\", \"error\": \"" +
                            flat::escape(canceled.error().message()) +
                            "\"}");
                break;
            }
            connAlive = writeLine(
                fd, "{\"ok\": 1, \"op\": \"cancel\", \"id\": \"" +
                        flat::escape(request->target) +
                        "\", \"canceled\": " +
                        std::to_string(*canceled) + "}");
            break;
          }
          case Op::Shutdown:
            writeLine(fd, "{\"ok\": 1, \"op\": \"shutdown\"}");
            _shutdown.store(true);
            break;
        }
    }
    _queue.clear();
}

Expected<int>
Server::run()
{
    if (_options.socketPath.empty())
        return Error("serve: no socket path");
    sockaddr_un addr{};
    if (_options.socketPath.size() >= sizeof(addr.sun_path))
        return Error("serve: socket path '" + _options.socketPath +
                     "' is too long");

    if (auto recovered = recover(); !recovered)
        return recovered.error();

    // Recover (or create) the campaign queue against the same cache
    // the serve journal pins: done-unit records are only honored when
    // their payload is still present and intact.
    if (auto opened = _campaignQueue.open(
            _options.queuePath, _options.cacheDir,
            [this](std::uint64_t key, std::uint64_t checksum,
                   std::uint64_t bytes) {
                std::lock_guard<std::mutex> lock(_cacheMutex);
                return _cache.verifyAgainst(key, checksum, bytes);
            });
        !opened)
        return opened.error();

    if (_options.handleSignals) {
        gDrainSignal = 0;
        struct sigaction action{};
        action.sa_handler = onDrainSignal;
        sigemptyset(&action.sa_mask);
        action.sa_flags = 0; // no SA_RESTART: interrupt accept/poll
        ::sigaction(SIGTERM, &action, nullptr);
        ::sigaction(SIGINT, &action, nullptr);
    }

    int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0)
        return Error(std::string("serve: socket: ") +
                     std::strerror(errno));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, _options.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(_options.socketPath.c_str());
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        Error error(std::string("serve: bind '") +
                    _options.socketPath + "': " + std::strerror(errno));
        ::close(listenFd);
        return error;
    }
    if (::listen(listenFd, 8) != 0) {
        Error error(std::string("serve: listen: ") +
                    std::strerror(errno));
        ::close(listenFd);
        return error;
    }

    _listenFd = listenFd;

    // Prewarm the kernel workloads after the socket is listening —
    // early clients queue in the accept backlog instead of getting
    // connection-refused — so the first batch doesn't pay the one-time
    // functional-simulation cost inside its deadline.
    livermoreWorkloads();

    startDispatchers();

    Expected<int> result = 0;
    while (!_shutdown.load() && !drainRequested() &&
           (_options.maxConnections == 0 ||
            _stats.connections < _options.maxConnections)) {
        // Bounded accept wait: a drain signal interrupts the poll (no
        // SA_RESTART) or is noticed at the next timeout.
        pollfd waiting{};
        waiting.fd = listenFd;
        waiting.events = POLLIN;
        int ready = ::poll(&waiting, 1, 200);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            result = Error(std::string("serve: poll: ") +
                           std::strerror(errno));
            break;
        }
        if (ready == 0)
            continue;
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            result = Error(std::string("serve: accept: ") +
                           std::strerror(errno));
            break;
        }
        {
            std::lock_guard<std::mutex> lock(_statsMutex);
            ++_stats.connections;
        }
        _connFd = fd;
        handleConnection(fd);
        _connFd = -1;
        ::close(fd);
    }

    // Graceful exit, shared by shutdown, the connection cap, a drain
    // signal, and even an accept error: stop leasing, let every
    // in-flight unit finish and journal, then release the socket.
    _campaignQueue.beginDrain();
    joinDispatchers();
    ::close(listenFd);
    ::unlink(_options.socketPath.c_str());
    {
        std::lock_guard<std::mutex> lock(_statsMutex);
        CampaignQueue::Stats queue = _campaignQueue.stats();
        _stats.campaigns = queue.campaigns;
        _stats.unitsDone = queue.unitsDone;
        _stats.unitsFailed = queue.unitsFailed;
        _stats.unitsCanceled = queue.unitsCanceled;
        _stats.leaseExpiries = queue.expiries;
        _stats.unitDuplicates = queue.duplicates;
        _stats.recoveredUnits = queue.recoveredUnits;
        _stats.queueJournalErrors = queue.journalErrors;
        if (drainRequested())
            _stats.drained = 1;
    }
    return result;
}

} // namespace

Expected<int>
runServer(const ServerOptions &options, ServerStats *statsOut)
{
    ServerStats stats;
    Server server(options, stats);
    auto result = server.run();
    if (statsOut)
        *statsOut = stats;
    return result;
}

} // namespace ruu::serve
