#include "serve/protocol.hh"

#include <sstream>

namespace ruu::serve
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::Ping: return "ping";
      case Op::Status: return "status";
      case Op::Submit: return "submit";
      case Op::Run: return "run";
      case Op::Shutdown: return "shutdown";
    }
    return "ping";
}

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Done: return "done";
      case JobStatus::Rejected: return "rejected";
      case JobStatus::Crashed: return "crashed";
      case JobStatus::TimedOut: return "timed-out";
      case JobStatus::Failed: return "failed";
    }
    return "failed";
}

Expected<Request>
parseRequest(const std::string &line)
{
    auto object = flat::parseObject(line);
    if (!object)
        return Error(object.error()).context("request");
    auto op = flat::getString(*object, "op");
    if (!op)
        return Error(op.error()).context("request");

    Request request;
    if (*op == "ping") {
        request.op = Op::Ping;
    } else if (*op == "status") {
        request.op = Op::Status;
    } else if (*op == "run") {
        request.op = Op::Run;
    } else if (*op == "shutdown") {
        request.op = Op::Shutdown;
    } else if (*op == "submit") {
        request.op = Op::Submit;
    } else {
        return Error("request: unknown op '" + *op + "'");
    }

    if (request.op != Op::Submit) {
        // Argument-free operations carry nothing but the op: a stray
        // key is a client bug (or fuzz input) worth diagnosing.
        if (object->size() != 1)
            return Error(std::string("request: op '") + *op +
                         "' takes no other keys");
        return request;
    }

    JobSpec &job = request.job;
    for (const auto &[key, value] : *object) {
        if (key == "op")
            continue;
        if (key == "id" && value.isString) {
            job.id = value.text;
        } else if (key == "workload" && value.isString) {
            job.workload = value.text;
        } else if (key == "program" && value.isString) {
            job.program = value.text;
        } else if (key == "name" && value.isString) {
            job.name = value.text;
        } else if (key == "core" && value.isString) {
            job.core = value.text;
        } else if (key == "config" && value.isString) {
            job.configJson = value.text;
        } else if (key == "period" && !value.isString) {
            job.period = value.number;
        } else if (key == "deadline_ms" && !value.isString) {
            job.deadlineMs = value.number;
        } else {
            return Error("request: unknown or ill-typed key '" + key +
                         "'");
        }
    }
    if (job.id.empty())
        return Error("request: submit needs an \"id\"");
    if (job.workload.empty() == job.program.empty())
        return Error("request: submit needs exactly one of "
                     "\"workload\" or \"program\"");
    return request;
}

std::string
requestToLine(const Request &request)
{
    std::ostringstream os;
    os << "{\"op\": \"" << opName(request.op) << "\"";
    if (request.op == Op::Submit) {
        const JobSpec &job = request.job;
        os << ", \"id\": \"" << flat::escape(job.id) << "\"";
        if (!job.workload.empty())
            os << ", \"workload\": \"" << flat::escape(job.workload)
               << "\"";
        if (!job.program.empty())
            os << ", \"program\": \"" << flat::escape(job.program)
               << "\"";
        if (!job.name.empty())
            os << ", \"name\": \"" << flat::escape(job.name) << "\"";
        if (job.core != "ruu")
            os << ", \"core\": \"" << flat::escape(job.core) << "\"";
        if (!job.configJson.empty())
            os << ", \"config\": \"" << flat::escape(job.configJson)
               << "\"";
        if (job.period)
            os << ", \"period\": " << job.period;
        if (job.deadlineMs)
            os << ", \"deadline_ms\": " << job.deadlineMs;
    }
    os << "}";
    return os.str();
}

std::string
resultToLine(const std::string &id, JobStatus status, bool cached,
             const std::string &payloadOrError)
{
    std::ostringstream os;
    os << "{\"ok\": " << (status == JobStatus::Done ? 1 : 0)
       << ", \"op\": \"result\""
       << ", \"id\": \"" << flat::escape(id) << "\""
       << ", \"status\": \"" << jobStatusName(status) << "\""
       << ", \"cached\": " << (cached ? 1 : 0) << ", \""
       << (status == JobStatus::Done ? "payload" : "error") << "\": \""
       << flat::escape(payloadOrError) << "\"}";
    return os.str();
}

std::string
errorToLine(const std::string &message)
{
    return "{\"ok\": 0, \"error\": \"" + flat::escape(message) + "\"}";
}

} // namespace ruu::serve
