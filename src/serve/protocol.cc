#include "serve/protocol.hh"

#include <sstream>

namespace ruu::serve
{

namespace
{

std::vector<std::string>
splitCommas(const std::string &joined)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream in(joined);
    while (std::getline(in, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

std::string
joinCommas(const std::vector<std::string> &items)
{
    std::string out;
    for (const std::string &item : items) {
        if (!out.empty())
            out += ',';
        out += item;
    }
    return out;
}

std::string
joinNumbers(const std::vector<std::uint64_t> &items)
{
    std::string out;
    for (std::uint64_t item : items) {
        if (!out.empty())
            out += ',';
        out += std::to_string(item);
    }
    return out;
}

Expected<std::vector<std::uint64_t>>
splitNumbers(const std::string &joined)
{
    std::vector<std::uint64_t> out;
    for (const std::string &item : splitCommas(joined)) {
        std::uint64_t value = 0;
        for (char c : item) {
            if (c < '0' || c > '9')
                return Error("'" + item + "' is not an unsigned integer");
            value = value * 10 + static_cast<std::uint64_t>(c - '0');
        }
        out.push_back(value);
    }
    return out;
}

} // namespace

const char *
opName(Op op)
{
    switch (op) {
      case Op::Ping: return "ping";
      case Op::Status: return "status";
      case Op::Submit: return "submit";
      case Op::Run: return "run";
      case Op::Shutdown: return "shutdown";
      case Op::Campaign: return "campaign";
      case Op::Watch: return "watch";
      case Op::Cancel: return "cancel";
    }
    return "ping";
}

const char *
campaignKindName(CampaignKind kind)
{
    switch (kind) {
      case CampaignKind::Run: return "run";
      case CampaignKind::Storm: return "storm";
      case CampaignKind::Inject: return "inject";
    }
    return "run";
}

Expected<CampaignKind>
campaignKindFromName(const std::string &name)
{
    for (CampaignKind k : {CampaignKind::Run, CampaignKind::Storm,
                           CampaignKind::Inject})
        if (name == campaignKindName(k))
            return k;
    return Error("unknown campaign kind '" + name + "'");
}

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Done: return "done";
      case JobStatus::Rejected: return "rejected";
      case JobStatus::Crashed: return "crashed";
      case JobStatus::TimedOut: return "timed-out";
      case JobStatus::Failed: return "failed";
    }
    return "failed";
}

Expected<Request>
parseRequest(const std::string &line)
{
    auto object = flat::parseObject(line);
    if (!object)
        return Error(object.error()).context("request");
    auto op = flat::getString(*object, "op");
    if (!op)
        return Error(op.error()).context("request");

    Request request;
    if (*op == "ping") {
        request.op = Op::Ping;
    } else if (*op == "status") {
        request.op = Op::Status;
    } else if (*op == "run") {
        request.op = Op::Run;
    } else if (*op == "shutdown") {
        request.op = Op::Shutdown;
    } else if (*op == "submit") {
        request.op = Op::Submit;
    } else if (*op == "campaign") {
        request.op = Op::Campaign;
    } else if (*op == "watch") {
        request.op = Op::Watch;
    } else if (*op == "cancel") {
        request.op = Op::Cancel;
    } else {
        return Error("request: unknown op '" + *op + "'");
    }

    if (request.op == Op::Watch || request.op == Op::Cancel) {
        // Exactly the op and the campaign id, nothing else.
        if (object->size() != 2)
            return Error(std::string("request: op '") + *op +
                         "' takes exactly an \"id\"");
        auto id = flat::getString(*object, "id");
        if (!id || id->empty())
            return Error(std::string("request: op '") + *op +
                         "' needs a non-empty \"id\"");
        request.target = *id;
        return request;
    }

    if (request.op == Op::Campaign) {
        CampaignSpec &spec = request.campaign;
        bool sawKind = false;
        for (const auto &[key, value] : *object) {
            if (key == "op")
                continue;
            if (key == "id" && value.isString) {
                spec.id = value.text;
            } else if (key == "kind" && value.isString) {
                auto kind = campaignKindFromName(value.text);
                if (!kind)
                    return Error(kind.error()).context("request");
                spec.kind = *kind;
                sawKind = true;
            } else if (key == "workloads" && value.isString) {
                spec.workloads = splitCommas(value.text);
            } else if (key == "cores" && value.isString) {
                spec.cores = splitCommas(value.text);
            } else if (key == "periods" && value.isString) {
                auto periods = splitNumbers(value.text);
                if (!periods)
                    return Error(periods.error())
                        .context("request: \"periods\"");
                spec.periods = *periods;
            } else if (key == "trials" && !value.isString) {
                spec.trials = value.number;
            } else if (key == "seed" && !value.isString) {
                spec.seed = value.number;
            } else if (key == "config" && value.isString) {
                spec.configJson = value.text;
            } else if (key == "deadline_ms" && !value.isString) {
                spec.deadlineMs = value.number;
            } else {
                return Error("request: unknown or ill-typed key '" +
                             key + "'");
            }
        }
        if (spec.id.empty())
            return Error("request: campaign needs an \"id\"");
        if (!sawKind)
            return Error("request: campaign needs a \"kind\"");
        if (spec.workloads.empty())
            return Error("request: campaign needs \"workloads\"");
        if (spec.cores.empty())
            return Error("request: campaign needs \"cores\"");
        if (spec.kind == CampaignKind::Storm && spec.periods.empty())
            return Error("request: storm campaign needs \"periods\"");
        if (spec.kind != CampaignKind::Storm && !spec.periods.empty())
            return Error("request: only storm campaigns take "
                         "\"periods\"");
        if (spec.kind == CampaignKind::Inject && spec.trials == 0)
            return Error("request: inject campaign needs \"trials\"");
        if (spec.kind != CampaignKind::Inject && spec.trials != 0)
            return Error("request: only inject campaigns take "
                         "\"trials\"");
        return request;
    }

    if (request.op != Op::Submit) {
        // Argument-free operations carry nothing but the op: a stray
        // key is a client bug (or fuzz input) worth diagnosing.
        if (object->size() != 1)
            return Error(std::string("request: op '") + *op +
                         "' takes no other keys");
        return request;
    }

    JobSpec &job = request.job;
    for (const auto &[key, value] : *object) {
        if (key == "op")
            continue;
        if (key == "id" && value.isString) {
            job.id = value.text;
        } else if (key == "workload" && value.isString) {
            job.workload = value.text;
        } else if (key == "program" && value.isString) {
            job.program = value.text;
        } else if (key == "name" && value.isString) {
            job.name = value.text;
        } else if (key == "core" && value.isString) {
            job.core = value.text;
        } else if (key == "config" && value.isString) {
            job.configJson = value.text;
        } else if (key == "period" && !value.isString) {
            job.period = value.number;
        } else if (key == "deadline_ms" && !value.isString) {
            job.deadlineMs = value.number;
        } else {
            return Error("request: unknown or ill-typed key '" + key +
                         "'");
        }
    }
    if (job.id.empty())
        return Error("request: submit needs an \"id\"");
    if (job.workload.empty() == job.program.empty())
        return Error("request: submit needs exactly one of "
                     "\"workload\" or \"program\"");
    return request;
}

std::string
requestToLine(const Request &request)
{
    std::ostringstream os;
    os << "{\"op\": \"" << opName(request.op) << "\"";
    if (request.op == Op::Submit) {
        const JobSpec &job = request.job;
        os << ", \"id\": \"" << flat::escape(job.id) << "\"";
        if (!job.workload.empty())
            os << ", \"workload\": \"" << flat::escape(job.workload)
               << "\"";
        if (!job.program.empty())
            os << ", \"program\": \"" << flat::escape(job.program)
               << "\"";
        if (!job.name.empty())
            os << ", \"name\": \"" << flat::escape(job.name) << "\"";
        if (job.core != "ruu")
            os << ", \"core\": \"" << flat::escape(job.core) << "\"";
        if (!job.configJson.empty())
            os << ", \"config\": \"" << flat::escape(job.configJson)
               << "\"";
        if (job.period)
            os << ", \"period\": " << job.period;
        if (job.deadlineMs)
            os << ", \"deadline_ms\": " << job.deadlineMs;
    } else if (request.op == Op::Campaign) {
        const CampaignSpec &spec = request.campaign;
        os << ", \"id\": \"" << flat::escape(spec.id) << "\""
           << ", \"kind\": \"" << campaignKindName(spec.kind) << "\""
           << ", \"workloads\": \""
           << flat::escape(joinCommas(spec.workloads)) << "\""
           << ", \"cores\": \"" << flat::escape(joinCommas(spec.cores))
           << "\"";
        if (!spec.periods.empty())
            os << ", \"periods\": \"" << joinNumbers(spec.periods)
               << "\"";
        if (spec.trials)
            os << ", \"trials\": " << spec.trials;
        if (spec.kind == CampaignKind::Inject)
            os << ", \"seed\": " << spec.seed;
        if (!spec.configJson.empty())
            os << ", \"config\": \"" << flat::escape(spec.configJson)
               << "\"";
        if (spec.deadlineMs)
            os << ", \"deadline_ms\": " << spec.deadlineMs;
    } else if (request.op == Op::Watch || request.op == Op::Cancel) {
        os << ", \"id\": \"" << flat::escape(request.target) << "\"";
    }
    os << "}";
    return os.str();
}

std::string
resultToLine(const std::string &id, JobStatus status, bool cached,
             const std::string &payloadOrError)
{
    std::ostringstream os;
    os << "{\"ok\": " << (status == JobStatus::Done ? 1 : 0)
       << ", \"op\": \"result\""
       << ", \"id\": \"" << flat::escape(id) << "\""
       << ", \"status\": \"" << jobStatusName(status) << "\""
       << ", \"cached\": " << (cached ? 1 : 0) << ", \""
       << (status == JobStatus::Done ? "payload" : "error") << "\": \""
       << flat::escape(payloadOrError) << "\"}";
    return os.str();
}

std::string
unitResultToLine(const std::string &id, std::uint64_t unit,
                 JobStatus status, bool cached,
                 const std::string &payloadOrError)
{
    std::ostringstream os;
    os << "{\"ok\": " << (status == JobStatus::Done ? 1 : 0)
       << ", \"op\": \"unit\""
       << ", \"id\": \"" << flat::escape(id) << "\""
       << ", \"unit\": " << unit
       << ", \"status\": \"" << jobStatusName(status) << "\""
       << ", \"cached\": " << (cached ? 1 : 0) << ", \""
       << (status == JobStatus::Done ? "payload" : "error") << "\": \""
       << flat::escape(payloadOrError) << "\"}";
    return os.str();
}

std::string
errorToLine(const std::string &message)
{
    return "{\"ok\": 0, \"error\": \"" + flat::escape(message) + "\"}";
}

} // namespace ruu::serve
