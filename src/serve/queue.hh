/**
 * @file
 * Durable server-side campaign queue with leased dispatch.
 *
 * A campaign (serve/protocol.hh CampaignSpec) names a sweep — plain
 * runs, interrupt storms, or fault-injection trials over built-in
 * kernels and core schemes. The daemon persists the spec in an
 * append-only queue journal (the inject journal's flat-JSON dialect
 * and discipline: identity-pinning header, one record per line,
 * fsync per append, torn FINAL line tolerated and truncated on
 * resume, interior damage refused), expands it into deterministic
 * work units, and hands units to dispatcher threads under *leases*:
 *
 *   - lease()    claims a pending unit for leaseMs; past the deadline
 *                the unit silently returns to the pool (the worker is
 *                presumed dead) and re-dispatch is gated by the shared
 *                capped-exponential backoff policy, so a unit that
 *                keeps killing workers backs off instead of spinning.
 *   - renew()    a live worker's heartbeat pushes its deadline out.
 *   - complete() first completion wins; a late worker whose lease
 *                expired merely increments the duplicates counter —
 *                results are deterministic, so at-least-once dispatch
 *                plus content-addressed cache dedup behaves
 *                effectively-exactly-once.
 *
 * Journal records are the recovery protocol: a "campaign" record
 * admits the spec, a "unit" record certifies one finished unit
 * (done units carry the cache key/checksum/bytes that let recovery
 * re-verify the payload against the result cache — a record whose
 * entry vanished or rotted reverts to pending and is recomputed),
 * and a "cancel" record voids the campaign's undispatched units.
 * Replaying the journal after kill -9 therefore reconstructs exactly
 * the durable frontier: admitted work is never lost, certified work
 * is never redone (unless its bytes are gone), and in-flight work
 * reruns — which is safe, because it is deterministic.
 *
 * Degradation contracts: a journal-append failure at submit() refuses
 * admission (the daemon must not accept work it cannot make durable);
 * a journal-append failure at complete() degrades — the unit finishes
 * in memory and journalErrors counts the records that will be
 * recomputed after a restart. A queue past unitLimit sheds with the
 * explicit "overloaded" error rather than queueing unboundedly.
 */

#ifndef RUU_SERVE_QUEUE_HH
#define RUU_SERVE_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/backoff.hh"
#include "common/error.hh"
#include "common/io_faults.hh"
#include "serve/protocol.hh"

namespace ruu::serve
{

/** One schedulable slice of a campaign. */
struct WorkUnit
{
    std::uint64_t index = 0;  //!< position in the campaign's sequence
    std::string workload;     //!< kernel name (empty for inject units)
    std::string core;         //!< core scheme (empty for inject units)
    std::uint64_t period = 0; //!< storm arrival period; 0 = plain run
    std::uint64_t trial = 0;  //!< inject trial index
};

/**
 * Expand @p spec into its unit sequence. Deterministic and total:
 * workload-major, then core, then period for run/storm; one unit per
 * trial for inject (the trial sampler derives core/workload/site from
 * the campaign seed, exactly as `ruusim inject` would).
 */
std::vector<WorkUnit> expandUnits(const CampaignSpec &spec);

/** Where a unit is in its lifecycle. */
enum class UnitPhase
{
    Pending,  //!< waiting for a lease (or re-dispatch after expiry)
    Leased,   //!< claimed by a worker, deadline ticking
    Done,     //!< finished with a payload, journaled
    Failed,   //!< finished without a payload (rejected/crashed/...)
    Canceled, //!< voided by cancel before dispatch
};

const char *unitPhaseName(UnitPhase phase);

/** Queue journal identity line (first line of the file). */
struct QueueHeader
{
    std::uint64_t version = 1;
    std::string cacheDir; //!< pins which cache certifies done units
};

/** One replayable journal record. */
struct QueueRecord
{
    enum class Type
    {
        Campaign, //!< spec admitted
        Unit,     //!< unit finished (done or failed)
        Cancel,   //!< campaign's undispatched units voided
    };
    Type type = Type::Campaign;
    CampaignSpec campaign; //!< Type::Campaign
    std::string id;        //!< Type::Unit / Type::Cancel
    std::uint64_t unit = 0;
    JobStatus status = JobStatus::Done;
    bool cached = false;
    std::uint64_t key = 0;      //!< cache key of a done unit's payload
    std::uint64_t checksum = 0; //!< payload fnv1a
    std::uint64_t bytes = 0;    //!< payload size
    std::string error;          //!< failed unit's diagnostic
};

std::string queueHeaderToLine(const QueueHeader &header);
std::string queueRecordToLine(const QueueRecord &record);
Expected<QueueHeader> parseQueueHeaderLine(const std::string &line);
Expected<QueueRecord> parseQueueRecordLine(const std::string &line);

/** A fully parsed queue journal. */
struct QueueJournalContents
{
    QueueHeader header;
    std::vector<QueueRecord> records;
    bool tornTail = false;     //!< last line incomplete and dropped
    std::size_t validBytes = 0; //!< byte extent of the valid prefix
};

/**
 * Read and validate a whole queue journal. Tolerates a torn final
 * line; rejects a missing/invalid header or malformed interior line.
 */
Expected<QueueJournalContents> readQueueJournal(const std::string &path);

/** A claimed unit, everything a dispatcher needs to run it. */
struct Lease
{
    CampaignSpec spec;
    WorkUnit unit;
    std::uint64_t token = 0; //!< identifies this claim for renew()
};

/** Read-only view of one unit for watch/tests. */
struct UnitSnapshot
{
    WorkUnit unit;
    UnitPhase phase = UnitPhase::Pending;
    JobStatus status = JobStatus::Done;
    bool cached = false;
    std::uint64_t key = 0;
    std::uint64_t checksum = 0;
    std::uint64_t bytes = 0;
    /**
     * Payload (done) or diagnostic (failed). Empty for a done unit
     * recovered from the journal — its payload lives in the cache
     * under (key, checksum, bytes) and was verified at recovery.
     */
    std::string text;
    unsigned dispatches = 0; //!< leases this unit has consumed
};

/** Read-only per-campaign progress summary. */
struct CampaignView
{
    CampaignSpec spec;
    std::uint64_t unitsTotal = 0;
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t canceled = 0;
    std::uint64_t pending = 0;
    std::uint64_t leased = 0;

    bool finished() const
    {
        return done + failed + canceled == unitsTotal;
    }
};

/**
 * The queue proper. Thread-safe: dispatcher threads lease/complete
 * while connection threads submit/watch/cancel. All waits are bounded
 * so a draining daemon can always get out.
 */
class CampaignQueue
{
  public:
    using Clock = std::chrono::steady_clock;

    /**
     * Re-verification hook for recovery: given a done record's
     * (key, checksum, bytes), report whether the payload is still
     * present and intact (ResultCache::verifyAgainst). Units that
     * fail verification revert to pending and recompute.
     */
    using VerifyDone = std::function<bool(
        std::uint64_t key, std::uint64_t checksum, std::uint64_t bytes)>;

    /** Observable queue counters. */
    struct Stats
    {
        std::uint64_t campaigns = 0;
        std::uint64_t unitsExpanded = 0;
        std::uint64_t unitsDone = 0;
        std::uint64_t unitsFailed = 0;
        std::uint64_t unitsCanceled = 0;
        std::uint64_t leases = 0;
        std::uint64_t renewals = 0;
        std::uint64_t expiries = 0;
        std::uint64_t duplicates = 0;     //!< late/double completions
        std::uint64_t recoveredUnits = 0; //!< verified done on resume
        std::uint64_t journalErrors = 0;  //!< degraded complete()s
        std::uint64_t shed = 0;           //!< overloaded submits
    };

    /**
     * Open (creating or recovering) the queue journal at @p path.
     * Pins @p cacheDir in the header; reopening against a different
     * cache refuses, exactly like the serve journal. A torn tail is
     * truncated; @p verify (may be null) re-certifies done records.
     * An empty @p path runs the queue in memory only (no durability —
     * used by tests that target scheduling semantics alone).
     */
    Expected<bool> open(const std::string &path,
                        const std::string &cacheDir,
                        VerifyDone verify);

    /**
     * Admit @p spec. Returns the unit count. Idempotent for a
     * byte-identical respec of a known id; a different spec under a
     * known id is an error; more than @p unitLimit unfinished units
     * in the queue sheds with exactly the error "overloaded"; a
     * journal-append failure refuses admission.
     */
    Expected<std::uint64_t> submit(const CampaignSpec &spec,
                                   std::uint64_t unitLimit);

    /**
     * Claim the next dispatchable unit (campaign admission order,
     * unit order within a campaign, honoring re-dispatch backoff
     * gates). Returns nullopt when nothing is ready.
     */
    std::optional<Lease> lease(Clock::time_point now,
                               std::uint64_t leaseMs);

    /** Heartbeat: push @p token's deadline out. False if stale. */
    bool renew(const std::string &id, std::uint64_t unit,
               std::uint64_t token, Clock::time_point now,
               std::uint64_t leaseMs);

    /**
     * Deliver a unit's outcome; @p text is the payload (done) or the
     * diagnostic (failed). First completion wins; a completion for an
     * already-finished unit counts a duplicate and is dropped. Done
     * units journal (key, checksum, bytes) — the payload itself is
     * certified in the cache, not copied into the journal; failed
     * units journal the status and diagnostic. A journal failure
     * degrades (the unit finishes in memory, journalErrors++).
     * Returns true if this completion was the winner.
     */
    bool complete(const std::string &id, std::uint64_t unit,
                  JobStatus status, bool cached, std::uint64_t key,
                  std::uint64_t checksum, std::uint64_t bytes,
                  const std::string &text);

    /**
     * Return expired leases to the pool, gating each re-dispatch by
     * @p redispatch (seeded per unit, attempt = prior dispatches).
     * Returns how many leases expired.
     */
    std::uint64_t expireLeases(Clock::time_point now,
                               const BackoffPolicy &redispatch);

    /** Void a campaign's undispatched units. Returns the count. */
    Expected<std::uint64_t> cancel(const std::string &id);

    /**
     * Revert a done unit to pending (its cache entry vanished after
     * certification — recompute rather than fail the watch).
     */
    void invalidateUnit(const std::string &id, std::uint64_t unit);

    /** Snapshot one unit. Nullopt for unknown id/unit. */
    std::optional<UnitSnapshot> unitView(const std::string &id,
                                         std::uint64_t unit);

    /** Snapshot one campaign. Nullopt for an unknown id. */
    std::optional<CampaignView> campaignView(const std::string &id);

    /** Ids in admission order. */
    std::vector<std::string> campaignIds();

    /** Units currently pending or leased, across all campaigns. */
    std::uint64_t unfinishedUnits();

    /**
     * Block until a unit might be dispatchable (or @p ms elapses).
     * Returns immediately when draining.
     */
    void waitForWork(std::uint64_t ms);

    /**
     * Block until (id, unit) leaves the pending/leased phases or
     * @p ms elapses; returns its snapshot (nullopt on unknown unit —
     * a timeout returns the still-unfinished snapshot).
     */
    std::optional<UnitSnapshot> waitForUnit(const std::string &id,
                                            std::uint64_t unit,
                                            std::uint64_t ms);

    /** Stop handing out leases; wake every waiter. */
    void beginDrain();

    bool draining();

    Stats stats();

  private:
    struct UnitEntry
    {
        WorkUnit unit;
        UnitPhase phase = UnitPhase::Pending;
        JobStatus status = JobStatus::Done;
        bool cached = false;
        std::uint64_t key = 0;
        std::uint64_t checksum = 0;
        std::uint64_t bytes = 0;
        std::string text; //!< payload (done) or diagnostic (failed)
        std::uint64_t leaseToken = 0;
        Clock::time_point leaseDeadline{};
        Clock::time_point nextDispatch{}; //!< backoff re-dispatch gate
        unsigned dispatches = 0;
    };

    struct CampaignEntry
    {
        CampaignSpec spec;
        std::vector<UnitEntry> units;
        bool canceled = false;
    };

    CampaignEntry *findLocked(const std::string &id);
    UnitSnapshot snapshotLocked(const UnitEntry &entry) const;
    void finishLocked(CampaignEntry &campaign, UnitEntry &entry,
                      JobStatus status, bool cached, std::uint64_t key,
                      std::uint64_t checksum, std::uint64_t bytes,
                      const std::string &text);

    std::mutex _mutex;
    std::condition_variable _cv;
    std::vector<CampaignEntry> _campaigns;
    io::AppendFile _journal;
    bool _durable = false;
    bool _draining = false;
    std::uint64_t _tokenCounter = 0;
    Stats _stats;
};

} // namespace ruu::serve

#endif // RUU_SERVE_QUEUE_HH
