/**
 * @file
 * Content-addressed result cache for the simulation service.
 *
 * Keys fingerprint everything the result payload depends on — the
 * workload's display name, its dynamic trace (lint's bound-cache
 * fingerprint plus length), the serialized configuration, the core
 * scheme, and the interrupt period — so a hit can only ever return
 * the byte-identical payload a cold run would produce. The display
 * name participates because the payload embeds it: two identical
 * programs submitted under different names must not share an entry.
 *
 * Entries live one-per-file under the cache directory:
 *
 *   <dir>/<16-hex-key>.entry
 *   line 1: {"kind": "ruu-serve-cache", "version": 1, "key": K,
 *            "checksum": C, "bytes": N}
 *   line 2: the payload, exactly N bytes, FNV-1a checksum C
 *
 * Corruption is never trusted: a mismatched kind, key, checksum, or
 * byte count drops the entry (file deleted, counted in stats().dropped)
 * and reads as a miss, so the job simply recomputes.
 */

#ifndef RUU_SERVE_CACHE_HH
#define RUU_SERVE_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>

#include "common/error.hh"

namespace ruu::serve
{

/** FNV-1a over @p text — the cache's checksum and key mixer. */
std::uint64_t fnv1a(const std::string &text, std::uint64_t h =
                                                 0xcbf29ce484222325ull);

/** The inputs a result payload depends on. */
struct CacheKeyInputs
{
    std::string displayName;       //!< embedded in the payload
    std::uint64_t traceFingerprint = 0; //!< lint::boundTraceFingerprint
    std::uint64_t traceLength = 0;
    std::string configJson;        //!< configToJson of the exact config
    std::string core;
    std::uint64_t period = 0;

    /**
     * engine::kStreamFormatVersion at build time. Deliberately NOT
     * which engine ran the job: both produce byte-identical payloads,
     * so a hit must never depend on that — but a future revision of
     * the compiled-stream semantics bumps the version and retires
     * every entry either engine produced under the old semantics.
     */
    std::uint64_t engineVersion = 0;
};

/** The content address of @p inputs. */
std::uint64_t cacheKey(const CacheKeyInputs &inputs);

/** @p key as the 16-hex-digit spelling used in filenames and lines. */
std::string keyToHex(std::uint64_t key);

/** On-disk cache over one directory. */
class ResultCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t stores = 0;
        std::uint64_t dropped = 0; //!< corrupt entries deleted
    };

    /** @p dir may not exist yet; it is created on first store. */
    explicit ResultCache(std::string dir) : _dir(std::move(dir)) {}

    /** True when a directory was configured. */
    bool enabled() const { return !_dir.empty(); }

    /**
     * The cached payload of @p key, or std::nullopt on a miss. A
     * corrupt entry is deleted and reported as a miss.
     */
    std::optional<std::string> load(std::uint64_t key);

    /** Persist @p payload under @p key (last write wins). */
    Expected<bool> store(std::uint64_t key, const std::string &payload);

    /**
     * Re-verify the entry of @p key against an externally recorded
     * @p checksum/@p bytes (the recovery journal's), deleting it on
     * any disagreement. True when the entry survives.
     */
    bool verifyAgainst(std::uint64_t key, std::uint64_t checksum,
                       std::uint64_t bytes);

    const Stats &stats() const { return _stats; }

    /** Entry files currently on disk (0 when disabled). */
    std::uint64_t entriesOnDisk() const;

  private:
    std::string entryPath(std::uint64_t key) const;

    std::string _dir;
    Stats _stats;
};

} // namespace ruu::serve

#endif // RUU_SERVE_CACHE_HH
