#include "serve/queue.hh"

#include <sstream>

#include <sys/stat.h>

#include "common/file.hh"
#include "common/flat_json.hh"
#include "serve/cache.hh"

namespace ruu::serve
{

namespace
{

const char *const kQueueKind = "ruu-serve-queue";

std::string
joinCommas(const std::vector<std::string> &items)
{
    std::string out;
    for (const std::string &item : items) {
        if (!out.empty())
            out += ',';
        out += item;
    }
    return out;
}

std::string
joinNumbers(const std::vector<std::uint64_t> &items)
{
    std::string out;
    for (std::uint64_t item : items) {
        if (!out.empty())
            out += ',';
        out += std::to_string(item);
    }
    return out;
}

std::vector<std::string>
splitCommas(const std::string &joined)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream in(joined);
    while (std::getline(in, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

Expected<std::vector<std::uint64_t>>
splitNumbers(const std::string &joined)
{
    std::vector<std::uint64_t> out;
    for (const std::string &item : splitCommas(joined)) {
        std::uint64_t value = 0;
        for (char c : item) {
            if (c < '0' || c > '9')
                return Error("'" + item +
                             "' is not an unsigned integer");
            value = value * 10 + static_cast<std::uint64_t>(c - '0');
        }
        out.push_back(value);
    }
    return out;
}

Expected<std::uint64_t>
getHexKey(const flat::Object &object, const std::string &key)
{
    auto text = flat::getString(object, key);
    if (!text)
        return text.error();
    if (text->size() != 16)
        return Error("key '" + key + "' is not a 16-hex-digit value");
    std::uint64_t value = 0;
    for (char c : *text) {
        value <<= 4;
        if (c >= '0' && c <= '9')
            value |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            value |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return Error("key '" + key + "' has a non-hex digit");
    }
    return value;
}

Expected<JobStatus>
jobStatusFromName(const std::string &name)
{
    for (JobStatus s : {JobStatus::Done, JobStatus::Rejected,
                        JobStatus::Crashed, JobStatus::TimedOut,
                        JobStatus::Failed})
        if (name == jobStatusName(s))
            return s;
    return Error("unknown status '" + name + "'");
}

/** Canonical form for spec-identity comparison (idempotent submit). */
std::string
specCanon(const CampaignSpec &spec)
{
    QueueRecord record;
    record.type = QueueRecord::Type::Campaign;
    record.campaign = spec;
    return queueRecordToLine(record);
}

/** The backoff jitter stream of one (campaign, unit) pair. */
std::uint64_t
unitSeed(const std::string &id, std::uint64_t unit)
{
    return fnv1a(id + "#" + std::to_string(unit));
}

} // namespace

std::vector<WorkUnit>
expandUnits(const CampaignSpec &spec)
{
    std::vector<WorkUnit> units;
    if (spec.kind == CampaignKind::Inject) {
        // One unit per trial; the campaign-seeded sampler derives the
        // trial's core/workload/injection site, so the unit needs only
        // its index to be replayed bit-exactly.
        for (std::uint64_t t = 0; t < spec.trials; ++t) {
            WorkUnit unit;
            unit.index = units.size();
            unit.trial = t;
            units.push_back(std::move(unit));
        }
        return units;
    }
    for (const std::string &workload : spec.workloads)
        for (const std::string &core : spec.cores) {
            if (spec.kind == CampaignKind::Storm) {
                for (std::uint64_t period : spec.periods) {
                    WorkUnit unit;
                    unit.index = units.size();
                    unit.workload = workload;
                    unit.core = core;
                    unit.period = period;
                    units.push_back(std::move(unit));
                }
            } else {
                WorkUnit unit;
                unit.index = units.size();
                unit.workload = workload;
                unit.core = core;
                units.push_back(std::move(unit));
            }
        }
    return units;
}

const char *
unitPhaseName(UnitPhase phase)
{
    switch (phase) {
      case UnitPhase::Pending: return "pending";
      case UnitPhase::Leased: return "leased";
      case UnitPhase::Done: return "done";
      case UnitPhase::Failed: return "failed";
      case UnitPhase::Canceled: return "canceled";
    }
    return "pending";
}

std::string
queueHeaderToLine(const QueueHeader &header)
{
    std::ostringstream os;
    os << "{\"kind\": \"" << kQueueKind << "\""
       << ", \"version\": " << header.version
       << ", \"cache\": \"" << flat::escape(header.cacheDir) << "\"}";
    return os.str();
}

std::string
queueRecordToLine(const QueueRecord &record)
{
    std::ostringstream os;
    switch (record.type) {
      case QueueRecord::Type::Campaign: {
        const CampaignSpec &spec = record.campaign;
        os << "{\"rec\": \"campaign\""
           << ", \"id\": \"" << flat::escape(spec.id) << "\""
           << ", \"ckind\": \"" << campaignKindName(spec.kind) << "\""
           << ", \"workloads\": \""
           << flat::escape(joinCommas(spec.workloads)) << "\""
           << ", \"cores\": \""
           << flat::escape(joinCommas(spec.cores)) << "\""
           << ", \"periods\": \"" << joinNumbers(spec.periods) << "\""
           << ", \"trials\": " << spec.trials
           << ", \"seed\": " << spec.seed
           << ", \"config\": \"" << flat::escape(spec.configJson)
           << "\""
           << ", \"deadline_ms\": " << spec.deadlineMs << "}";
        break;
      }
      case QueueRecord::Type::Unit:
        os << "{\"rec\": \"unit\""
           << ", \"id\": \"" << flat::escape(record.id) << "\""
           << ", \"unit\": " << record.unit
           << ", \"status\": \"" << jobStatusName(record.status)
           << "\""
           << ", \"cached\": " << (record.cached ? 1 : 0)
           << ", \"key\": \"" << keyToHex(record.key) << "\""
           << ", \"checksum\": \"" << keyToHex(record.checksum) << "\""
           << ", \"bytes\": " << record.bytes
           << ", \"error\": \"" << flat::escape(record.error) << "\"}";
        break;
      case QueueRecord::Type::Cancel:
        os << "{\"rec\": \"cancel\""
           << ", \"id\": \"" << flat::escape(record.id) << "\"}";
        break;
    }
    return os.str();
}

Expected<QueueHeader>
parseQueueHeaderLine(const std::string &line)
{
    auto object = flat::parseObject(line);
    if (!object)
        return Error(object.error()).context("queue journal header");
    auto kind = flat::getString(*object, "kind");
    if (!kind)
        return Error(kind.error()).context("queue journal header");
    if (*kind != kQueueKind)
        return Error("queue journal header: kind '" + *kind +
                     "' is not '" + kQueueKind + "'");
    auto version = flat::getNumber(*object, "version");
    auto cache = flat::getString(*object, "cache");
    for (const Error *e : {version.errorOrNull(), cache.errorOrNull()})
        if (e)
            return Error(e->message()).context("queue journal header");
    if (*version != 1)
        return Error("queue journal header: unsupported version " +
                     std::to_string(*version));
    QueueHeader header;
    header.version = *version;
    header.cacheDir = *cache;
    return header;
}

Expected<QueueRecord>
parseQueueRecordLine(const std::string &line)
{
    auto object = flat::parseObject(line);
    if (!object)
        return object.error();
    auto rec = flat::getString(*object, "rec");
    if (!rec)
        return rec.error();
    QueueRecord record;
    if (*rec == "campaign") {
        record.type = QueueRecord::Type::Campaign;
        CampaignSpec &spec = record.campaign;
        auto id = flat::getString(*object, "id");
        auto ckind = flat::getString(*object, "ckind");
        auto workloads = flat::getString(*object, "workloads");
        auto cores = flat::getString(*object, "cores");
        auto periods = flat::getString(*object, "periods");
        auto trials = flat::getNumber(*object, "trials");
        auto seed = flat::getNumber(*object, "seed");
        auto config = flat::getString(*object, "config");
        auto deadline = flat::getNumber(*object, "deadline_ms");
        for (const Error *e :
             {id.errorOrNull(), ckind.errorOrNull(),
              workloads.errorOrNull(), cores.errorOrNull(),
              periods.errorOrNull(), trials.errorOrNull(),
              seed.errorOrNull(), config.errorOrNull(),
              deadline.errorOrNull()})
            if (e)
                return Error(e->message());
        auto kind = campaignKindFromName(*ckind);
        if (!kind)
            return kind.error();
        auto periodList = splitNumbers(*periods);
        if (!periodList)
            return periodList.error();
        spec.id = *id;
        spec.kind = *kind;
        spec.workloads = splitCommas(*workloads);
        spec.cores = splitCommas(*cores);
        spec.periods = *periodList;
        spec.trials = *trials;
        spec.seed = *seed;
        spec.configJson = *config;
        spec.deadlineMs = *deadline;
        return record;
    }
    if (*rec == "unit") {
        record.type = QueueRecord::Type::Unit;
        auto id = flat::getString(*object, "id");
        auto unit = flat::getNumber(*object, "unit");
        auto status = flat::getString(*object, "status");
        auto cached = flat::getNumber(*object, "cached");
        auto key = getHexKey(*object, "key");
        auto checksum = getHexKey(*object, "checksum");
        auto bytes = flat::getNumber(*object, "bytes");
        auto error = flat::getString(*object, "error");
        for (const Error *e :
             {id.errorOrNull(), unit.errorOrNull(),
              status.errorOrNull(), cached.errorOrNull(),
              key.errorOrNull(), checksum.errorOrNull(),
              bytes.errorOrNull(), error.errorOrNull()})
            if (e)
                return Error(e->message());
        auto parsed = jobStatusFromName(*status);
        if (!parsed)
            return parsed.error();
        record.id = *id;
        record.unit = *unit;
        record.status = *parsed;
        record.cached = *cached != 0;
        record.key = *key;
        record.checksum = *checksum;
        record.bytes = *bytes;
        record.error = *error;
        return record;
    }
    if (*rec == "cancel") {
        record.type = QueueRecord::Type::Cancel;
        auto id = flat::getString(*object, "id");
        if (!id)
            return id.error();
        record.id = *id;
        return record;
    }
    return Error("unknown record '" + *rec + "'");
}

Expected<QueueJournalContents>
readQueueJournal(const std::string &path)
{
    auto text = readTextFile(path);
    if (!text)
        return Error(text.error()).context("queue journal");
    QueueJournalContents contents;
    contents.validBytes = text->size();
    struct RawLine
    {
        std::size_t number;
        std::size_t start;
        std::string text;
    };
    std::vector<RawLine> recordLines;
    bool sawHeader = false;
    std::size_t lineNo = 0, pos = 0;
    while (pos < text->size()) {
        std::size_t eol = text->find('\n', pos);
        std::size_t end = eol == std::string::npos ? text->size() : eol;
        std::string line = text->substr(pos, end - pos);
        std::size_t start = pos;
        pos = eol == std::string::npos ? text->size() : eol + 1;
        ++lineNo;
        if (line.empty())
            continue;
        if (!sawHeader) {
            auto header = parseQueueHeaderLine(line);
            if (!header)
                return Error(header.error())
                    .context("'" + path + "' line " +
                             std::to_string(lineNo));
            contents.header = *header;
            sawHeader = true;
            continue;
        }
        recordLines.push_back({lineNo, start, std::move(line)});
    }
    if (!sawHeader)
        return Error("queue journal '" + path + "' has no header line");
    for (std::size_t i = 0; i < recordLines.size(); ++i) {
        auto record = parseQueueRecordLine(recordLines[i].text);
        if (!record) {
            if (i + 1 == recordLines.size()) {
                // The signature of a daemon killed mid-append.
                contents.tornTail = true;
                contents.validBytes = recordLines[i].start;
                break;
            }
            return Error(record.error())
                .context("'" + path + "' line " +
                         std::to_string(recordLines[i].number));
        }
        contents.records.push_back(*record);
    }
    return contents;
}

CampaignQueue::CampaignEntry *
CampaignQueue::findLocked(const std::string &id)
{
    for (CampaignEntry &campaign : _campaigns)
        if (campaign.spec.id == id)
            return &campaign;
    return nullptr;
}

UnitSnapshot
CampaignQueue::snapshotLocked(const UnitEntry &entry) const
{
    UnitSnapshot snapshot;
    snapshot.unit = entry.unit;
    snapshot.phase = entry.phase;
    snapshot.status = entry.status;
    snapshot.cached = entry.cached;
    snapshot.key = entry.key;
    snapshot.checksum = entry.checksum;
    snapshot.bytes = entry.bytes;
    snapshot.text = entry.text;
    snapshot.dispatches = entry.dispatches;
    return snapshot;
}

Expected<bool>
CampaignQueue::open(const std::string &path, const std::string &cacheDir,
                    VerifyDone verify)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _durable = !path.empty();
    if (!_durable)
        return true;

    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
        QueueHeader header;
        header.cacheDir = cacheDir;
        if (auto created = _journal.create(path); !created)
            return Error(created.error()).context("queue journal");
        if (auto wrote = _journal.appendLine(queueHeaderToLine(header));
            !wrote)
            return Error(wrote.error()).context("queue journal");
        return true;
    }

    auto contents = readQueueJournal(path);
    if (!contents)
        return contents.error();
    // The header pins which cache the unit records certify payloads
    // in; recovering against a different cache would vouch for
    // entries nobody ever wrote there.
    if (contents->header.cacheDir != cacheDir)
        return Error("queue journal '" + path + "' pins cache '" +
                     contents->header.cacheDir + "', not '" + cacheDir +
                     "'");
    if (contents->tornTail)
        if (auto cut = io::truncateFile(path, contents->validBytes);
            !cut)
            return Error(cut.error()).context("queue journal");

    for (const QueueRecord &record : contents->records) {
        switch (record.type) {
          case QueueRecord::Type::Campaign: {
            if (findLocked(record.campaign.id))
                break; // replayed admission of a known id; keep first
            CampaignEntry campaign;
            campaign.spec = record.campaign;
            for (WorkUnit &unit : expandUnits(campaign.spec)) {
                UnitEntry entry;
                entry.unit = std::move(unit);
                campaign.units.push_back(std::move(entry));
            }
            ++_stats.campaigns;
            _stats.unitsExpanded += campaign.units.size();
            _campaigns.push_back(std::move(campaign));
            break;
          }
          case QueueRecord::Type::Unit: {
            CampaignEntry *campaign = findLocked(record.id);
            if (!campaign || record.unit >= campaign->units.size())
                break; // stale record for a spec this journal lost
            UnitEntry &entry = campaign->units[record.unit];
            if (entry.phase == UnitPhase::Done ||
                entry.phase == UnitPhase::Failed)
                break; // first record wins, like first completion
            if (record.status == JobStatus::Done) {
                // A done record is only as good as its bytes: verify
                // the payload still sits in the cache intact, else
                // recompute. At-least-once, never wrong.
                if (verify &&
                    !verify(record.key, record.checksum, record.bytes))
                    break;
                entry.phase = UnitPhase::Done;
                entry.status = JobStatus::Done;
                entry.cached = record.cached;
                entry.key = record.key;
                entry.checksum = record.checksum;
                entry.bytes = record.bytes;
                ++_stats.unitsDone;
                ++_stats.recoveredUnits;
            } else {
                entry.phase = UnitPhase::Failed;
                entry.status = record.status;
                entry.text = record.error;
                ++_stats.unitsFailed;
                ++_stats.recoveredUnits;
            }
            break;
          }
          case QueueRecord::Type::Cancel: {
            CampaignEntry *campaign = findLocked(record.id);
            if (!campaign)
                break;
            campaign->canceled = true;
            for (UnitEntry &entry : campaign->units)
                if (entry.phase == UnitPhase::Pending) {
                    entry.phase = UnitPhase::Canceled;
                    ++_stats.unitsCanceled;
                }
            break;
          }
        }
    }

    if (auto opened = _journal.append(path); !opened)
        return Error(opened.error()).context("queue journal");
    return true;
}

Expected<std::uint64_t>
CampaignQueue::submit(const CampaignSpec &spec, std::uint64_t unitLimit)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (CampaignEntry *existing = findLocked(spec.id)) {
        if (specCanon(existing->spec) == specCanon(spec))
            return static_cast<std::uint64_t>(existing->units.size());
        return Error("campaign '" + spec.id +
                     "' already exists with a different spec");
    }
    std::vector<WorkUnit> units = expandUnits(spec);
    if (units.empty())
        return Error("campaign '" + spec.id + "' expands to no units");

    std::uint64_t unfinished = 0;
    for (const CampaignEntry &campaign : _campaigns)
        for (const UnitEntry &entry : campaign.units)
            if (entry.phase == UnitPhase::Pending ||
                entry.phase == UnitPhase::Leased)
                ++unfinished;
    if (unitLimit && unfinished + units.size() > unitLimit) {
        ++_stats.shed;
        return Error("overloaded");
    }

    if (_durable) {
        // Durability gates admission: if the spec cannot be journaled
        // now, a crash would silently drop accepted work — refuse
        // instead, and let the client retry or fall back.
        QueueRecord record;
        record.type = QueueRecord::Type::Campaign;
        record.campaign = spec;
        if (auto wrote = _journal.appendLine(queueRecordToLine(record));
            !wrote)
            return Error(wrote.error()).context("queue journal");
    }

    CampaignEntry campaign;
    campaign.spec = spec;
    for (WorkUnit &unit : units) {
        UnitEntry entry;
        entry.unit = std::move(unit);
        campaign.units.push_back(std::move(entry));
    }
    std::uint64_t count = campaign.units.size();
    ++_stats.campaigns;
    _stats.unitsExpanded += count;
    _campaigns.push_back(std::move(campaign));
    _cv.notify_all();
    return count;
}

std::optional<Lease>
CampaignQueue::lease(Clock::time_point now, std::uint64_t leaseMs)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_draining)
        return std::nullopt;
    for (CampaignEntry &campaign : _campaigns) {
        if (campaign.canceled)
            continue;
        for (UnitEntry &entry : campaign.units) {
            if (entry.phase != UnitPhase::Pending ||
                entry.nextDispatch > now)
                continue;
            entry.phase = UnitPhase::Leased;
            entry.leaseToken = ++_tokenCounter;
            entry.leaseDeadline =
                now + std::chrono::milliseconds(leaseMs);
            ++entry.dispatches;
            ++_stats.leases;
            Lease lease;
            lease.spec = campaign.spec;
            lease.unit = entry.unit;
            lease.token = entry.leaseToken;
            return lease;
        }
    }
    return std::nullopt;
}

bool
CampaignQueue::renew(const std::string &id, std::uint64_t unit,
                     std::uint64_t token, Clock::time_point now,
                     std::uint64_t leaseMs)
{
    std::lock_guard<std::mutex> lock(_mutex);
    CampaignEntry *campaign = findLocked(id);
    if (!campaign || unit >= campaign->units.size())
        return false;
    UnitEntry &entry = campaign->units[unit];
    if (entry.phase != UnitPhase::Leased || entry.leaseToken != token)
        return false;
    entry.leaseDeadline = now + std::chrono::milliseconds(leaseMs);
    ++_stats.renewals;
    return true;
}

void
CampaignQueue::finishLocked(CampaignEntry &campaign, UnitEntry &entry,
                            JobStatus status, bool cached,
                            std::uint64_t key, std::uint64_t checksum,
                            std::uint64_t bytes,
                            const std::string &text)
{
    if (_durable) {
        QueueRecord record;
        record.type = QueueRecord::Type::Unit;
        record.id = campaign.spec.id;
        record.unit = entry.unit.index;
        record.status = status;
        record.cached = cached;
        record.key = key;
        record.checksum = checksum;
        record.bytes = bytes;
        // A done unit's payload is certified in the cache, not copied
        // into the journal; only a failure's diagnostic rides along.
        record.error = status == JobStatus::Done ? "" : text;
        // Completion degrades where admission refuses: the result is
        // live in memory and (for done units) in the cache; losing
        // the record only costs a recompute after the next restart.
        if (auto wrote = _journal.appendLine(queueRecordToLine(record));
            !wrote)
            ++_stats.journalErrors;
    }
    entry.status = status;
    entry.cached = cached;
    entry.key = key;
    entry.checksum = checksum;
    entry.bytes = bytes;
    entry.text = text;
    if (status == JobStatus::Done) {
        entry.phase = UnitPhase::Done;
        ++_stats.unitsDone;
    } else {
        entry.phase = UnitPhase::Failed;
        ++_stats.unitsFailed;
    }
}

bool
CampaignQueue::complete(const std::string &id, std::uint64_t unit,
                        JobStatus status, bool cached, std::uint64_t key,
                        std::uint64_t checksum, std::uint64_t bytes,
                        const std::string &text)
{
    std::lock_guard<std::mutex> lock(_mutex);
    CampaignEntry *campaign = findLocked(id);
    if (!campaign || unit >= campaign->units.size())
        return false;
    UnitEntry &entry = campaign->units[unit];
    if (entry.phase == UnitPhase::Done ||
        entry.phase == UnitPhase::Failed ||
        entry.phase == UnitPhase::Canceled) {
        // A worker whose lease expired finishing late: deterministic
        // work means both results are identical — first wins, the
        // duplicate is bookkeeping, not a conflict.
        ++_stats.duplicates;
        return false;
    }
    finishLocked(*campaign, entry, status, cached, key, checksum, bytes,
                 text);
    _cv.notify_all();
    return true;
}

std::uint64_t
CampaignQueue::expireLeases(Clock::time_point now,
                            const BackoffPolicy &redispatch)
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::uint64_t expired = 0;
    for (CampaignEntry &campaign : _campaigns)
        for (UnitEntry &entry : campaign.units) {
            if (entry.phase != UnitPhase::Leased ||
                entry.leaseDeadline > now)
                continue;
            ++_stats.expiries;
            ++expired;
            if (campaign.canceled) {
                entry.phase = UnitPhase::Canceled;
                ++_stats.unitsCanceled;
                continue;
            }
            // The worker is presumed dead. Re-dispatch, but through
            // the shared backoff policy keyed on this unit, so a unit
            // that keeps killing its workers ramps down instead of
            // hot-looping the pool.
            entry.phase = UnitPhase::Pending;
            entry.leaseToken = 0;
            BackoffPolicy policy = redispatch;
            policy.seed ^= unitSeed(campaign.spec.id, entry.unit.index);
            unsigned attempt = entry.dispatches > 0
                                   ? entry.dispatches - 1
                                   : 0;
            entry.nextDispatch =
                now + std::chrono::microseconds(
                          backoffDelayUs(policy, attempt));
        }
    if (expired)
        _cv.notify_all();
    return expired;
}

Expected<std::uint64_t>
CampaignQueue::cancel(const std::string &id)
{
    std::lock_guard<std::mutex> lock(_mutex);
    CampaignEntry *campaign = findLocked(id);
    if (!campaign)
        return Error("unknown campaign '" + id + "'");
    if (_durable && !campaign->canceled) {
        QueueRecord record;
        record.type = QueueRecord::Type::Cancel;
        record.id = id;
        // Like admission, a cancel must be durable to be honored —
        // otherwise a restart would resurrect the canceled units.
        if (auto wrote = _journal.appendLine(queueRecordToLine(record));
            !wrote)
            return Error(wrote.error()).context("queue journal");
    }
    campaign->canceled = true;
    std::uint64_t canceled = 0;
    for (UnitEntry &entry : campaign->units)
        if (entry.phase == UnitPhase::Pending) {
            entry.phase = UnitPhase::Canceled;
            ++_stats.unitsCanceled;
            ++canceled;
        }
    _cv.notify_all();
    return canceled;
}

void
CampaignQueue::invalidateUnit(const std::string &id, std::uint64_t unit)
{
    std::lock_guard<std::mutex> lock(_mutex);
    CampaignEntry *campaign = findLocked(id);
    if (!campaign || unit >= campaign->units.size())
        return;
    UnitEntry &entry = campaign->units[unit];
    if (entry.phase != UnitPhase::Done)
        return;
    entry.phase = UnitPhase::Pending;
    entry.cached = false;
    entry.key = 0;
    entry.checksum = 0;
    entry.bytes = 0;
    entry.nextDispatch = Clock::time_point{};
    if (_stats.unitsDone)
        --_stats.unitsDone;
    _cv.notify_all();
}

std::optional<UnitSnapshot>
CampaignQueue::unitView(const std::string &id, std::uint64_t unit)
{
    std::lock_guard<std::mutex> lock(_mutex);
    CampaignEntry *campaign = findLocked(id);
    if (!campaign || unit >= campaign->units.size())
        return std::nullopt;
    return snapshotLocked(campaign->units[unit]);
}

std::optional<CampaignView>
CampaignQueue::campaignView(const std::string &id)
{
    std::lock_guard<std::mutex> lock(_mutex);
    CampaignEntry *campaign = findLocked(id);
    if (!campaign)
        return std::nullopt;
    CampaignView view;
    view.spec = campaign->spec;
    view.unitsTotal = campaign->units.size();
    for (const UnitEntry &entry : campaign->units)
        switch (entry.phase) {
          case UnitPhase::Pending: ++view.pending; break;
          case UnitPhase::Leased: ++view.leased; break;
          case UnitPhase::Done: ++view.done; break;
          case UnitPhase::Failed: ++view.failed; break;
          case UnitPhase::Canceled: ++view.canceled; break;
        }
    return view;
}

std::vector<std::string>
CampaignQueue::campaignIds()
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::vector<std::string> ids;
    for (const CampaignEntry &campaign : _campaigns)
        ids.push_back(campaign.spec.id);
    return ids;
}

std::uint64_t
CampaignQueue::unfinishedUnits()
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::uint64_t unfinished = 0;
    for (const CampaignEntry &campaign : _campaigns)
        for (const UnitEntry &entry : campaign.units)
            if (entry.phase == UnitPhase::Pending ||
                entry.phase == UnitPhase::Leased)
                ++unfinished;
    return unfinished;
}

void
CampaignQueue::waitForWork(std::uint64_t ms)
{
    std::unique_lock<std::mutex> lock(_mutex);
    if (_draining)
        return;
    _cv.wait_for(lock, std::chrono::milliseconds(ms));
}

std::optional<UnitSnapshot>
CampaignQueue::waitForUnit(const std::string &id, std::uint64_t unit,
                           std::uint64_t ms)
{
    std::unique_lock<std::mutex> lock(_mutex);
    CampaignEntry *campaign = findLocked(id);
    if (!campaign || unit >= campaign->units.size())
        return std::nullopt;
    auto deadline = Clock::now() + std::chrono::milliseconds(ms);
    auto finished = [&]() {
        UnitPhase phase = campaign->units[unit].phase;
        return phase == UnitPhase::Done || phase == UnitPhase::Failed ||
               phase == UnitPhase::Canceled;
    };
    while (!finished() && !_draining)
        if (_cv.wait_until(lock, deadline) == std::cv_status::timeout)
            break;
    return snapshotLocked(campaign->units[unit]);
}

void
CampaignQueue::beginDrain()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _draining = true;
    _cv.notify_all();
}

bool
CampaignQueue::draining()
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _draining;
}

CampaignQueue::Stats
CampaignQueue::stats()
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _stats;
}

} // namespace ruu::serve
