/**
 * @file
 * Client side of the ruusimd protocol: a line-oriented Unix-socket
 * connection with deterministic connect retries (the daemon may still
 * be binding its socket when the client starts), shared by the
 * `ruusim submit` subcommand and the serve tests.
 */

#ifndef RUU_SERVE_CLIENT_HH
#define RUU_SERVE_CLIENT_HH

#include <string>

#include "common/backoff.hh"
#include "common/error.hh"

namespace ruu::serve
{

class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient() { close(); }

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /**
     * Connect to @p socketPath, retrying refused/absent sockets on
     * @p retry — the startup race against a daemon that has not bound
     * yet is expected, transient, and bounded.
     */
    Expected<bool> connect(const std::string &socketPath,
                           const BackoffPolicy &retry = {});

    bool connected() const { return _fd >= 0; }

    /** Send one request line (newline appended). */
    Expected<bool> sendLine(const std::string &line);

    /** Receive one response line (without the newline). */
    Expected<std::string> recvLine();

    /** sendLine + recvLine. */
    Expected<std::string> request(const std::string &line);

    void close();

  private:
    int _fd = -1;
    std::string _buffer;
};

} // namespace ruu::serve

#endif // RUU_SERVE_CLIENT_HH
