/**
 * @file
 * Crash-safe server journal, in the inject-journal style: one flat-
 * JSON object per line, a header that pins the journal to its server
 * identity (cache directory + protocol version), and torn-tail
 * tolerance — a SIGKILL mid-append leaves a final line that fails to
 * parse, which readers drop (reporting validBytes for truncation)
 * instead of refusing the whole file.
 *
 * Each completed job appends its content address and payload checksum.
 * On restart the server replays the journal against the cache: an
 * entry whose cache file still matches its journaled checksum is a
 * recovered result (a resubmitted batch hits it, byte-identical to
 * the pre-crash run); any disagreement deletes the cache file so the
 * job recomputes. The journal never stores payloads — the cache is
 * the payload store, the journal is the integrity record.
 */

#ifndef RUU_SERVE_RECOVERY_HH
#define RUU_SERVE_RECOVERY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/io_faults.hh"

namespace ruu::serve
{

/** Identity line pinning a journal to one server configuration. */
struct ServeJournalHeader
{
    std::uint64_t version = 1;
    std::string cacheDir;
};

/** One completed job's durable record. */
struct JobRecord
{
    std::uint64_t key = 0;      //!< cache content address
    std::uint64_t checksum = 0; //!< FNV-1a of the payload
    std::uint64_t bytes = 0;    //!< payload size
};

std::string serveHeaderToLine(const ServeJournalHeader &header);
std::string jobRecordToLine(const JobRecord &record);
Expected<ServeJournalHeader> parseServeHeaderLine(const std::string &line);
Expected<JobRecord> parseJobRecordLine(const std::string &line);

/** A journal as read back, with torn-tail accounting. */
struct ServeJournalContents
{
    ServeJournalHeader header;
    std::vector<JobRecord> records;
    bool tornTail = false;
    std::size_t validBytes = 0; //!< truncate here before appending
};

/**
 * Read and validate @p path. Only an unparseable FINAL record line is
 * forgiven (tornTail); damage anywhere else is an error.
 */
Expected<ServeJournalContents> readServeJournal(const std::string &path);

/**
 * Streaming appender (create or resume). Every line goes through the
 * checked io_faults shim and is fsynced before add() returns — a
 * record reported as added has reached the disk.
 */
class ServeJournalWriter
{
  public:
    /** Truncate and write the header. */
    Expected<bool> create(const std::string &path,
                          const ServeJournalHeader &header);

    /**
     * Open for appending, isolating any newline-less torn fragment on
     * its own line first.
     */
    Expected<bool> append(const std::string &path);

    /** Append one record, durable before returning. */
    Expected<bool> add(const JobRecord &record);

    bool isOpen() const { return _file.isOpen(); }

  private:
    io::AppendFile _file;
};

} // namespace ruu::serve

#endif // RUU_SERVE_RECOVERY_HH
