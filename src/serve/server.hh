/**
 * @file
 * ruusimd — the crash-tolerant simulation service (docs/SERVE.md).
 *
 * A daemon on a Unix-domain socket accepting the serve/protocol.hh
 * dialect: clients submit a batch of (program, core, config,
 * schedule) jobs and run it; per-job results stream back in
 * submission order. Every job executes in a fork sandbox
 * (inject/sandbox.hh) under a per-job wall-clock deadline, so a
 * crashing or hanging simulation is classified on its own result line
 * while the daemon keeps serving. Batches run on the deterministic
 * work-stealing pool (par/pool.hh) and commit through the ordered
 * committer (par/ordered.hh), so the response stream is byte-
 * identical at any worker count.
 *
 * Degradation policy, in order of preference: serve from the content-
 * addressed cache; recompute on any cache corruption; classify per-
 * job failures (rejected / crashed / timed-out) without failing the
 * batch; shed submits over the bounded admission queue with an
 * explicit "overloaded" response; retry transient spawn failures on
 * the shared capped-exponential backoff; and only ever exit on
 * operator request (shutdown op) or an unusable environment (bad
 * socket path, mismatched journal identity).
 */

#ifndef RUU_SERVE_SERVER_HH
#define RUU_SERVE_SERVER_HH

#include <cstdint>
#include <string>

#include "common/backoff.hh"
#include "common/error.hh"
#include "par/pool.hh"

namespace ruu::serve
{

struct ServerOptions
{
    std::string socketPath;

    /** Result-cache directory; empty disables caching. */
    std::string cacheDir;

    /** Recovery journal path; empty disables crash recovery. */
    std::string journalPath;

    /** Pool workers for batch execution (1 = inline serial). */
    unsigned jobs = 1;

    /** Admission-queue bound; submits past it are shed. */
    std::size_t queueLimit = 256;

    /** Per-job wall-clock watchdog when the job names none. */
    unsigned defaultDeadlineMs = 10'000;

    /** Seed for the deterministic spawn-retry jitter streams. */
    std::uint64_t seed = 1;

    /** Sandbox spawn retry schedule (worker replacement). */
    BackoffPolicy spawnBackoff;

    /** Serve at most this many connections, then return; 0 = no cap. */
    std::uint64_t maxConnections = 0;
};

/** Observable server counters (the status response). */
struct ServerStats
{
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t badRequests = 0;
    std::uint64_t jobsDone = 0;
    std::uint64_t jobsRejected = 0;
    std::uint64_t jobsCrashed = 0;
    std::uint64_t jobsTimedOut = 0;
    std::uint64_t jobsFailed = 0;
    std::uint64_t shed = 0;      //!< submits refused as overloaded
    std::uint64_t recovered = 0; //!< journal records verified at start
};

/**
 * Run the daemon until a shutdown request (returns 0), the connection
 * cap, or a fatal environment error. Blocks the calling thread.
 */
Expected<int> runServer(const ServerOptions &options,
                        ServerStats *statsOut = nullptr);

} // namespace ruu::serve

#endif // RUU_SERVE_SERVER_HH
