/**
 * @file
 * ruusimd — the crash-tolerant simulation service (docs/SERVE.md).
 *
 * A daemon on a Unix-domain socket accepting the serve/protocol.hh
 * dialect: clients submit a batch of (program, core, config,
 * schedule) jobs and run it; per-job results stream back in
 * submission order. Every job executes in a fork sandbox
 * (inject/sandbox.hh) under a per-job wall-clock deadline, so a
 * crashing or hanging simulation is classified on its own result line
 * while the daemon keeps serving. Batches run on the deterministic
 * work-stealing pool (par/pool.hh) and commit through the ordered
 * committer (par/ordered.hh), so the response stream is byte-
 * identical at any worker count.
 *
 * Whole sweeps live server-side on the durable campaign queue
 * (serve/queue.hh): run/storm/inject campaigns are journaled at
 * admission, expanded into leased work units dispatched at-least-once
 * (duplicates dedup'd through the cache), and streamed to
 * re-attachable watchers strictly in unit order — kill -9 the daemon
 * mid-campaign and a restarted one serves the byte-identical stream.
 *
 * Degradation policy, in order of preference: serve from the content-
 * addressed cache; recompute on any cache corruption; classify per-
 * job failures (rejected / crashed / timed-out) without failing the
 * batch; shed submits over the bounded admission queue with an
 * explicit "overloaded" response; retry transient spawn failures on
 * the shared capped-exponential backoff; and only ever exit on
 * operator request (shutdown op, or SIGTERM/SIGINT graceful drain
 * when handleSignals is set — finish in-flight units, persist, exit
 * 0) or an unusable environment (bad socket path, mismatched journal
 * identity). Every persistence write goes through the checked I/O
 * layer (common/io_faults.hh), so the whole policy is testable under
 * deterministic injected fault schedules.
 */

#ifndef RUU_SERVE_SERVER_HH
#define RUU_SERVE_SERVER_HH

#include <cstdint>
#include <string>

#include "common/backoff.hh"
#include "common/error.hh"
#include "par/pool.hh"

namespace ruu::serve
{

struct ServerOptions
{
    std::string socketPath;

    /** Result-cache directory; empty disables caching. */
    std::string cacheDir;

    /** Recovery journal path; empty disables crash recovery. */
    std::string journalPath;

    /** Pool workers for batch execution (1 = inline serial). */
    unsigned jobs = 1;

    /** Admission-queue bound; submits past it are shed. */
    std::size_t queueLimit = 256;

    /** Per-job wall-clock watchdog when the job names none. */
    unsigned defaultDeadlineMs = 10'000;

    /** Seed for the deterministic spawn-retry jitter streams. */
    std::uint64_t seed = 1;

    /** Sandbox spawn retry schedule (worker replacement). */
    BackoffPolicy spawnBackoff;

    /** Serve at most this many connections, then return; 0 = no cap. */
    std::uint64_t maxConnections = 0;

    /** Campaign-queue journal path; empty = in-memory queue only. */
    std::string queuePath;

    /** Campaign unit lease duration (worker-death detector). */
    std::uint64_t leaseMs = 30'000;

    /** Re-dispatch schedule for units whose lease expired. */
    BackoffPolicy redispatchBackoff;

    /** Unfinished-unit bound; campaigns past it are shed. */
    std::uint64_t campaignUnitLimit = 1024;

    /**
     * Install SIGTERM/SIGINT handlers that drain instead of dying:
     * stop leasing, finish leased units, flush, exit 0. Off by
     * default — tests hosting the server in a thread must not have
     * their process-wide handlers usurped.
     */
    bool handleSignals = false;
};

/** Observable server counters (the status response). */
struct ServerStats
{
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t badRequests = 0;
    std::uint64_t jobsDone = 0;
    std::uint64_t jobsRejected = 0;
    std::uint64_t jobsCrashed = 0;
    std::uint64_t jobsTimedOut = 0;
    std::uint64_t jobsFailed = 0;
    std::uint64_t shed = 0;      //!< submits refused as overloaded
    std::uint64_t recovered = 0; //!< journal records verified at start

    // Campaign-queue counters (serve/queue.hh), copied out at exit.
    std::uint64_t campaigns = 0;
    std::uint64_t unitsDone = 0;
    std::uint64_t unitsFailed = 0;
    std::uint64_t unitsCanceled = 0;
    std::uint64_t leaseExpiries = 0;
    std::uint64_t unitDuplicates = 0;
    std::uint64_t recoveredUnits = 0;
    std::uint64_t queueJournalErrors = 0;
    std::uint64_t drained = 0; //!< 1 when a signal drained the daemon
};

/**
 * Run the daemon until a shutdown request (returns 0), the connection
 * cap, or a fatal environment error. Blocks the calling thread.
 */
Expected<int> runServer(const ServerOptions &options,
                        ServerStats *statsOut = nullptr);

} // namespace ruu::serve

#endif // RUU_SERVE_SERVER_HH
