#include "sim/report.hh"

#include "stats/table.hh"

namespace ruu
{

std::string
renderComparison(const std::string &title,
                 const std::vector<PaperRow> &paper,
                 const std::vector<SweepPoint> &measured)
{
    TextTable table({"Entries", "Paper Speedup", "Measured Speedup",
                     "Paper Issue Rate", "Measured Issue Rate"});
    table.setTitle(title);

    auto paper_at = [&](unsigned entries) -> std::optional<PaperRow> {
        for (const auto &row : paper)
            if (row.entries == entries)
                return row;
        return std::nullopt;
    };

    for (const auto &point : measured) {
        auto row = paper_at(point.entries);
        table.addRow({TextTable::fmt(std::uint64_t{point.entries}),
                      row ? TextTable::fmt(row->speedup) : "-",
                      TextTable::fmt(point.speedup),
                      row ? TextTable::fmt(row->issueRate) : "-",
                      TextTable::fmt(point.total.issueRate())});
    }
    return table.render();
}

std::string
renderBaseline(const std::string &title,
               const std::vector<BaselineRow> &rows)
{
    TextTable table({"Benchmark", "Instructions", "Clock Cycles",
                     "Issue Rate"});
    table.setTitle(title);
    table.setAlign(0, Align::Left);

    std::uint64_t total_insts = 0;
    Cycle total_cycles = 0;
    for (const auto &row : rows) {
        total_insts += row.instructions;
        total_cycles += row.cycles;
        double rate = row.cycles
                          ? static_cast<double>(row.instructions) /
                                static_cast<double>(row.cycles)
                          : 0.0;
        table.addRow({row.name, TextTable::fmt(row.instructions),
                      TextTable::fmt(row.cycles),
                      TextTable::fmt(rate)});
    }
    double total_rate = total_cycles
                            ? static_cast<double>(total_insts) /
                                  static_cast<double>(total_cycles)
                            : 0.0;
    table.addRow({"Total", TextTable::fmt(total_insts),
                  TextTable::fmt(total_cycles),
                  TextTable::fmt(total_rate)});
    return table.render();
}

} // namespace ruu
