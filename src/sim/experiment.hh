/**
 * @file
 * Experiment-sweep helpers used by the paper-reproduction benches:
 * run a set of workloads through a core configuration and aggregate
 * cycles/instructions the way the paper does (totals over all loops,
 * speedups relative to the simple issue mechanism).
 */

#ifndef RUU_SIM_EXPERIMENT_HH
#define RUU_SIM_EXPERIMENT_HH

#include <vector>

#include "sim/machine.hh"

namespace ruu
{

/** Aggregate outcome of running many workloads on one configuration. */
struct AggregateResult
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;

    /** Instructions per cycle over the whole suite. */
    double issueRate() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Speedup of this configuration relative to @p baseline cycles. */
    double speedupOver(Cycle baseline) const
    {
        return cycles ? static_cast<double>(baseline) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/** One row of a pool-size sweep. */
struct SweepPoint
{
    unsigned entries = 0;   //!< pool/RUU size
    AggregateResult total;  //!< suite aggregate at this size
    double speedup = 0.0;   //!< vs the provided baseline cycles
};

/**
 * Run every workload on a fresh core of @p kind configured by
 * @p config; fatal when any run fails value verification against its
 * functional execution (the benches must never report numbers from a
 * broken simulation).
 */
AggregateResult runSuite(CoreKind kind, const UarchConfig &config,
                         const std::vector<Workload> &workloads);

/**
 * Sweep `config.poolEntries` over @p sizes.
 * @param baseline_cycles cycles of the simple issue mechanism on the
 *        same workloads (denominator of the paper's relative speedup).
 */
std::vector<SweepPoint> sweepPoolSize(CoreKind kind, UarchConfig config,
                                      const std::vector<unsigned> &sizes,
                                      const std::vector<Workload> &workloads,
                                      Cycle baseline_cycles);

} // namespace ruu

#endif // RUU_SIM_EXPERIMENT_HH
