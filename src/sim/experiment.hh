/**
 * @file
 * Experiment-sweep helpers used by the paper-reproduction benches:
 * run a set of workloads through a core configuration and aggregate
 * cycles/instructions the way the paper does (totals over all loops,
 * speedups relative to the simple issue mechanism).
 */

#ifndef RUU_SIM_EXPERIMENT_HH
#define RUU_SIM_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "par/pool.hh"
#include "sim/machine.hh"

namespace ruu
{

/** Aggregate outcome of running many workloads on one configuration. */
struct AggregateResult
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;

    /** Instructions per cycle over the whole suite. */
    double issueRate() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Speedup of this configuration relative to @p baseline cycles. */
    double speedupOver(Cycle baseline) const
    {
        return cycles ? static_cast<double>(baseline) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/** One row of a pool-size sweep. */
struct SweepPoint
{
    unsigned entries = 0;   //!< pool/RUU size
    AggregateResult total;  //!< suite aggregate at this size
    double speedup = 0.0;   //!< vs the provided baseline cycles

    /** Workload simulations actually run at this size (vs derived). */
    std::size_t simulated = 0;

    /** True when every workload's value was derived, none simulated. */
    bool derived = false;
};

/** Knobs of sweepPoolSize. */
struct SweepOptions
{
    /**
     * Bound-guided pruning: per workload, once a simulated point hits
     * its certified resource bound (lint/resource_bound.hh) — no
     * larger pool can beat a lower bound — or two consecutive sizes
     * produce identical aggregates (the size sweep has plateaued),
     * derive every remaining size from the last simulated value
     * instead of simulating it. Points actually simulated are
     * byte-identical to an unpruned sweep (same jobs, same configs);
     * scripts/ci_analyze_smoke.sh additionally gates that the derived
     * values match the unpruned simulations. Requires strictly
     * increasing sizes; pruning silently disables itself otherwise.
     */
    bool prune = false;
};

/**
 * Reusable per-worker simulation state: one core, rebuilt only when
 * the (kind, config) identity changes between jobs. Cores carry their
 * pipeline structures and an 8 MiB memory image; re-running a core is
 * free of those allocations, so a worker that processes a run of jobs
 * with the same configuration pays the construction cost once. Cores
 * reset completely between runs (the serial suites have always reused
 * one core across all 14 workloads), so reuse never changes results.
 */
class SuiteArena
{
  public:
    /** The arena's core for (@p kind, @p config), built on demand. */
    Core &core(CoreKind kind, const UarchConfig &config);

  private:
    std::string _signature;
    std::unique_ptr<Core> _core;
};

/**
 * Run every workload on a core of @p kind configured by @p config;
 * fatal when any run fails value verification against its functional
 * execution (the benches must never report numbers from a broken
 * simulation). With a multi-worker @p pool the workloads run
 * concurrently (one arena-cached core per worker) and the aggregate is
 * reduced in workload order — identical to the serial result.
 */
AggregateResult runSuite(CoreKind kind, const UarchConfig &config,
                         const std::vector<Workload> &workloads,
                         par::Pool *pool = nullptr);

/**
 * Sweep `config.poolEntries` over @p sizes. With a multi-worker
 * @p pool the workloads run concurrently, each processing its sizes in
 * order (pruning decisions are per-workload and scheduling-
 * independent); reduction is in workload order, so the points are
 * byte-identical to a serial sweep at any worker count.
 * @param baseline_cycles cycles of the simple issue mechanism on the
 *        same workloads (denominator of the paper's relative speedup).
 */
std::vector<SweepPoint> sweepPoolSize(CoreKind kind, UarchConfig config,
                                      const std::vector<unsigned> &sizes,
                                      const std::vector<Workload> &workloads,
                                      Cycle baseline_cycles,
                                      par::Pool *pool = nullptr,
                                      const SweepOptions &options = {});

} // namespace ruu

#endif // RUU_SIM_EXPERIMENT_HH
