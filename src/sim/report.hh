/**
 * @file
 * Paper-versus-measured reporting for the reproduction benches.
 *
 * Each bench prints the rows the paper's table reports next to the
 * values this reproduction measures, so the shape comparison (who
 * wins, where saturation sets in) is visible in one place. The same
 * renderer feeds EXPERIMENTS.md.
 */

#ifndef RUU_SIM_REPORT_HH
#define RUU_SIM_REPORT_HH

#include <optional>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace ruu
{

/** One row of a table in the paper. */
struct PaperRow
{
    unsigned entries;  //!< pool/RUU size
    double speedup;    //!< relative speedup the paper reports
    double issueRate;  //!< issue rate the paper reports
};

/**
 * Render a sweep next to the paper's numbers.
 * Rows are matched by entry count; measured-only or paper-only rows
 * are rendered with blanks.
 */
std::string renderComparison(const std::string &title,
                             const std::vector<PaperRow> &paper,
                             const std::vector<SweepPoint> &measured);

/**
 * Render a per-workload baseline table (the paper's Table 1 layout:
 * instructions, cycles, and issue rate per loop plus a total row).
 */
struct BaselineRow
{
    std::string name;
    std::uint64_t instructions;
    Cycle cycles;
};

std::string renderBaseline(const std::string &title,
                           const std::vector<BaselineRow> &rows);

} // namespace ruu

#endif // RUU_SIM_REPORT_HH
