#include "sim/machine.hh"

#include "asm/parser.hh"
#include "common/logging.hh"
#include "core/history_core.hh"
#include "core/rstu_core.hh"
#include "core/ruu_core.hh"
#include "core/simple_core.hh"
#include "core/spec_ruu_core.hh"
#include "core/tomasulo_core.hh"

namespace ruu
{

const char *
coreKindName(CoreKind kind)
{
    switch (kind) {
      case CoreKind::Simple: return "simple";
      case CoreKind::Tomasulo: return "tomasulo";
      case CoreKind::Rstu: return "rstu";
      case CoreKind::Ruu: return "ruu";
      case CoreKind::SpecRuu: return "spec_ruu";
      case CoreKind::History: return "history";
    }
    return "?";
}

std::optional<CoreKind>
coreKindFromName(const std::string &name)
{
    static const CoreKind kKinds[] = {
        CoreKind::Simple, CoreKind::Tomasulo, CoreKind::Rstu,
        CoreKind::Ruu,    CoreKind::SpecRuu,  CoreKind::History,
    };
    for (CoreKind kind : kKinds)
        if (name == coreKindName(kind))
            return kind;
    return std::nullopt;
}

std::unique_ptr<Core>
makeCore(CoreKind kind, const UarchConfig &config)
{
    switch (kind) {
      case CoreKind::Simple:
        return std::make_unique<SimpleCore>(config);
      case CoreKind::Tomasulo:
        return std::make_unique<TomasuloCore>(config);
      case CoreKind::Rstu:
        return std::make_unique<RstuCore>(config);
      case CoreKind::Ruu:
        return std::make_unique<RuuCore>(config);
      case CoreKind::SpecRuu:
        return std::make_unique<SpecRuuCore>(config);
      case CoreKind::History:
        return std::make_unique<HistoryCore>(config);
    }
    ruu_panic("unknown core kind");
}

Expected<Workload>
makeWorkloadChecked(Program program, const FuncSimOptions &options)
{
    Workload workload;
    workload.name = program.name();
    workload.program =
        std::make_shared<const Program>(std::move(program));
    workload.func = runFunctional(workload.program, options);
    if (workload.func.fault != Fault::None)
        return Error("program '" + workload.name + "' faulted (" +
                     faultName(workload.func.fault) +
                     ") at dynamic instruction " +
                     std::to_string(workload.func.faultSeq));
    if (!workload.func.halted)
        return Error("program '" + workload.name +
                     "' did not halt within the instruction limit");
    return workload;
}

Expected<Workload>
workloadFromSourceChecked(const std::string &source,
                          const std::string &name)
{
    AsmResult assembled = assemble(source, name);
    if (!assembled.ok()) {
        std::string all;
        for (const auto &error : assembled.errors)
            all += "\n  " + error.toString();
        return Error("assembly of '" + name + "' failed:" + all);
    }
    return makeWorkloadChecked(std::move(*assembled.program));
}

Workload
makeWorkload(Program program, const FuncSimOptions &options)
{
    auto workload = makeWorkloadChecked(std::move(program), options);
    if (!workload)
        ruu_fatal("%s", workload.error().message().c_str());
    return workload.take();
}

Workload
workloadFromSource(const std::string &source, const std::string &name)
{
    auto workload = workloadFromSourceChecked(source, name);
    if (!workload)
        ruu_fatal("%s", workload.error().message().c_str());
    return workload.take();
}

bool
matchesFunctional(const RunResult &run, const FuncResult &func)
{
    return run.state == func.finalState && run.memory == func.finalMemory;
}

std::vector<SeqNum>
faultableSeqs(const Trace &trace)
{
    std::vector<SeqNum> seqs;
    for (SeqNum seq = 0; seq < trace.size(); ++seq) {
        const Instruction &inst = trace.at(seq).inst;
        if (isBranch(inst.op) || inst.op == Opcode::HALT ||
            inst.op == Opcode::NOP) {
            continue;
        }
        seqs.push_back(seq);
    }
    return seqs;
}

SeqNum
nextFaultable(const Trace &trace, SeqNum from)
{
    for (SeqNum seq = from; seq < trace.size(); ++seq) {
        const Instruction &inst = trace.at(seq).inst;
        if (isBranch(inst.op) || inst.op == Opcode::HALT ||
            inst.op == Opcode::NOP) {
            continue;
        }
        return seq;
    }
    return kNoSeqNum;
}

FaultExperiment
runFaultAndResume(Core &core, const Workload &workload, SeqNum seq,
                  Fault fault)
{
    ruu_assert(fault != Fault::None, "injecting Fault::None");
    FaultExperiment experiment;

    Trace faulty = workload.trace();
    faulty.injectFault(seq, fault);
    experiment.faulted = core.run(faulty);

    if (!experiment.faulted.interrupted)
        return experiment;

    // Preciseness: the interrupted state must equal the sequential
    // execution of everything before the faulting instruction.
    FuncResult prefix = runPrefix(workload.program, seq);
    experiment.precise =
        experiment.faulted.state == prefix.finalState &&
        experiment.faulted.memory == prefix.finalMemory &&
        experiment.faulted.faultSeq == seq;

    // Service the fault (clear the annotation) and restart from the
    // faulting instruction with the interrupted machine state.
    RunOptions resume;
    resume.startSeq = experiment.faulted.faultSeq;
    resume.initialState = &experiment.faulted.state;
    resume.initialMemory = &experiment.faulted.memory;
    experiment.resumed = core.run(workload.trace(), resume);

    experiment.resumedExact =
        !experiment.resumed.interrupted &&
        matchesFunctional(experiment.resumed, workload.func);
    return experiment;
}

} // namespace ruu
