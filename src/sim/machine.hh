/**
 * @file
 * The top-level simulation facade.
 *
 * A Workload bundles a program with its functional execution (trace +
 * final architectural state); cores are created through a factory by
 * CoreKind. Helpers cover the recurring experiment patterns: verifying
 * that a timing core committed the sequential state, and the fault-
 * inject / interrupt / resume flow of the precise-interrupt studies.
 */

#ifndef RUU_SIM_MACHINE_HH
#define RUU_SIM_MACHINE_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/func_sim.hh"
#include "common/error.hh"
#include "core/core.hh"

namespace ruu
{

/** The issue mechanisms this library models. */
enum class CoreKind
{
    Simple,   //!< §2 baseline (Table 1)
    Tomasulo, //!< §3.2.1 Tag Unit + distributed RS (Figure 2)
    Rstu,     //!< §3.2.3 merged pool (Tables 2-3)
    Ruu,      //!< §5 Register Update Unit (Tables 4-6)
    SpecRuu,  //!< §7 conditional-execution extension
    History,  //!< §4 history-buffer alternative (Smith & Pleszkun)
};

/** Printable core name ("simple", "rstu", ...). */
const char *coreKindName(CoreKind kind);

/**
 * The CoreKind whose coreKindName() is @p name, or std::nullopt for an
 * unknown name (e.g. a test-only core). Lets layers that only hold a
 * Core& (trap::TrapController) recover the scheme for scheme-keyed
 * analyses like lint::cachedWcirtBound.
 */
std::optional<CoreKind> coreKindFromName(const std::string &name);

/** Instantiate a core of @p kind with @p config. */
std::unique_ptr<Core> makeCore(CoreKind kind, const UarchConfig &config);

/** A program plus its functional execution. */
struct Workload
{
    std::string name;
    std::shared_ptr<const Program> program;
    FuncResult func;

    /** The dynamic trace. */
    const Trace &trace() const { return func.trace; }
};

/**
 * Run @p program functionally and wrap the result; an error when the
 * program faults organically or never halts. This is the form for
 * code that handles hostile input — the serve daemon builds client-
 * submitted programs with it, so a bad program is a per-job error
 * response, never a dead server.
 */
Expected<Workload> makeWorkloadChecked(Program program,
                                       const FuncSimOptions &options = {});

/** Assemble @p source and build a workload; an error on bad input. */
Expected<Workload> workloadFromSourceChecked(
    const std::string &source, const std::string &name = "program");

/**
 * Run @p program functionally and wrap the result.
 * Fatal when the program faults organically or never halts.
 */
Workload makeWorkload(Program program, const FuncSimOptions &options = {});

/** Assemble @p source and build a workload; fatal on assembly errors. */
Workload workloadFromSource(const std::string &source,
                            const std::string &name = "program");

/**
 * True when a timing run committed exactly the sequential
 * architectural state (registers and memory).
 */
bool matchesFunctional(const RunResult &run, const FuncResult &func);

/**
 * Dynamic instructions where a fault may be injected for the
 * precise-interrupt experiments: loads (page fault) and arithmetic
 * instructions (exception); branches and bare opcodes are excluded.
 */
std::vector<SeqNum> faultableSeqs(const Trace &trace);

/**
 * First faultable dynamic instruction at or after @p from, or
 * kNoSeqNum when none remains. Fault annotations on branches, NOP and
 * HALT never surface (those instructions update no state and do not
 * occupy commit slots), so schedulers and fault experiments round
 * their positions forward with this helper.
 */
SeqNum nextFaultable(const Trace &trace, SeqNum from);

/** Result of a fault-inject / interrupt / resume experiment. */
struct FaultExperiment
{
    RunResult faulted;  //!< the run that took the interrupt
    RunResult resumed;  //!< continuation after "servicing" the fault
    bool precise = false;       //!< faulted state == sequential prefix
    bool resumedExact = false;  //!< resumed final state == clean run
};

/**
 * Inject @p fault at dynamic instruction @p seq of @p workload, run
 * @p core until the interrupt, then clear the fault and resume from
 * the interrupted state.
 *
 * `precise` compares the interrupted register/memory state against
 * runPrefix(program, seq); `resumedExact` compares the resumed final
 * state against the fault-free functional execution.
 */
FaultExperiment runFaultAndResume(Core &core, const Workload &workload,
                                  SeqNum seq, Fault fault);

} // namespace ruu

#endif // RUU_SIM_MACHINE_HH
