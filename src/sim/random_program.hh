/**
 * @file
 * Random-program generation for differential testing.
 *
 * Generates well-formed, always-halting model-ISA programs: counted
 * loops and straight-line segments filled with random arithmetic,
 * logical, move, and memory instructions over controlled registers.
 * Memory accesses stay inside a small window; the two faulting-prone
 * opcodes (FRECIP, SFIX) are excluded so generated programs never trap
 * organically. Every timing core must commit exactly the functional
 * result on every generated program — the strongest correctness net
 * the library has (tests/test_fuzz.cc).
 */

#ifndef RUU_SIM_RANDOM_PROGRAM_HH
#define RUU_SIM_RANDOM_PROGRAM_HH

#include <cstdint>

#include "asm/program.hh"

namespace ruu
{

/** Tunables for the generator. */
struct RandomProgramOptions
{
    /** Loops in the program (run back to back). */
    unsigned loops = 2;

    /** Random instructions per loop body. */
    unsigned bodyLength = 12;

    /** Iterations per loop (kept small; total work is loops*body*iter). */
    unsigned iterations = 6;

    /** Straight-line instructions between loops. */
    unsigned straightLength = 8;

    /** Word window [dataBase, dataBase+dataWords) for loads/stores. */
    Addr dataBase = 1000;
    unsigned dataWords = 256;
};

/**
 * Generate a program from @p seed. Deterministic: the same seed and
 * options always produce the same program.
 */
Program generateRandomProgram(std::uint64_t seed,
                              const RandomProgramOptions &options = {});

} // namespace ruu

#endif // RUU_SIM_RANDOM_PROGRAM_HH
