#include "sim/random_program.hh"

#include <string>

#include "asm/builder.hh"
#include "common/logging.hh"

namespace ruu
{

namespace
{

/** Small deterministic PRNG (xorshift64*). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : _state(seed ? seed : 1) {}

    std::uint64_t
    next()
    {
        _state ^= _state >> 12;
        _state ^= _state << 25;
        _state ^= _state >> 27;
        return _state * 0x2545f4914f6cdd1dull;
    }

    /** Uniform in [0, bound). */
    unsigned pick(unsigned bound) { return next() % bound; }

  private:
    std::uint64_t _state;
};

/**
 * Register conventions inside generated code:
 *  - A5 holds the constant 1, A7 the loop down-counter: never random
 *    destinations.
 *  - A6 is the memory base, written only by controlled AMOVIs.
 *  - everything else (A0-A4, S0-S7, a few B/T) is fair game.
 */
RegId
randomDstA(Rng &rng)
{
    return regA(rng.pick(5)); // A0..A4
}

RegId
randomSrcA(Rng &rng)
{
    return regA(rng.pick(7)); // A0..A6 (reading the base is fine)
}

RegId
randomS(Rng &rng)
{
    return regS(rng.pick(8));
}

void
emitRandomInstruction(ProgramBuilder &b, Rng &rng,
                      const RandomProgramOptions &options)
{
    switch (rng.pick(16)) {
      case 0:
        b.aadd(randomDstA(rng), randomSrcA(rng), randomSrcA(rng));
        break;
      case 1:
        b.asub(randomDstA(rng), randomSrcA(rng), randomSrcA(rng));
        break;
      case 2:
        b.amul(randomDstA(rng), randomSrcA(rng), randomSrcA(rng));
        break;
      case 3:
        b.sadd(randomS(rng), randomS(rng), randomS(rng));
        break;
      case 4:
        b.ssub(randomS(rng), randomS(rng), randomS(rng));
        break;
      case 5:
        b.sand(randomS(rng), randomS(rng), randomS(rng));
        break;
      case 6:
        b.sxor(randomS(rng), randomS(rng), randomS(rng));
        break;
      case 7:
        b.fadd(randomS(rng), randomS(rng), randomS(rng));
        break;
      case 8:
        b.fmul(randomS(rng), randomS(rng), randomS(rng));
        break;
      case 9:
        b.sshl(randomS(rng), rng.pick(8));
        break;
      case 10:
        b.smovi(randomS(rng), static_cast<int>(rng.pick(2000)) - 1000);
        break;
      case 11: // controlled re-point of the memory base
        b.amovi(regA(6), static_cast<int>(
                             rng.pick(options.dataWords / 2)));
        break;
      case 12:
        b.lds(randomS(rng), regA(6),
              static_cast<std::int64_t>(options.dataBase +
                                        rng.pick(options.dataWords / 2)));
        break;
      case 13:
        b.lda(randomDstA(rng), regA(6),
              static_cast<std::int64_t>(options.dataBase +
                                        rng.pick(options.dataWords / 2)));
        break;
      case 14:
        b.sts(regA(6),
              static_cast<std::int64_t>(options.dataBase +
                                        rng.pick(options.dataWords / 2)),
              randomS(rng));
        break;
      default: { // inter-file traffic
        unsigned which = rng.pick(4);
        if (which == 0)
            b.movba(regB(rng.pick(8)), randomSrcA(rng));
        else if (which == 1)
            b.movab(randomDstA(rng), regB(rng.pick(8)));
        else if (which == 2)
            b.movts(regT(rng.pick(8)), randomS(rng));
        else
            b.movst(randomS(rng), regT(rng.pick(8)));
        break;
      }
    }
}

} // namespace

Program
generateRandomProgram(std::uint64_t seed,
                      const RandomProgramOptions &options)
{
    Rng rng(seed);
    ProgramBuilder b("fuzz" + std::to_string(seed));

    // Seed the data window and a few registers deterministically.
    for (unsigned i = 0; i < options.dataWords; ++i)
        b.fword(options.dataBase + i,
                0.25 + static_cast<double>(rng.pick(1000)) / 64.0);
    b.amovi(regA(5), 1);
    b.amovi(regA(6), 0);
    for (unsigned i = 0; i < 8; ++i)
        b.smovi(regS(i), static_cast<int>(rng.pick(512)));
    for (unsigned i = 0; i < 5; ++i)
        b.amovi(regA(i), static_cast<int>(rng.pick(64)));
    // The random mix reads B0-7/T0-7 (movab/movst): give every one a
    // defined value so generated programs pass the use-before-def lint.
    for (unsigned i = 0; i < 8; ++i) {
        b.movba(regB(i), regA(i % 5));
        b.movts(regT(i), regS(i));
    }

    for (unsigned loop = 0; loop < options.loops; ++loop) {
        for (unsigned i = 0; i < options.straightLength; ++i)
            emitRandomInstruction(b, rng, options);

        std::string label = "loop" + std::to_string(loop);
        b.amovi(regA(7), static_cast<int>(options.iterations));
        b.label(label);
        for (unsigned i = 0; i < options.bodyLength; ++i)
            emitRandomInstruction(b, rng, options);
        b.asub(regA(7), regA(7), regA(5));
        b.mova(regA(0), regA(7));
        b.jan(label);
    }
    for (unsigned i = 0; i < options.straightLength; ++i)
        emitRandomInstruction(b, rng, options);
    b.halt();
    return b.build();
}

} // namespace ruu
