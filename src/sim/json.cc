#include "sim/json.hh"

#include <cctype>
#include <cstdlib>
#include <limits>
#include <optional>
#include <sstream>

namespace ruu
{

namespace
{

/** Escape a string for a JSON literal (names here are ASCII). */
std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
configToJson(const UarchConfig &config)
{
    std::ostringstream os;
    os << "{";
    os << "\"pool_entries\": " << config.poolEntries;
    os << ", \"dispatch_paths\": " << config.dispatchPaths;
    os << ", \"commit_width\": " << config.commitWidth;
    os << ", \"result_buses\": " << config.resultBuses;
    os << ", \"load_registers\": " << config.loadRegisters;
    os << ", \"counter_bits\": " << config.counterBits;
    os << ", \"history_entries\": " << config.historyEntries;
    os << ", \"tu_entries\": " << config.tuEntries;
    os << ", \"rs_per_fu\": " << config.rsPerFu;
    os << ", \"memory_banks\": " << config.memoryBanks;
    os << ", \"bypass\": \"" << bypassModeName(config.bypass) << "\"";
    os << ", \"predictor\": \"" << predictorKindName(config.predictor)
       << "\"";
    os << ", \"branch_taken_penalty\": " << config.branchTakenPenalty;
    os << ", \"branch_untaken_penalty\": "
       << config.branchUntakenPenalty;
    os << ", \"fu_latency\": {";
    for (unsigned i = 0; i + 1 < kNumFuKinds; ++i) {
        os << (i ? ", " : "") << "\""
           << fuKindName(static_cast<FuKind>(i))
           << "\": " << config.fuLatency[i];
    }
    os << "}";
    os << ", \"fu_count\": {";
    for (unsigned i = 0; i + 1 < kNumFuKinds; ++i) {
        os << (i ? ", " : "") << "\""
           << fuKindName(static_cast<FuKind>(i))
           << "\": " << config.fuCount[i];
    }
    os << "}}";
    return os.str();
}

namespace
{

/**
 * Recursive-descent reader for the configToJson subset of JSON: one
 * object whose values are unsigned numbers, strings, or one level of
 * nested number-valued objects. Errors carry the byte offset so a
 * truncated or hand-edited file points at the damage.
 */
class ConfigReader
{
  public:
    explicit ConfigReader(const std::string &text) : _text(text) {}

    bool failed() const { return _failed; }
    Error takeError() { return std::move(_error); }

    void
    fail(const std::string &what)
    {
        if (_failed)
            return;
        _failed = true;
        _error = Error("offset " + std::to_string(_pos) + ": " + what);
    }

    void
    skipSpace()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos]))) {
            ++_pos;
        }
    }

    bool atEnd() { skipSpace(); return _pos >= _text.size(); }

    bool
    peekIs(char c)
    {
        skipSpace();
        return _pos < _text.size() && _text[_pos] == c;
    }

    void
    expect(char c)
    {
        skipSpace();
        if (_pos >= _text.size()) {
            fail(std::string("unexpected end of input, expected '") +
                 c + "'");
            return;
        }
        if (_text[_pos] != c) {
            fail(std::string("expected '") + c + "', found '" +
                 _text[_pos] + "'");
            return;
        }
        ++_pos;
    }

    std::string
    readString()
    {
        expect('"');
        std::string out;
        while (!_failed) {
            if (_pos >= _text.size()) {
                fail("unterminated string");
                break;
            }
            char c = _text[_pos++];
            if (c == '"')
                break;
            if (c == '\\') {
                if (_pos >= _text.size()) {
                    fail("unterminated escape");
                    break;
                }
                c = _text[_pos++];
            }
            out += c;
        }
        return out;
    }

    std::uint64_t
    readUnsigned()
    {
        skipSpace();
        std::size_t start = _pos;
        while (_pos < _text.size() &&
               std::isdigit(static_cast<unsigned char>(_text[_pos]))) {
            ++_pos;
        }
        if (_pos == start) {
            fail("expected a non-negative integer");
            return 0;
        }
        return std::strtoull(_text.c_str() + start, nullptr, 10);
    }

    /**
     * Read `{"key": value, ...}` handing each key to @p member, which
     * consumes the value (and may fail() on an unknown key).
     */
    template <typename Fn>
    void
    readObject(Fn &&member)
    {
        expect('{');
        if (peekIs('}')) {
            ++_pos;
            return;
        }
        while (!_failed) {
            member(readString());
            if (_failed)
                return;
            if (peekIs(',')) {
                ++_pos;
                continue;
            }
            expect('}');
            return;
        }
    }

  private:
    const std::string &_text;
    std::size_t _pos = 0;
    bool _failed = false;
    Error _error;
};

std::optional<BypassMode>
bypassFromName(const std::string &name)
{
    for (auto mode : {BypassMode::Full, BypassMode::None,
                      BypassMode::LimitedA, BypassMode::FutureFile}) {
        if (name == bypassModeName(mode))
            return mode;
    }
    return std::nullopt;
}

std::optional<PredictorKind>
predictorFromName(const std::string &name)
{
    for (auto kind :
         {PredictorKind::AlwaysTaken, PredictorKind::AlwaysNotTaken,
          PredictorKind::Btfn, PredictorKind::Smith2Bit}) {
        if (name == predictorKindName(kind))
            return kind;
    }
    return std::nullopt;
}

std::optional<FuKind>
fuKindFromName(const std::string &name)
{
    for (unsigned i = 0; i < kNumFuKinds; ++i)
        if (name == fuKindName(static_cast<FuKind>(i)))
            return static_cast<FuKind>(i);
    return std::nullopt;
}

} // namespace

Expected<UarchConfig>
parseUarchConfig(const std::string &text)
{
    UarchConfig config = UarchConfig::cray1();
    ConfigReader r(text);

    auto number = [&](unsigned &field) {
        r.expect(':');
        std::uint64_t v = r.readUnsigned();
        if (v > std::numeric_limits<unsigned>::max())
            r.fail("value " + std::to_string(v) + " out of range");
        else
            field = static_cast<unsigned>(v);
    };

    r.readObject([&](const std::string &key) {
        if (key == "pool_entries") {
            number(config.poolEntries);
        } else if (key == "dispatch_paths") {
            number(config.dispatchPaths);
        } else if (key == "commit_width") {
            number(config.commitWidth);
        } else if (key == "result_buses") {
            number(config.resultBuses);
        } else if (key == "load_registers") {
            number(config.loadRegisters);
        } else if (key == "counter_bits") {
            number(config.counterBits);
        } else if (key == "history_entries") {
            number(config.historyEntries);
        } else if (key == "tu_entries") {
            number(config.tuEntries);
        } else if (key == "rs_per_fu") {
            number(config.rsPerFu);
        } else if (key == "memory_banks") {
            number(config.memoryBanks);
        } else if (key == "bank_busy_cycles") {
            number(config.bankBusyCycles);
        } else if (key == "store_latency") {
            number(config.storeLatency);
        } else if (key == "forward_latency") {
            number(config.forwardLatency);
        } else if (key == "branch_taken_penalty") {
            number(config.branchTakenPenalty);
        } else if (key == "branch_untaken_penalty") {
            number(config.branchUntakenPenalty);
        } else if (key == "predictor_table_bits") {
            number(config.predictorTableBits);
        } else if (key == "predicted_taken_penalty") {
            number(config.predictedTakenPenalty);
        } else if (key == "mispredict_penalty") {
            number(config.mispredictPenalty);
        } else if (key == "bypass") {
            r.expect(':');
            std::string name = r.readString();
            if (auto mode = bypassFromName(name))
                config.bypass = *mode;
            else
                r.fail("unknown bypass mode '" + name + "'");
        } else if (key == "predictor") {
            r.expect(':');
            std::string name = r.readString();
            if (auto kind = predictorFromName(name))
                config.predictor = *kind;
            else
                r.fail("unknown predictor '" + name + "'");
        } else if (key == "fu_latency") {
            r.expect(':');
            r.readObject([&](const std::string &fu) {
                if (auto kind = fuKindFromName(fu)) {
                    unsigned idx = static_cast<unsigned>(*kind);
                    number(config.fuLatency[idx]);
                } else {
                    r.fail("unknown functional unit '" + fu + "'");
                }
            });
        } else if (key == "fu_count") {
            r.expect(':');
            r.readObject([&](const std::string &fu) {
                if (auto kind = fuKindFromName(fu)) {
                    unsigned idx = static_cast<unsigned>(*kind);
                    number(config.fuCount[idx]);
                } else {
                    r.fail("unknown functional unit '" + fu + "'");
                }
            });
        } else {
            r.fail("unknown config key '" + key + "'");
        }
    });
    if (!r.failed() && !r.atEnd())
        r.fail("trailing characters after the config object");
    if (r.failed())
        return r.takeError().context("config JSON");

    std::string invalid = config.validate();
    if (!invalid.empty())
        return Error(invalid).context("config JSON");
    return config;
}

std::string
runToJson(const std::string &workload, const std::string &core_name,
          const RunResult &result, const StatSet &stats)
{
    std::ostringstream os;
    os << "{";
    os << "\"workload\": \"" << escape(workload) << "\"";
    os << ", \"core\": \"" << escape(core_name) << "\"";
    os << ", \"cycles\": " << result.cycles;
    os << ", \"instructions\": " << result.instructions;
    os << ", \"issue_rate\": " << result.issueRate();
    os << ", \"interrupted\": "
       << (result.interrupted ? "true" : "false");
    if (result.interrupted) {
        os << ", \"fault\": {\"kind\": \"" << faultName(result.fault)
           << "\", \"seq\": " << result.faultSeq
           << ", \"pc\": " << result.faultPc << "}";
    }
    os << ", \"counters\": {";
    bool first = true;
    for (const auto &name : stats.counterNames()) {
        os << (first ? "" : ", ") << "\"" << escape(name)
           << "\": " << stats.value(name);
        first = false;
    }
    os << "}, \"histograms\": {";
    first = true;
    for (const auto &name : stats.histogramNames()) {
        const Histogram &histogram = stats.histogramAt(name);
        os << (first ? "" : ", ") << "\"" << escape(name)
           << "\": {\"mean\": " << histogram.mean()
           << ", \"min\": " << histogram.min()
           << ", \"max\": " << histogram.max()
           << ", \"count\": " << histogram.count() << "}";
        first = false;
    }
    os << "}}";
    return os.str();
}

} // namespace ruu
