#include "sim/json.hh"

#include <sstream>

namespace ruu
{

namespace
{

/** Escape a string for a JSON literal (names here are ASCII). */
std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
configToJson(const UarchConfig &config)
{
    std::ostringstream os;
    os << "{";
    os << "\"pool_entries\": " << config.poolEntries;
    os << ", \"dispatch_paths\": " << config.dispatchPaths;
    os << ", \"commit_width\": " << config.commitWidth;
    os << ", \"result_buses\": " << config.resultBuses;
    os << ", \"load_registers\": " << config.loadRegisters;
    os << ", \"counter_bits\": " << config.counterBits;
    os << ", \"history_entries\": " << config.historyEntries;
    os << ", \"tu_entries\": " << config.tuEntries;
    os << ", \"rs_per_fu\": " << config.rsPerFu;
    os << ", \"memory_banks\": " << config.memoryBanks;
    os << ", \"bypass\": \"" << bypassModeName(config.bypass) << "\"";
    os << ", \"predictor\": \"" << predictorKindName(config.predictor)
       << "\"";
    os << ", \"branch_taken_penalty\": " << config.branchTakenPenalty;
    os << ", \"branch_untaken_penalty\": "
       << config.branchUntakenPenalty;
    os << ", \"fu_latency\": {";
    for (unsigned i = 0; i + 1 < kNumFuKinds; ++i) {
        os << (i ? ", " : "") << "\""
           << fuKindName(static_cast<FuKind>(i))
           << "\": " << config.fuLatency[i];
    }
    os << "}}";
    return os.str();
}

std::string
runToJson(const std::string &workload, const std::string &core_name,
          const RunResult &result, const StatSet &stats)
{
    std::ostringstream os;
    os << "{";
    os << "\"workload\": \"" << escape(workload) << "\"";
    os << ", \"core\": \"" << escape(core_name) << "\"";
    os << ", \"cycles\": " << result.cycles;
    os << ", \"instructions\": " << result.instructions;
    os << ", \"issue_rate\": " << result.issueRate();
    os << ", \"interrupted\": "
       << (result.interrupted ? "true" : "false");
    if (result.interrupted) {
        os << ", \"fault\": {\"kind\": \"" << faultName(result.fault)
           << "\", \"seq\": " << result.faultSeq
           << ", \"pc\": " << result.faultPc << "}";
    }
    os << ", \"counters\": {";
    bool first = true;
    for (const auto &name : stats.counterNames()) {
        os << (first ? "" : ", ") << "\"" << escape(name)
           << "\": " << stats.value(name);
        first = false;
    }
    os << "}, \"histograms\": {";
    first = true;
    for (const auto &name : stats.histogramNames()) {
        const Histogram &histogram = stats.histogramAt(name);
        os << (first ? "" : ", ") << "\"" << escape(name)
           << "\": {\"mean\": " << histogram.mean()
           << ", \"min\": " << histogram.min()
           << ", \"max\": " << histogram.max()
           << ", \"count\": " << histogram.count() << "}";
        first = false;
    }
    os << "}}";
    return os.str();
}

} // namespace ruu
