#include "sim/experiment.hh"

#include "common/logging.hh"
#include "lint/dataflow_bound.hh"
#include "sim/json.hh"

namespace ruu
{

namespace
{

/** Run one workload on @p core and verify it; returns the aggregate. */
AggregateResult
runOneWorkload(Core &core, const Workload &workload,
               const UarchConfig &config)
{
    RunResult run = core.run(workload.trace());
    if (run.interrupted)
        ruu_fatal("workload '%s' unexpectedly interrupted on %s",
                  workload.name.c_str(), core.name());
    if (!matchesFunctional(run, workload.func))
        ruu_fatal("workload '%s' committed wrong state on %s "
                  "(simulator bug)",
                  workload.name.c_str(), core.name());
    // No issue mechanism can beat the program's dataflow: a cycle
    // count below the static dependence bound means the core (or
    // the bound) is broken, and the tables must not be printed
    // from it. The bound is invariant across pool-size sweep points,
    // so it comes from the process-wide cache.
    const lint::DataflowBound &bound =
        lint::cachedDataflowBound(workload.trace(), config);
    if (run.cycles < bound.cycles)
        ruu_fatal("workload '%s' on %s finished in %llu cycles, "
                  "below its dataflow lower bound of %llu "
                  "(simulator bug)",
                  workload.name.c_str(), core.name(),
                  static_cast<unsigned long long>(run.cycles),
                  static_cast<unsigned long long>(bound.cycles));
    AggregateResult one;
    one.cycles = run.cycles;
    one.instructions = run.instructions;
    return one;
}

} // namespace

Core &
SuiteArena::core(CoreKind kind, const UarchConfig &config)
{
    std::string signature =
        std::string(coreKindName(kind)) + configToJson(config);
    if (!_core || signature != _signature) {
        _core = makeCore(kind, config);
        _signature = std::move(signature);
    }
    return *_core;
}

AggregateResult
runSuite(CoreKind kind, const UarchConfig &config,
         const std::vector<Workload> &workloads, par::Pool *pool)
{
    std::vector<SuiteArena> arenas(pool ? pool->workers() : 1);
    return par::mapReduce<AggregateResult>(
        pool, workloads.size(), AggregateResult{},
        [&](std::size_t job, unsigned worker) {
            return runOneWorkload(arenas[worker].core(kind, config),
                                  workloads[job], config);
        },
        [](AggregateResult &total, const AggregateResult &one,
           std::size_t) {
            total.cycles += one.cycles;
            total.instructions += one.instructions;
        });
}

std::vector<SweepPoint>
sweepPoolSize(CoreKind kind, UarchConfig config,
              const std::vector<unsigned> &sizes,
              const std::vector<Workload> &workloads,
              Cycle baseline_cycles, par::Pool *pool)
{
    // Flatten to (size × workload) jobs so a sweep saturates the pool
    // even when it has more workers than sweep points; contiguous
    // sharding keeps one size's jobs on one worker's arena.
    std::size_t per_point = workloads.size();
    std::vector<SuiteArena> arenas(pool ? pool->workers() : 1);
    std::vector<AggregateResult> totals = par::mapReduce<
        AggregateResult, std::vector<AggregateResult>>(
        pool, sizes.size() * per_point, std::vector<AggregateResult>(
                                            sizes.size()),
        [&](std::size_t job, unsigned worker) {
            UarchConfig point_config = config;
            point_config.poolEntries = sizes[job / per_point];
            return runOneWorkload(
                arenas[worker].core(kind, point_config),
                workloads[job % per_point], point_config);
        },
        [&](std::vector<AggregateResult> &acc,
            const AggregateResult &one, std::size_t job) {
            acc[job / per_point].cycles += one.cycles;
            acc[job / per_point].instructions += one.instructions;
        });

    std::vector<SweepPoint> points;
    points.reserve(sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        SweepPoint point;
        point.entries = sizes[i];
        point.total = totals[i];
        point.speedup = point.total.speedupOver(baseline_cycles);
        points.push_back(point);
    }
    return points;
}

} // namespace ruu
