#include "sim/experiment.hh"

#include <algorithm>

#include "common/logging.hh"
#include "lint/resource_bound.hh"
#include "sim/json.hh"

namespace ruu
{

namespace
{

/** Run one workload on @p core and verify it; returns the aggregate. */
AggregateResult
runOneWorkload(Core &core, const Workload &workload,
               const UarchConfig &config)
{
    RunResult run = core.run(workload.trace());
    if (run.interrupted)
        ruu_fatal("workload '%s' unexpectedly interrupted on %s",
                  workload.name.c_str(), core.name());
    if (!matchesFunctional(run, workload.func))
        ruu_fatal("workload '%s' committed wrong state on %s "
                  "(simulator bug)",
                  workload.name.c_str(), core.name());
    // No issue mechanism can beat the program's dataflow or its
    // structural floors: a cycle count below the certified resource
    // bound means the core (or the bound) is broken, and the tables
    // must not be printed from it. The bound is invariant across
    // pool-size sweep points, so it comes from the process-wide cache.
    const lint::ResourceBound &bound =
        lint::cachedResourceBound(workload.trace(), config);
    if (run.cycles < bound.cycles)
        ruu_fatal("workload '%s' on %s finished in %llu cycles, "
                  "below its %s-bound resource lower bound of %llu "
                  "(simulator bug)",
                  workload.name.c_str(), core.name(),
                  static_cast<unsigned long long>(run.cycles),
                  bound.bindingName().c_str(),
                  static_cast<unsigned long long>(bound.cycles));
    AggregateResult one;
    one.cycles = run.cycles;
    one.instructions = run.instructions;
    return one;
}

} // namespace

Core &
SuiteArena::core(CoreKind kind, const UarchConfig &config)
{
    std::string signature =
        std::string(coreKindName(kind)) + configToJson(config);
    if (!_core || signature != _signature) {
        _core = makeCore(kind, config);
        _signature = std::move(signature);
    }
    return *_core;
}

AggregateResult
runSuite(CoreKind kind, const UarchConfig &config,
         const std::vector<Workload> &workloads, par::Pool *pool)
{
    std::vector<SuiteArena> arenas(pool ? pool->workers() : 1);
    return par::mapReduce<AggregateResult>(
        pool, workloads.size(), AggregateResult{},
        [&](std::size_t job, unsigned worker) {
            return runOneWorkload(arenas[worker].core(kind, config),
                                  workloads[job], config);
        },
        [](AggregateResult &total, const AggregateResult &one,
           std::size_t) {
            total.cycles += one.cycles;
            total.instructions += one.instructions;
        });
}

namespace
{

/** One workload's pass over every sweep size. */
struct WorkloadSweep
{
    std::vector<AggregateResult> bySize;
    std::vector<char> simulated;
};

/** Accumulated per-size totals plus simulation counts. */
struct SweepTotals
{
    std::vector<AggregateResult> totals;
    std::vector<std::size_t> simulated;
};

} // namespace

std::vector<SweepPoint>
sweepPoolSize(CoreKind kind, UarchConfig config,
              const std::vector<unsigned> &sizes,
              const std::vector<Workload> &workloads,
              Cycle baseline_cycles, par::Pool *pool,
              const SweepOptions &options)
{
    // One job per workload, sizes processed in order inside the job:
    // pruning decisions depend only on that workload's own results, so
    // they are identical at any worker count. Reduction is in workload
    // order, keeping the totals byte-identical to a serial sweep.
    bool prune = options.prune &&
                 std::is_sorted(sizes.begin(), sizes.end()) &&
                 std::adjacent_find(sizes.begin(), sizes.end()) ==
                     sizes.end();
    std::vector<SuiteArena> arenas(pool ? pool->workers() : 1);

    SweepTotals init;
    init.totals.resize(sizes.size());
    init.simulated.assign(sizes.size(), 0);
    SweepTotals reduced = par::mapReduce<WorkloadSweep, SweepTotals>(
        pool, workloads.size(), std::move(init),
        [&](std::size_t job, unsigned worker) {
            const Workload &workload = workloads[job];
            WorkloadSweep sweep;
            sweep.bySize.resize(sizes.size());
            sweep.simulated.assign(sizes.size(), 0);
            // The certified bound is invariant across pool sizes; one
            // cached computation serves the whole row.
            const lint::ResourceBound &bound =
                lint::cachedResourceBound(workload.trace(), config);
            bool derive = false;
            AggregateResult last;
            for (std::size_t s = 0; s < sizes.size(); ++s) {
                if (derive) {
                    sweep.bySize[s] = last;
                    continue;
                }
                UarchConfig point_config = config;
                point_config.poolEntries = sizes[s];
                AggregateResult one = runOneWorkload(
                    arenas[worker].core(kind, point_config), workload,
                    point_config);
                sweep.bySize[s] = one;
                sweep.simulated[s] = 1;
                if (prune) {
                    // Floor hit: the measurement equals the certified
                    // lower bound, so no larger pool can improve it.
                    // Plateau: two consecutive sizes agreed exactly;
                    // the sweep has saturated.
                    if (one.cycles == bound.cycles ||
                        (s > 0 && sweep.simulated[s - 1] &&
                         sweep.bySize[s - 1].cycles == one.cycles)) {
                        derive = true;
                    }
                }
                last = one;
            }
            return sweep;
        },
        [](SweepTotals &acc, const WorkloadSweep &one, std::size_t) {
            for (std::size_t s = 0; s < acc.totals.size(); ++s) {
                acc.totals[s].cycles += one.bySize[s].cycles;
                acc.totals[s].instructions += one.bySize[s].instructions;
                acc.simulated[s] += one.simulated[s];
            }
        });

    std::vector<SweepPoint> points;
    points.reserve(sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        SweepPoint point;
        point.entries = sizes[i];
        point.total = reduced.totals[i];
        point.speedup = point.total.speedupOver(baseline_cycles);
        point.simulated = reduced.simulated[i];
        point.derived = reduced.simulated[i] == 0;
        points.push_back(point);
    }
    return points;
}

} // namespace ruu
