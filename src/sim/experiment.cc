#include "sim/experiment.hh"

#include "common/logging.hh"
#include "lint/dataflow_bound.hh"

namespace ruu
{

AggregateResult
runSuite(CoreKind kind, const UarchConfig &config,
         const std::vector<Workload> &workloads)
{
    AggregateResult total;
    auto core = makeCore(kind, config);
    for (const auto &workload : workloads) {
        RunResult run = core->run(workload.trace());
        if (run.interrupted)
            ruu_fatal("workload '%s' unexpectedly interrupted on %s",
                      workload.name.c_str(), core->name());
        if (!matchesFunctional(run, workload.func))
            ruu_fatal("workload '%s' committed wrong state on %s "
                      "(simulator bug)",
                      workload.name.c_str(), core->name());
        // No issue mechanism can beat the program's dataflow: a cycle
        // count below the static dependence bound means the core (or
        // the bound) is broken, and the tables must not be printed
        // from it.
        lint::DataflowBound bound =
            lint::dataflowBound(workload.trace(), config);
        if (run.cycles < bound.cycles)
            ruu_fatal("workload '%s' on %s finished in %llu cycles, "
                      "below its dataflow lower bound of %llu "
                      "(simulator bug)",
                      workload.name.c_str(), core->name(),
                      static_cast<unsigned long long>(run.cycles),
                      static_cast<unsigned long long>(bound.cycles));
        total.cycles += run.cycles;
        total.instructions += run.instructions;
    }
    return total;
}

std::vector<SweepPoint>
sweepPoolSize(CoreKind kind, UarchConfig config,
              const std::vector<unsigned> &sizes,
              const std::vector<Workload> &workloads,
              Cycle baseline_cycles)
{
    std::vector<SweepPoint> points;
    points.reserve(sizes.size());
    for (unsigned size : sizes) {
        config.poolEntries = size;
        SweepPoint point;
        point.entries = size;
        point.total = runSuite(kind, config, workloads);
        point.speedup = point.total.speedupOver(baseline_cycles);
        points.push_back(point);
    }
    return points;
}

} // namespace ruu
