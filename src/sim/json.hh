/**
 * @file
 * Machine-readable (JSON) export of run results, statistics, and
 * configurations, for plotting and regression tooling around the
 * benches (`ruusim run ... --json`).
 */

#ifndef RUU_SIM_JSON_HH
#define RUU_SIM_JSON_HH

#include <string>

#include "common/error.hh"
#include "core/core.hh"

namespace ruu
{

/** Serialize @p config as a JSON object. */
std::string configToJson(const UarchConfig &config);

/**
 * Parse a UarchConfig from the JSON object emitted by configToJson
 * (`ruusim run --config file.json` round-trips). Keys are optional and
 * default to UarchConfig::cray1(); unknown keys, type mismatches,
 * truncated input, and range errors (UarchConfig::validate) are
 * reported with their position in the text.
 */
Expected<UarchConfig> parseUarchConfig(const std::string &text);

/**
 * Serialize one run as a JSON object:
 * `{"workload": ..., "core": ..., "cycles": ..., "instructions": ...,
 *   "issue_rate": ..., "interrupted": ..., "fault": {...}?,
 *   "counters": {...}, "histograms": {...}}`.
 */
std::string runToJson(const std::string &workload,
                      const std::string &core_name,
                      const RunResult &result, const StatSet &stats);

} // namespace ruu

#endif // RUU_SIM_JSON_HH
