/**
 * @file
 * Cycle-engine selection: interpretive vs. compiled.
 *
 * The six cores each have two stepping paths over the same issue
 * logic:
 *
 *   - *interp*: the original path. Every per-record question (is this
 *     a branch? which unit? does it write a register?) is answered by
 *     decoding through the opcode table inside the cycle loop, and the
 *     result-bus schedule is the fixed latch array whose storage the
 *     fault-injection layer can address.
 *   - *compiled*: the fast path (Reshadi & Dutt's "compiled
 *     simulation"). A trace is pre-decoded once into an immutable
 *     structure-of-arrays micro-op stream (engine/stream.hh) shared
 *     read-only across workers and jobs, and the bus schedule is a
 *     cycle-indexed ring (engine/fast_bus.hh) with O(1) arbitration
 *     instead of per-call latch scans.
 *
 * Both paths must produce byte-identical RunResults, commit streams,
 * delivery logs and JSON — CI diffs them (scripts/ci_perf_smoke.sh)
 * and the fuzzer cross-runs them. Compiled is the default; interp
 * remains the reference oracle behind `--engine=interp` or
 * `RUU_ENGINE=interp`, and is always used when a fault-injection tap
 * is attached (the tap addresses interp's latch storage).
 */

#ifndef RUU_ENGINE_ENGINE_HH
#define RUU_ENGINE_ENGINE_HH

#include <optional>
#include <string>

namespace ruu::engine
{

/** The two stepping paths. */
enum class Kind
{
    Interp,   //!< decode-in-the-loop reference path
    Compiled, //!< pre-decoded stream + table-driven loop (default)
};

/**
 * Version of the compiled-stream format and compiled stepping
 * semantics. Mixed into every content-addressed cache identity that
 * could be produced by either engine: a hit never depends on *which*
 * engine computed the payload (they are byte-identical), but a future
 * semantic revision bumps this and retires stale entries.
 */
inline constexpr unsigned kStreamFormatVersion = 1;

/** Printable engine name ("interp" / "compiled"). */
const char *kindName(Kind kind);

/** Parse an engine name; std::nullopt for an unknown one. */
std::optional<Kind> kindFromName(const std::string &name);

/** Process-wide default engine (Compiled until overridden). */
Kind defaultKind();

/** Override the process-wide default (the CLI's --engine flag). */
void setDefaultKind(Kind kind);

/**
 * The engine a run should use: RUU_ENGINE (when set and valid) wins
 * over the process default. An invalid RUU_ENGINE value is fatal —
 * silently falling back would un-pin an A/B experiment.
 */
Kind resolve();

/**
 * resolve(), but forced to Interp when a fault-injection tap is
 * attached: soft-error ports address the interpretive structures'
 * latch storage, which the compiled fast path does not carry.
 */
Kind activeFor(bool hasTap);

/**
 * Strip `--engine K` / `--engine=K` from @p argv (mirrors
 * par::consumeJobsFlag) and set the process default accordingly, so
 * every subcommand accepts the flag in any position. Returns the
 * chosen kind, or std::nullopt when the flag was absent.
 */
std::optional<Kind> consumeEngineFlag(int &argc, char **argv);

} // namespace ruu::engine

#endif // RUU_ENGINE_ENGINE_HH
