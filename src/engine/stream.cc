#include "engine/stream.hh"

#include <array>
#include <map>
#include <mutex>
#include <tuple>
#include <unordered_map>

#include "isa/reg.hh"
#include "lint/dataflow_bound.hh"

namespace ruu::engine
{

namespace
{

/** Cache key: trace identity (address + length + fingerprint). */
struct StreamKey
{
    const void *trace;
    std::size_t records;
    std::uint64_t fingerprint;

    bool operator<(const StreamKey &o) const
    {
        return std::tie(trace, records, fingerprint) <
               std::tie(o.trace, o.records, o.fingerprint);
    }
};

struct StreamCache
{
    std::mutex mutex;
    std::map<StreamKey, std::shared_ptr<const CompiledStream>> entries;
    StreamCacheStats stats;
};

StreamCache &
streamCache()
{
    static StreamCache cache;
    return cache;
}

} // namespace

CompiledStream
compileStream(const Trace &trace)
{
    const auto &records = trace.records();
    const std::size_t n = records.size();

    CompiledStream st;
    st.flags.resize(n);
    st.fu.resize(n);
    st.op.resize(n);
    st.dst.resize(n);
    st.src1.resize(n);
    st.src2.resize(n);
    st.depSrc1.resize(n);
    st.depSrc2.resize(n);
    st.depMem.resize(n);

    std::array<SeqNum, kNumArchRegs> lastWriter;
    lastWriter.fill(kNoSeqNum);
    std::unordered_map<Addr, SeqNum> lastStore;

    for (std::size_t i = 0; i < n; ++i) {
        const TraceRecord &rec = records[i];
        const Instruction &inst = rec.inst;

        std::uint16_t f = 0;
        if (isBranch(inst.op))
            f |= kOpBranch;
        if (isCondBranch(inst.op))
            f |= kOpCondBranch;
        if (isLoad(inst.op))
            f |= kOpLoad;
        if (isStore(inst.op))
            f |= kOpStore;
        if (isMemory(inst.op))
            f |= kOpMem;
        if (isNopLike(inst.op))
            f |= kOpNopLike;
        if (isProgramExit(inst.op))
            f |= kOpProgramExit;
        if (inst.op == Opcode::HALT)
            f |= kOpHalt;
        if (inst.writesReg())
            f |= kOpWritesReg;
        if (rec.taken)
            f |= kOpTaken;
        st.flags[i] = f;

        st.fu[i] = inst.fu();
        st.op[i] = inst.op;
        st.dst[i] = inst.dst.valid()
                        ? static_cast<std::int16_t>(inst.dst.flat())
                        : std::int16_t{-1};
        st.src1[i] = inst.src1.valid()
                         ? static_cast<std::int16_t>(inst.src1.flat())
                         : std::int16_t{-1};
        st.src2[i] = inst.src2.valid()
                         ? static_cast<std::int16_t>(inst.src2.flat())
                         : std::int16_t{-1};

        st.depSrc1[i] = inst.src1.valid()
                            ? lastWriter[inst.src1.flat()]
                            : kNoSeqNum;
        st.depSrc2[i] = inst.src2.valid()
                            ? lastWriter[inst.src2.flat()]
                            : kNoSeqNum;
        if (f & kOpLoad) {
            auto it = lastStore.find(rec.memAddr);
            st.depMem[i] =
                it != lastStore.end() ? it->second : kNoSeqNum;
        } else {
            st.depMem[i] = kNoSeqNum;
        }

        if (inst.writesReg())
            lastWriter[inst.dst.flat()] = i;
        if (f & kOpStore)
            lastStore[rec.memAddr] = i;
    }
    return st;
}

std::uint64_t
streamTraceFingerprint(const Trace &trace)
{
    const auto &records = trace.records();
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        h = (h ^ v) * 0x100000001b3ull;
    };
    std::size_t n = records.size();
    std::size_t step = n > 64 ? n / 64 : 1;
    for (std::size_t i = 0; i < n; i += step) {
        const TraceRecord &rec = records[i];
        mix(static_cast<std::uint64_t>(rec.inst.op));
        mix(rec.inst.dst.valid() ? rec.inst.dst.flat() + 1 : 0);
        mix(rec.inst.src1.valid() ? rec.inst.src1.flat() + 1 : 0);
        mix(rec.inst.src2.valid() ? rec.inst.src2.flat() + 1 : 0);
        mix(static_cast<std::uint64_t>(rec.inst.imm));
        mix(rec.pc);
        mix(rec.memAddr);
        mix(static_cast<std::uint64_t>(rec.staticIndex));
    }
    return h;
}

std::shared_ptr<const CompiledStream>
cachedStream(const Trace &trace)
{
    StreamKey key;
    key.trace = &trace;
    key.records = trace.records().size();
    key.fingerprint = streamTraceFingerprint(trace);

    StreamCache &cache = streamCache();
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        ++cache.stats.lookups;
        auto it = cache.entries.find(key);
        if (it != cache.entries.end()) {
            ++cache.stats.hits;
            return it->second;
        }
    }
    // Decode outside the lock (deterministic: a racing duplicate is
    // wasted work, not wrong work).
    auto stream =
        std::make_shared<const CompiledStream>(compileStream(trace));
    std::lock_guard<std::mutex> lock(cache.mutex);
    return cache.entries.emplace(key, std::move(stream))
        .first->second;
}

StreamCacheStats
streamCacheStats()
{
    StreamCache &cache = streamCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    return cache.stats;
}

} // namespace ruu::engine
