/**
 * @file
 * Pre-decoded micro-op streams — the data side of compiled simulation.
 *
 * A CompiledStream is the one-time answer to every trace-invariant
 * question the cycle loops ask about a record: opcode class flags,
 * functional-unit kind, register operands in flat form, and the
 * dynamic dependence edges (last register writer per source, last
 * store to the loaded word). It is a dense structure of arrays so the
 * hot loop touches one flag word per record instead of re-decoding
 * through the opcode table (whose accessors carry always-on asserts).
 *
 * Streams are immutable once built and shared read-only: the parallel
 * sweep workers (src/par) and the ruusimd campaign units all resolve
 * the same kernel to the same Trace object, so the process-wide memo
 * below decodes each trace exactly once per process.
 *
 * Fault annotations are deliberately NOT part of the stream. They are
 * the only mutable field of a trace (Trace::injectFault), and the
 * cores read them straight from the live TraceRecord — so a cached
 * stream stays valid across the thousands of injectFault/clearFaults
 * mutations of a fault-sweep campaign, and the cache key needs no
 * fault epoch.
 */

#ifndef RUU_ENGINE_STREAM_HH
#define RUU_ENGINE_STREAM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "isa/opcode.hh"
#include "trace/trace.hh"

namespace ruu::engine
{

/** Per-record opcode-class flags (bitwise OR in CompiledStream). */
enum : std::uint16_t
{
    kOpBranch = 1u << 0,      //!< any branch form
    kOpCondBranch = 1u << 1,  //!< conditional branch
    kOpLoad = 1u << 2,
    kOpStore = 1u << 3,
    kOpMem = 1u << 4,         //!< load or store
    kOpNopLike = 1u << 5,     //!< NOP / RTI / EINT / DINT
    kOpProgramExit = 1u << 6, //!< HALT / RTI
    kOpHalt = 1u << 7,
    kOpWritesReg = 1u << 8,   //!< valid destination register
    kOpTaken = 1u << 9,       //!< branch outcome (trace-static)
};

/** The pre-decoded form of one whole trace. */
struct CompiledStream
{
    /** Opcode-class flag word per dynamic instruction. */
    std::vector<std::uint16_t> flags;

    /** Functional-unit kind per dynamic instruction. */
    std::vector<FuKind> fu;

    /** Opcode per dynamic instruction. */
    std::vector<Opcode> op;

    /** Flat destination register, or -1 when none. */
    std::vector<std::int16_t> dst;

    /** Flat source registers, or -1 when absent. */
    std::vector<std::int16_t> src1, src2;

    /**
     * Dependence edges: producing dynamic instruction of each source
     * register (kNoSeqNum when the value predates the trace), and of
     * the loaded word for loads (the last store to that address).
     */
    std::vector<SeqNum> depSrc1, depSrc2, depMem;

    /** Number of dynamic instructions. */
    std::size_t size() const { return flags.size(); }
};

/** Decode @p trace into a stream. Linear in trace length. */
CompiledStream compileStream(const Trace &trace);

/** Hit/lookup counters of the process-wide stream cache. */
struct StreamCacheStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
};

/**
 * Content fingerprint of @p trace for stream identity: FNV-1a over up
 * to 64 evenly spaced records, mixing the decoded instruction fields
 * (opcode, registers, immediate) as well as pc/address/position.
 * Stronger than lint::boundTraceFingerprint, which ignores the
 * instruction itself — two traces of the same shape differing only in
 * opcodes must not share a stream when a freed trace's address is
 * reused.
 */
std::uint64_t streamTraceFingerprint(const Trace &trace);

/**
 * Memoized compileStream, keyed like lint::cachedDataflowBound on the
 * trace's address, length and content fingerprint (the stream depends
 * on nothing else — not the config, not fault annotations).
 * Thread-safe; the returned stream is immutable and shared.
 */
std::shared_ptr<const CompiledStream> cachedStream(const Trace &trace);

/** Counters of cachedStream since process start. */
StreamCacheStats streamCacheStats();

} // namespace ruu::engine

#endif // RUU_ENGINE_STREAM_HH
