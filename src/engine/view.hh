/**
 * @file
 * Trace views — the code side of compiled simulation.
 *
 * Each core's cycle loop is a single template over a View, so the
 * interpretive and compiled paths are one body of issue logic with two
 * data paths underneath (byte-identical results by construction):
 *
 *   - InterpView answers every per-record question by decoding
 *     through the opcode table, exactly as the loops always did, and
 *     names ResultBus (the fault-portable latch array) as its bus.
 *   - CompiledView reads the answers from the pre-decoded
 *     CompiledStream arrays and names FastBus (the O(1) ring) as its
 *     bus.
 *
 * `View::kCompiled` gates the few genuinely path-specific blocks
 * (fault-tap port registration exists only on the interpretive path;
 * Core::run never selects the compiled engine when a tap is attached).
 */

#ifndef RUU_ENGINE_VIEW_HH
#define RUU_ENGINE_VIEW_HH

#include "engine/fast_bus.hh"
#include "engine/stream.hh"
#include "isa/opcode.hh"
#include "trace/trace.hh"
#include "uarch/result_bus.hh"

namespace ruu::engine
{

/** Decode-in-the-loop data path (the reference engine). */
struct InterpView
{
    static constexpr bool kCompiled = false;
    using Bus = ResultBus;

    explicit InterpView(const Trace &trace) : recs(&trace.records()) {}

    const std::vector<TraceRecord> *recs;

    const Instruction &inst(SeqNum s) const { return (*recs)[s].inst; }
    bool branchAt(SeqNum s) const { return isBranch(inst(s).op); }
    bool condBranchAt(SeqNum s) const { return isCondBranch(inst(s).op); }
    bool loadAt(SeqNum s) const { return isLoad(inst(s).op); }
    bool storeAt(SeqNum s) const { return isStore(inst(s).op); }
    bool memAt(SeqNum s) const { return isMemory(inst(s).op); }
    bool nopLikeAt(SeqNum s) const { return isNopLike(inst(s).op); }
    bool haltAt(SeqNum s) const { return inst(s).op == Opcode::HALT; }
    bool writesRegAt(SeqNum s) const { return inst(s).writesReg(); }
    bool takenAt(SeqNum s) const { return (*recs)[s].taken; }
    FuKind fuAt(SeqNum s) const { return inst(s).fu(); }
};

/** Pre-decoded stream data path (the fast engine). */
struct CompiledView
{
    static constexpr bool kCompiled = true;
    using Bus = FastBus;

    CompiledView(const Trace &trace, const CompiledStream &stream)
        : recs(&trace.records()), st(&stream)
    {}

    const std::vector<TraceRecord> *recs;
    const CompiledStream *st;

    const Instruction &inst(SeqNum s) const { return (*recs)[s].inst; }
    bool branchAt(SeqNum s) const { return st->flags[s] & kOpBranch; }
    bool condBranchAt(SeqNum s) const
    {
        return st->flags[s] & kOpCondBranch;
    }
    bool loadAt(SeqNum s) const { return st->flags[s] & kOpLoad; }
    bool storeAt(SeqNum s) const { return st->flags[s] & kOpStore; }
    bool memAt(SeqNum s) const { return st->flags[s] & kOpMem; }
    bool nopLikeAt(SeqNum s) const { return st->flags[s] & kOpNopLike; }
    bool haltAt(SeqNum s) const { return st->flags[s] & kOpHalt; }
    bool writesRegAt(SeqNum s) const
    {
        return st->flags[s] & kOpWritesReg;
    }
    bool takenAt(SeqNum s) const { return st->flags[s] & kOpTaken; }
    FuKind fuAt(SeqNum s) const { return st->fu[s]; }
};

} // namespace ruu::engine

#endif // RUU_ENGINE_VIEW_HH
