#include "engine/engine.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace ruu::engine
{

namespace
{

std::atomic<Kind> g_default{Kind::Compiled};

} // namespace

const char *
kindName(Kind kind)
{
    switch (kind) {
      case Kind::Interp: return "interp";
      case Kind::Compiled: return "compiled";
    }
    return "?";
}

std::optional<Kind>
kindFromName(const std::string &name)
{
    if (name == "interp")
        return Kind::Interp;
    if (name == "compiled")
        return Kind::Compiled;
    return std::nullopt;
}

Kind
defaultKind()
{
    return g_default.load(std::memory_order_relaxed);
}

void
setDefaultKind(Kind kind)
{
    g_default.store(kind, std::memory_order_relaxed);
}

Kind
resolve()
{
    const char *env = std::getenv("RUU_ENGINE");
    if (env && *env != '\0') {
        auto kind = kindFromName(env);
        if (!kind)
            ruu_fatal("RUU_ENGINE='%s' is not an engine; use "
                      "'interp' or 'compiled'",
                      env);
        return *kind;
    }
    return defaultKind();
}

Kind
activeFor(bool hasTap)
{
    return hasTap ? Kind::Interp : resolve();
}

std::optional<Kind>
consumeEngineFlag(int &argc, char **argv)
{
    std::optional<Kind> chosen;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        bool have = false;
        if (arg == "--engine") {
            if (i + 1 >= argc)
                ruu_fatal("--engine requires a value "
                          "(interp or compiled)");
            value = argv[++i];
            have = true;
        } else if (arg.rfind("--engine=", 0) == 0) {
            value = arg.substr(std::strlen("--engine="));
            have = true;
        }
        if (!have) {
            argv[out++] = argv[i];
            continue;
        }
        auto kind = kindFromName(value);
        if (!kind)
            ruu_fatal("--engine=%s is not an engine; use 'interp' "
                      "or 'compiled'",
                      value.c_str());
        chosen = kind;
    }
    argc = out;
    argv[argc] = nullptr;
    if (chosen)
        setDefaultKind(*chosen);
    return chosen;
}

} // namespace ruu::engine
