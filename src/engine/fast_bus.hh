/**
 * @file
 * Cycle-indexed result-bus schedule for the compiled engine.
 *
 * ResultBus (uarch/result_bus.hh) keeps its reservations in a flat
 * latch array because the fault-injection layer must be able to
 * address every latch; the price is that free()/reserve()/
 * retireBefore() each scan all width x horizon latches, several times
 * per simulated cycle — the single largest cost of the interpretive
 * loops. The compiled path never attaches fault taps, so FastBus
 * drops the stable-storage requirement and keys cells directly by
 * delivery cycle: every operation the cores use is O(1), except the
 * (mispredict-only) cancelFrom squash walk.
 *
 * Semantics are bit-for-bit those of ResultBus as the cores observe
 * them: free(c) counts live reservations at cycle c against the bus
 * width; reserve panics when the cycle is full or a reservation would
 * land beyond the horizon window; retireBefore advances the retire
 * line (cells age out implicitly); cancelFrom drops reservations of
 * squashed producers by SeqNum. The engine A/B byte-diff in CI and
 * the cross-engine fuzzer hold this equivalence.
 */

#ifndef RUU_ENGINE_FAST_BUS_HH
#define RUU_ENGINE_FAST_BUS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "uarch/result_bus.hh"

namespace ruu
{
namespace inject
{
class FaultPortSet;
} // namespace inject
} // namespace ruu

namespace ruu::engine
{

/** O(1) reservation schedule; drop-in for ResultBus in compiled loops. */
class FastBus
{
  public:
    /** Delivery cycles covered; must exceed the longest FU latency. */
    static constexpr unsigned kHorizon = 64;

    explicit FastBus(unsigned width = 1) : _width(width)
    {
        ruu_assert(width >= 1, "at least one result bus is required");
        _seqs.assign(static_cast<std::size_t>(kHorizon) * width,
                     kNoSeqNum);
        reset();
    }

    /** Number of buses. */
    unsigned width() const { return _width; }

    /** True when a delivery slot remains at @p cycle. */
    bool free(Cycle cycle) const
    {
        const unsigned i = index(cycle);
        return _cycleOf[i] != cycle || _count[i] < _width;
    }

    /** Reserve a slot at @p cycle; panics when none remains. */
    void reserve(Cycle cycle, Tag, Word, SeqNum seq)
    {
        const unsigned i = index(cycle);
        if (_cycleOf[i] != cycle) {
            // Only a retired (or never-used) cell may be recycled: a
            // live reservation further ahead than the horizon covers
            // is the same schedule overflow ResultBus panics on.
            ruu_assert(_cycleOf[i] == kNoCycle || _cycleOf[i] < _line,
                       "result-bus schedule exceeded its %u-cycle "
                       "window",
                       kHorizon);
            _cycleOf[i] = cycle;
            _count[i] = 0;
        }
        ruu_assert(_count[i] < _width,
                   "all %u result-bus slots at cycle %llu already "
                   "reserved",
                   _width, static_cast<unsigned long long>(cycle));
        _seqs[static_cast<std::size_t>(i) * _width + _count[i]] = seq;
        ++_count[i];
    }

    /** Advance the retire line (cells age out implicitly). */
    void retireBefore(Cycle cycle)
    {
        if (cycle > _line)
            _line = cycle;
    }

    /** Cancel every delivery from producer @p seq onward (squash). */
    void cancelFrom(SeqNum seq)
    {
        for (unsigned i = 0; i < kHorizon; ++i) {
            SeqNum *cell = &_seqs[static_cast<std::size_t>(i) * _width];
            unsigned kept = 0;
            for (unsigned s = 0; s < _count[i]; ++s)
                if (cell[s] == kNoSeqNum || cell[s] < seq)
                    cell[kept++] = cell[s];
            _count[i] = static_cast<std::uint8_t>(kept);
        }
    }

    /** Clear all reservations. */
    void reset()
    {
        _cycleOf.fill(kNoCycle);
        _count.fill(0);
        _line = 0;
    }

    /**
     * Fault ports require the latch-array ResultBus; Core::run never
     * selects the compiled engine when a tap is attached, so this is
     * unreachable — it exists only so the cores' (runtime-dead) tap
     * registration block compiles in the compiled instantiation.
     */
    void exposePorts(inject::FaultPortSet &, const std::string &)
    {
        ruu_panic("compiled engine cannot expose fault ports; "
                  "taps force the interpretive engine");
    }

  private:
    static unsigned index(Cycle cycle)
    {
        static_assert((kHorizon & (kHorizon - 1)) == 0,
                      "horizon must be a power of two");
        return static_cast<unsigned>(cycle) & (kHorizon - 1);
    }

    unsigned _width;
    Cycle _line = 0; //!< everything before this cycle is retired
    std::array<Cycle, kHorizon> _cycleOf;
    std::array<std::uint8_t, kHorizon> _count;
    std::vector<SeqNum> _seqs; //!< producer of each live slot
};

} // namespace ruu::engine

#endif // RUU_ENGINE_FAST_BUS_HH
