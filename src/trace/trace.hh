/**
 * @file
 * Dynamic instruction traces.
 *
 * The paper's methodology (§2.1) feeds instruction traces produced by a
 * CRAY-1 simulator into each issue-logic simulator. Trace is our
 * equivalent: the functional simulator (arch/func_sim.hh) executes a
 * Program and records, for every dynamic instruction, everything a
 * timing model needs — the decoded instruction, its memory address,
 * branch outcome, and the architecturally correct result value (so
 * timing cores can verify the values they commit).
 *
 * Faults can be annotated onto trace positions after generation; this
 * is how the precise-interrupt experiments inject page faults and
 * arithmetic exceptions at arbitrary dynamic instructions.
 */

#ifndef RUU_TRACE_TRACE_HH
#define RUU_TRACE_TRACE_HH

#include <memory>
#include <string>
#include <vector>

#include "arch/executor.hh"
#include "asm/program.hh"
#include "common/types.hh"
#include "isa/instruction.hh"

namespace ruu
{

/** One dynamic instruction in a trace. */
struct TraceRecord
{
    Instruction inst;        //!< decoded instruction
    std::size_t staticIndex; //!< index within the source Program
    ParcelAddr pc;           //!< parcel address (precise-interrupt PC)
    Addr memAddr = 0;        //!< word address (loads/stores)
    Word result = 0;         //!< destination value (register writers)
    Word storeValue = 0;     //!< value stored (stores)
    bool taken = false;      //!< branch outcome
    Fault fault = Fault::None; //!< injected or organic fault
};

/** A complete dynamic execution of one program. */
class Trace
{
  public:
    Trace() = default;

    /** Create a trace over @p program (shared with the simulators). */
    explicit Trace(std::shared_ptr<const Program> program)
        : _program(std::move(program))
    {}

    /** The program this trace executes. */
    const Program &program() const { return *_program; }

    /** Shared handle to the program. */
    const std::shared_ptr<const Program> &programPtr() const
    {
        return _program;
    }

    /** Number of dynamic instructions. */
    std::size_t size() const { return _records.size(); }

    bool empty() const { return _records.empty(); }

    /** Record for dynamic instruction @p seq. */
    const TraceRecord &at(SeqNum seq) const;

    /** All records. */
    const std::vector<TraceRecord> &records() const { return _records; }

    /** Append a record (functional simulator only). */
    void append(TraceRecord record) { _records.push_back(record); }

    /**
     * Annotate dynamic instruction @p seq with @p fault.
     * Used by the precise-interrupt experiments; the timing cores then
     * surface the fault when that instruction tries to commit. Note:
     * annotations on branches, NOP and HALT never surface (they update
     * no state); use nextFaultable() to round positions forward.
     */
    void injectFault(SeqNum seq, Fault fault);

    /** Remove all fault annotations. */
    void clearFaults();

    /** Count of dynamic conditional branches. */
    std::size_t countCondBranches() const;

    /** Count of dynamic loads + stores. */
    std::size_t countMemOps() const;

  private:
    std::shared_ptr<const Program> _program;
    std::vector<TraceRecord> _records;
};

} // namespace ruu

#endif // RUU_TRACE_TRACE_HH
