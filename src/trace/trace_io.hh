/**
 * @file
 * Text serialization of dynamic traces.
 *
 * The format is line-oriented and versioned, so traces can be archived
 * and replayed without re-running the functional simulator (loaded
 * traces carry a stub Program and therefore support every trace-driven
 * core, but not the speculative core, which needs the static program
 * image for wrong-path fetch).
 */

#ifndef RUU_TRACE_TRACE_IO_HH
#define RUU_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "common/error.hh"
#include "trace/trace.hh"

namespace ruu
{

/** Serialize @p trace to @p os. */
void saveTrace(const Trace &trace, std::ostream &os);

/** Serialize @p trace to the file @p path; false on I/O failure. */
bool saveTraceFile(const Trace &trace, const std::string &path);

/**
 * Parse a trace previously written by saveTrace, reporting where and
 * why malformed input was rejected (bad magic, truncated record list,
 * out-of-range opcode or fault code, ...).
 */
Expected<Trace> loadTraceChecked(std::istream &is);

/** Load and validate a trace from the file @p path. */
Expected<Trace> loadTraceFileChecked(const std::string &path);

/**
 * Parse a trace previously written by saveTrace.
 * @return nullopt on malformed input (no diagnostic; prefer
 *         loadTraceChecked when the cause matters).
 */
std::optional<Trace> loadTrace(std::istream &is);

/** Load a trace from the file @p path. */
std::optional<Trace> loadTraceFile(const std::string &path);

} // namespace ruu

#endif // RUU_TRACE_TRACE_IO_HH
