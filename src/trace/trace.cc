#include "trace/trace.hh"

#include "common/logging.hh"

namespace ruu
{

const TraceRecord &
Trace::at(SeqNum seq) const
{
    ruu_assert(seq < _records.size(), "trace index %llu out of range",
               static_cast<unsigned long long>(seq));
    return _records[seq];
}

void
Trace::injectFault(SeqNum seq, Fault fault)
{
    ruu_assert(seq < _records.size(), "fault index %llu out of range",
               static_cast<unsigned long long>(seq));
    _records[seq].fault = fault;
}

void
Trace::clearFaults()
{
    for (auto &record : _records)
        record.fault = Fault::None;
}

std::size_t
Trace::countCondBranches() const
{
    std::size_t n = 0;
    for (const auto &record : _records)
        if (isCondBranch(record.inst.op))
            ++n;
    return n;
}

std::size_t
Trace::countMemOps() const
{
    std::size_t n = 0;
    for (const auto &record : _records)
        if (isMemory(record.inst.op))
            ++n;
    return n;
}

} // namespace ruu
