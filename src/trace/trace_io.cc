#include "trace/trace_io.hh"

#include <fstream>
#include <sstream>

namespace ruu
{

namespace
{

constexpr const char *kMagic = "ruutrace";
constexpr int kVersion = 1;

int
regToInt(RegId reg)
{
    return reg.valid() ? static_cast<int>(reg.flat()) : -1;
}

RegId
regFromInt(int value)
{
    if (value < 0 || value >= static_cast<int>(kNumArchRegs))
        return RegId();
    return RegId::fromFlat(static_cast<unsigned>(value));
}

} // namespace

void
saveTrace(const Trace &trace, std::ostream &os)
{
    os << kMagic << " " << kVersion << " "
       << (trace.programPtr() ? trace.program().name() : "unknown") << " "
       << trace.size() << "\n";
    for (const auto &r : trace.records()) {
        os << static_cast<unsigned>(r.inst.op) << " "
           << regToInt(r.inst.dst) << " " << regToInt(r.inst.src1) << " "
           << regToInt(r.inst.src2) << " " << r.inst.imm << " "
           << r.inst.target << " " << r.staticIndex << " " << r.pc << " "
           << r.memAddr << " " << r.result << " " << r.storeValue << " "
           << (r.taken ? 1 : 0) << " " << static_cast<unsigned>(r.fault)
           << "\n";
    }
}

bool
saveTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        return false;
    saveTrace(trace, os);
    return os.good();
}

Expected<Trace>
loadTraceChecked(std::istream &is)
{
    std::string magic;
    int version = 0;
    std::string name;
    std::size_t count = 0;
    if (!(is >> magic >> version >> name >> count))
        return Error("malformed trace header (expected "
                     "'ruutrace <version> <name> <count>')");
    if (magic != kMagic)
        return Error("not a ruutrace file (magic '" + magic + "')");
    if (version != kVersion) {
        return Error("unsupported trace version " +
                     std::to_string(version) + " (expected " +
                     std::to_string(kVersion) + ")");
    }

    // Loaded traces reference a stub program carrying only the name.
    auto stub = std::make_shared<Program>();
    Trace trace(stub);

    for (std::size_t i = 0; i < count; ++i) {
        unsigned op, fault;
        int dst, src1, src2, taken;
        TraceRecord r;
        if (!(is >> op >> dst >> src1 >> src2 >> r.inst.imm
                 >> r.inst.target >> r.staticIndex >> r.pc >> r.memAddr
                 >> r.result >> r.storeValue >> taken >> fault)) {
            return Error("record " + std::to_string(i) + " of " +
                         std::to_string(count) +
                         " is truncated or non-numeric");
        }
        if (op >= kNumOpcodes) {
            return Error("record " + std::to_string(i) +
                         ": opcode " + std::to_string(op) +
                         " out of range");
        }
        if (fault >= kNumFaults) {
            return Error("record " + std::to_string(i) +
                         ": fault code " + std::to_string(fault) +
                         " out of range");
        }
        r.inst.op = static_cast<Opcode>(op);
        r.inst.dst = regFromInt(dst);
        r.inst.src1 = regFromInt(src1);
        r.inst.src2 = regFromInt(src2);
        r.taken = taken != 0;
        r.fault = static_cast<Fault>(fault);
        trace.append(r);
    }
    return trace;
}

Expected<Trace>
loadTraceFileChecked(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return Error("cannot open '" + path + "'");
    Expected<Trace> trace = loadTraceChecked(is);
    if (!trace)
        return Error(trace.error()).context(path);
    return trace;
}

std::optional<Trace>
loadTrace(std::istream &is)
{
    Expected<Trace> trace = loadTraceChecked(is);
    if (!trace)
        return std::nullopt;
    return trace.take();
}

std::optional<Trace>
loadTraceFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return std::nullopt;
    return loadTrace(is);
}

} // namespace ruu
