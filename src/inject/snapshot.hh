/**
 * @file
 * Machine snapshot/restore over the fault-port enumeration.
 *
 * A Snapshot is a bit-exact image of every registered FaultPort of a
 * running machine at one cycle, plus the layout fingerprint that makes
 * it safe to reinstate. Because the cores keep their pipeline state in
 * run-local structures, a snapshot cannot be "loaded" into an idle
 * core object; restore is *replay-anchored*: a fresh run of the same
 * (core, trace, options) is driven to the snapshot cycle, the live
 * registered bytes are compared against the image — which doubles as a
 * determinism check — the image is installed, and the run continues to
 * completion. The replay costs O(snapshot cycle), which is the honest
 * price of checkpointing a trace-driven model without serializing host
 * pointers.
 *
 * The same taps back the campaign runner: a trial is "restore to cycle
 * N, flip one bit, continue", with the capture step skipped.
 */

#ifndef RUU_INJECT_SNAPSHOT_HH
#define RUU_INJECT_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "core/core.hh"
#include "inject/fault_port.hh"

namespace ruu::inject
{

/** A bit-exact machine checkpoint. */
struct Snapshot
{
    std::string core;        //!< core name, for mismatch diagnostics
    std::uint64_t layoutSignature = 0;
    Cycle requestedCycle = 0; //!< cycle asked for
    Cycle capturedCycle = 0;  //!< first tap call at/after the request
    std::uint64_t portCount = 0;
    std::uint64_t totalBits = 0;
    std::vector<std::uint8_t> image;
};

/**
 * Tap that captures the port image at the first cycle >= the target.
 * Reusable directly by callers running their own RunOptions.
 */
class CaptureTap : public MachineTap
{
  public:
    explicit CaptureTap(Cycle target) : _target(target) {}

    void onRunStart(FaultPortSet &ports) override;
    void onCycle(Cycle cycle, FaultPortSet &ports) override;

    bool captured() const { return _captured; }
    const Snapshot &snapshot() const { return _snapshot; }
    Snapshot takeSnapshot() { return std::move(_snapshot); }

  private:
    Cycle _target;
    bool _captured = false;
    Snapshot _snapshot;
};

/** Outcome of a restore-and-continue run. */
struct ResumeResult
{
    RunResult result;      //!< the continued run's final result
    bool verified = false; //!< replayed bytes matched the image exactly
    std::string mismatch;  //!< first differing port, when !verified
    Cycle restoredAt = 0;  //!< cycle the image was (re)installed
};

/**
 * Tap that, at the first cycle >= the snapshot's captured cycle,
 * verifies the live registered bytes against the image and installs
 * the image. Optionally flips one port bit immediately afterwards
 * (armFlipBit >= 0), which is the campaign runner's injection point.
 */
class RestoreTap : public MachineTap
{
  public:
    explicit RestoreTap(const Snapshot &snapshot)
        : _snapshot(snapshot)
    {}

    void onRunStart(FaultPortSet &ports) override;
    void onCycle(Cycle cycle, FaultPortSet &ports) override;

    bool fired() const { return _fired; }
    bool verified() const { return _verified; }
    const std::string &mismatch() const { return _mismatch; }
    Cycle restoredAt() const { return _restoredAt; }
    bool layoutOk() const { return _layoutOk; }

  private:
    const Snapshot &_snapshot;
    bool _fired = false;
    bool _verified = false;
    bool _layoutOk = false;
    std::string _mismatch;
    Cycle _restoredAt = 0;
};

/**
 * Run @p core over @p trace with @p options and capture a snapshot at
 * the first tap cycle >= @p cycle. Errors when the run ends (or
 * wedges) before the target cycle, or when the snapshot layout is
 * empty.
 */
Expected<Snapshot> takeSnapshot(Core &core, const Trace &trace,
                                const RunOptions &options, Cycle cycle);

/**
 * Replay @p core from the start, verify the machine against
 * @p snapshot at its captured cycle, install the image, and continue
 * to completion. Errors when the layouts differ or the replay never
 * reaches the snapshot cycle; a byte mismatch is NOT an error (the
 * run still completes) — it is reported through ResumeResult::verified
 * so determinism harnesses can fail loudly with the port name.
 */
Expected<ResumeResult> resumeFromSnapshot(Core &core,
                                          const Trace &trace,
                                          const RunOptions &options,
                                          const Snapshot &snapshot);

} // namespace ruu::inject

#endif // RUU_INJECT_SNAPSHOT_HH
