/**
 * @file
 * Soft-error fault-injection campaigns.
 *
 * A campaign samples (core × workload × cycle × port-bit) points from
 * a seeded PRNG, runs each point as one trial in a crash-contained
 * sandbox (sandbox.hh), and classifies every trial with the repo's
 * detector stack: the invariant checker (assertion/crash containment),
 * the lockstep commit oracle, the trap machinery, and the cycle
 * watchdog. Results stream to an append-only JSONL journal
 * (journal.hh) so an interrupted campaign resumes where it stopped,
 * and every trial is replayable bit-exactly from (campaign seed,
 * trial index) alone — the trial's coordinates are derived from a
 * SplitMix64 stream plus a deterministic per-(core, workload) probe of
 * the machine's port layout and reference timing.
 */

#ifndef RUU_INJECT_CAMPAIGN_HH
#define RUU_INJECT_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include <mutex>

#include "common/error.hh"
#include "inject/fault_port.hh"
#include "inject/journal.hh"
#include "par/pool.hh"
#include "sim/machine.hh"

namespace ruu::inject
{

/** SplitMix64 step (the campaign's only randomness primitive). */
std::uint64_t splitmix64(std::uint64_t &state);

/** The derived seed of trial @p index under campaign @p seed. */
std::uint64_t trialSeed(std::uint64_t seed, std::uint64_t index);

/**
 * Deterministic facts about one (core, workload) machine that trial
 * derivation needs: the port layout and the fault-free timing.
 */
struct ProbeInfo
{
    Cycle refCycles = 0;     //!< fault-free run length in cycles
    Cycle lastTapCycle = 0;  //!< last cycle the tap was called at
    std::uint64_t totalBits = 0;
    std::uint64_t portCount = 0;
    std::uint64_t layoutSignature = 0;
};

/** Tap that records ProbeInfo during a clean reference run. */
class ProbeTap : public MachineTap
{
  public:
    void onRunStart(FaultPortSet &ports) override;
    void onCycle(Cycle cycle, FaultPortSet &ports) override;

    const ProbeInfo &info() const { return _info; }

  private:
    ProbeInfo _info;
};

/**
 * Tap that injects one bit flip: at the first cycle >= the target it
 * captures the pre-fault image, flips the chosen flat bit (with the
 * port's wrap modulus), and invokes onFire — the campaign child uses
 * that callback to emit the PRE record before the fault can take the
 * process down.
 */
class InjectorTap : public MachineTap
{
  public:
    InjectorTap(Cycle target, std::uint64_t flat_bit)
        : _target(target), _bit(flat_bit)
    {}

    /** Called once, immediately after the flip. */
    std::function<void(FaultPortSet &ports,
                       const FaultPortSet::FlipResult &flip,
                       const std::vector<std::uint8_t> &pre_image)>
        onFire;

    void onRunStart(FaultPortSet &ports) override;
    void onCycle(Cycle cycle, FaultPortSet &ports) override;

    bool fired() const { return _fired; }
    Cycle firedAt() const { return _firedAt; }
    const FaultPortSet::FlipResult &flip() const { return _flip; }
    /** "name (class, N bits)" of the flipped port. */
    const std::string &portDescription() const { return _portDesc; }
    const std::vector<std::uint8_t> &preImage() const { return _pre; }
    std::uint64_t layoutSignature() const { return _layout; }

  private:
    Cycle _target;
    std::uint64_t _bit;
    bool _fired = false;
    Cycle _firedAt = 0;
    FaultPortSet::FlipResult _flip;
    std::string _portDesc;
    std::vector<std::uint8_t> _pre;
    std::uint64_t _layout = 0;
};

/** Everything that defines (and re-defines, on resume) a campaign. */
struct CampaignOptions
{
    std::vector<CoreKind> cores;
    std::vector<Workload> workloads;
    std::uint64_t trials = 1000;
    std::uint64_t seed = 1;
    unsigned timeoutMs = 10'000;   //!< per-trial wall-clock watchdog
    unsigned maxRetries = 3;       //!< sandbox spawn retries per trial
    std::string journalPath;       //!< empty: in-memory only
    std::uint64_t stopAfter = 0;   //!< stop after N new trials (0: off)
    UarchConfig config = UarchConfig::cray1();
    bool modelIBuffers = false;

    /**
     * Concurrent trial sandboxes (1 = the serial reference loop).
     * Trials are deterministic functions of (seed, index), and the
     * journal is committed strictly in trial-index order, so the
     * journal — and therefore resume and --replay-trial — is
     * byte-identical at any job count.
     */
    unsigned jobs = 1;

    /** Optional per-trial progress hook (done, total, last result). */
    std::function<void(std::uint64_t done, std::uint64_t total,
                       const TrialResult &last)>
        progress;
};

/** A finished (or early-stopped) campaign. */
struct CampaignSummary
{
    JournalHeader header;
    std::vector<TrialResult> trials; //!< all known trials, index order
    std::uint64_t resumed = 0;  //!< trials recovered from the journal
    std::uint64_t executed = 0; //!< trials run by this invocation
    bool stoppedEarly = false;  //!< stopAfter cut the run short
    double wallSeconds = 0;     //!< wall-clock of this invocation
    /** Trials per second of this invocation (0 when none ran). */
    double trialsPerSecond() const
    {
        return wallSeconds > 0 ? executed / wallSeconds : 0.0;
    }
};

/** Outcome tally of @p trials. */
std::map<Outcome, std::uint64_t>
tallyOutcomes(const std::vector<TrialResult> &trials);

/**
 * Deterministically probe the (core, workload) machine: run it clean
 * with a ProbeTap and verify the reference run is sound. Errors when
 * the clean run wedges or diverges from the functional execution.
 */
Expected<ProbeInfo> probeMachine(CoreKind kind, const Workload &workload,
                                 const CampaignOptions &options);

/**
 * Derive trial @p index's coordinates from the campaign seed and the
 * probe cache (filled on demand). Exposed for tests and --replay-trial.
 */
class TrialSampler
{
  public:
    explicit TrialSampler(const CampaignOptions &options)
        : _options(options)
    {}

    Expected<TrialPoint> point(std::uint64_t index);

    /**
     * The probe backing @p point (cached; thread-safe — concurrent
     * campaign workers share one sampler).
     */
    Expected<ProbeInfo> probe(std::size_t core_index,
                              std::size_t workload_index);

  private:
    const CampaignOptions &_options;
    std::mutex _mutex;
    std::map<std::pair<std::size_t, std::size_t>, ProbeInfo> _probes;
};

/**
 * Run (or resume) a campaign. When options.journalPath names an
 * existing journal, its header must describe this exact campaign
 * (seed, trial count, cores, workloads, configuration); its finished
 * trials are kept and only the remainder runs. Every completed trial
 * is appended to the journal before the next one starts.
 */
Expected<CampaignSummary> runCampaign(const CampaignOptions &options);

/**
 * Re-run the single trial @p index of the campaign described by
 * @p options, in the same sandbox, and return its (deterministic)
 * result. The journal is neither read nor written.
 */
Expected<TrialResult> replayTrial(const CampaignOptions &options,
                                  std::uint64_t index);

} // namespace ruu::inject

#endif // RUU_INJECT_CAMPAIGN_HH
