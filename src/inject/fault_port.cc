#include "inject/fault_port.hh"

#include <cstring>

#include "common/logging.hh"

namespace ruu::inject
{

const char *
portClassName(PortClass cls)
{
    switch (cls) {
      case PortClass::Control: return "control";
      case PortClass::Tag: return "tag";
      case PortClass::Data: return "data";
      case PortClass::Address: return "address";
      case PortClass::Sequence: return "sequence";
    }
    return "?";
}

void
FaultPortSet::addRaw(std::string name, PortClass cls, void *base,
                     unsigned storage_bytes, unsigned bits,
                     std::uint64_t wrap)
{
    ruu_assert(base != nullptr, "port '%s' has no backing storage",
               name.c_str());
    ruu_assert(storage_bytes >= 1 && storage_bytes <= 8,
               "port '%s': storage of %u bytes", name.c_str(),
               storage_bytes);
    ruu_assert(bits >= 1 && bits <= storage_bytes * 8,
               "port '%s': %u bits in %u bytes", name.c_str(), bits,
               storage_bytes);
    FaultPort port;
    port.name = std::move(name);
    port.cls = cls;
    port.base = base;
    port.storageBytes = storage_bytes;
    port.bits = bits;
    port.wrap = wrap;
    _totalBits += bits;
    _imageBytes += storage_bytes;
    _ports.push_back(std::move(port));
}

const FaultPort &
FaultPortSet::port(std::size_t i) const
{
    ruu_assert(i < _ports.size(), "port index %zu of %zu", i,
               _ports.size());
    return _ports[i];
}

FaultPortSet::BitRef
FaultPortSet::locate(std::uint64_t flat_bit) const
{
    ruu_assert(flat_bit < _totalBits,
               "flat bit %llu of %llu registered",
               static_cast<unsigned long long>(flat_bit),
               static_cast<unsigned long long>(_totalBits));
    for (std::size_t i = 0; i < _ports.size(); ++i) {
        if (flat_bit < _ports[i].bits)
            return {i, static_cast<unsigned>(flat_bit)};
        flat_bit -= _ports[i].bits;
    }
    ruu_panic("port bit accounting is inconsistent");
}

std::uint64_t
FaultPortSet::readValue(std::size_t index) const
{
    const FaultPort &p = port(index);
    std::uint64_t value = 0;
    std::memcpy(&value, p.base, p.storageBytes);
    return value;
}

void
FaultPortSet::writeValue(std::size_t index, std::uint64_t value)
{
    const FaultPort &p = port(index);
    std::memcpy(p.base, &value, p.storageBytes);
}

FaultPortSet::FlipResult
FaultPortSet::flip(std::uint64_t flat_bit)
{
    BitRef ref = locate(flat_bit);
    const FaultPort &p = _ports[ref.port];
    FlipResult result;
    result.port = ref.port;
    result.bit = ref.bit;
    result.before = readValue(ref.port);
    std::uint64_t value = result.before ^ (std::uint64_t{1} << ref.bit);
    if (p.wrap)
        value %= p.wrap;
    result.after = value;
    writeValue(ref.port, value);
    return result;
}

std::vector<std::uint8_t>
FaultPortSet::captureImage() const
{
    std::vector<std::uint8_t> image;
    image.reserve(_imageBytes);
    for (const FaultPort &p : _ports) {
        const auto *bytes = static_cast<const std::uint8_t *>(p.base);
        image.insert(image.end(), bytes, bytes + p.storageBytes);
    }
    return image;
}

void
FaultPortSet::restoreImage(const std::vector<std::uint8_t> &image)
{
    ruu_assert(image.size() == _imageBytes,
               "restore image of %zu bytes into a %zu-byte layout",
               image.size(), _imageBytes);
    std::size_t offset = 0;
    for (const FaultPort &p : _ports) {
        std::memcpy(p.base, image.data() + offset, p.storageBytes);
        offset += p.storageBytes;
    }
}

std::size_t
FaultPortSet::firstMismatch(const std::vector<std::uint8_t> &image)
    const
{
    ruu_assert(image.size() == _imageBytes,
               "compare image of %zu bytes against a %zu-byte layout",
               image.size(), _imageBytes);
    std::size_t offset = 0;
    for (std::size_t i = 0; i < _ports.size(); ++i) {
        const FaultPort &p = _ports[i];
        if (std::memcmp(p.base, image.data() + offset, p.storageBytes))
            return i;
        offset += p.storageBytes;
    }
    return kNoMismatch;
}

std::uint64_t
FaultPortSet::layoutSignature() const
{
    std::uint64_t hash = 0xcbf29ce484222325ull; // FNV-1a offset basis
    auto mix = [&hash](std::uint64_t value) {
        for (unsigned i = 0; i < 8; ++i) {
            hash ^= (value >> (8 * i)) & 0xff;
            hash *= 0x100000001b3ull;
        }
    };
    for (const FaultPort &p : _ports) {
        for (char c : p.name) {
            hash ^= static_cast<std::uint8_t>(c);
            hash *= 0x100000001b3ull;
        }
        mix(static_cast<std::uint64_t>(p.cls));
        mix(p.storageBytes);
        mix(p.bits);
        mix(p.wrap);
    }
    mix(_ports.size());
    return hash;
}

std::string
FaultPortSet::describe(std::size_t index) const
{
    const FaultPort &p = port(index);
    return p.name + " (" + portClassName(p.cls) + ", " +
           std::to_string(p.bits) + (p.bits == 1 ? " bit)" : " bits)");
}

} // namespace ruu::inject
