#include "inject/sandbox.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

namespace ruu::inject
{

namespace
{

/** Write all of @p text to @p fd, retrying on EINTR. */
void
writeAll(int fd, const std::string &text)
{
    std::size_t done = 0;
    while (done < text.size()) {
        ssize_t n = ::write(fd, text.data() + done, text.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // parent gone; nothing useful left to do
        }
        done += static_cast<std::size_t>(n);
    }
}

/** Drain whatever is readable from @p fd into @p buffer. */
bool
drain(int fd, std::string &buffer)
{
    char chunk[4096];
    while (true) {
        ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n > 0) {
            buffer.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0)
            return false; // EOF
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;
        if (errno == EINTR)
            continue;
        return false;
    }
}

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/** Extract the payload of the last "<tag> ..." line in @p text. */
std::string
lastPayload(const std::string &text, const std::string &tag)
{
    std::string payload;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        std::size_t len =
            (eol == std::string::npos ? text.size() : eol) - pos;
        if (len > tag.size() + 1 &&
            text.compare(pos, tag.size(), tag) == 0 &&
            text[pos + tag.size()] == ' ')
            payload = text.substr(pos + tag.size() + 1,
                                  len - tag.size() - 1);
        if (eol == std::string::npos)
            break;
        pos = eol + 1;
    }
    return payload;
}

/**
 * Serializes pipe creation, fork, and the parent-side close of the
 * write ends. Without it, a child forked concurrently from another
 * thread inherits this sandbox's pipe write-ends and holds them open
 * for its whole trial — the parent then never sees EOF and a cleanly
 * finished trial can sit at poll() until the watchdog misfiles it as
 * hung. Inside the lock the only fd holders are this parent and this
 * child, so EOF tracks the child's lifetime exactly.
 */
std::mutex spawnMutex;

} // namespace

void
SandboxChannel::send(const std::string &tag,
                     const std::string &payload) const
{
    writeAll(_fd, tag + " " + payload + "\n");
}

SandboxOutcome
runSandboxed(const std::function<void(SandboxChannel &)> &body,
             unsigned timeoutMs)
{
    SandboxOutcome outcome;

    std::unique_lock<std::mutex> spawn(spawnMutex);
    int proto[2] = {-1, -1};
    int errp[2] = {-1, -1};
    if (::pipe(proto) != 0) {
        outcome.spawnError =
            std::string("pipe: ") + std::strerror(errno);
        return outcome;
    }
    if (::pipe(errp) != 0) {
        outcome.spawnError =
            std::string("pipe: ") + std::strerror(errno);
        ::close(proto[0]);
        ::close(proto[1]);
        return outcome;
    }

    pid_t pid = ::fork();
    if (pid < 0) {
        outcome.spawnError =
            std::string("fork: ") + std::strerror(errno);
        for (int fd : {proto[0], proto[1], errp[0], errp[1]})
            ::close(fd);
        return outcome;
    }

    if (pid == 0) {
        // Child: report on the protocol pipe, fold stdout into the
        // captured stderr stream, and never return to the caller.
        ::close(proto[0]);
        ::close(errp[0]);
        ::dup2(errp[1], 1);
        ::dup2(errp[1], 2);
        ::close(errp[1]);
        SandboxChannel channel(proto[1]);
        body(channel);
        ::close(proto[1]);
        ::_exit(0);
    }

    // Parent.
    ::close(proto[1]);
    ::close(errp[1]);
    spawn.unlock();
    setNonBlocking(proto[0]);
    setNonBlocking(errp[0]);

    std::string protoBuf;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeoutMs);
    bool timedOut = false;
    bool protoOpen = true;
    bool errOpen = true;

    while (protoOpen || errOpen) {
        auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
            timedOut = true;
            break;
        }
        int waitMs = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now)
                .count());
        if (waitMs < 1)
            waitMs = 1;

        struct pollfd fds[2];
        nfds_t nfds = 0;
        if (protoOpen) {
            fds[nfds].fd = proto[0];
            fds[nfds].events = POLLIN;
            ++nfds;
        }
        if (errOpen) {
            fds[nfds].fd = errp[0];
            fds[nfds].events = POLLIN;
            ++nfds;
        }
        int rc = ::poll(fds, nfds, waitMs);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (rc == 0)
            continue; // loop re-checks the deadline
        for (nfds_t i = 0; i < nfds; ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            if (fds[i].fd == proto[0]) {
                if (!drain(proto[0], protoBuf))
                    protoOpen = false;
            } else {
                if (!drain(errp[0], outcome.stderrText))
                    errOpen = false;
            }
        }
    }

    int status = 0;
    if (timedOut) {
        ::kill(pid, SIGKILL);
        // Final drain: the child may have reported just before the
        // deadline.
        drain(proto[0], protoBuf);
        drain(errp[0], outcome.stderrText);
    }
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    ::close(proto[0]);
    ::close(errp[0]);

    outcome.preLine = lastPayload(protoBuf, "PRE");
    outcome.resLine = lastPayload(protoBuf, "RES");

    if (timedOut) {
        outcome.status = SandboxOutcome::Status::TimedOut;
        outcome.signal = SIGKILL;
        return outcome;
    }
    if (WIFSIGNALED(status)) {
        outcome.status = SandboxOutcome::Status::Crashed;
        outcome.signal = WTERMSIG(status);
        return outcome;
    }
    outcome.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    if (outcome.exitCode == 0 && !outcome.resLine.empty())
        outcome.status = SandboxOutcome::Status::Reported;
    else
        outcome.status = SandboxOutcome::Status::Crashed;
    return outcome;
}

SandboxOutcome
runSandboxedWithRetry(const std::function<void(SandboxChannel &)> &body,
                      unsigned timeoutMs, const BackoffPolicy &policy,
                      unsigned *retriesOut)
{
    Backoff backoff(policy);
    SandboxOutcome out = runSandboxed(body, timeoutMs);
    while (out.status == SandboxOutcome::Status::SpawnFailed &&
           !backoff.exhausted()) {
        ::usleep(static_cast<useconds_t>(backoff.nextDelayUs()));
        out = runSandboxed(body, timeoutMs);
    }
    if (retriesOut)
        *retriesOut = backoff.attempts();
    return out;
}

} // namespace ruu::inject
