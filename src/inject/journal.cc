#include "inject/journal.hh"

#include <cctype>
#include <map>
#include <sstream>

#include "common/file.hh"

namespace ruu::inject
{

namespace
{

const char *const kJournalKind = "ruu-inject-journal";

/** Escape @p text for embedding in a JSON string literal. */
std::string
escapeJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** One parsed value of the flat object grammar. */
struct FlatValue
{
    bool isString = false;
    std::string text;          //!< unescaped string / number spelling
    std::uint64_t number = 0;  //!< valid when !isString
};

using FlatObject = std::map<std::string, FlatValue>;

/**
 * Parser for the one-line subset of JSON the journal emits: a single
 * object whose values are strings or unsigned integers.
 */
class FlatParser
{
  public:
    explicit FlatParser(const std::string &text) : _text(text) {}

    Expected<FlatObject> parse()
    {
        FlatObject object;
        skipSpace();
        if (!consume('{'))
            return fail("expected '{'");
        skipSpace();
        if (consume('}'))
            return object;
        while (true) {
            skipSpace();
            std::string key;
            if (auto r = parseString(key); !r)
                return r.error();
            skipSpace();
            if (!consume(':'))
                return fail("expected ':' after key '" + key + "'");
            skipSpace();
            FlatValue value;
            if (peek() == '"') {
                value.isString = true;
                if (auto r = parseString(value.text); !r)
                    return r.error();
            } else {
                if (auto r = parseNumber(value); !r)
                    return r.error();
            }
            object[key] = std::move(value);
            skipSpace();
            if (consume(','))
                continue;
            if (consume('}'))
                break;
            return fail("expected ',' or '}'");
        }
        skipSpace();
        if (_pos != _text.size())
            return fail("trailing text after object");
        return object;
    }

  private:
    char peek() const { return _pos < _text.size() ? _text[_pos] : '\0'; }
    bool consume(char c)
    {
        if (peek() != c)
            return false;
        ++_pos;
        return true;
    }
    void skipSpace()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
    }
    Error fail(const std::string &what) const
    {
        return Error(what + " at column " + std::to_string(_pos + 1));
    }

    Expected<bool> parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        while (true) {
            if (_pos >= _text.size())
                return fail("unterminated string");
            char c = _text[_pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_pos >= _text.size())
                return fail("unterminated escape");
            char e = _text[_pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (_pos + 4 > _text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = _text[_pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code |= h - 'A' + 10;
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // The journal only ever escapes control bytes, so a
                // single byte is enough to reconstruct them.
                out += static_cast<char>(code & 0xff);
                break;
              }
              default:
                return fail(std::string("unknown escape '\\") + e + "'");
            }
        }
    }

    Expected<bool> parseNumber(FlatValue &out)
    {
        std::size_t start = _pos;
        while (_pos < _text.size() &&
               std::isdigit(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
        if (_pos == start)
            return fail("expected a value");
        out.text = _text.substr(start, _pos - start);
        out.number = 0;
        for (char c : out.text) {
            if (out.number > (UINT64_MAX - (c - '0')) / 10)
                return fail("number out of range");
            out.number = out.number * 10 + (c - '0');
        }
        return true;
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

Expected<std::uint64_t>
getNumber(const FlatObject &object, const std::string &key)
{
    auto it = object.find(key);
    if (it == object.end())
        return Error("missing key '" + key + "'");
    if (it->second.isString)
        return Error("key '" + key + "' is a string, expected a number");
    return it->second.number;
}

Expected<std::string>
getString(const FlatObject &object, const std::string &key)
{
    auto it = object.find(key);
    if (it == object.end())
        return Error("missing key '" + key + "'");
    if (!it->second.isString)
        return Error("key '" + key + "' is a number, expected a string");
    return it->second.text;
}

std::vector<std::string>
splitCommas(const std::string &joined)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream in(joined);
    while (std::getline(in, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

std::string
joinCommas(const std::vector<std::string> &items)
{
    std::string out;
    for (const std::string &item : items) {
        if (!out.empty())
            out += ',';
        out += item;
    }
    return out;
}

} // namespace

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Masked: return "masked";
      case Outcome::DetectedInvariant: return "detected-invariant";
      case Outcome::DetectedOracle: return "detected-oracle";
      case Outcome::Trapped: return "trapped";
      case Outcome::Hung: return "hung";
      case Outcome::Sdc: return "sdc";
      case Outcome::Unclassified: return "unclassified";
    }
    return "unclassified";
}

Expected<Outcome>
outcomeFromName(const std::string &name)
{
    for (Outcome o : {Outcome::Masked, Outcome::DetectedInvariant,
                      Outcome::DetectedOracle, Outcome::Trapped,
                      Outcome::Hung, Outcome::Sdc, Outcome::Unclassified})
        if (name == outcomeName(o))
            return o;
    return Error("unknown outcome '" + name + "'");
}

std::string
headerToLine(const JournalHeader &header)
{
    std::ostringstream os;
    os << "{\"kind\": \"" << kJournalKind << "\""
       << ", \"version\": " << header.version
       << ", \"seed\": " << header.seed
       << ", \"trials\": " << header.trials
       << ", \"cores\": \"" << escapeJson(joinCommas(header.cores))
       << "\""
       << ", \"workloads\": \""
       << escapeJson(joinCommas(header.workloads)) << "\""
       << ", \"config\": \"" << escapeJson(header.config) << "\"}";
    return os.str();
}

std::string
trialToLine(const TrialResult &trial)
{
    std::ostringstream os;
    os << "{\"index\": " << trial.point.index
       << ", \"seed\": " << trial.point.seed
       << ", \"core\": \"" << escapeJson(trial.point.core) << "\""
       << ", \"workload\": \"" << escapeJson(trial.point.workload)
       << "\""
       << ", \"cycle\": " << trial.point.cycle
       << ", \"bit\": " << trial.point.bit
       << ", \"port\": \"" << escapeJson(trial.port) << "\""
       << ", \"before\": " << trial.before
       << ", \"after\": " << trial.after
       << ", \"outcome\": \"" << outcomeName(trial.outcome) << "\""
       << ", \"cycles\": " << trial.cycles
       << ", \"retries\": " << trial.retries
       << ", \"detail\": \"" << escapeJson(trial.detail) << "\"}";
    return os.str();
}

Expected<JournalHeader>
parseHeaderLine(const std::string &line)
{
    FlatParser parser(line);
    auto object = parser.parse();
    if (!object)
        return Error(object.error()).context("journal header");
    auto kind = getString(*object, "kind");
    if (!kind)
        return Error(kind.error()).context("journal header");
    if (*kind != kJournalKind)
        return Error("journal header: kind '" + *kind + "' is not '" +
                     kJournalKind + "'");
    JournalHeader header;
    auto version = getNumber(*object, "version");
    auto seed = getNumber(*object, "seed");
    auto trials = getNumber(*object, "trials");
    auto cores = getString(*object, "cores");
    auto workloads = getString(*object, "workloads");
    auto config = getString(*object, "config");
    for (const Error *e :
         {version.errorOrNull(), seed.errorOrNull(), trials.errorOrNull(),
          cores.errorOrNull(), workloads.errorOrNull(),
          config.errorOrNull()})
        if (e)
            return Error(e->message()).context("journal header");
    if (*version != 1)
        return Error("journal header: unsupported version " +
                     std::to_string(*version));
    header.version = *version;
    header.seed = *seed;
    header.trials = *trials;
    header.cores = splitCommas(*cores);
    header.workloads = splitCommas(*workloads);
    header.config = *config;
    return header;
}

Expected<TrialResult>
parseTrialLine(const std::string &line)
{
    FlatParser parser(line);
    auto object = parser.parse();
    if (!object)
        return object.error();
    TrialResult trial;
    auto index = getNumber(*object, "index");
    auto seed = getNumber(*object, "seed");
    auto core = getString(*object, "core");
    auto workload = getString(*object, "workload");
    auto cycle = getNumber(*object, "cycle");
    auto bit = getNumber(*object, "bit");
    auto port = getString(*object, "port");
    auto before = getNumber(*object, "before");
    auto after = getNumber(*object, "after");
    auto outcome = getString(*object, "outcome");
    auto cycles = getNumber(*object, "cycles");
    auto retries = getNumber(*object, "retries");
    auto detail = getString(*object, "detail");
    for (const Error *e :
         {index.errorOrNull(), seed.errorOrNull(), core.errorOrNull(),
          workload.errorOrNull(), cycle.errorOrNull(), bit.errorOrNull(),
          port.errorOrNull(), before.errorOrNull(), after.errorOrNull(),
          outcome.errorOrNull(), cycles.errorOrNull(),
          retries.errorOrNull(), detail.errorOrNull()})
        if (e)
            return Error(e->message());
    auto parsed = outcomeFromName(*outcome);
    if (!parsed)
        return parsed.error();
    trial.point.index = *index;
    trial.point.seed = *seed;
    trial.point.core = *core;
    trial.point.workload = *workload;
    trial.point.cycle = *cycle;
    trial.point.bit = *bit;
    trial.port = *port;
    trial.before = *before;
    trial.after = *after;
    trial.outcome = *parsed;
    trial.cycles = *cycles;
    trial.retries = *retries;
    trial.detail = *detail;
    return trial;
}

Expected<JournalContents>
readJournal(const std::string &path)
{
    auto text = readTextFile(path);
    if (!text)
        return Error(text.error()).context("journal");
    JournalContents contents;
    contents.validBytes = text->size();
    std::size_t lineNo = 0;
    bool sawHeader = false;
    struct RawLine
    {
        std::size_t number;
        std::size_t start;
        std::string text;
    };
    // Collect raw trial lines first so "last line" is well defined
    // even with trailing blank lines.
    std::vector<RawLine> trialLines;
    std::size_t pos = 0;
    while (pos < text->size()) {
        std::size_t eol = text->find('\n', pos);
        std::size_t end = eol == std::string::npos ? text->size() : eol;
        std::string line = text->substr(pos, end - pos);
        std::size_t start = pos;
        pos = eol == std::string::npos ? text->size() : eol + 1;
        ++lineNo;
        if (line.empty())
            continue;
        if (!sawHeader) {
            auto header = parseHeaderLine(line);
            if (!header)
                return Error(header.error())
                    .context("'" + path + "' line " +
                             std::to_string(lineNo));
            contents.header = *header;
            sawHeader = true;
            continue;
        }
        trialLines.push_back({lineNo, start, std::move(line)});
    }
    if (!sawHeader)
        return Error("journal '" + path + "' has no header line");
    for (std::size_t i = 0; i < trialLines.size(); ++i) {
        auto trial = parseTrialLine(trialLines[i].text);
        if (!trial) {
            if (i + 1 == trialLines.size()) {
                // A torn final line is the expected signature of a
                // campaign killed mid-write; drop it and resume.
                contents.tornTail = true;
                contents.validBytes = trialLines[i].start;
                break;
            }
            return Error(trial.error())
                .context("'" + path + "' line " +
                         std::to_string(trialLines[i].number));
        }
        contents.trials.push_back(*trial);
    }
    return contents;
}

Expected<bool>
JournalWriter::create(const std::string &path, const JournalHeader &header)
{
    _out.open(path, std::ios::trunc);
    if (!_out)
        return Error("cannot open journal '" + path + "' for writing");
    _path = path;
    _out << headerToLine(header) << '\n' << std::flush;
    if (!_out)
        return Error("write error on journal '" + path + "'");
    return true;
}

Expected<bool>
JournalWriter::append(const std::string &path)
{
    // A SIGKILLed campaign can leave a torn, newline-less final line;
    // start appends on a fresh line so the fragment stays isolated.
    bool needsNewline = false;
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        if (in && in.tellg() > 0) {
            in.seekg(-1, std::ios::end);
            needsNewline = in.get() != '\n';
        }
    }
    _out.open(path, std::ios::app);
    if (!_out)
        return Error("cannot open journal '" + path + "' for appending");
    _path = path;
    if (needsNewline)
        _out << '\n' << std::flush;
    return true;
}

Expected<bool>
JournalWriter::add(const TrialResult &trial)
{
    if (!_out.is_open())
        return Error("journal writer is not open");
    _out << trialToLine(trial) << '\n' << std::flush;
    if (!_out)
        return Error("write error on journal '" + _path + "'");
    return true;
}

} // namespace ruu::inject
