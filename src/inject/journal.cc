#include "inject/journal.hh"

#include <fstream>
#include <sstream>

#include "common/file.hh"
#include "common/flat_json.hh"

namespace ruu::inject
{

namespace
{

const char *const kJournalKind = "ruu-inject-journal";

// The flat one-line JSON grammar (one object per line, string and
// unsigned-integer values only) lives in common/flat_json.hh; the
// journal format pinned it and the serve subsystem shares it.
using flat::escape;
using flat::getNumber;
using flat::getString;

std::vector<std::string>
splitCommas(const std::string &joined)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream in(joined);
    while (std::getline(in, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

std::string
joinCommas(const std::vector<std::string> &items)
{
    std::string out;
    for (const std::string &item : items) {
        if (!out.empty())
            out += ',';
        out += item;
    }
    return out;
}

} // namespace

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Masked: return "masked";
      case Outcome::DetectedInvariant: return "detected-invariant";
      case Outcome::DetectedOracle: return "detected-oracle";
      case Outcome::Trapped: return "trapped";
      case Outcome::Hung: return "hung";
      case Outcome::Sdc: return "sdc";
      case Outcome::Unclassified: return "unclassified";
    }
    return "unclassified";
}

Expected<Outcome>
outcomeFromName(const std::string &name)
{
    for (Outcome o : {Outcome::Masked, Outcome::DetectedInvariant,
                      Outcome::DetectedOracle, Outcome::Trapped,
                      Outcome::Hung, Outcome::Sdc, Outcome::Unclassified})
        if (name == outcomeName(o))
            return o;
    return Error("unknown outcome '" + name + "'");
}

std::string
headerToLine(const JournalHeader &header)
{
    std::ostringstream os;
    os << "{\"kind\": \"" << kJournalKind << "\""
       << ", \"version\": " << header.version
       << ", \"seed\": " << header.seed
       << ", \"trials\": " << header.trials
       << ", \"cores\": \"" << escape(joinCommas(header.cores))
       << "\""
       << ", \"workloads\": \""
       << escape(joinCommas(header.workloads)) << "\""
       << ", \"config\": \"" << escape(header.config) << "\"}";
    return os.str();
}

std::string
trialToLine(const TrialResult &trial)
{
    std::ostringstream os;
    os << "{\"index\": " << trial.point.index
       << ", \"seed\": " << trial.point.seed
       << ", \"core\": \"" << escape(trial.point.core) << "\""
       << ", \"workload\": \"" << escape(trial.point.workload)
       << "\""
       << ", \"cycle\": " << trial.point.cycle
       << ", \"bit\": " << trial.point.bit
       << ", \"port\": \"" << escape(trial.port) << "\""
       << ", \"before\": " << trial.before
       << ", \"after\": " << trial.after
       << ", \"outcome\": \"" << outcomeName(trial.outcome) << "\""
       << ", \"cycles\": " << trial.cycles
       << ", \"retries\": " << trial.retries
       << ", \"detail\": \"" << escape(trial.detail) << "\"}";
    return os.str();
}

Expected<JournalHeader>
parseHeaderLine(const std::string &line)
{
    auto object = flat::parseObject(line);
    if (!object)
        return Error(object.error()).context("journal header");
    auto kind = getString(*object, "kind");
    if (!kind)
        return Error(kind.error()).context("journal header");
    if (*kind != kJournalKind)
        return Error("journal header: kind '" + *kind + "' is not '" +
                     kJournalKind + "'");
    JournalHeader header;
    auto version = getNumber(*object, "version");
    auto seed = getNumber(*object, "seed");
    auto trials = getNumber(*object, "trials");
    auto cores = getString(*object, "cores");
    auto workloads = getString(*object, "workloads");
    auto config = getString(*object, "config");
    for (const Error *e :
         {version.errorOrNull(), seed.errorOrNull(), trials.errorOrNull(),
          cores.errorOrNull(), workloads.errorOrNull(),
          config.errorOrNull()})
        if (e)
            return Error(e->message()).context("journal header");
    if (*version != 1)
        return Error("journal header: unsupported version " +
                     std::to_string(*version));
    header.version = *version;
    header.seed = *seed;
    header.trials = *trials;
    header.cores = splitCommas(*cores);
    header.workloads = splitCommas(*workloads);
    header.config = *config;
    return header;
}

Expected<TrialResult>
parseTrialLine(const std::string &line)
{
    auto object = flat::parseObject(line);
    if (!object)
        return object.error();
    TrialResult trial;
    auto index = getNumber(*object, "index");
    auto seed = getNumber(*object, "seed");
    auto core = getString(*object, "core");
    auto workload = getString(*object, "workload");
    auto cycle = getNumber(*object, "cycle");
    auto bit = getNumber(*object, "bit");
    auto port = getString(*object, "port");
    auto before = getNumber(*object, "before");
    auto after = getNumber(*object, "after");
    auto outcome = getString(*object, "outcome");
    auto cycles = getNumber(*object, "cycles");
    auto retries = getNumber(*object, "retries");
    auto detail = getString(*object, "detail");
    for (const Error *e :
         {index.errorOrNull(), seed.errorOrNull(), core.errorOrNull(),
          workload.errorOrNull(), cycle.errorOrNull(), bit.errorOrNull(),
          port.errorOrNull(), before.errorOrNull(), after.errorOrNull(),
          outcome.errorOrNull(), cycles.errorOrNull(),
          retries.errorOrNull(), detail.errorOrNull()})
        if (e)
            return Error(e->message());
    auto parsed = outcomeFromName(*outcome);
    if (!parsed)
        return parsed.error();
    trial.point.index = *index;
    trial.point.seed = *seed;
    trial.point.core = *core;
    trial.point.workload = *workload;
    trial.point.cycle = *cycle;
    trial.point.bit = *bit;
    trial.port = *port;
    trial.before = *before;
    trial.after = *after;
    trial.outcome = *parsed;
    trial.cycles = *cycles;
    trial.retries = *retries;
    trial.detail = *detail;
    return trial;
}

Expected<JournalContents>
readJournal(const std::string &path)
{
    auto text = readTextFile(path);
    if (!text)
        return Error(text.error()).context("journal");
    JournalContents contents;
    contents.validBytes = text->size();
    std::size_t lineNo = 0;
    bool sawHeader = false;
    struct RawLine
    {
        std::size_t number;
        std::size_t start;
        std::string text;
    };
    // Collect raw trial lines first so "last line" is well defined
    // even with trailing blank lines.
    std::vector<RawLine> trialLines;
    std::size_t pos = 0;
    while (pos < text->size()) {
        std::size_t eol = text->find('\n', pos);
        std::size_t end = eol == std::string::npos ? text->size() : eol;
        std::string line = text->substr(pos, end - pos);
        std::size_t start = pos;
        pos = eol == std::string::npos ? text->size() : eol + 1;
        ++lineNo;
        if (line.empty())
            continue;
        if (!sawHeader) {
            auto header = parseHeaderLine(line);
            if (!header)
                return Error(header.error())
                    .context("'" + path + "' line " +
                             std::to_string(lineNo));
            contents.header = *header;
            sawHeader = true;
            continue;
        }
        trialLines.push_back({lineNo, start, std::move(line)});
    }
    if (!sawHeader)
        return Error("journal '" + path + "' has no header line");
    for (std::size_t i = 0; i < trialLines.size(); ++i) {
        auto trial = parseTrialLine(trialLines[i].text);
        if (!trial) {
            if (i + 1 == trialLines.size()) {
                // A torn final line is the expected signature of a
                // campaign killed mid-write; drop it and resume.
                contents.tornTail = true;
                contents.validBytes = trialLines[i].start;
                break;
            }
            return Error(trial.error())
                .context("'" + path + "' line " +
                         std::to_string(trialLines[i].number));
        }
        contents.trials.push_back(*trial);
    }
    return contents;
}

Expected<bool>
JournalWriter::create(const std::string &path, const JournalHeader &header)
{
    if (auto opened = _file.create(path); !opened)
        return Error(opened.error()).context("journal");
    if (auto wrote = _file.appendLine(headerToLine(header)); !wrote)
        return Error(wrote.error()).context("journal");
    return true;
}

Expected<bool>
JournalWriter::append(const std::string &path)
{
    // A SIGKILLed campaign can leave a torn, newline-less final line;
    // start appends on a fresh line so the fragment stays isolated.
    bool needsNewline = false;
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        if (in && in.tellg() > 0) {
            in.seekg(-1, std::ios::end);
            needsNewline = in.get() != '\n';
        }
    }
    if (auto opened = _file.append(path); !opened)
        return Error(opened.error()).context("journal");
    if (needsNewline)
        if (auto isolated = _file.appendText("\n"); !isolated)
            return Error(isolated.error()).context("journal");
    return true;
}

Expected<bool>
JournalWriter::add(const TrialResult &trial)
{
    if (!_file.isOpen())
        return Error("journal writer is not open");
    if (auto wrote = _file.appendLine(trialToLine(trial)); !wrote)
        return Error(wrote.error()).context("journal");
    return true;
}

} // namespace ruu::inject
