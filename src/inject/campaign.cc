#include "inject/campaign.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "arch/executor.hh"
#include "inject/sandbox.hh"
#include "oracle/commit_oracle.hh"
#include "par/ordered.hh"
#include "sim/json.hh"

namespace ruu::inject
{

namespace
{

/** Hex encoding of a byte image (pre-fault snapshot transport). */
std::string
toHex(const std::vector<std::uint8_t> &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (std::uint8_t b : bytes) {
        out += digits[b >> 4];
        out += digits[b & 0xf];
    }
    return out;
}

/** Keep only the last @p keep characters of @p text. */
std::string
tail(const std::string &text, std::size_t keep)
{
    if (text.size() <= keep)
        return text;
    return "..." + text.substr(text.size() - keep);
}

/** The campaign identity string pinned in the journal header. */
std::string
configSignature(const CampaignOptions &options)
{
    std::string sig = configToJson(options.config);
    if (options.modelIBuffers)
        sig += " +ibuf";
    return sig;
}

JournalHeader
makeHeader(const CampaignOptions &options)
{
    JournalHeader header;
    header.seed = options.seed;
    header.trials = options.trials;
    for (CoreKind kind : options.cores)
        header.cores.push_back(coreKindName(kind));
    for (const Workload &workload : options.workloads)
        header.workloads.push_back(workload.name);
    header.config = configSignature(options);
    return header;
}

Expected<bool>
validateOptions(const CampaignOptions &options)
{
    if (options.cores.empty())
        return Error("campaign has no cores");
    if (options.workloads.empty())
        return Error("campaign has no workloads");
    if (options.trials == 0)
        return Error("campaign has no trials");
    return true;
}

/**
 * The trial body run inside the sandboxed child: build the machine,
 * arm the injector, run, classify with the detector stack, report.
 */
void
runTrialChild(const CampaignOptions &options, CoreKind kind,
              const Workload &workload, const TrialPoint &point,
              const ProbeInfo &probe, SandboxChannel &channel)
{
    UarchConfig config = options.config;
    // Trials always run with the invariant checker armed: it is one
    // of the campaign's detectors.
    config.checkInvariants = true;
    auto core = makeCore(kind, config);

    RunOptions opts;
    opts.modelIBuffers = options.modelIBuffers;
    // Simulation watchdog: generous multiple of the fault-free run,
    // so a fault-induced livelock classifies as Hung with a pipeline
    // dump instead of eating the host timeout.
    opts.maxCycles = probe.refCycles * 10 + 10'000;

    oracle::CommitOracle oracle(workload.trace(), *core, opts);
    opts.observer = &oracle;

    InjectorTap tap(point.cycle, point.bit);
    opts.tap = &tap;

    TrialResult res;
    res.point = point;
    tap.onFire = [&](FaultPortSet &ports,
                     const FaultPortSet::FlipResult &flip,
                     const std::vector<std::uint8_t> &pre) {
        res.port = ports.describe(flip.port) + " bit " +
                   std::to_string(flip.bit);
        res.before = flip.before;
        res.after = flip.after;
        // PRE record: the injection coordinates plus the pre-fault
        // snapshot, journal-line format, written before the flipped
        // machine advances a single cycle — a child that crashes or
        // hangs from here on still leaves them behind.
        TrialResult pre_record = res;
        pre_record.detail = "pre-fault snapshot cycle=" +
                            std::to_string(point.cycle) + " layout=" +
                            std::to_string(ports.layoutSignature()) +
                            " image=" + toHex(pre);
        channel.send("PRE", trialToLine(pre_record));
    };

    RunResult run = core->run(workload.trace(), opts);
    res.cycles = run.cycles;

    if (!tap.fired()) {
        // The sampler bounds cycles by the probe's lastTapCycle, so
        // this is a campaign bug; surface it as unclassified.
        res.outcome = Outcome::Unclassified;
        res.detail = "injection cycle " + std::to_string(point.cycle) +
                     " was never reached (run ended at cycle " +
                     std::to_string(run.cycles) + ")";
        channel.send("RES", trialToLine(res));
        return;
    }

    if (run.wedged) {
        res.outcome = Outcome::Hung;
        res.detail = run.diagnostic + "\npre-fault snapshot cycle=" +
                     std::to_string(tap.firedAt()) + " layout=" +
                     std::to_string(tap.layoutSignature()) + " image=" +
                     toHex(tap.preImage());
        channel.send("RES", trialToLine(res));
        return;
    }

    bool midOk = oracle.ok();
    bool finOk = oracle.finish(run);
    if (!midOk) {
        res.outcome = Outcome::DetectedOracle;
        res.detail = oracle.report();
    } else if (run.interrupted) {
        res.outcome = Outcome::Trapped;
        res.detail = std::string(faultName(run.fault)) + " at seq " +
                     std::to_string(run.faultSeq) + ", pc " +
                     std::to_string(run.faultPc);
    } else if (!matchesFunctional(run, workload.func)) {
        res.outcome = Outcome::Sdc;
        res.detail = finOk ? "final architectural state differs from "
                             "the functional run"
                           : oracle.report();
    } else if (!finOk) {
        res.outcome = Outcome::DetectedOracle;
        res.detail = oracle.report();
    } else {
        res.outcome = Outcome::Masked;
        if (run.cycles != probe.refCycles)
            res.detail = "timing changed: " +
                         std::to_string(run.cycles) + " vs " +
                         std::to_string(probe.refCycles) +
                         " reference cycles";
    }
    channel.send("RES", trialToLine(res));
}

/** Run one trial in the sandbox, with bounded spawn retries. */
Expected<TrialResult>
runOneTrial(const CampaignOptions &options, CoreKind kind,
            const Workload &workload, const TrialPoint &point,
            const ProbeInfo &probe)
{
    // Spawn failure is transient host pressure; wait it out on the
    // shared backoff schedule, jitter-seeded by the trial so parallel
    // workers don't hammer in lockstep.
    BackoffPolicy policy;
    policy.maxRetries = options.maxRetries;
    policy.seed = point.seed;
    unsigned retries = 0;
    SandboxOutcome out = runSandboxedWithRetry(
        [&](SandboxChannel &channel) {
            runTrialChild(options, kind, workload, point, probe,
                          channel);
        },
        options.timeoutMs, policy, &retries);
    if (out.status == SandboxOutcome::Status::SpawnFailed)
        return Error("trial " + std::to_string(point.index) +
                     ": sandbox spawn failed after " +
                     std::to_string(retries + 1) + " attempts: " +
                     out.spawnError);

    // Whatever the child managed to report before dying carries the
    // injection coordinates (PRE) or the full classification (RES).
    TrialResult res;
    res.point = point;
    if (!out.preLine.empty()) {
        if (auto pre = parseTrialLine(out.preLine))
            res = *pre;
    }
    res.retries = retries;

    switch (out.status) {
      case SandboxOutcome::Status::Reported: {
        auto parsed = parseTrialLine(out.resLine);
        if (!parsed) {
            res.outcome = Outcome::Unclassified;
            res.detail = "unparseable child report (" +
                         parsed.error().message() + "): " +
                         tail(out.resLine, 256);
            break;
        }
        std::uint64_t kept_retries = res.retries;
        res = *parsed;
        res.retries = kept_retries;
        break;
      }
      case SandboxOutcome::Status::Crashed: {
        // Fail-stop containment: assertion aborts and faulted-slot
        // dereferences are the invariant layer doing its job.
        res.outcome = Outcome::DetectedInvariant;
        std::string how =
            out.signal ? std::string("signal ") +
                             strsignal(out.signal)
                       : "exit code " + std::to_string(out.exitCode);
        res.detail = "trial process died (" + how + "): " +
                     tail(out.stderrText, 2000);
        break;
      }
      case SandboxOutcome::Status::TimedOut:
        res.outcome = Outcome::Hung;
        res.detail = "host watchdog (" +
                     std::to_string(options.timeoutMs) +
                     " ms) killed the trial; " +
                     (res.detail.empty() ? std::string("no PRE record")
                                         : res.detail) +
                     (out.stderrText.empty()
                          ? ""
                          : "; stderr: " + tail(out.stderrText, 1000));
        break;
      case SandboxOutcome::Status::SpawnFailed:
        break; // unreachable (handled above)
    }
    return res;
}

} // namespace

std::uint64_t
splitmix64(std::uint64_t &state)
{
    return par::splitmix64(state);
}

std::uint64_t
trialSeed(std::uint64_t seed, std::uint64_t index)
{
    // par::jobSeed is the same derivation; the journal format pins it.
    return par::jobSeed(seed, index);
}

void
ProbeTap::onRunStart(FaultPortSet &ports)
{
    _info.totalBits = ports.totalBits();
    _info.portCount = ports.size();
    _info.layoutSignature = ports.layoutSignature();
}

void
ProbeTap::onCycle(Cycle cycle, FaultPortSet &ports)
{
    (void)ports;
    _info.lastTapCycle = cycle;
}

void
InjectorTap::onRunStart(FaultPortSet &ports)
{
    _layout = ports.layoutSignature();
}

void
InjectorTap::onCycle(Cycle cycle, FaultPortSet &ports)
{
    if (_fired || cycle < _target)
        return;
    _fired = true;
    _firedAt = cycle;
    _pre = ports.captureImage();
    _flip = ports.flip(_bit % ports.totalBits());
    _portDesc = ports.describe(_flip.port);
    if (onFire)
        onFire(ports, _flip, _pre);
}

std::map<Outcome, std::uint64_t>
tallyOutcomes(const std::vector<TrialResult> &trials)
{
    std::map<Outcome, std::uint64_t> tally;
    for (const TrialResult &trial : trials)
        ++tally[trial.outcome];
    return tally;
}

Expected<ProbeInfo>
probeMachine(CoreKind kind, const Workload &workload,
             const CampaignOptions &options)
{
    UarchConfig config = options.config;
    config.checkInvariants = true;
    auto core = makeCore(kind, config);

    ProbeTap tap;
    RunOptions opts;
    opts.modelIBuffers = options.modelIBuffers;
    opts.tap = &tap;
    RunResult run = core->run(workload.trace(), opts);
    if (run.wedged)
        return Error(std::string("reference run of ") +
                     coreKindName(kind) + " on " + workload.name +
                     " wedged");
    if (!matchesFunctional(run, workload.func))
        return Error(std::string("reference run of ") +
                     coreKindName(kind) + " on " + workload.name +
                     " diverges from the functional execution");
    ProbeInfo info = tap.info();
    info.refCycles = run.cycles;
    if (info.totalBits == 0)
        return Error(std::string("core ") + coreKindName(kind) +
                     " registered no fault ports");
    return info;
}

Expected<ProbeInfo>
TrialSampler::probe(std::size_t core_index, std::size_t workload_index)
{
    // Single-flight under the lock: concurrent workers asking for the
    // same (core, workload) wait for one deterministic reference run
    // instead of racing duplicates.
    std::lock_guard<std::mutex> lock(_mutex);
    auto key = std::make_pair(core_index, workload_index);
    auto it = _probes.find(key);
    if (it != _probes.end())
        return it->second;
    auto info = probeMachine(_options.cores[core_index],
                             _options.workloads[workload_index],
                             _options);
    if (!info)
        return info.error();
    _probes[key] = *info;
    return *info;
}

Expected<TrialPoint>
TrialSampler::point(std::uint64_t index)
{
    TrialPoint point;
    point.index = index;
    point.seed = trialSeed(_options.seed, index);
    std::uint64_t state = point.seed;
    std::size_t core_index = splitmix64(state) % _options.cores.size();
    std::size_t workload_index =
        splitmix64(state) % _options.workloads.size();
    auto info = probe(core_index, workload_index);
    if (!info)
        return info.error();
    // Bound the cycle by the last cycle the tap actually observes, so
    // every sampled point fires.
    point.cycle = splitmix64(state) % (info->lastTapCycle + 1);
    point.bit = splitmix64(state) % info->totalBits;
    point.core = coreKindName(_options.cores[core_index]);
    point.workload = _options.workloads[workload_index].name;
    return point;
}

Expected<CampaignSummary>
runCampaign(const CampaignOptions &options)
{
    if (auto valid = validateOptions(options); !valid)
        return valid.error();

    CampaignSummary summary;
    summary.header = makeHeader(options);

    std::vector<bool> done(options.trials, false);
    std::vector<TrialResult> results(options.trials);

    JournalWriter writer;
    bool journalExists = false;
    if (!options.journalPath.empty()) {
        std::ifstream probe_stream(options.journalPath);
        journalExists = probe_stream.good();
    }
    if (journalExists) {
        auto journal = readJournal(options.journalPath);
        if (!journal)
            return Error(journal.error()).context("resume");
        const JournalHeader &h = journal->header;
        if (h.seed != summary.header.seed ||
            h.trials != summary.header.trials ||
            h.cores != summary.header.cores ||
            h.workloads != summary.header.workloads ||
            h.config != summary.header.config)
            return Error("journal '" + options.journalPath +
                         "' describes a different campaign (seed, "
                         "trials, cores, workloads, or configuration "
                         "differ)");
        for (const TrialResult &trial : journal->trials) {
            if (trial.point.index >= options.trials)
                return Error("journal '" + options.journalPath +
                             "' has out-of-range trial index " +
                             std::to_string(trial.point.index));
            if (!done[trial.point.index])
                ++summary.resumed;
            done[trial.point.index] = true;
            results[trial.point.index] = trial;
        }
        if (journal->tornTail &&
            ::truncate(options.journalPath.c_str(),
                       static_cast<off_t>(journal->validBytes)) != 0)
            return Error("cannot drop the torn tail of journal '" +
                         options.journalPath + "': " +
                         std::strerror(errno));
        if (auto opened = writer.append(options.journalPath); !opened)
            return opened.error();
    } else if (!options.journalPath.empty()) {
        if (auto created =
                writer.create(options.journalPath, summary.header);
            !created)
            return created.error();
    }

    TrialSampler sampler(options);
    auto start = std::chrono::steady_clock::now();

    // The trials still to run, in index order. A serial campaign walks
    // this list front to back and stops after stopAfter new trials, so
    // the parallel engine dispatches exactly that prefix.
    std::vector<std::uint64_t> pending;
    for (std::uint64_t index = 0; index < options.trials; ++index)
        if (!done[index])
            pending.push_back(index);
    std::size_t torun = pending.size();
    if (options.stopAfter && options.stopAfter < torun) {
        torun = options.stopAfter;
        summary.stoppedEarly = true;
    }

    // Ordered streaming commit (par/ordered.hh): workers finish trials
    // in scheduling order, but journal lines, progress callbacks and
    // error propagation all follow pending-list (= trial index) order,
    // so the journal ends exactly where the serial campaign's would.
    par::OrderedCommitter<TrialResult> committer(
        [&](std::size_t pos, const TrialResult &ready) -> Expected<bool> {
            std::uint64_t index = pending[pos];
            if (writer.isOpen())
                if (auto wrote = writer.add(ready); !wrote)
                    return wrote.error();
            results[index] = ready;
            done[index] = true;
            ++summary.executed;
            if (options.progress)
                options.progress(summary.resumed + summary.executed,
                                 options.trials, ready);
            return true;
        });

    par::Pool pool(options.jobs);
    par::forEachIndexed(
        options.jobs > 1 ? &pool : nullptr, torun,
        [&](std::size_t pos, unsigned) {
            // A campaign-fatal error at an earlier position makes
            // this trial unjournalable; don't burn a sandbox on it.
            if (committer.doomed(pos))
                return;
            std::uint64_t index = pending[pos];
            auto point = sampler.point(index);
            if (!point) {
                committer.fail(pos,
                               Error(point.error())
                                   .context("trial " +
                                            std::to_string(index)));
                return;
            }
            std::size_t core_index = 0, workload_index = 0;
            {
                // Re-derive the indices the sampler chose (same
                // stream).
                std::uint64_t state = point->seed;
                core_index =
                    splitmix64(state) % options.cores.size();
                workload_index =
                    splitmix64(state) % options.workloads.size();
            }
            auto probe = sampler.probe(core_index, workload_index);
            if (!probe) {
                committer.fail(pos, Error(probe.error()));
                return;
            }
            auto trial = runOneTrial(options,
                                     options.cores[core_index],
                                     options.workloads[workload_index],
                                     *point, *probe);
            if (!trial) {
                committer.fail(pos, Error(trial.error()));
                return;
            }
            committer.commit(pos, std::move(*trial));
        });

    if (committer.failed())
        return committer.error();

    summary.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    for (std::uint64_t index = 0; index < options.trials; ++index)
        if (done[index])
            summary.trials.push_back(results[index]);
    return summary;
}

Expected<TrialResult>
replayTrial(const CampaignOptions &options, std::uint64_t index)
{
    if (auto valid = validateOptions(options); !valid)
        return valid.error();
    if (index >= options.trials)
        return Error("trial index " + std::to_string(index) +
                     " is out of range (campaign has " +
                     std::to_string(options.trials) + " trials)");
    TrialSampler sampler(options);
    auto point = sampler.point(index);
    if (!point)
        return point.error();
    std::uint64_t state = point->seed;
    std::size_t core_index = splitmix64(state) % options.cores.size();
    std::size_t workload_index =
        splitmix64(state) % options.workloads.size();
    auto probe = sampler.probe(core_index, workload_index);
    if (!probe)
        return probe.error();
    return runOneTrial(options, options.cores[core_index],
                       options.workloads[workload_index], *point,
                       *probe);
}

} // namespace ruu::inject
