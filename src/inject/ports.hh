/**
 * @file
 * Port-registration helpers shared by the timing cores.
 *
 * The out-of-order cores all build their pipelines from InflightOp
 * reservation-station entries plus a few cursors; these helpers give
 * every core the same port naming and the same safety rules (index-like
 * fields wrap to their structure's capacity, host pointers are never
 * registered).
 */

#ifndef RUU_INJECT_PORTS_HH
#define RUU_INJECT_PORTS_HH

#include <string>

#include "core/ooo_support.hh"
#include "inject/fault_port.hh"

namespace ruu::inject
{

/**
 * Register the flippable fields of one reservation-station entry.
 * @p dest_tag_wrap is nonzero for cores whose destination tag indexes
 * a structure (the Tomasulo Tag Unit): a flipped tag then lands on a
 * real slot instead of outside the array. The `rec` pointer and the
 * `loadReg` host index are deliberately not ports.
 */
inline void
exposeInflightOp(FaultPortSet &ports, const std::string &prefix,
                 InflightOp &op, std::uint64_t dest_tag_wrap = 0)
{
    ports.addFlag(prefix + ".valid", op.valid);
    ports.add(prefix + ".seq", PortClass::Sequence, op.seq, 32);
    ports.add(prefix + ".destTag", PortClass::Tag, op.destTag, 32,
              dest_tag_wrap);
    for (unsigned s = 0; s < 2; ++s) {
        std::string sp = prefix + ".src" + std::to_string(s);
        ports.addFlag(sp + ".needed", op.src[s].needed);
        ports.addFlag(sp + ".ready", op.src[s].ready);
        ports.add(sp + ".tag", PortClass::Tag, op.src[s].tag, 32);
    }
    ports.addFlag(prefix + ".isLoad", op.isLoad);
    ports.addFlag(prefix + ".isStore", op.isStore);
    ports.addFlag(prefix + ".addrResolved", op.addrResolved);
    ports.addFlag(prefix + ".forwarded", op.forwarded);
    ports.addFlag(prefix + ".fwdDataReady", op.fwdDataReady);
    ports.add(prefix + ".fwdTag", PortClass::Tag, op.fwdTag, 32);
    ports.addFlag(prefix + ".dispatched", op.dispatched);
    ports.addFlag(prefix + ".executed", op.executed);
    ports.addFlag(prefix + ".faulted", op.faulted);
    ports.addFlag(prefix + ".lrReleased", op.lrReleased);
    ports.add(prefix + ".completeCycle", PortClass::Sequence,
              op.completeCycle, 32);
}

/** Register a queue cursor that must stay inside [0, wrap). */
inline void
exposeCursor(FaultPortSet &ports, const std::string &name,
             unsigned &value, std::uint64_t wrap)
{
    ports.add(name, PortClass::Sequence, value, 32, wrap);
}

} // namespace ruu::inject

#endif // RUU_INJECT_PORTS_HH
