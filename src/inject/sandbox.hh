/**
 * @file
 * Crash-contained trial execution.
 *
 * A single bit flip can legitimately make the machine dereference a
 * cleared in-flight slot (SIGSEGV), trip a ruu_assert (SIGABRT), or
 * grind forever. The campaign must classify those outcomes, not die of
 * them, so every trial runs in a forked child. The child reports over
 * a pipe with a two-line protocol:
 *
 *   PRE <flat json>   written the moment the fault is armed (port,
 *                     values, pre-fault snapshot) — so a child that
 *                     subsequently crashes or is killed still leaves
 *                     the injection coordinates behind;
 *   RES <flat json>   the finished TrialResult (journal line format).
 *
 * The parent drains the pipe while enforcing a wall-clock deadline;
 * on expiry the child is SIGKILLed. The child's stderr is captured on
 * a second pipe so assertion text becomes the trial's diagnostic.
 */

#ifndef RUU_INJECT_SANDBOX_HH
#define RUU_INJECT_SANDBOX_HH

#include <functional>
#include <string>

#include "common/backoff.hh"

namespace ruu::inject
{

/** The child's half of the reporting pipe. */
class SandboxChannel
{
  public:
    explicit SandboxChannel(int fd) : _fd(fd) {}

    /** Write one "<tag> <payload>" protocol line. */
    void send(const std::string &tag, const std::string &payload) const;

  private:
    int _fd;
};

/** What the parent observed of one sandboxed trial. */
struct SandboxOutcome
{
    enum class Status
    {
        Reported,    //!< child sent RES and exited cleanly
        Crashed,     //!< child died of a signal (or exited reportless)
        TimedOut,    //!< deadline expired; child was SIGKILLed
        SpawnFailed, //!< fork/pipe failure — retryable host trouble
    };

    Status status = Status::SpawnFailed;
    int signal = 0;         //!< terminating signal when Crashed
    int exitCode = 0;       //!< exit status when the child exited
    std::string resLine;    //!< RES payload (empty unless Reported)
    std::string preLine;    //!< PRE payload when it arrived in time
    std::string stderrText; //!< captured child stderr
    std::string spawnError; //!< diagnostic when SpawnFailed
};

/**
 * Run @p body in a forked child with a @p timeoutMs wall-clock
 * deadline. The body must do all of its reporting through the channel;
 * its stdout/stderr are captured, and it must not return control to
 * any caller-owned state (the child _exit()s when the body returns).
 */
SandboxOutcome runSandboxed(const std::function<void(SandboxChannel &)> &body,
                            unsigned timeoutMs);

/**
 * runSandboxed(), retrying SpawnFailed outcomes (fork/pipe failure
 * under transient host pressure) on the shared capped-exponential
 * backoff schedule. Any other outcome — including Crashed and
 * TimedOut, which are the child's verdict, not host trouble — returns
 * immediately. On return @p retriesOut (when non-null) holds the
 * number of retries burned; a still-SpawnFailed outcome means the
 * policy was exhausted.
 */
SandboxOutcome
runSandboxedWithRetry(const std::function<void(SandboxChannel &)> &body,
                      unsigned timeoutMs, const BackoffPolicy &policy,
                      unsigned *retriesOut = nullptr);

} // namespace ruu::inject

#endif // RUU_INJECT_SANDBOX_HH
