#include "inject/snapshot.hh"

#include "common/logging.hh"

namespace ruu::inject
{

void
CaptureTap::onRunStart(FaultPortSet &ports)
{
    _snapshot.layoutSignature = ports.layoutSignature();
    _snapshot.portCount = ports.size();
    _snapshot.totalBits = ports.totalBits();
    _snapshot.requestedCycle = _target;
}

void
CaptureTap::onCycle(Cycle cycle, FaultPortSet &ports)
{
    if (_captured || cycle < _target)
        return;
    _snapshot.capturedCycle = cycle;
    _snapshot.image = ports.captureImage();
    _captured = true;
}

void
RestoreTap::onRunStart(FaultPortSet &ports)
{
    _layoutOk = ports.layoutSignature() == _snapshot.layoutSignature &&
                ports.imageBytes() == _snapshot.image.size();
}

void
RestoreTap::onCycle(Cycle cycle, FaultPortSet &ports)
{
    if (_fired || !_layoutOk || cycle < _snapshot.capturedCycle)
        return;
    _fired = true;
    _restoredAt = cycle;
    std::size_t bad = ports.firstMismatch(_snapshot.image);
    if (bad == FaultPortSet::kNoMismatch) {
        _verified = true;
    } else {
        _mismatch = ports.describe(bad) + ": live value " +
                    std::to_string(ports.readValue(bad)) +
                    " differs from the snapshot";
    }
    ports.restoreImage(_snapshot.image);
}

Expected<Snapshot>
takeSnapshot(Core &core, const Trace &trace, const RunOptions &options,
             Cycle cycle)
{
    CaptureTap tap(cycle);
    RunOptions opts = options;
    opts.tap = &tap;
    RunResult run = core.run(trace, opts);
    if (!tap.captured()) {
        return Error("run on core '" + std::string(core.name()) +
                     "' ended at cycle " + std::to_string(run.cycles) +
                     (run.wedged ? " (wedged)" : "") +
                     " before the snapshot cycle " +
                     std::to_string(cycle));
    }
    Snapshot snapshot = tap.takeSnapshot();
    if (snapshot.image.empty())
        return Error("core '" + std::string(core.name()) +
                     "' registered no fault ports");
    snapshot.core = core.name();
    return snapshot;
}

Expected<ResumeResult>
resumeFromSnapshot(Core &core, const Trace &trace,
                   const RunOptions &options, const Snapshot &snapshot)
{
    RestoreTap tap(snapshot);
    RunOptions opts = options;
    opts.tap = &tap;
    RunResult run = core.run(trace, opts);
    if (!tap.layoutOk()) {
        return Error("snapshot layout (core '" + snapshot.core +
                     "', signature " +
                     std::to_string(snapshot.layoutSignature) +
                     ") does not match core '" +
                     std::string(core.name()) + "'");
    }
    if (!tap.fired()) {
        return Error("replay on core '" + std::string(core.name()) +
                     "' ended at cycle " + std::to_string(run.cycles) +
                     (run.wedged ? " (wedged)" : "") +
                     " before the snapshot cycle " +
                     std::to_string(snapshot.capturedCycle));
    }
    ResumeResult result;
    result.result = std::move(run);
    result.verified = tap.verified();
    result.mismatch = tap.mismatch();
    result.restoredAt = tap.restoredAt();
    return result;
}

} // namespace ruu::inject
