/**
 * @file
 * Fault ports — the uniform enumeration of flippable machine state.
 *
 * A FaultPort names one latch-backed field of a live pipeline
 * structure: an RUU entry's valid bit, a Tag Unit slot's register
 * number, a history-buffer entry's saved value, a scoreboard counter, a
 * result-bus latch, an architectural register. Each timing core
 * registers its ports into a FaultPortSet at the start of a run (only
 * when a MachineTap is attached, so plain runs pay nothing), giving
 * three capabilities on top of the same enumeration:
 *
 *   - soft-error injection: flip any single bit of any port at any
 *     cycle (the campaign runner in campaign.hh samples such points);
 *   - bit-exact capture: read every registered byte into an image and
 *     write it back (the snapshot/restore machinery in snapshot.hh);
 *   - layout fingerprinting: a signature over (name, class, width) of
 *     every port, so a capture is only ever restored into a machine
 *     exposing the identical layout.
 *
 * Ports whose value is used as an array index (queue cursors, Tag Unit
 * slot numbers, history sequence numbers) declare a wrap modulus: a
 * flip lands the value back inside the structure's capacity, so an
 * injected fault corrupts the *model* rather than tripping
 * out-of-bounds behavior in the host process. Fields holding host
 * pointers (TraceRecord*) are never registered.
 */

#ifndef RUU_INJECT_FAULT_PORT_HH
#define RUU_INJECT_FAULT_PORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ruu::inject
{

/** What kind of machine state a port holds (reporting/analysis). */
enum class PortClass : std::uint8_t
{
    Control,  //!< valid/ready/busy flags, mode bits
    Tag,      //!< result tags and tag-monitoring latches
    Data,     //!< data values (registers, saved values, bus data)
    Address,  //!< memory addresses and PCs
    Sequence, //!< sequence numbers, cursors, cycle latches
};

/** Printable port-class name ("control", "tag", ...). */
const char *portClassName(PortClass cls);

/** One registered flippable field. */
struct FaultPort
{
    std::string name;          //!< e.g. "ruu[3].destTag"
    PortClass cls = PortClass::Control;
    void *base = nullptr;      //!< backing storage (live structure)
    unsigned storageBytes = 1; //!< sizeof the backing field (<= 8)
    unsigned bits = 1;         //!< flippable width in bits
    std::uint64_t wrap = 0;    //!< nonzero: post-flip value %= wrap
};

/** The registered ports of one running machine. */
class FaultPortSet
{
  public:
    /** Register a port over @p storage_bytes at @p base. */
    void addRaw(std::string name, PortClass cls, void *base,
                unsigned storage_bytes, unsigned bits,
                std::uint64_t wrap = 0);

    /** Register a one-bit flag port. */
    void
    addFlag(const std::string &name, bool &flag)
    {
        addRaw(name, PortClass::Control, &flag, 1, 1);
    }

    /** Register an integral field with an explicit flippable width. */
    template <typename T>
    void
    add(const std::string &name, PortClass cls, T &field,
        unsigned bits = sizeof(T) * 8, std::uint64_t wrap = 0)
    {
        static_assert(sizeof(T) <= 8, "port storage wider than a word");
        addRaw(name, cls, &field, sizeof(T), bits, wrap);
    }

    std::size_t size() const { return _ports.size(); }
    bool empty() const { return _ports.empty(); }
    const FaultPort &port(std::size_t i) const;

    /** Sum of every port's flippable width. */
    std::uint64_t totalBits() const { return _totalBits; }

    /** A flat bit index resolved to its port. */
    struct BitRef
    {
        std::size_t port = 0;
        unsigned bit = 0;
    };

    /** Resolve flat bit @p flat_bit (asserts flat_bit < totalBits()). */
    BitRef locate(std::uint64_t flat_bit) const;

    /** Outcome of one injected flip. */
    struct FlipResult
    {
        std::size_t port = 0;
        unsigned bit = 0;
        std::uint64_t before = 0; //!< field value before the flip
        std::uint64_t after = 0;  //!< field value written back
    };

    /** Flip flat bit @p flat_bit (applying the port's wrap modulus). */
    FlipResult flip(std::uint64_t flat_bit);

    /** Current value of port @p index (little-endian field read). */
    std::uint64_t readValue(std::size_t index) const;

    /** Overwrite port @p index with @p value. */
    void writeValue(std::size_t index, std::uint64_t value);

    /** Bit-exact image of every registered field, in port order. */
    std::vector<std::uint8_t> captureImage() const;

    /** Write @p image back (asserts it matches imageBytes()). */
    void restoreImage(const std::vector<std::uint8_t> &image);

    /** Size of a capture image in bytes. */
    std::size_t imageBytes() const { return _imageBytes; }

    /**
     * First port whose live bytes differ from @p image, or npos when
     * the machine matches the image bit-exactly.
     */
    static constexpr std::size_t kNoMismatch = ~std::size_t{0};
    std::size_t firstMismatch(const std::vector<std::uint8_t> &image)
        const;

    /**
     * FNV-1a fingerprint over every port's (name, class, widths, wrap):
     * equal signatures mean structurally identical layouts, the
     * precondition for restoring a capture or replaying a trial.
     */
    std::uint64_t layoutSignature() const;

    /** "name (class, N bits)" for reports. */
    std::string describe(std::size_t index) const;

  private:
    std::vector<FaultPort> _ports;
    std::uint64_t _totalBits = 0;
    std::size_t _imageBytes = 0;
};

/**
 * Observer of a running timing core (RunOptions::tap). The core calls
 * onRunStart once, after its pipeline structures exist and their ports
 * are registered, and onCycle at the top of every simulated cycle (the
 * SimpleCore, which models per-instruction issue rather than an
 * explicit cycle loop, calls it once per instruction with its
 * monotonically nondecreasing issue cycle). The FaultPortSet reference
 * is only valid for the duration of the run.
 */
class MachineTap
{
  public:
    virtual ~MachineTap() = default;

    virtual void onRunStart(FaultPortSet &ports) { (void)ports; }

    virtual void
    onCycle(Cycle cycle, FaultPortSet &ports)
    {
        (void)cycle;
        (void)ports;
    }
};

} // namespace ruu::inject

#endif // RUU_INJECT_FAULT_PORT_HH
