/**
 * @file
 * Append-only JSONL campaign journal.
 *
 * A fault-injection campaign streams one line per finished trial to a
 * journal file so a killed campaign can resume where it stopped. The
 * format is deliberately flat — one JSON object per line, values only
 * strings and unsigned integers — so the reader below can parse it
 * without a JSON dependency:
 *
 *   line 1:  header   {"kind": "ruu-inject-journal", "version": 1,
 *                      "seed": ..., "trials": ..., "cores": "a,b",
 *                      "workloads": "x,y", "config": "<signature>"}
 *   line 2+: trials   {"index": ..., "seed": ..., "core": ...,
 *                      "workload": ..., "cycle": ..., "bit": ...,
 *                      "port": ..., "before": ..., "after": ...,
 *                      "outcome": ..., "cycles": ..., "retries": ...,
 *                      "detail": ...}
 *
 * Torn writes happen (the campaign may be SIGKILLed mid-line), so a
 * malformed LAST line is tolerated and reported via
 * JournalContents::tornTail; a malformed line anywhere else is data
 * corruption and a hard error.
 */

#ifndef RUU_INJECT_JOURNAL_HH
#define RUU_INJECT_JOURNAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/io_faults.hh"
#include "common/types.hh"

namespace ruu::inject
{

/**
 * Classification of one injection trial, in detector precedence order.
 * Every trial ends in exactly one bucket; Unclassified survives only
 * inside a crashed child that never reported, and a campaign that
 * finishes with one is a bug.
 */
enum class Outcome
{
    Masked,            //!< architectural results and completion intact
    DetectedInvariant, //!< invariant checker / assertion / crash
    DetectedOracle,    //!< commit oracle caught a discrepancy
    Trapped,           //!< machine took a (restartable) trap
    Hung,              //!< watchdog expired; structured dump attached
    Sdc,               //!< silent data corruption: wrong final state
    Unclassified,      //!< no classification reached (campaign bug)
};

/** Stable lowercase name for @p outcome ("masked", "sdc", ...). */
const char *outcomeName(Outcome outcome);

/** Inverse of outcomeName. */
Expected<Outcome> outcomeFromName(const std::string &name);

/** The sampled coordinates of one trial. */
struct TrialPoint
{
    std::uint64_t index = 0; //!< position in the campaign sequence
    std::uint64_t seed = 0;  //!< derived trial seed (replay key)
    std::string core;        //!< core kind name
    std::string workload;    //!< kernel name
    Cycle cycle = 0;         //!< injection cycle
    std::uint64_t bit = 0;   //!< global bit index in the port set
};

/** Everything a finished trial reports into the journal. */
struct TrialResult
{
    TrialPoint point;
    Outcome outcome = Outcome::Unclassified;
    std::string port;           //!< flipped port, "name bit k"
    std::uint64_t before = 0;   //!< port value before the flip
    std::uint64_t after = 0;    //!< port value after the flip
    std::uint64_t cycles = 0;   //!< cycles the faulty run took
    std::uint64_t retries = 0;  //!< sandbox restarts consumed
    std::string detail;         //!< diagnostic (invariant text, dump)
};

/** Campaign identity, pinned in the journal's first line. */
struct JournalHeader
{
    std::uint64_t version = 1;
    std::uint64_t seed = 0;
    std::uint64_t trials = 0;
    std::vector<std::string> cores;
    std::vector<std::string> workloads;
    std::string config; //!< uarch-config signature string
};

/** A fully parsed journal. */
struct JournalContents
{
    JournalHeader header;
    std::vector<TrialResult> trials;
    bool tornTail = false; //!< last line was incomplete and dropped
    /**
     * Byte extent of the valid prefix: everything past this offset is
     * the torn fragment. A resuming writer truncates to here before
     * appending, so the fragment can never resurface as a (hard-error)
     * interior line.
     */
    std::size_t validBytes = 0;
};

/** Serialize @p header as its one-line JSON form (no newline). */
std::string headerToLine(const JournalHeader &header);

/** Serialize @p trial as its one-line JSON form (no newline). */
std::string trialToLine(const TrialResult &trial);

/** Parse one header line. */
Expected<JournalHeader> parseHeaderLine(const std::string &line);

/** Parse one trial line. */
Expected<TrialResult> parseTrialLine(const std::string &line);

/**
 * Read and validate a whole journal file. Tolerates a torn final
 * line; rejects a missing/invalid header or a malformed interior line
 * (with its line number).
 */
Expected<JournalContents> readJournal(const std::string &path);

/**
 * Line-buffered journal writer. Every append writes one full line and
 * flushes, so the journal loses at most the trial in flight when the
 * process dies.
 */
class JournalWriter
{
  public:
    /** Create @p path (truncating) and write the header line. */
    Expected<bool> create(const std::string &path,
                          const JournalHeader &header);

    /** Open @p path for appending trial lines after a resume. */
    Expected<bool> append(const std::string &path);

    /** Append one trial line, durable (fsynced) before returning. */
    Expected<bool> add(const TrialResult &trial);

    bool isOpen() const { return _file.isOpen(); }

  private:
    io::AppendFile _file;
};

} // namespace ruu::inject

#endif // RUU_INJECT_JOURNAL_HH
