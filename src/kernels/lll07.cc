/**
 * @file
 * LLL7 — equation of state fragment:
 *
 *   X(k) = U(k) + R*(Z(k) + R*Y(k)) +
 *          T*(U(k+3) + R*(U(k+2) + R*U(k+1)) +
 *             T*(U(k+6) + R*(U(k+5) + R*U(k+4))))
 *
 * The ILP-rich loop of the suite: a wide expression tree of 8 loads
 * and 15 FP operations per fully independent iteration. This is where
 * a larger RSTU/RUU pays off most.
 *
 * Memory map: X @1000, Y @3000, Z @5000, U @7000; R,T @100..101.
 */

#include "kernels/data.hh"
#include "kernels/lll.hh"

namespace ruu
{

Kernel
makeLll07()
{
    constexpr std::size_t n = 250;
    constexpr Addr x_base = 1000, y_base = 3000, z_base = 5000;
    constexpr Addr u_base = 7000, const_base = 100;

    DataGen gen(0x77);
    std::vector<double> y = gen.vec(n);
    std::vector<double> z = gen.vec(n);
    std::vector<double> u = gen.vec(n + 6);
    const double r = gen.next(0.1, 0.9), t = gen.next(0.1, 0.9);

    ProgramBuilder b("lll07");
    initArray(b, y_base, y);
    initArray(b, z_base, z);
    initArray(b, u_base, u);
    b.fword(const_base + 0, r);
    b.fword(const_base + 1, t);

    b.amovi(regA(3), 0);
    b.lds(regS(4), regA(3), const_base + 0); // R
    b.lds(regS(5), regA(3), const_base + 1); // T
    b.amovi(regA(1), 0);
    b.amovi(regA(6), 1);
    b.amovi(regA(5), static_cast<std::int64_t>(n));

    // List-scheduled body: the two inner Horner chains (through u[k+4..6]
    // in S1 and u[k+1..3] in S6) are interleaved so the FP adder and
    // multiplier overlap, with loads hoisted ahead of their uses.
    b.label("loop");
    b.lds(regS(1), regA(1), u_base + 4);  // u[k+4]
    b.lds(regS(2), regA(1), u_base + 5);
    b.lds(regS(3), regA(1), u_base + 6);
    b.lds(regS(6), regA(1), u_base + 1);  // u[k+1]
    b.lds(regS(7), regA(1), u_base + 2);
    b.fmul(regS(1), regS(4), regS(1));    // R*u4
    b.fmul(regS(6), regS(4), regS(6));    // R*u1
    b.fadd(regS(1), regS(2), regS(1));    // u5 + R*u4
    b.fadd(regS(6), regS(7), regS(6));    // u2 + R*u1
    b.lds(regS(2), regA(1), u_base + 3);
    b.lds(regS(7), regA(1), y_base);
    b.fmul(regS(1), regS(4), regS(1));    // R*(u5 + R*u4)
    b.fmul(regS(6), regS(4), regS(6));    // R*(u2 + R*u1)
    b.fadd(regS(1), regS(3), regS(1));    // u6 + ...
    b.fadd(regS(6), regS(2), regS(6));    // u3 + ...
    b.lds(regS(3), regA(1), z_base);
    b.lds(regS(2), regA(1), u_base);
    b.fmul(regS(1), regS(5), regS(1));    // T*(inner)
    b.fmul(regS(7), regS(4), regS(7));    // R*y
    b.fadd(regS(1), regS(6), regS(1));    // (u3+..) + T*(..)
    b.fadd(regS(7), regS(3), regS(7));    // z + R*y
    b.fmul(regS(1), regS(5), regS(1));    // T*(...)
    b.fmul(regS(7), regS(4), regS(7));    // R*(z+R*y)
    b.fadd(regS(7), regS(2), regS(7));    // u + ...
    b.fadd(regS(1), regS(7), regS(1));    // + T*(...)
    b.sts(regA(1), x_base, regS(1));
    b.aadd(regA(1), regA(1), regA(6));
    b.asub(regA(0), regA(1), regA(5));
    b.jam("loop");
    b.halt();

    // Reference, mirroring the assembly's operation order.
    std::vector<double> x(n);
    for (std::size_t k = 0; k < n; ++k) {
        double s1 = r * u[k + 4];
        s1 = u[k + 5] + s1;
        s1 = r * s1;
        s1 = u[k + 6] + s1;
        s1 = t * s1;
        double s2 = r * u[k + 1];
        s2 = u[k + 2] + s2;
        s2 = r * s2;
        s2 = u[k + 3] + s2;
        s1 = s2 + s1;
        s1 = t * s1;
        s2 = r * y[k];
        s2 = z[k] + s2;
        s2 = r * s2;
        s2 = u[k] + s2;
        x[k] = s2 + s1;
    }

    Kernel kernel;
    kernel.name = "lll07";
    kernel.description = "equation of state fragment";
    kernel.program = b.build();
    kernel.expected = expectArray(x_base, x);
    return kernel;
}

} // namespace ruu
