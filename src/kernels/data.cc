#include "kernels/data.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace ruu
{

DataGen::DataGen(std::uint64_t seed) : _state(seed ? seed : 0x9e3779b9u)
{
}

double
DataGen::next(double lo, double hi)
{
    _state ^= _state >> 12;
    _state ^= _state << 25;
    _state ^= _state >> 27;
    std::uint64_t bits = _state * 0x2545f4914f6cdd1dull;
    double unit = static_cast<double>(bits >> 11) /
                  static_cast<double>(1ull << 53);
    return lo + unit * (hi - lo);
}

std::vector<double>
DataGen::vec(std::size_t n, double lo, double hi)
{
    std::vector<double> values(n);
    for (auto &v : values)
        v = next(lo, hi);
    return values;
}

void
initArray(ProgramBuilder &builder, Addr base,
          const std::vector<double> &values)
{
    for (std::size_t i = 0; i < values.size(); ++i)
        builder.fword(base + i, values[i]);
}

std::vector<std::pair<Addr, Word>>
expectArray(Addr base, const std::vector<double> &values)
{
    std::vector<std::pair<Addr, Word>> expected;
    expected.reserve(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        expected.emplace_back(base + i, doubleToWord(values[i]));
    return expected;
}

void
appendExpect(std::vector<std::pair<Addr, Word>> &into,
             const std::vector<std::pair<Addr, Word>> &more)
{
    into.insert(into.end(), more.begin(), more.end());
}

} // namespace ruu
