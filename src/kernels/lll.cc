#include "kernels/lll.hh"

namespace ruu
{

const std::vector<Kernel> &
livermoreKernels()
{
    static const std::vector<Kernel> kernels = [] {
        std::vector<Kernel> all;
        all.push_back(makeLll01());
        all.push_back(makeLll02());
        all.push_back(makeLll03());
        all.push_back(makeLll04());
        all.push_back(makeLll05());
        all.push_back(makeLll06());
        all.push_back(makeLll07());
        all.push_back(makeLll08());
        all.push_back(makeLll09());
        all.push_back(makeLll10());
        all.push_back(makeLll11());
        all.push_back(makeLll12());
        all.push_back(makeLll13());
        all.push_back(makeLll14());
        return all;
    }();
    return kernels;
}

const std::vector<Workload> &
livermoreWorkloads()
{
    static const std::vector<Workload> workloads = [] {
        std::vector<Workload> all;
        for (const auto &kernel : livermoreKernels())
            all.push_back(makeWorkload(kernel.program));
        return all;
    }();
    return workloads;
}

} // namespace ruu
