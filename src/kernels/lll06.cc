/**
 * @file
 * LLL6 — general linear recurrence equations:
 *
 *   DO 6 i = 2,n
 *     W(i) = 0.01
 *     DO 6 k = 1,i-1
 * 6   W(i) = W(i) + B(k,i)*W(i-k)
 *
 * Triangular doubly nested recurrence: the inner trip count grows with
 * i, and w[i] depends on every earlier element. The zero constant for
 * resetting the inner induction register is parked in B0.
 *
 * Memory map: W @1000 (n words), B @2000 (n*n words, row-major
 * b[k][i] at 2000 + k*n + i).
 */

#include "kernels/data.hh"
#include "kernels/lll.hh"

namespace ruu
{

Kernel
makeLll06()
{
    constexpr std::size_t n = 48;
    constexpr Addr w_base = 1000, b_base = 2000;
    constexpr Addr seed_addr = 100;

    DataGen gen(0x66);
    std::vector<double> w = gen.vec(n, 0.1, 0.5);
    std::vector<double> bm = gen.vec(n * n, 0.0001, 0.01);
    const double w_init = 0.01;

    ProgramBuilder b("lll06");
    initArray(b, w_base, w);
    initArray(b, b_base, bm);
    b.fword(seed_addr, w_init);

    // A1=i, A2=k, A3=index of b[k][i], A4=index of w[i-k-1],
    // A5=n, A6=1, A7=n (row stride); zero constant in B0.
    b.amovi(regA(3), 0);
    b.movba(regB(0), regA(3));
    b.lds(regS(4), regA(3), seed_addr);      // 0.01
    b.amovi(regA(1), 1);                     // i = 1 (0-based)
    b.amovi(regA(6), 1);
    b.amovi(regA(5), static_cast<std::int64_t>(n));
    b.amovi(regA(7), static_cast<std::int64_t>(n)); // row stride

    b.label("outer");
    b.movs(regS(1), regS(4));                // w[i] = 0.01
    b.mova(regA(3), regA(1));                // b index starts at b[0][i]
    b.asub(regA(4), regA(1), regA(6));       // w index = i-1
    b.movab(regA(2), regB(0));               // k = 0

    b.label("inner");
    b.lds(regS(2), regA(3), b_base);         // b[k][i]
    b.lds(regS(3), regA(4), w_base);         // w[(i-k)-1]
    b.fmul(regS(2), regS(2), regS(3));
    b.fadd(regS(1), regS(1), regS(2));
    b.aadd(regA(3), regA(3), regA(7));       // next row
    b.asub(regA(4), regA(4), regA(6));       // earlier w
    b.aadd(regA(2), regA(2), regA(6));       // ++k
    b.asub(regA(0), regA(2), regA(1));       // k - i
    b.jam("inner");

    b.sts(regA(1), w_base, regS(1));         // w[i]
    b.aadd(regA(1), regA(1), regA(6));
    b.asub(regA(0), regA(1), regA(5));
    b.jam("outer");
    b.halt();

    // Reference.
    for (std::size_t i = 1; i < n; ++i) {
        double acc = w_init;
        for (std::size_t k = 0; k < i; ++k)
            acc = acc + (bm[k * n + i] * w[(i - k) - 1]);
        w[i] = acc;
    }

    Kernel kernel;
    kernel.name = "lll06";
    kernel.description = "general linear recurrence equations";
    kernel.program = b.build();
    kernel.expected = expectArray(w_base, w);
    return kernel;
}

} // namespace ruu
