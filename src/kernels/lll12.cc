/**
 * @file
 * LLL12 — first difference:
 *
 *   DO 12 k = 1,n
 * 12 X(k) = Y(k+1) - Y(k)
 *
 * Fully parallel; Y(k) is kept live across iterations (it was the
 * previous Y(k+1)), so each iteration is one load, one subtract, one
 * register copy, and one store.
 *
 * Memory map: X @1000, Y @3000 (n+1 words).
 */

#include "kernels/data.hh"
#include "kernels/lll.hh"

namespace ruu
{

Kernel
makeLll12()
{
    constexpr std::size_t n = 1500;
    constexpr Addr x_base = 1000, y_base = 3000;

    DataGen gen(0xcc);
    std::vector<double> y = gen.vec(n + 1);

    ProgramBuilder b("lll12");
    initArray(b, y_base, y);

    b.amovi(regA(1), 0);                 // k
    b.amovi(regA(6), 1);
    b.amovi(regA(5), static_cast<std::int64_t>(n));
    b.amovi(regA(3), 0);
    b.lds(regS(1), regA(3), y_base);     // y[0]

    b.label("loop");
    b.lds(regS(2), regA(1), y_base + 1); // y[k+1]
    b.fsub(regS(3), regS(2), regS(1));   // y[k+1] - y[k]
    b.movs(regS(1), regS(2));            // carry y[k+1] forward
    b.sts(regA(1), x_base, regS(3));
    b.aadd(regA(1), regA(1), regA(6));
    b.asub(regA(0), regA(1), regA(5));
    b.jam("loop");
    b.halt();

    // Reference.
    std::vector<double> x(n);
    for (std::size_t k = 0; k < n; ++k)
        x[k] = y[k + 1] - y[k];

    Kernel kernel;
    kernel.name = "lll12";
    kernel.description = "first difference";
    kernel.program = b.build();
    kernel.expected = expectArray(x_base, x);
    return kernel;
}

} // namespace ruu
