/**
 * @file
 * LLL8 — ADI integration:
 *
 *   DO 8 kx = 2,3
 *   DO 8 ky = 2,n
 *     DU1(ky) = U1(kx,ky+1,1) - U1(kx,ky-1,1)   (and DU2, DU3)
 *     U1(kx,ky,2) = U1(kx,ky,1) + A11*DU1 + A12*DU2 + A13*DU3
 *                 + SIG*(U1(kx+1,ky,1) - 2*U1(kx,ky,1) + U1(kx-1,ky,1))
 *     (and the U2, U3 rows with A21..A33)
 *
 * The heaviest loop body of the suite: ~75 instructions per iteration,
 * with nine alternating-direction coefficients and SIG held in the T
 * register file and fetched through the transmit unit each use.
 *
 * Memory map (3D arrays [2][ny+1][4], plane stride (ny+1)*4):
 * U1 @2000, U2 @3000, U3 @4000; DU1 @5000, DU2 @5200, DU3 @5400;
 * constants @100..110.
 */

#include "kernels/data.hh"
#include "kernels/lll.hh"

namespace ruu
{

Kernel
makeLll08()
{
    constexpr long ny = 40;
    constexpr long plane = (ny + 1) * 4;
    constexpr Addr u1_base = 2000, u2_base = 3000, u3_base = 4000;
    constexpr Addr du1_base = 5000, du2_base = 5200, du3_base = 5400;
    constexpr Addr const_base = 100;

    DataGen gen(0x88);
    std::vector<double> u1 = gen.vec(2 * plane);
    std::vector<double> u2 = gen.vec(2 * plane);
    std::vector<double> u3 = gen.vec(2 * plane);
    std::vector<double> a(9); // a11 a12 a13 a21 a22 a23 a31 a32 a33
    for (auto &c : a)
        c = gen.next(0.001, 0.02);
    const double sig = gen.next(0.1, 0.3);
    const double two = 2.0;

    ProgramBuilder b("lll08");
    initArray(b, u1_base, u1);
    initArray(b, u2_base, u2);
    initArray(b, u3_base, u3);
    for (unsigned i = 0; i < 9; ++i)
        b.fword(const_base + i, a[i]);
    b.fword(const_base + 9, sig);
    b.fword(const_base + 10, two);

    // Prologue: constants into T0..T10 through S7.
    b.amovi(regA(3), 0);
    for (unsigned i = 0; i < 11; ++i) {
        b.lds(regS(7), regA(3), const_base + i);
        b.movts(regT(i), regS(7));
    }

    // A1 = ky*4+kx offset, A2 = ky (du index), A4 = kx, A5 = ny,
    // A6 = 1, A7 = 4.
    b.amovi(regA(6), 1);
    b.amovi(regA(7), 4);
    b.amovi(regA(5), ny);
    b.amovi(regA(4), 1); // kx = 1 (0-based)

    b.label("kx_loop");
    b.aadd(regA(1), regA(7), regA(4));   // offset = 1*4 + kx
    b.amovi(regA(2), 1);                 // ky = 1

    b.label("ky_loop");

    /** Emit "S<dst> = u[.][ky+1][kx] - u[.][ky-1][kx]; du[ky] = it". */
    auto emit_du = [&](Addr u_base, Addr du_base, unsigned sreg) {
        b.lds(regS(sreg), regA(1), u_base + 4);
        b.lds(regS(7), regA(1), u_base - 4);
        b.fsub(regS(sreg), regS(sreg), regS(7));
        b.sts(regA(2), du_base, regS(sreg));
    };
    emit_du(u1_base, du1_base, 1); // du1 -> S1
    emit_du(u2_base, du2_base, 2); // du2 -> S2
    emit_du(u3_base, du3_base, 3); // du3 -> S3

    /**
     * Emit one output row with coefficients T[c0..c0+2]; the three u
     * loads are hoisted ahead of the coefficient chain (S1..S3 hold
     * the du values across all three rows, so the row works in S4..S7).
     */
    auto emit_row = [&](Addr u_base, unsigned c0) {
        b.lds(regS(5), regA(1), u_base + 1); // u[kx+1]
        b.lds(regS(6), regA(1), u_base - 1); // u[kx-1]
        b.movst(regS(4), regT(c0 + 0));
        b.fmul(regS(4), regS(4), regS(1));   // a_1*du1
        b.movst(regS(7), regT(c0 + 1));
        b.fmul(regS(7), regS(7), regS(2));   // a_2*du2
        b.fadd(regS(4), regS(4), regS(7));
        b.movst(regS(7), regT(c0 + 2));
        b.fmul(regS(7), regS(7), regS(3));   // a_3*du3
        b.fadd(regS(4), regS(4), regS(7));
        b.fadd(regS(5), regS(5), regS(6));
        b.lds(regS(6), regA(1), u_base);     // center
        b.movst(regS(7), regT(10));          // 2.0
        b.fmul(regS(7), regS(7), regS(6));
        b.fsub(regS(5), regS(5), regS(7));   // laplacian
        b.movst(regS(7), regT(9));           // sig
        b.fmul(regS(5), regS(7), regS(5));
        b.fadd(regS(4), regS(4), regS(5));
        b.fadd(regS(4), regS(6), regS(4));   // center + ...
        b.sts(regA(1), u_base + plane, regS(4)); // write plane 1
    };
    emit_row(u1_base, 0);
    emit_row(u2_base, 3);
    emit_row(u3_base, 6);

    b.aadd(regA(1), regA(1), regA(7));   // next ky row
    b.aadd(regA(2), regA(2), regA(6));
    b.asub(regA(0), regA(2), regA(5));
    b.jam("ky_loop");

    b.aadd(regA(4), regA(4), regA(6));   // next kx
    b.amovi(regA(3), 3);
    b.asub(regA(0), regA(4), regA(3));   // kx - 3 < 0 -> loop
    b.jam("kx_loop");
    b.halt();

    // Reference, mirroring the assembly exactly.
    std::vector<double> du1(ny + 1), du2(ny + 1), du3(ny + 1);
    for (long kx = 1; kx <= 2; ++kx) {
        for (long ky = 1; ky < ny; ++ky) {
            long idx = ky * 4 + kx;
            du1[ky] = u1[idx + 4] - u1[idx - 4];
            du2[ky] = u2[idx + 4] - u2[idx - 4];
            du3[ky] = u3[idx + 4] - u3[idx - 4];
            auto row = [&](std::vector<double> &u, unsigned c0) {
                double acc = (a[c0] * du1[ky]) + (a[c0 + 1] * du2[ky]);
                acc = acc + (a[c0 + 2] * du3[ky]);
                double lap = (u[idx + 1] + u[idx - 1]) -
                             (two * u[idx]);
                acc = acc + (sig * lap);
                u[plane + idx] = u[idx] + acc;
            };
            row(u1, 0);
            row(u2, 3);
            row(u3, 6);
        }
    }

    Kernel kernel;
    kernel.name = "lll08";
    kernel.description = "ADI integration";
    kernel.program = b.build();
    kernel.expected = expectArray(u1_base, u1);
    appendExpect(kernel.expected, expectArray(u2_base, u2));
    appendExpect(kernel.expected, expectArray(u3_base, u3));
    appendExpect(kernel.expected,
                 expectArray(du1_base + 1,
                             {du1.begin() + 1, du1.end() - 1}));
    appendExpect(kernel.expected,
                 expectArray(du2_base + 1,
                             {du2.begin() + 1, du2.end() - 1}));
    appendExpect(kernel.expected,
                 expectArray(du3_base + 1,
                             {du3.begin() + 1, du3.end() - 1}));
    return kernel;
}

} // namespace ruu
