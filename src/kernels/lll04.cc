/**
 * @file
 * LLL4 — banded linear equations:
 *
 *   DO 4 k = 7,107,50
 *     LW = k - 6
 *     TEMP = X(k-1)
 *     DO 44 j = 5,n,5
 *       TEMP = TEMP - X(LW)*Y(j)
 * 44    LW = LW + 1
 * 4   X(k-1) = Y(5)*TEMP
 *
 * Three long strided reduction chains. The whole band solve repeats
 * twice (the LLL harness's outer repetition) to reach a dynamic
 * instruction count comparable to the paper's.
 *
 * Memory map: X @1000 (n+8 words), Y @3000 (n words).
 */

#include "kernels/data.hh"
#include "kernels/lll.hh"

namespace ruu
{

Kernel
makeLll04()
{
    constexpr std::size_t n = 1001;
    constexpr long reps = 2;
    constexpr Addr x_base = 1000, y_base = 3000;

    DataGen gen(0x44);
    std::vector<double> x = gen.vec(n + 8, 0.1, 0.5);
    std::vector<double> y = gen.vec(n, 0.001, 0.01);

    ProgramBuilder b("lll04");
    initArray(b, x_base, x);
    initArray(b, y_base, y);

    // A1=j, A2=lw, A3=k, A4=rep counter, A5=n, A6=1, A7=5; k step in B2.
    b.amovi(regA(4), reps);
    b.amovi(regA(6), 1);
    b.amovi(regA(7), 5);
    b.amovi(regA(5), static_cast<std::int64_t>(n));
    b.amovi(regA(3), 50);
    b.movba(regB(2), regA(3));           // k step = 50
    b.amovi(regA(3), 107);
    b.movba(regB(3), regA(3));           // k limit = 107

    b.label("rep");
    b.amovi(regA(3), 6);                 // k (0-based: 6, 56, 106)

    b.label("band");
    b.asub(regA(2), regA(3), regA(7));   // lw = k - 5
    b.asub(regA(2), regA(2), regA(6));   //    ... - 1 = k - 6
    b.lds(regS(1), regA(3), x_base - 1); // temp = x[k-1]
    b.amovi(regA(1), 4);                 // j = 4 (0-based FORTRAN j=5)

    b.label("inner");
    b.lds(regS(2), regA(2), x_base);     // x[lw]
    b.lds(regS(3), regA(1), y_base);     // y[j]
    b.fmul(regS(2), regS(2), regS(3));
    b.fsub(regS(1), regS(1), regS(2));   // temp -= x[lw]*y[j]
    b.aadd(regA(2), regA(2), regA(6));   // lw++
    b.aadd(regA(1), regA(1), regA(7));   // j += 5
    b.asub(regA(0), regA(1), regA(5));
    b.jam("inner");

    b.lds(regS(2), regA(7), y_base - 1); // y[4] via base A7=5, disp -1
    b.fmul(regS(1), regS(2), regS(1));   // y[4]*temp
    b.sts(regA(3), x_base - 1, regS(1)); // x[k-1]
    b.movab(regA(2), regB(2));           // k += 50
    b.aadd(regA(3), regA(3), regA(2));
    b.movab(regA(2), regB(3));           // k <= 106 ?
    b.asub(regA(0), regA(3), regA(2));
    b.jam("band");

    b.asub(regA(4), regA(4), regA(6));   // rep--
    b.mova(regA(0), regA(4));
    b.jan("rep");
    b.halt();

    // Reference.
    for (long rep = 0; rep < reps; ++rep) {
        for (long k = 6; k < 107; k += 50) {
            long lw = k - 6;
            double temp = x[k - 1];
            for (long j = 4; j < static_cast<long>(n); j += 5) {
                temp = temp - (x[lw] * y[j]);
                ++lw;
            }
            x[k - 1] = y[4] * temp;
        }
    }

    Kernel kernel;
    kernel.name = "lll04";
    kernel.description = "banded linear equations";
    kernel.program = b.build();
    kernel.expected = expectArray(x_base, x);
    return kernel;
}

} // namespace ruu
