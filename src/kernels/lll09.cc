/**
 * @file
 * LLL9 — integrate predictors:
 *
 *   PX(1,i) = DM28*PX(13,i) + DM27*PX(12,i) + DM26*PX(11,i) +
 *             DM25*PX(10,i) + DM24*PX( 9,i) + DM23*PX( 8,i) +
 *             DM22*PX( 7,i) + C0*(PX(5,i) + PX(6,i)) + PX(3,i)
 *
 * Independent iterations, each a 9-load, 8-multiply-add reduction.
 * The eight coefficients live in T0..T7 and are fetched through the
 * transmit unit per use, CFT style.
 *
 * Memory map: PX @2000, row-major px[i][j], row stride 16;
 * constants @100..107 (dm28..dm22, c0).
 */

#include "kernels/data.hh"
#include "kernels/lll.hh"

namespace ruu
{

Kernel
makeLll09()
{
    constexpr std::size_t n = 250;
    constexpr long stride = 16;
    constexpr Addr px_base = 2000, const_base = 100;

    DataGen gen(0x99);
    std::vector<double> px = gen.vec(n * stride);
    std::vector<double> dm(7); // dm28 dm27 dm26 dm25 dm24 dm23 dm22
    for (auto &c : dm)
        c = gen.next(0.01, 0.2);
    const double c0 = gen.next(0.1, 0.5);

    ProgramBuilder b("lll09");
    initArray(b, px_base, px);
    for (unsigned i = 0; i < 7; ++i)
        b.fword(const_base + i, dm[i]);
    b.fword(const_base + 7, c0);

    b.amovi(regA(3), 0);
    for (unsigned i = 0; i < 8; ++i) {
        b.lds(regS(7), regA(3), const_base + i);
        b.movts(regT(i), regS(7));
    }
    b.amovi(regA(1), 0);                  // row offset i*stride
    b.amovi(regA(2), 0);                  // i
    b.amovi(regA(6), 1);
    b.amovi(regA(7), stride);
    b.amovi(regA(5), static_cast<std::int64_t>(n));

    // List-scheduled body: the tail operands (px[4], px[5], px[2]) are
    // hoisted to the top and the reduction pipelines its px loads one
    // step ahead through alternating registers S3/S6.
    b.label("loop");
    b.lds(regS(3), regA(1), px_base + 12);
    b.lds(regS(6), regA(1), px_base + 11);
    b.lds(regS(4), regA(1), px_base + 4);
    b.lds(regS(5), regA(1), px_base + 5);
    b.lds(regS(7), regA(1), px_base + 2);
    b.movst(regS(1), regT(0));
    b.fmul(regS(1), regS(1), regS(3));    // acc = dm28*px[12]
    for (unsigned c = 1; c < 7; ++c) {
        // acc += dm(28-c)*px[12-c], next px load issued a step early
        RegId cur = (c % 2 == 1) ? regS(6) : regS(3);
        RegId nxt = (c % 2 == 1) ? regS(3) : regS(6);
        if (c < 6)
            b.lds(nxt, regA(1), px_base + 12 - c - 1);
        b.movst(regS(2), regT(c));
        b.fmul(regS(2), regS(2), cur);
        b.fadd(regS(1), regS(1), regS(2));
    }
    b.fadd(regS(4), regS(4), regS(5));    // px[4] + px[5]
    b.movst(regS(5), regT(7));            // c0
    b.fmul(regS(4), regS(5), regS(4));
    b.fadd(regS(1), regS(1), regS(4));
    b.fadd(regS(1), regS(1), regS(7));    // + px[2]
    b.sts(regA(1), px_base + 0, regS(1)); // px[i][0]
    b.aadd(regA(1), regA(1), regA(7));
    b.aadd(regA(2), regA(2), regA(6));
    b.asub(regA(0), regA(2), regA(5));
    b.jam("loop");
    b.halt();

    // Reference.
    for (std::size_t i = 0; i < n; ++i) {
        double *row = px.data() + i * stride;
        double acc = dm[0] * row[12];
        for (unsigned c = 1; c < 7; ++c)
            acc = acc + (dm[c] * row[12 - c]);
        acc = acc + (c0 * (row[4] + row[5]));
        acc = acc + row[2];
        row[0] = acc;
    }

    Kernel kernel;
    kernel.name = "lll09";
    kernel.description = "integrate predictors";
    kernel.program = b.build();
    kernel.expected = expectArray(px_base, px);
    return kernel;
}

} // namespace ruu
