/**
 * @file
 * The benchmark suite: the first 14 Lawrence Livermore loops (§2.1),
 * hand-compiled to the model ISA the way CFT compiled them for the
 * CRAY-1 scalar unit — scalar code, loop counters and invariants in
 * A/B/T registers, branch conditions computed into A0 or S0.
 *
 * Every kernel carries an independent C++ reference implementation
 * (mirroring the assembly's floating-point operation order exactly),
 * whose outputs are recorded as expected memory contents; the test
 * suite validates the functional simulator against them bit-for-bit.
 */

#ifndef RUU_KERNELS_LLL_HH
#define RUU_KERNELS_LLL_HH

#include <string>
#include <utility>
#include <vector>

#include "asm/program.hh"
#include "sim/machine.hh"

namespace ruu
{

/** One benchmark kernel: program + reference-computed expectations. */
struct Kernel
{
    std::string name;        //!< "lll01" .. "lll14"
    std::string description; //!< e.g. "hydro fragment"
    Program program;
    /** Expected output-memory words per the C++ reference. */
    std::vector<std::pair<Addr, Word>> expected;
};

/** @{ Individual kernel constructors (one translation unit each). */
Kernel makeLll01(); //!< hydro fragment
Kernel makeLll02(); //!< incomplete Cholesky conjugate gradient
Kernel makeLll03(); //!< inner product
Kernel makeLll04(); //!< banded linear equations
Kernel makeLll05(); //!< tri-diagonal elimination, below diagonal
Kernel makeLll06(); //!< general linear recurrence equations
Kernel makeLll07(); //!< equation of state fragment
Kernel makeLll08(); //!< ADI integration
Kernel makeLll09(); //!< integrate predictors
Kernel makeLll10(); //!< difference predictors
Kernel makeLll11(); //!< first sum
Kernel makeLll12(); //!< first difference
Kernel makeLll13(); //!< 2-D particle in cell
Kernel makeLll14(); //!< 1-D particle in cell
/** @} */

/** All 14 kernels, built once and cached. */
const std::vector<Kernel> &livermoreKernels();

/**
 * Workloads (program + functional trace) for all 14 kernels, built
 * once and cached — the input of every paper-table bench.
 */
const std::vector<Workload> &livermoreWorkloads();

} // namespace ruu

#endif // RUU_KERNELS_LLL_HH
