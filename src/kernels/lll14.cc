/**
 * @file
 * LLL14 — 1-D particle in cell, in its three phases:
 *
 *   phase 1 (gather):   ix = GRD(k); xi = FLOAT(ix);
 *                       ex1(k) = EX(ix-1); dex1(k) = DEX(ix-1)
 *   phase 2 (push):     vx = ex1(k) + (0 - xi(k))*dex1(k)
 *                       xx = vx + flx
 *                       ir = INT(xx); rx = xx - FLOAT(ir)
 *                       ir = AND(ir, 2047) + 1; xx(k) = rx + FLOAT(ir)
 *   phase 3 (scatter):  RH(ir-1) += 1.0 - rx;  RH(ir) += rx
 *
 * Three separate loops over the particles: a gather with
 * data-dependent loads, an arithmetic push with float<->int
 * conversions both ways, and a scatter with read-modify-write to
 * data-dependent addresses (classic load-register forwarding food).
 *
 * Memory map: GRD @1000, EX @2000, DEX @3000, EX1 @4000, DEX1 @4400,
 * XI @4800, IR @5200, RX @5600, XX @6000, RH @7000; flx, 1.0 @100.
 */

#include "kernels/data.hh"
#include "kernels/lll.hh"

namespace ruu
{

Kernel
makeLll14()
{
    constexpr std::size_t n = 150;
    constexpr std::size_t grid = 512;
    constexpr Addr grd_base = 1000, ex_base = 2000, dex_base = 3000;
    constexpr Addr ex1_base = 4000, dex1_base = 4400, xi_base = 4800;
    constexpr Addr ir_base = 5200, rx_base = 5600, xx_base = 6000;
    constexpr Addr rh_base = 7000, const_base = 100;

    DataGen gen(0xee);
    std::vector<double> grd = gen.vec(n, 2.0, grid - 2.0);
    std::vector<double> ex = gen.vec(grid, -1.0, 1.0);
    std::vector<double> dex = gen.vec(grid, -0.1, 0.1);
    const double flx = gen.next(100.0, 300.0);

    ProgramBuilder b("lll14");
    initArray(b, grd_base, grd);
    initArray(b, ex_base, ex);
    initArray(b, dex_base, dex);
    b.fword(const_base + 0, flx);
    b.fword(const_base + 1, 1.0);

    b.amovi(regA(3), 0);
    b.lds(regS(7), regA(3), const_base + 0);
    b.movts(regT(0), regS(7));           // flx
    b.lds(regS(7), regA(3), const_base + 1);
    b.movts(regT(1), regS(7));           // 1.0
    b.smovi(regS(7), 2047);
    b.movts(regT(2), regS(7));           // integer mask

    b.amovi(regA(6), 1);
    b.amovi(regA(5), static_cast<std::int64_t>(n));

    // ---- phase 1: gather ------------------------------------------------
    b.amovi(regA(1), 0);
    b.label("gather");
    b.lds(regS(1), regA(1), grd_base);   // grd[k]
    b.sfix(regS(2), regS(1));            // ix
    b.sflt(regS(3), regS(2));            // xi = (double)ix
    b.sts(regA(1), xi_base, regS(3));
    b.movas(regA(2), regS(2));           // ix as address index
    b.lds(regS(4), regA(2), ex_base - 1);   // ex[ix-1]
    b.sts(regA(1), ex1_base, regS(4));
    b.lds(regS(4), regA(2), dex_base - 1);  // dex[ix-1]
    b.sts(regA(1), dex1_base, regS(4));
    b.aadd(regA(1), regA(1), regA(6));
    b.asub(regA(0), regA(1), regA(5));
    b.jam("gather");

    // ---- phase 2: push ---------------------------------------------------
    b.amovi(regA(1), 0);
    b.label("push");
    b.lds(regS(2), regA(1), xi_base);
    b.lds(regS(3), regA(1), dex1_base);
    b.lds(regS(6), regA(1), ex1_base);
    b.smovi(regS(1), 0);                  // vx = 0.0, xx = 0.0
    b.fsub(regS(2), regS(1), regS(2));    // 0 - xi
    b.fmul(regS(2), regS(2), regS(3));    // (xx-xi)*dex1
    b.fadd(regS(2), regS(6), regS(2));    // vx = vx + ex1 + ...
    b.movst(regS(3), regT(0));            // flx
    b.fadd(regS(2), regS(2), regS(3));    // xx = xx + vx + flx
    b.sfix(regS(4), regS(2));             // ir = (int) xx
    b.sflt(regS(5), regS(4));
    b.fsub(regS(5), regS(2), regS(5));    // rx = xx - (double) ir
    b.movst(regS(3), regT(2));            // mask 2047
    b.sand(regS(4), regS(4), regS(3));
    b.smovi(regS(3), 1);
    b.sadd(regS(4), regS(4), regS(3));    // ir = (ir & 2047) + 1
    b.sts(regA(1), ir_base, regS(4));
    b.sts(regA(1), rx_base, regS(5));
    b.sflt(regS(3), regS(4));
    b.fadd(regS(3), regS(5), regS(3));    // xx = rx + (double) ir
    b.sts(regA(1), xx_base, regS(3));
    b.aadd(regA(1), regA(1), regA(6));
    b.asub(regA(0), regA(1), regA(5));
    b.jam("push");

    // ---- phase 3: scatter -------------------------------------------------
    b.amovi(regA(1), 0);
    b.label("scatter");
    b.lds(regS(1), regA(1), ir_base);     // ir (integer word)
    b.movas(regA(2), regS(1));
    b.lds(regS(2), regA(1), rx_base);     // rx
    b.lds(regS(3), regA(2), rh_base - 1); // rh[ir-1]
    b.movst(regS(4), regT(1));            // 1.0
    b.fsub(regS(4), regS(4), regS(2));    // 1.0 - rx
    b.fadd(regS(3), regS(3), regS(4));
    b.sts(regA(2), rh_base - 1, regS(3));
    b.lds(regS(3), regA(2), rh_base);     // rh[ir]
    b.fadd(regS(3), regS(3), regS(2));
    b.sts(regA(2), rh_base, regS(3));
    b.aadd(regA(1), regA(1), regA(6));
    b.asub(regA(0), regA(1), regA(5));
    b.jam("scatter");
    b.halt();

    // Reference, mirroring the assembly exactly.
    std::vector<double> xi(n), ex1(n), dex1(n), rx(n), xx(n);
    std::vector<std::int64_t> ir(n);
    std::vector<double> rh(2050, 0.0);
    for (std::size_t k = 0; k < n; ++k) {
        std::int64_t ix = static_cast<std::int64_t>(grd[k]);
        xi[k] = static_cast<double>(ix);
        ex1[k] = ex[ix - 1];
        dex1[k] = dex[ix - 1];
    }
    for (std::size_t k = 0; k < n; ++k) {
        double vx = ex1[k] + ((0.0 - xi[k]) * dex1[k]);
        double x = vx + flx;
        std::int64_t iri = static_cast<std::int64_t>(x);
        rx[k] = x - static_cast<double>(iri);
        iri = (iri & 2047) + 1;
        ir[k] = iri;
        xx[k] = rx[k] + static_cast<double>(iri);
    }
    for (std::size_t k = 0; k < n; ++k) {
        rh[ir[k] - 1] = rh[ir[k] - 1] + (1.0 - rx[k]);
        rh[ir[k]] = rh[ir[k]] + rx[k];
    }

    Kernel kernel;
    kernel.name = "lll14";
    kernel.description = "1-D particle in cell";
    kernel.program = b.build();
    kernel.expected = expectArray(xx_base, xx);
    appendExpect(kernel.expected, expectArray(rx_base, rx));
    appendExpect(kernel.expected, expectArray(rh_base, rh));
    for (std::size_t k = 0; k < n; ++k)
        kernel.expected.emplace_back(ir_base + k,
                                     static_cast<Word>(ir[k]));
    return kernel;
}

} // namespace ruu
