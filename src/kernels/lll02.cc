/**
 * @file
 * LLL2 — incomplete Cholesky conjugate gradient excerpt:
 *
 *   ii = n; ipntp = 0;
 *   do {
 *       ipnt = ipntp; ipntp += ii; ii /= 2; i = ipntp;
 *       for (k = ipnt + 1; k < ipntp; k += 2) {
 *           ++i;
 *           x[i] = x[k] - v[k]*x[k-1] - v[k+1]*x[k+1];
 *       }
 *   } while (ii > 0);
 *
 * A log-halving reduction with strided accesses. The ii/2 is done by
 * moving the counter through an S register for the shift unit — the
 * CRAY-1 has no address-register shifter either.
 *
 * Memory map: X @1000 (2n words), V @4000 (n+2 words).
 */

#include "kernels/data.hh"
#include "kernels/lll.hh"

namespace ruu
{

Kernel
makeLll02()
{
    constexpr std::size_t n = 512;
    constexpr Addr x_base = 1000, v_base = 4000;

    DataGen gen(0x22);
    std::vector<double> x = gen.vec(2 * n);
    std::vector<double> v = gen.vec(2 * n, 0.01, 0.2);

    ProgramBuilder b("lll02");
    initArray(b, x_base, x);
    initArray(b, v_base, v);

    // A1=k, A2=i, A4=ii, A5=ipntp, A6=1, A7=2.
    b.amovi(regA(4), static_cast<std::int64_t>(n)); // ii = n
    b.amovi(regA(5), 0);                            // ipntp = 0
    b.amovi(regA(6), 1);
    b.amovi(regA(7), 2);

    b.label("outer");
    b.aadd(regA(1), regA(5), regA(6));  // k = ipnt + 1 (ipnt = old ipntp)
    b.aadd(regA(5), regA(5), regA(4));  // ipntp += ii
    b.movsa(regS(7), regA(4));          // ii /= 2 through the shift unit
    b.sshr(regS(7), 1);
    b.movas(regA(4), regS(7));
    b.mova(regA(2), regA(5));           // i = ipntp
    b.asub(regA(0), regA(1), regA(5));  // skip empty inner loops
    b.jap("outer_test");

    // Inner body list-scheduled: all five loads first, then the two
    // multiply/subtract pairs.
    b.label("inner");
    b.lds(regS(1), regA(1), x_base);        // x[k]
    b.lds(regS(2), regA(1), v_base);        // v[k]
    b.lds(regS(3), regA(1), x_base - 1);    // x[k-1]
    b.lds(regS(4), regA(1), v_base + 1);    // v[k+1]
    b.lds(regS(5), regA(1), x_base + 1);    // x[k+1]
    b.aadd(regA(2), regA(2), regA(6));      // ++i
    b.fmul(regS(2), regS(2), regS(3));      // v[k]*x[k-1]
    b.fsub(regS(1), regS(1), regS(2));
    b.fmul(regS(4), regS(4), regS(5));      // v[k+1]*x[k+1]
    b.fsub(regS(1), regS(1), regS(4));
    b.sts(regA(2), x_base, regS(1));        // x[i]
    b.aadd(regA(1), regA(1), regA(7));      // k += 2
    b.asub(regA(0), regA(1), regA(5));
    b.jam("inner");

    b.label("outer_test");
    b.mova(regA(0), regA(4));           // while (ii > 0)
    b.jan("outer");
    b.halt();

    // Reference (same operation order as the assembly).
    {
        long ii = static_cast<long>(n);
        long ipntp = 0;
        do {
            long ipnt = ipntp;
            ipntp += ii;
            ii /= 2;
            long i = ipntp;
            for (long k = ipnt + 1; k < ipntp; k += 2) {
                ++i;
                x[static_cast<std::size_t>(i)] =
                    (x[k] - (v[k] * x[k - 1])) - (v[k + 1] * x[k + 1]);
            }
        } while (ii > 0);
    }

    Kernel kernel;
    kernel.name = "lll02";
    kernel.description = "incomplete Cholesky conjugate gradient";
    kernel.program = b.build();
    kernel.expected = expectArray(x_base, x);
    return kernel;
}

} // namespace ruu
