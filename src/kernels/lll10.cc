/**
 * @file
 * LLL10 — difference predictors:
 *
 *   AR = CX(5,i);  BR = AR - PX(5,i);  PX(5,i) = AR
 *   CR = BR - PX(6,i);  PX(6,i) = BR
 *   ... (the chain continues through column 13) ...
 *   PX(14,i) = CR - PX(13,i);  PX(13,i) = CR
 *
 * A serial chain of subtractions per iteration, but independent across
 * iterations — load/store heavy, exercising the load registers.
 *
 * Memory map: PX @2000, CX @8000, row-major, row stride 16.
 */

#include "kernels/data.hh"
#include "kernels/lll.hh"

namespace ruu
{

Kernel
makeLll10()
{
    constexpr std::size_t n = 250;
    constexpr long stride = 16;
    constexpr Addr px_base = 2000, cx_base = 8000;

    DataGen gen(0xaa);
    std::vector<double> px = gen.vec(n * stride);
    std::vector<double> cx = gen.vec(n * stride);

    ProgramBuilder b("lll10");
    initArray(b, px_base, px);
    initArray(b, cx_base, cx);

    b.amovi(regA(1), 0);                   // row offset
    b.amovi(regA(2), 0);                   // i
    b.amovi(regA(6), 1);
    b.amovi(regA(7), stride);
    b.amovi(regA(5), static_cast<std::int64_t>(n));

    // Chain: new = prev - px[j]; px[j] = prev; for j = 4..12. The
    // FORTRAN rotates the running difference through AR, BR, CR — here
    // S1, S2, S5 — and the independent px loads are pipelined a step
    // ahead through S3/S4 so the subtract chain hides memory latency.
    b.label("loop");
    const RegId value_regs[3] = {regS(1), regS(2), regS(5)};
    b.lds(regS(3), regA(1), px_base + 4);
    b.lds(regS(1), regA(1), cx_base + 4);  // ar = cx[i][4]
    for (unsigned j = 4; j <= 12; ++j) {
        unsigned k = j - 4;
        RegId cur_val = value_regs[k % 3];
        RegId nxt_val = value_regs[(k + 1) % 3];
        RegId cur_px = (k % 2 == 0) ? regS(3) : regS(4);
        RegId nxt_px = (k % 2 == 0) ? regS(4) : regS(3);
        if (j < 12)
            b.lds(nxt_px, regA(1), px_base + j + 1);
        b.fsub(nxt_val, cur_val, cur_px);    // next = prev - px[j]
        b.sts(regA(1), px_base + j, cur_val); // px[j] = prev
    }
    // After j = 12 (k = 8) the final difference sits in value_regs[0].
    b.sts(regA(1), px_base + 13, regS(1)); // px[i][13]
    b.aadd(regA(1), regA(1), regA(7));
    b.aadd(regA(2), regA(2), regA(6));
    b.asub(regA(0), regA(2), regA(5));
    b.jam("loop");
    b.halt();

    // Reference.
    for (std::size_t i = 0; i < n; ++i) {
        double *row = px.data() + i * stride;
        double prev = cx[i * stride + 4];
        for (unsigned j = 4; j <= 12; ++j) {
            double next = prev - row[j];
            row[j] = prev;
            prev = next;
        }
        row[13] = prev;
    }

    Kernel kernel;
    kernel.name = "lll10";
    kernel.description = "difference predictors";
    kernel.program = b.build();
    kernel.expected = expectArray(px_base, px);
    return kernel;
}

} // namespace ruu
