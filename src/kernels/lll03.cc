/**
 * @file
 * LLL3 — inner product:
 *
 *   Q = 0
 *   DO 3 k = 1,n
 * 3 Q = Q + Z(k)*X(k)
 *
 * A single serial accumulation chain through the 6-cycle FP adder: the
 * classic dependence-limited loop. The loop bound lives in a B
 * register and is moved to an A register every iteration before the
 * branch test — the CFT idiom the paper's §6.3 calls out as the
 * pattern that keeps branch conditions dependent on B-to-A transfers.
 *
 * Memory map: Z @1000, X @3000; result Q stored to @100.
 */

#include "kernels/data.hh"
#include "kernels/lll.hh"

namespace ruu
{

Kernel
makeLll03()
{
    constexpr std::size_t n = 1000;
    constexpr Addr z_base = 1000, x_base = 3000, q_addr = 100;

    DataGen gen(0x33);
    std::vector<double> z = gen.vec(n);
    std::vector<double> x = gen.vec(n);

    ProgramBuilder b("lll03");
    initArray(b, z_base, z);
    initArray(b, x_base, x);

    b.smovi(regS(4), 0);                 // Q = 0.0 (bit pattern 0)
    b.amovi(regA(1), 0);                 // k
    b.amovi(regA(6), 1);
    b.amovi(regA(5), static_cast<std::int64_t>(n));
    b.movba(regB(1), regA(5));           // loop bound parked in B1

    b.label("loop");
    b.lds(regS(1), regA(1), z_base);
    b.lds(regS(2), regA(1), x_base);
    b.fmul(regS(1), regS(1), regS(2));
    b.fadd(regS(4), regS(4), regS(1));
    b.aadd(regA(1), regA(1), regA(6));
    b.movab(regA(4), regB(1));           // bound back from B1 (§6.3 idiom)
    b.asub(regA(0), regA(1), regA(4));
    b.jam("loop");
    b.amovi(regA(3), 0);
    b.sts(regA(3), q_addr, regS(4));
    b.halt();

    // Reference.
    double q = 0.0;
    for (std::size_t k = 0; k < n; ++k)
        q = q + (z[k] * x[k]);

    Kernel kernel;
    kernel.name = "lll03";
    kernel.description = "inner product";
    kernel.program = b.build();
    kernel.expected = expectArray(q_addr, {q});
    return kernel;
}

} // namespace ruu
