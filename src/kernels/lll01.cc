/**
 * @file
 * LLL1 — hydro fragment:
 *
 *   DO 1 k = 1,n
 * 1 X(k) = Q + Y(k)*(R*Z(k+10) + T*Z(k+11))
 *
 * Straight-line vectorizable loop; every iteration is independent, so
 * it rewards any mechanism that lets loads run ahead of the FP chain.
 *
 * Memory map: X @1000, Y @3000, Z @5000; Q,R,T @100..102.
 */

#include "kernels/data.hh"
#include "kernels/lll.hh"

namespace ruu
{

Kernel
makeLll01()
{
    constexpr std::size_t n = 600;
    constexpr Addr x_base = 1000, y_base = 3000, z_base = 5000;
    constexpr Addr const_base = 100;

    DataGen gen(0x11);
    std::vector<double> y = gen.vec(n);
    std::vector<double> z = gen.vec(n + 11);
    const double q = gen.next(), r = gen.next(), t = gen.next();

    ProgramBuilder b("lll01");
    initArray(b, y_base, y);
    initArray(b, z_base, z);
    b.fword(const_base + 0, q);
    b.fword(const_base + 1, r);
    b.fword(const_base + 2, t);

    // Prologue: constants into S4..S6, loop registers A1=k, A5=n, A6=1.
    b.amovi(regA(3), 0);
    b.lds(regS(4), regA(3), const_base + 0); // Q
    b.lds(regS(5), regA(3), const_base + 1); // R
    b.lds(regS(6), regA(3), const_base + 2); // T
    b.amovi(regA(1), 0);
    b.amovi(regA(6), 1);
    b.amovi(regA(5), static_cast<std::int64_t>(n));

    // The loop body is list-scheduled the way CFT would emit it: all
    // loads first, the loop-control address arithmetic hoisted under
    // them (the store compensates with displacement -1), then the FP
    // expression tree.
    b.label("loop");
    b.lds(regS(1), regA(1), z_base + 10);     // Z(k+10)
    b.lds(regS(2), regA(1), z_base + 11);     // Z(k+11)
    b.lds(regS(3), regA(1), y_base);          // Y(k)
    b.aadd(regA(1), regA(1), regA(6));
    b.asub(regA(0), regA(1), regA(5));
    b.fmul(regS(1), regS(5), regS(1));        // R*Z(k+10)
    b.fmul(regS(2), regS(6), regS(2));        // T*Z(k+11)
    b.fadd(regS(1), regS(1), regS(2));
    b.fmul(regS(1), regS(3), regS(1));
    b.fadd(regS(1), regS(4), regS(1));        // Q + ...
    b.sts(regA(1), x_base - 1, regS(1));      // X(k)
    b.jam("loop");
    b.halt();

    // Reference, mirroring the assembly's operation order.
    std::vector<double> x(n);
    for (std::size_t k = 0; k < n; ++k)
        x[k] = q + (y[k] * ((r * z[k + 10]) + (t * z[k + 11])));

    Kernel kernel;
    kernel.name = "lll01";
    kernel.description = "hydro fragment";
    kernel.program = b.build();
    kernel.expected = expectArray(x_base, x);
    return kernel;
}

} // namespace ruu
