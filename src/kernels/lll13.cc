/**
 * @file
 * LLL13 — 2-D particle in cell:
 *
 *   i1 = P(1,ip); j1 = P(2,ip)                (float -> int, mod 64)
 *   P(3,ip) = P(3,ip) + B(i1,j1)
 *   i2 = P(3,ip); j2 = P(4,ip)                (float -> int, mod 64)
 *   P(1,ip) = P(1,ip) + Y(i2+32)
 *   P(2,ip) = P(2,ip) + Z(j2+32)
 *   i2 = i2 + E(i2+32); j2 = j2 + F(j2+32)
 *   H(i2,j2) = H(i2,j2) + 1.0
 *
 * Scatter/gather with data-dependent addressing: indices come from
 * float-to-int conversions (SFIX on the FP-add unit), masking runs on
 * the scalar-logical unit, and the 2-D index arithmetic uses the shift
 * and scalar-add units — the widest functional-unit mix in the suite.
 * H rows are padded to stride 80 so the E/F displacements stay in
 * bounds without the original's implicit dimension assumptions.
 *
 * Memory map: P @1000 (n x 4), Y @2000, Z @2200, E @2400, F @2600,
 * B @3000 (64x64), H @8000 (80x80); 1.0 @100.
 */

#include "kernels/data.hh"
#include "kernels/lll.hh"

namespace ruu
{

Kernel
makeLll13()
{
    constexpr std::size_t n = 200;
    constexpr Addr p_base = 1000, y_base = 2000, z_base = 2200;
    constexpr Addr e_base = 2400, f_base = 2600, b_base = 3000;
    constexpr Addr h_base = 8000, one_addr = 100;

    DataGen gen(0xdd);
    std::vector<double> p(n * 4);
    for (std::size_t ip = 0; ip < n; ++ip) {
        p[ip * 4 + 0] = gen.next(0.0, 64.0);
        p[ip * 4 + 1] = gen.next(0.0, 64.0);
        p[ip * 4 + 2] = gen.next(0.0, 64.0);
        p[ip * 4 + 3] = gen.next(0.0, 64.0);
    }
    std::vector<double> y = gen.vec(96, -0.5, 0.5);
    std::vector<double> z = gen.vec(96, -0.5, 0.5);
    std::vector<double> e = gen.vec(96, 1.0, 8.0);
    std::vector<double> f = gen.vec(96, 1.0, 8.0);
    std::vector<double> bb = gen.vec(64 * 64, 0.0, 0.9);
    std::vector<double> h(80 * 80, 0.0);

    ProgramBuilder b("lll13");
    initArray(b, p_base, p);
    initArray(b, y_base, y);
    initArray(b, z_base, z);
    initArray(b, e_base, e);
    initArray(b, f_base, f);
    initArray(b, b_base, bb);
    b.fword(one_addr, 1.0);

    // T0 = integer mask 63, T1 = 1.0.
    b.smovi(regS(7), 63);
    b.movts(regT(0), regS(7));
    b.amovi(regA(3), 0);
    b.lds(regS(7), regA(3), one_addr);
    b.movts(regT(1), regS(7));

    b.amovi(regA(1), 0);  // ip*4
    b.amovi(regA(6), 1);
    b.amovi(regA(7), 4);
    b.amovi(regA(4), 80); // H row stride, for the address multiplier
    b.amovi(regA(5), static_cast<std::int64_t>(n * 4));

    // The three independent particle loads are hoisted to the top of
    // the body so the conversion/mask chains overlap them.
    b.label("loop");
    b.lds(regS(1), regA(1), p_base + 0);   // p0
    b.lds(regS(4), regA(1), p_base + 1);   // p1
    b.lds(regS(7), regA(1), p_base + 2);   // p2
    b.sfix(regS(2), regS(1));
    b.movst(regS(3), regT(0));             // mask
    b.sand(regS(2), regS(2), regS(3));     // i1
    b.sfix(regS(5), regS(4));
    b.sand(regS(5), regS(5), regS(3));     // j1
    b.movs(regS(6), regS(5));
    b.sshl(regS(6), 6);                    // j1*64
    b.sadd(regS(6), regS(6), regS(2));     // + i1
    b.movas(regA(2), regS(6));
    b.lds(regS(6), regA(2), b_base);       // b[j1][i1]
    b.fadd(regS(7), regS(7), regS(6));
    b.sts(regA(1), p_base + 2, regS(7));   // p2 += b[j1][i1]
    b.sfix(regS(6), regS(7));
    b.sand(regS(6), regS(6), regS(3));     // i2
    b.lds(regS(7), regA(1), p_base + 3);   // p3
    b.sfix(regS(7), regS(7));
    b.sand(regS(7), regS(7), regS(3));     // j2
    b.movas(regA(2), regS(6));             // i2
    b.lds(regS(2), regA(2), y_base + 32);  // y[i2+32]
    b.fadd(regS(1), regS(1), regS(2));
    b.sts(regA(1), p_base + 0, regS(1));   // p0 += y[i2+32]
    b.movas(regA(3), regS(7));             // j2
    b.lds(regS(2), regA(3), z_base + 32);  // z[j2+32]
    b.fadd(regS(4), regS(4), regS(2));
    b.sts(regA(1), p_base + 1, regS(4));   // p1 += z[j2+32]
    b.lds(regS(2), regA(2), e_base + 32);  // e[i2+32]
    b.sfix(regS(2), regS(2));
    b.sadd(regS(6), regS(6), regS(2));     // i2 += (int)e
    b.lds(regS(2), regA(3), f_base + 32);  // f[j2+32]
    b.sfix(regS(2), regS(2));
    b.sadd(regS(7), regS(7), regS(2));     // j2 += (int)f
    // The H row address goes through the address-multiply unit, the
    // way CFT indexes 2-D arrays with a non-power-of-two stride.
    b.movas(regA(2), regS(7));             // j2
    b.amul(regA(2), regA(2), regA(4));     // j2*80 (A4 = row stride)
    b.movas(regA(3), regS(6));             // i2
    b.aadd(regA(2), regA(2), regA(3));     // j2*80 + i2
    b.lds(regS(2), regA(2), h_base);       // h[j2][i2]
    b.movst(regS(5), regT(1));             // 1.0
    b.fadd(regS(2), regS(2), regS(5));
    b.sts(regA(2), h_base, regS(2));
    b.aadd(regA(1), regA(1), regA(7));
    b.asub(regA(0), regA(1), regA(5));
    b.jam("loop");
    b.halt();

    // Reference, mirroring the assembly exactly.
    for (std::size_t ip = 0; ip < n; ++ip) {
        double *row = p.data() + ip * 4;
        std::int64_t i1 = static_cast<std::int64_t>(row[0]) & 63;
        std::int64_t j1 = static_cast<std::int64_t>(row[1]) & 63;
        row[2] = row[2] + bb[j1 * 64 + i1];
        std::int64_t i2 = static_cast<std::int64_t>(row[2]) & 63;
        std::int64_t j2 = static_cast<std::int64_t>(row[3]) & 63;
        row[0] = row[0] + y[i2 + 32];
        row[1] = row[1] + z[j2 + 32];
        i2 += static_cast<std::int64_t>(e[i2 + 32]);
        j2 += static_cast<std::int64_t>(f[j2 + 32]);
        h[j2 * 80 + i2] = h[j2 * 80 + i2] + 1.0;
    }

    Kernel kernel;
    kernel.name = "lll13";
    kernel.description = "2-D particle in cell";
    kernel.program = b.build();
    kernel.expected = expectArray(p_base, p);
    appendExpect(kernel.expected, expectArray(h_base, h));
    return kernel;
}

} // namespace ruu
