/**
 * @file
 * LLL5 — tri-diagonal elimination, below diagonal:
 *
 *   DO 5 i = 2,n
 * 5 X(i) = Z(i)*(Y(i) - X(i-1))
 *
 * A first-order linear recurrence: each iteration consumes the value
 * the previous one produced. The compiler keeps X(i-1) live in a
 * register across iterations, so the chain runs fsub -> fmul without
 * touching memory — the loop the no-bypass RUU handles worst.
 *
 * Memory map: X @1000, Y @3000, Z @5000.
 */

#include "kernels/data.hh"
#include "kernels/lll.hh"

namespace ruu
{

Kernel
makeLll05()
{
    constexpr std::size_t n = 1200;
    constexpr Addr x_base = 1000, y_base = 3000, z_base = 5000;

    DataGen gen(0x55);
    std::vector<double> x = gen.vec(n, 0.1, 1.0);
    std::vector<double> y = gen.vec(n);
    std::vector<double> z = gen.vec(n, 0.2, 0.9);

    ProgramBuilder b("lll05");
    initArray(b, x_base, x);
    initArray(b, y_base, y);
    initArray(b, z_base, z);

    b.amovi(regA(1), 1);                 // i = 1 (0-based)
    b.amovi(regA(6), 1);
    b.amovi(regA(5), static_cast<std::int64_t>(n));
    b.amovi(regA(3), 0);
    b.lds(regS(1), regA(3), x_base);     // S1 = x[0], carried value

    b.label("loop");
    b.lds(regS(2), regA(1), y_base);     // y[i]
    b.lds(regS(3), regA(1), z_base);     // z[i]
    b.fsub(regS(2), regS(2), regS(1));   // y[i] - x[i-1]
    b.fmul(regS(1), regS(3), regS(2));   // x[i] = z[i]*(...)
    b.sts(regA(1), x_base, regS(1));
    b.aadd(regA(1), regA(1), regA(6));
    b.asub(regA(0), regA(1), regA(5));
    b.jam("loop");
    b.halt();

    // Reference.
    for (std::size_t i = 1; i < n; ++i)
        x[i] = z[i] * (y[i] - x[i - 1]);

    Kernel kernel;
    kernel.name = "lll05";
    kernel.description = "tri-diagonal elimination, below diagonal";
    kernel.program = b.build();
    kernel.expected = expectArray(x_base, x);
    return kernel;
}

} // namespace ruu
