/**
 * @file
 * Deterministic input-data generation for the Livermore kernels.
 *
 * The paper's inputs came from the LLL FORTRAN harness; any fixed data
 * with non-degenerate values exercises the same dependence structure.
 * A seeded xorshift generator makes every build of every kernel
 * bit-reproducible, which the functional-vs-reference tests rely on.
 */

#ifndef RUU_KERNELS_DATA_HH
#define RUU_KERNELS_DATA_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "asm/builder.hh"
#include "common/types.hh"

namespace ruu
{

/** Deterministic xorshift64* stream of doubles. */
class DataGen
{
  public:
    explicit DataGen(std::uint64_t seed);

    /** Next double uniformly in [lo, hi). */
    double next(double lo = 0.01, double hi = 1.0);

    /** A vector of @p n doubles in [lo, hi). */
    std::vector<double> vec(std::size_t n, double lo = 0.01,
                            double hi = 1.0);

  private:
    std::uint64_t _state;
};

/**
 * Write @p values into the program's data image starting at word
 * address @p base (one double per word).
 */
void initArray(ProgramBuilder &builder, Addr base,
               const std::vector<double> &values);

/** Expected-memory entries for @p values at @p base (test oracles). */
std::vector<std::pair<Addr, Word>>
expectArray(Addr base, const std::vector<double> &values);

/** Append @p more expectations onto @p into. */
void appendExpect(std::vector<std::pair<Addr, Word>> &into,
                  const std::vector<std::pair<Addr, Word>> &more);

} // namespace ruu

#endif // RUU_KERNELS_DATA_HH
