/**
 * @file
 * LLL11 — first sum:
 *
 *   X(1) = Y(1)
 *   DO 11 k = 2,n
 * 11 X(k) = X(k-1) + Y(k)
 *
 * A prefix sum: the tightest recurrence of the suite — one load, one
 * dependent 6-cycle add, one store per iteration. The running sum
 * stays in S1; the loop bound is parked in B1 and transferred back
 * through an A register for the branch test (§6.3 idiom).
 *
 * Memory map: X @1000, Y @3000.
 */

#include "kernels/data.hh"
#include "kernels/lll.hh"

namespace ruu
{

Kernel
makeLll11()
{
    constexpr std::size_t n = 1500;
    constexpr Addr x_base = 1000, y_base = 3000;

    DataGen gen(0xbb);
    std::vector<double> y = gen.vec(n);

    ProgramBuilder b("lll11");
    initArray(b, y_base, y);

    b.amovi(regA(1), 1);                 // k = 1
    b.amovi(regA(6), 1);
    b.amovi(regA(5), static_cast<std::int64_t>(n));
    b.movba(regB(1), regA(5));
    b.amovi(regA(3), 0);
    b.lds(regS(1), regA(3), y_base);     // x[0] = y[0]
    b.sts(regA(3), x_base, regS(1));

    b.label("loop");
    b.lds(regS(2), regA(1), y_base);     // y[k]
    b.fadd(regS(1), regS(1), regS(2));   // x[k] = x[k-1] + y[k]
    b.sts(regA(1), x_base, regS(1));
    b.aadd(regA(1), regA(1), regA(6));
    b.movab(regA(4), regB(1));
    b.asub(regA(0), regA(1), regA(4));
    b.jam("loop");
    b.halt();

    // Reference.
    std::vector<double> x(n);
    x[0] = y[0];
    for (std::size_t k = 1; k < n; ++k)
        x[k] = x[k - 1] + y[k];

    Kernel kernel;
    kernel.name = "lll11";
    kernel.description = "first sum";
    kernel.program = b.build();
    kernel.expected = expectArray(x_base, x);
    return kernel;
}

} // namespace ruu
