/**
 * @file
 * Binary encoding of model-ISA instructions into 16-bit parcels.
 *
 * Layout of the first parcel: bits [15:9] hold the opcode, bits [8:0]
 * hold up to three 3-bit register fields (i, j, k) or an i field plus a
 * 6-bit jk field (B/T register indices, shift counts, immediate high
 * bits). Two-parcel instructions carry the low 16 bits of their
 * immediate, displacement, or branch target in the second parcel:
 *
 *  - RImm:     22-bit signed immediate  (6 high bits in parcel 1)
 *  - MemLoad/MemStore: 19-bit signed displacement (3 high bits)
 *  - Branch:   22-bit parcel-address target (6 high bits)
 *
 * The encoding exists so the instruction buffers can be modeled with
 * real parcel occupancy and so programs round-trip through a binary
 * image; the simulators otherwise work on decoded Instruction values.
 */

#ifndef RUU_ISA_ENCODING_HH
#define RUU_ISA_ENCODING_HH

#include <cstddef>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace ruu
{

/** Immediate range limits implied by the encoding. */
inline constexpr std::int64_t kImmMax = (1 << 21) - 1;
inline constexpr std::int64_t kImmMin = -(1 << 21);
inline constexpr std::int64_t kDispMax = (1 << 18) - 1;
inline constexpr std::int64_t kDispMin = -(1 << 18);
inline constexpr ParcelAddr kTargetMax = (1u << 22) - 1;

/** True when @p inst's immediate/displacement/target fits the encoding. */
bool encodable(const Instruction &inst);

/**
 * Encode @p inst into @p out (room for 2 parcels).
 * @return the number of parcels written (1 or 2).
 * Panics when the instruction is not encodable; callers validate first.
 */
unsigned encode(const Instruction &inst, Parcel out[2]);

/**
 * Decode one instruction starting at @p parcels.
 *
 * @param parcels  pointer to at least @p avail parcels
 * @param avail    parcels available
 * @return the decoded instruction and its parcel count, or nullopt on an
 *         illegal opcode or truncated two-parcel instruction.
 */
std::optional<std::pair<Instruction, unsigned>>
decode(const Parcel *parcels, std::size_t avail);

/** Encode a whole instruction sequence into a parcel image. */
std::vector<Parcel> encodeAll(const std::vector<Instruction> &insts);

/**
 * Decode an entire parcel image; returns nullopt when any instruction
 * is malformed.
 */
std::optional<std::vector<Instruction>>
decodeAll(const std::vector<Parcel> &parcels);

} // namespace ruu

#endif // RUU_ISA_ENCODING_HH
