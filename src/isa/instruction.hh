/**
 * @file
 * A decoded instruction of the model ISA.
 *
 * Instruction is a plain value type: opcode plus operand fields, with
 * branch targets already resolved to parcel addresses. The assembler
 * (src/asm) produces them; the functional simulator and the issue-logic
 * cores consume them.
 */

#ifndef RUU_ISA_INSTRUCTION_HH
#define RUU_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/opcode.hh"
#include "isa/reg.hh"

namespace ruu
{

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::NOP;

    /** Destination register; invalid for stores, branches, HALT, NOP. */
    RegId dst;

    /**
     * First source. For memory operations this is the base A register;
     * for conditional branches it is A0 or S0; for in-place shifts it
     * equals dst.
     */
    RegId src1;

    /** Second source. For stores this is the data register. */
    RegId src2;

    /** Immediate: imm22 for RImm, disp22 for memory, count for shifts. */
    std::int64_t imm = 0;

    /** Resolved branch target (parcel address); branches only. */
    ParcelAddr target = 0;

    /** Instruction length in 16-bit parcels (1 or 2). */
    unsigned parcels() const { return opInfo(op).parcels; }

    /** Functional-unit class that executes this instruction. */
    FuKind fu() const { return opInfo(op).fu; }

    /** Number of valid source registers (0-2). */
    unsigned numSrcs() const;

    /** The i-th valid source register (0-based). */
    RegId src(unsigned i) const;

    /** All source registers, invalid entries possible; prefer src(). */
    std::array<RegId, 2> rawSrcs() const { return {src1, src2}; }

    /** True when this instruction writes a register. */
    bool writesReg() const { return dst.valid(); }

    bool operator==(const Instruction &other) const = default;

    // -- convenience constructors used by the builder and tests ---------

    /** Three-register form (AADD, FMUL, ...). */
    static Instruction rrr(Opcode op, RegId dst, RegId a, RegId b);

    /** Two-register form (FRECIP, MOVA, inter-file moves, ...). */
    static Instruction rr(Opcode op, RegId dst, RegId src);

    /** Immediate form (AMOVI, SMOVI). */
    static Instruction rimm(Opcode op, RegId dst, std::int64_t imm);

    /** In-place shift (SSHL/SSHR). */
    static Instruction shift(Opcode op, RegId reg, unsigned count);

    /** Load: dst <- mem[base + disp]. */
    static Instruction load(Opcode op, RegId dst, RegId base,
                            std::int64_t disp);

    /** Store: mem[base + disp] <- data. */
    static Instruction store(Opcode op, RegId base, std::int64_t disp,
                             RegId data);

    /** Branch with an already-resolved parcel-address target. */
    static Instruction branch(Opcode op, ParcelAddr target);

    /** Bare form (HALT, NOP, RTI, EINT, DINT). */
    static Instruction bare(Opcode op);

    /** Destination-only form (MFEPC, MFCAUSE). */
    static Instruction rdst(Opcode op, RegId dst);
};

} // namespace ruu

#endif // RUU_ISA_INSTRUCTION_HH
