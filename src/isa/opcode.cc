#include "isa/opcode.hh"

#include <algorithm>
#include <array>
#include <cctype>

#include "common/logging.hh"

namespace ruu
{

namespace
{

constexpr std::array<OpInfo, kNumOpcodes> kOpTable = {{
    // mnemonic  fu                     form                 parcels cond
    {"aadd",   FuKind::AddrAdd,       OperandForm::Rrr,      1,
     CondReg::NotABranch},
    {"asub",   FuKind::AddrAdd,       OperandForm::Rrr,      1,
     CondReg::NotABranch},
    {"amul",   FuKind::AddrMul,       OperandForm::Rrr,      1,
     CondReg::NotABranch},
    {"amovi",  FuKind::Transmit,      OperandForm::RImm,     2,
     CondReg::NotABranch},
    {"mova",   FuKind::Transmit,      OperandForm::Rr,       1,
     CondReg::NotABranch},

    {"sadd",   FuKind::ScalarAdd,     OperandForm::Rrr,      1,
     CondReg::NotABranch},
    {"ssub",   FuKind::ScalarAdd,     OperandForm::Rrr,      1,
     CondReg::NotABranch},
    {"sand",   FuKind::ScalarLogical, OperandForm::Rrr,      1,
     CondReg::NotABranch},
    {"sor",    FuKind::ScalarLogical, OperandForm::Rrr,      1,
     CondReg::NotABranch},
    {"sxor",   FuKind::ScalarLogical, OperandForm::Rrr,      1,
     CondReg::NotABranch},
    {"sshl",   FuKind::ScalarShift,   OperandForm::RShift,   1,
     CondReg::NotABranch},
    {"sshr",   FuKind::ScalarShift,   OperandForm::RShift,   1,
     CondReg::NotABranch},
    {"spop",   FuKind::PopLz,         OperandForm::Rr,       1,
     CondReg::NotABranch},
    {"slz",    FuKind::PopLz,         OperandForm::Rr,       1,
     CondReg::NotABranch},
    {"smovi",  FuKind::Transmit,      OperandForm::RImm,     2,
     CondReg::NotABranch},
    {"movs",   FuKind::Transmit,      OperandForm::Rr,       1,
     CondReg::NotABranch},

    {"fadd",   FuKind::FpAdd,         OperandForm::Rrr,      1,
     CondReg::NotABranch},
    {"fsub",   FuKind::FpAdd,         OperandForm::Rrr,      1,
     CondReg::NotABranch},
    {"fmul",   FuKind::FpMul,         OperandForm::Rrr,      1,
     CondReg::NotABranch},
    {"frecip", FuKind::FpRecip,       OperandForm::Rr,       1,
     CondReg::NotABranch},
    {"sfix",   FuKind::FpAdd,         OperandForm::Rr,       1,
     CondReg::NotABranch},
    {"sflt",   FuKind::FpAdd,         OperandForm::Rr,       1,
     CondReg::NotABranch},

    {"movsa",  FuKind::Transmit,      OperandForm::Rr,       1,
     CondReg::NotABranch},
    {"movas",  FuKind::Transmit,      OperandForm::Rr,       1,
     CondReg::NotABranch},
    {"movba",  FuKind::Transmit,      OperandForm::Rr,       1,
     CondReg::NotABranch},
    {"movab",  FuKind::Transmit,      OperandForm::Rr,       1,
     CondReg::NotABranch},
    {"movts",  FuKind::Transmit,      OperandForm::Rr,       1,
     CondReg::NotABranch},
    {"movst",  FuKind::Transmit,      OperandForm::Rr,       1,
     CondReg::NotABranch},

    {"lda",    FuKind::Memory,        OperandForm::MemLoad,  2,
     CondReg::NotABranch},
    {"lds",    FuKind::Memory,        OperandForm::MemLoad,  2,
     CondReg::NotABranch},
    {"sta",    FuKind::Memory,        OperandForm::MemStore, 2,
     CondReg::NotABranch},
    {"sts",    FuKind::Memory,        OperandForm::MemStore, 2,
     CondReg::NotABranch},

    {"j",      FuKind::None,          OperandForm::Branch,   2,
     CondReg::Always},
    {"jaz",    FuKind::None,          OperandForm::Branch,   2, CondReg::A0},
    {"jan",    FuKind::None,          OperandForm::Branch,   2, CondReg::A0},
    {"jap",    FuKind::None,          OperandForm::Branch,   2, CondReg::A0},
    {"jam",    FuKind::None,          OperandForm::Branch,   2, CondReg::A0},
    {"jsz",    FuKind::None,          OperandForm::Branch,   2, CondReg::S0},
    {"jsn",    FuKind::None,          OperandForm::Branch,   2, CondReg::S0},
    {"jsp",    FuKind::None,          OperandForm::Branch,   2, CondReg::S0},
    {"jsm",    FuKind::None,          OperandForm::Branch,   2, CondReg::S0},
    {"halt",   FuKind::None,          OperandForm::Bare,     1,
     CondReg::NotABranch},
    {"nop",    FuKind::None,          OperandForm::Bare,     1,
     CondReg::NotABranch},

    {"rti",    FuKind::None,          OperandForm::Bare,     1,
     CondReg::NotABranch},
    {"eint",   FuKind::None,          OperandForm::Bare,     1,
     CondReg::NotABranch},
    {"dint",   FuKind::None,          OperandForm::Bare,     1,
     CondReg::NotABranch},
    {"mfepc",  FuKind::Transmit,      OperandForm::RDst,     1,
     CondReg::NotABranch},
    {"mfcause", FuKind::Transmit,     OperandForm::RDst,     1,
     CondReg::NotABranch},
}};

constexpr std::array<const char *, kNumFuKinds> kFuNames = {{
    "addr_add", "addr_mul", "scalar_add", "scalar_logical", "scalar_shift",
    "pop_lz", "fp_add", "fp_mul", "fp_recip", "memory", "transmit", "none",
}};

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    unsigned idx = static_cast<unsigned>(op);
    ruu_assert(idx < kNumOpcodes, "bad opcode %u", idx);
    return kOpTable[idx];
}

const char *
fuKindName(FuKind kind)
{
    unsigned idx = static_cast<unsigned>(kind);
    ruu_assert(idx < kNumFuKinds, "bad FU kind %u", idx);
    return kFuNames[idx];
}

std::optional<Opcode>
opcodeFromMnemonic(const std::string &name)
{
    std::string lower(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    for (unsigned i = 0; i < kNumOpcodes; ++i)
        if (lower == kOpTable[i].mnemonic)
            return static_cast<Opcode>(i);
    return std::nullopt;
}

bool
isBranch(Opcode op)
{
    return opInfo(op).form == OperandForm::Branch;
}

bool
isCondBranch(Opcode op)
{
    CondReg c = opInfo(op).cond;
    return c == CondReg::A0 || c == CondReg::S0;
}

bool
isLoad(Opcode op)
{
    return op == Opcode::LDA || op == Opcode::LDS;
}

bool
isStore(Opcode op)
{
    return op == Opcode::STA || op == Opcode::STS;
}

bool
isNopLike(Opcode op)
{
    return op == Opcode::NOP || op == Opcode::RTI ||
           op == Opcode::EINT || op == Opcode::DINT;
}

bool
isProgramExit(Opcode op)
{
    return op == Opcode::HALT || op == Opcode::RTI;
}

} // namespace ruu
