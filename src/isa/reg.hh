/**
 * @file
 * Register identifiers for the model architecture.
 *
 * The register file mirrors the CRAY-1 scalar unit used in the paper:
 * 8 A (address) registers, 8 S (scalar) registers, 64 B (address-save)
 * registers and 64 T (scalar-save) registers — 144 registers total,
 * the number the paper uses when sizing tag hardware.
 */

#ifndef RUU_ISA_REG_HH
#define RUU_ISA_REG_HH

#include <cstdint>
#include <optional>
#include <string>

namespace ruu
{

/** The four architectural register files. */
enum class RegFile : std::uint8_t
{
    A, //!< 8 address registers (loop counters, memory addressing)
    S, //!< 8 scalar registers (integer and floating-point data)
    B, //!< 64 address-save registers
    T, //!< 64 scalar-save registers
};

/** Number of registers in @p file. */
constexpr unsigned
regFileSize(RegFile file)
{
    return (file == RegFile::A || file == RegFile::S) ? 8u : 64u;
}

/** Total architectural registers across all files. */
inline constexpr unsigned kNumArchRegs = 8 + 8 + 64 + 64;

/**
 * A single architectural register: file + index.
 *
 * A default-constructed RegId is invalid and represents "no register"
 * (e.g. the destination of a store or branch).
 */
class RegId
{
  public:
    /** The invalid register. */
    constexpr RegId() : _file(RegFile::A), _index(kInvalidIndex) {}

    /** Register @p index of @p file; panics on out-of-range (checked). */
    constexpr RegId(RegFile file, unsigned index)
        : _file(file), _index(static_cast<std::uint8_t>(index))
    {}

    /** True when this names a real register. */
    constexpr bool valid() const { return _index != kInvalidIndex; }

    /** Register file; only meaningful when valid(). */
    constexpr RegFile file() const { return _file; }

    /** Index within the file; only meaningful when valid(). */
    constexpr unsigned index() const { return _index; }

    /**
     * Flat register number in [0, 144): A0..A7 = 0..7, S0..S7 = 8..15,
     * B0..B63 = 16..79, T0..T63 = 80..143. Used by scoreboards and the
     * tag units, which treat the register space uniformly.
     */
    constexpr unsigned flat() const
    {
        switch (_file) {
          case RegFile::A: return _index;
          case RegFile::S: return 8u + _index;
          case RegFile::B: return 16u + _index;
          case RegFile::T: return 80u + _index;
        }
        return 0;
    }

    /** Inverse of flat(). */
    static constexpr RegId fromFlat(unsigned flat_num)
    {
        if (flat_num < 8)
            return RegId(RegFile::A, flat_num);
        if (flat_num < 16)
            return RegId(RegFile::S, flat_num - 8);
        if (flat_num < 80)
            return RegId(RegFile::B, flat_num - 16);
        return RegId(RegFile::T, flat_num - 80);
    }

    constexpr bool operator==(const RegId &other) const = default;

    /** "A3", "T17", or "-" for the invalid register. */
    std::string toString() const;

    /** Parse "A3" / "b12" style names; nullopt on malformed input. */
    static std::optional<RegId> parse(const std::string &text);

  private:
    static constexpr std::uint8_t kInvalidIndex = 0xff;

    RegFile _file;
    std::uint8_t _index;
};

/** Shorthand constructors used heavily by the kernel builder code. */
constexpr RegId regA(unsigned i) { return RegId(RegFile::A, i); }
constexpr RegId regS(unsigned i) { return RegId(RegFile::S, i); }
constexpr RegId regB(unsigned i) { return RegId(RegFile::B, i); }
constexpr RegId regT(unsigned i) { return RegId(RegFile::T, i); }

} // namespace ruu

#endif // RUU_ISA_REG_HH
