/**
 * @file
 * Textual disassembly of model-ISA instructions, in the same syntax the
 * assembler (src/asm) accepts, so disassemble -> assemble round-trips.
 */

#ifndef RUU_ISA_DISASM_HH
#define RUU_ISA_DISASM_HH

#include <string>

#include "isa/instruction.hh"

namespace ruu
{

/**
 * Render @p inst as assembler text, e.g. "fadd S1, S2, S3" or
 * "lds S4, 16(A2)". Branch targets are printed as "@<parcel-addr>".
 */
std::string disassemble(const Instruction &inst);

} // namespace ruu

#endif // RUU_ISA_DISASM_HH
