#include "isa/encoding.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace ruu
{

namespace
{

/** Register files used by each opcode's (dst, src) operands. */
struct RegFiles
{
    RegFile dst;
    RegFile src;
};

/** Operand register files for Rr / Rrr / RImm / RShift opcodes. */
RegFiles
operandFiles(Opcode op)
{
    switch (op) {
      case Opcode::AADD:
      case Opcode::ASUB:
      case Opcode::AMUL:
      case Opcode::AMOVI:
      case Opcode::MOVA:
        return {RegFile::A, RegFile::A};
      case Opcode::MOVSA:
        return {RegFile::S, RegFile::A};
      case Opcode::MOVAS:
        return {RegFile::A, RegFile::S};
      case Opcode::MOVBA:
        return {RegFile::B, RegFile::A};
      case Opcode::MOVAB:
        return {RegFile::A, RegFile::B};
      case Opcode::MOVTS:
        return {RegFile::T, RegFile::S};
      case Opcode::MOVST:
        return {RegFile::S, RegFile::T};
      default:
        // All remaining register-register opcodes operate on S registers.
        return {RegFile::S, RegFile::S};
    }
}

/** Data register file for loads/stores (LDA/STA use A, LDS/STS use S). */
RegFile
memDataFile(Opcode op)
{
    return (op == Opcode::LDA || op == Opcode::STA) ? RegFile::A : RegFile::S;
}

/** True when either operand of @p op indexes a 64-entry (B/T) file. */
bool
usesWideIndex(Opcode op)
{
    switch (op) {
      case Opcode::MOVBA:
      case Opcode::MOVAB:
      case Opcode::MOVTS:
      case Opcode::MOVST:
        return true;
      default:
        return false;
    }
}

} // namespace

bool
encodable(const Instruction &inst)
{
    switch (opInfo(inst.op).form) {
      case OperandForm::RImm:
        return inst.imm >= kImmMin && inst.imm <= kImmMax;
      case OperandForm::MemLoad:
      case OperandForm::MemStore:
        return inst.imm >= kDispMin && inst.imm <= kDispMax;
      case OperandForm::Branch:
        return inst.target <= kTargetMax;
      default:
        return true;
    }
}

unsigned
encode(const Instruction &inst, Parcel out[2])
{
    ruu_assert(encodable(inst), "operand of %s out of encodable range",
               mnemonic(inst.op));

    std::uint64_t p1 = 0;
    p1 = insertBits(p1, 9, 7, static_cast<std::uint64_t>(inst.op));
    std::uint64_t p2 = 0;
    unsigned parcels = opInfo(inst.op).parcels;

    switch (opInfo(inst.op).form) {
      case OperandForm::Rrr:
        p1 = insertBits(p1, 6, 3, inst.dst.index());
        p1 = insertBits(p1, 3, 3, inst.src1.index());
        p1 = insertBits(p1, 0, 3, inst.src2.index());
        break;
      case OperandForm::Rr:
        if (usesWideIndex(inst.op)) {
            // The 64-entry-file operand goes in the 6-bit jk field; the
            // 8-entry-file operand goes in the i field.
            bool dst_wide = inst.dst.file() == RegFile::B ||
                            inst.dst.file() == RegFile::T;
            if (dst_wide) {
                p1 = insertBits(p1, 0, 6, inst.dst.index());
                p1 = insertBits(p1, 6, 3, inst.src1.index());
            } else {
                p1 = insertBits(p1, 6, 3, inst.dst.index());
                p1 = insertBits(p1, 0, 6, inst.src1.index());
            }
        } else {
            p1 = insertBits(p1, 6, 3, inst.dst.index());
            p1 = insertBits(p1, 0, 3, inst.src1.index());
        }
        break;
      case OperandForm::RImm:
        p1 = insertBits(p1, 6, 3, inst.dst.index());
        p1 = insertBits(p1, 0, 6,
                        bits(static_cast<std::uint64_t>(inst.imm), 16, 6));
        p2 = bits(static_cast<std::uint64_t>(inst.imm), 0, 16);
        break;
      case OperandForm::RShift:
        p1 = insertBits(p1, 6, 3, inst.dst.index());
        p1 = insertBits(p1, 0, 6, static_cast<std::uint64_t>(inst.imm));
        break;
      case OperandForm::MemLoad:
        p1 = insertBits(p1, 6, 3, inst.dst.index());
        p1 = insertBits(p1, 3, 3, inst.src1.index());
        p1 = insertBits(p1, 0, 3,
                        bits(static_cast<std::uint64_t>(inst.imm), 16, 3));
        p2 = bits(static_cast<std::uint64_t>(inst.imm), 0, 16);
        break;
      case OperandForm::MemStore:
        p1 = insertBits(p1, 6, 3, inst.src2.index());
        p1 = insertBits(p1, 3, 3, inst.src1.index());
        p1 = insertBits(p1, 0, 3,
                        bits(static_cast<std::uint64_t>(inst.imm), 16, 3));
        p2 = bits(static_cast<std::uint64_t>(inst.imm), 0, 16);
        break;
      case OperandForm::Branch:
        p1 = insertBits(p1, 0, 6, bits(inst.target, 16, 6));
        p2 = bits(inst.target, 0, 16);
        break;
      case OperandForm::Bare:
        break;
      case OperandForm::RDst:
        p1 = insertBits(p1, 6, 3, inst.dst.index());
        break;
    }

    out[0] = static_cast<Parcel>(p1);
    if (parcels == 2)
        out[1] = static_cast<Parcel>(p2);
    return parcels;
}

std::optional<std::pair<Instruction, unsigned>>
decode(const Parcel *parcels, std::size_t avail)
{
    if (avail == 0)
        return std::nullopt;
    std::uint64_t p1 = parcels[0];
    unsigned opnum = static_cast<unsigned>(bits(p1, 9, 7));
    if (opnum >= kNumOpcodes)
        return std::nullopt;
    Opcode op = static_cast<Opcode>(opnum);
    const OpInfo &info = opInfo(op);
    if (info.parcels == 2 && avail < 2)
        return std::nullopt;
    std::uint64_t p2 = info.parcels == 2 ? parcels[1] : 0;

    Instruction inst;
    inst.op = op;
    RegFiles files = operandFiles(op);

    switch (info.form) {
      case OperandForm::Rrr:
        inst.dst = RegId(files.dst, static_cast<unsigned>(bits(p1, 6, 3)));
        inst.src1 = RegId(files.src, static_cast<unsigned>(bits(p1, 3, 3)));
        inst.src2 = RegId(files.src, static_cast<unsigned>(bits(p1, 0, 3)));
        break;
      case OperandForm::Rr:
        if (usesWideIndex(op)) {
            bool dst_wide = files.dst == RegFile::B ||
                            files.dst == RegFile::T;
            if (dst_wide) {
                inst.dst = RegId(files.dst,
                                 static_cast<unsigned>(bits(p1, 0, 6)));
                inst.src1 = RegId(files.src,
                                  static_cast<unsigned>(bits(p1, 6, 3)));
            } else {
                inst.dst = RegId(files.dst,
                                 static_cast<unsigned>(bits(p1, 6, 3)));
                inst.src1 = RegId(files.src,
                                  static_cast<unsigned>(bits(p1, 0, 6)));
            }
        } else {
            inst.dst = RegId(files.dst,
                             static_cast<unsigned>(bits(p1, 6, 3)));
            inst.src1 = RegId(files.src,
                              static_cast<unsigned>(bits(p1, 0, 3)));
        }
        break;
      case OperandForm::RImm:
        inst.dst = RegId(files.dst, static_cast<unsigned>(bits(p1, 6, 3)));
        inst.imm = sext((bits(p1, 0, 6) << 16) | p2, 22);
        break;
      case OperandForm::RShift:
        inst.dst = RegId(files.dst, static_cast<unsigned>(bits(p1, 6, 3)));
        inst.src1 = inst.dst;
        inst.imm = static_cast<std::int64_t>(bits(p1, 0, 6));
        break;
      case OperandForm::MemLoad:
        inst.dst = RegId(memDataFile(op),
                         static_cast<unsigned>(bits(p1, 6, 3)));
        inst.src1 = RegId(RegFile::A, static_cast<unsigned>(bits(p1, 3, 3)));
        inst.imm = sext((bits(p1, 0, 3) << 16) | p2, 19);
        break;
      case OperandForm::MemStore:
        inst.src2 = RegId(memDataFile(op),
                          static_cast<unsigned>(bits(p1, 6, 3)));
        inst.src1 = RegId(RegFile::A, static_cast<unsigned>(bits(p1, 3, 3)));
        inst.imm = sext((bits(p1, 0, 3) << 16) | p2, 19);
        break;
      case OperandForm::Branch:
        inst.target = static_cast<ParcelAddr>((bits(p1, 0, 6) << 16) | p2);
        switch (info.cond) {
          case CondReg::A0:
            inst.src1 = regA(0);
            break;
          case CondReg::S0:
            inst.src1 = regS(0);
            break;
          default:
            break;
        }
        break;
      case OperandForm::Bare:
        break;
      case OperandForm::RDst:
        inst.dst = RegId(files.dst,
                         static_cast<unsigned>(bits(p1, 6, 3)));
        break;
    }
    return std::make_pair(inst, info.parcels);
}

std::vector<Parcel>
encodeAll(const std::vector<Instruction> &insts)
{
    std::vector<Parcel> image;
    image.reserve(insts.size() * 2);
    for (const auto &inst : insts) {
        Parcel buf[2];
        unsigned n = encode(inst, buf);
        for (unsigned i = 0; i < n; ++i)
            image.push_back(buf[i]);
    }
    return image;
}

std::optional<std::vector<Instruction>>
decodeAll(const std::vector<Parcel> &parcels)
{
    std::vector<Instruction> insts;
    std::size_t pos = 0;
    while (pos < parcels.size()) {
        auto dec = decode(parcels.data() + pos, parcels.size() - pos);
        if (!dec)
            return std::nullopt;
        insts.push_back(dec->first);
        pos += dec->second;
    }
    return insts;
}

} // namespace ruu
