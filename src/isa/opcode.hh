/**
 * @file
 * The model architecture's instruction set.
 *
 * The ISA follows the CRAY-1 scalar unit the paper models: three-address
 * register arithmetic on A and S registers, single-parcel moves between
 * the primary (A/S) and backup (B/T) register files, two-parcel
 * immediate loads, base+displacement scalar memory operations, and
 * two-parcel branches that test register A0 or S0.
 *
 * Each opcode carries static traits: its operand form (how the
 * assembler and encoder interpret the operand fields), the functional
 * unit class that executes it, and classification bits used by the
 * issue-logic simulators.
 */

#ifndef RUU_ISA_OPCODE_HH
#define RUU_ISA_OPCODE_HH

#include <cstdint>
#include <optional>
#include <string>

namespace ruu
{

/** Every instruction in the model ISA. */
enum class Opcode : std::uint8_t
{
    // --- address (A-register) arithmetic -------------------------------
    AADD,   //!< Ai <- Aj + Ak            (address add unit)
    ASUB,   //!< Ai <- Aj - Ak            (address add unit)
    AMUL,   //!< Ai <- Aj * Ak            (address multiply unit)
    AMOVI,  //!< Ai <- imm22              (transmit, two parcels)
    MOVA,   //!< Ai <- Ak                 (transmit)

    // --- scalar (S-register) integer arithmetic ------------------------
    SADD,   //!< Si <- Sj + Sk            (scalar add unit)
    SSUB,   //!< Si <- Sj - Sk            (scalar add unit)
    SAND,   //!< Si <- Sj & Sk            (scalar logical unit)
    SOR,    //!< Si <- Sj | Sk            (scalar logical unit)
    SXOR,   //!< Si <- Sj ^ Sk            (scalar logical unit)
    SSHL,   //!< Si <- Si << jk           (scalar shift unit, in place)
    SSHR,   //!< Si <- Si >> jk logical   (scalar shift unit, in place)
    SPOP,   //!< Si <- popcount(Sj)       (population/leading-zero unit)
    SLZ,    //!< Si <- countl_zero(Sj)    (population/leading-zero unit)
    SMOVI,  //!< Si <- imm22 sign-extended (transmit, two parcels)
    MOVS,   //!< Si <- Sk                 (transmit)

    // --- floating point (IEEE double in S registers) -------------------
    FADD,   //!< Si <- Sj +f Sk           (floating add unit)
    FSUB,   //!< Si <- Sj -f Sk           (floating add unit)
    FMUL,   //!< Si <- Sj *f Sk           (floating multiply unit)
    FRECIP, //!< Si <- 1.0 / Sj           (reciprocal approximation unit)
    SFIX,   //!< Si <- (int64) Sj_fp      (floating add unit)
    SFLT,   //!< Si <- (double) Sj_int    (floating add unit)

    // --- inter-file moves ----------------------------------------------
    MOVSA,  //!< Si <- Ak                 (transmit)
    MOVAS,  //!< Ai <- Sk                 (transmit; truncates)
    MOVBA,  //!< Bjk <- Ai                (transmit)
    MOVAB,  //!< Ai <- Bjk                (transmit)
    MOVTS,  //!< Tjk <- Si                (transmit)
    MOVST,  //!< Si <- Tjk                (transmit)

    // --- memory ---------------------------------------------------------
    LDA,    //!< Ai <- mem[Ah + disp22]   (memory unit, two parcels)
    LDS,    //!< Si <- mem[Ah + disp22]
    STA,    //!< mem[Ah + disp22] <- Ai
    STS,    //!< mem[Ah + disp22] <- Si

    // --- control --------------------------------------------------------
    J,      //!< unconditional jump (two parcels)
    JAZ,    //!< jump when A0 == 0
    JAN,    //!< jump when A0 != 0
    JAP,    //!< jump when A0 >= 0 (plus)
    JAM,    //!< jump when A0 <  0 (minus)
    JSZ,    //!< jump when S0 == 0
    JSN,    //!< jump when S0 != 0
    JSP,    //!< jump when S0 >= 0
    JSM,    //!< jump when S0 <  0
    HALT,   //!< stop the program (CRAY EX)
    NOP,    //!< no operation

    // --- trap architecture (docs/INTERRUPTS.md) -------------------------
    RTI,    //!< return from interrupt: restore the exchange package
    EINT,   //!< enable interrupts (status.IE <- 1)
    DINT,   //!< disable interrupts (status.IE <- 0)
    MFEPC,  //!< Si <- exception PC       (transmit)
    MFCAUSE,//!< Si <- exception cause    (transmit)

    NumOpcodes,
};

/** Number of opcodes, as a plain constant for table sizing. */
inline constexpr unsigned kNumOpcodes =
    static_cast<unsigned>(Opcode::NumOpcodes);

/**
 * Functional unit classes. These are the paper's CRAY-1 scalar units;
 * per-class latencies live in UarchConfig (defaults match the CRAY-1).
 */
enum class FuKind : std::uint8_t
{
    AddrAdd,       //!< address add/subtract
    AddrMul,       //!< address multiply
    ScalarAdd,     //!< 64-bit integer add/subtract
    ScalarLogical, //!< and/or/xor
    ScalarShift,   //!< shifts
    PopLz,         //!< population count / leading zero
    FpAdd,         //!< floating add/subtract and conversions
    FpMul,         //!< floating multiply
    FpRecip,       //!< reciprocal approximation
    Memory,        //!< loads and stores
    Transmit,      //!< register moves and immediates
    None,          //!< branches / HALT / NOP: handled in the issue stage
    NumFuKinds,
};

/** Number of functional-unit classes, for table sizing. */
inline constexpr unsigned kNumFuKinds =
    static_cast<unsigned>(FuKind::NumFuKinds);

/** Human-readable functional-unit class name. */
const char *fuKindName(FuKind kind);

/**
 * How the operand fields of an instruction are populated; drives the
 * assembler syntax, the encoder layout, and the executor.
 */
enum class OperandForm : std::uint8_t
{
    Rrr,      //!< dst, src1, src2        (AADD, FADD, ...)
    Rr,       //!< dst, src1              (FRECIP, SPOP, MOVA, ...)
    RImm,     //!< dst, imm22             (AMOVI, SMOVI; two parcels)
    RShift,   //!< dst(=src1), shift count in imm (SSHL/SSHR)
    MemLoad,  //!< dst, disp22(base A)    (LDA, LDS; two parcels)
    MemStore, //!< disp22(base A), data   (STA, STS; two parcels)
    Branch,   //!< label target; conditional forms read A0 or S0
    Bare,     //!< no operands            (HALT, NOP, RTI, EINT, DINT)
    RDst,     //!< dst only               (MFEPC, MFCAUSE)
};

/** Which register a conditional branch tests. */
enum class CondReg : std::uint8_t { NotABranch, A0, S0, Always };

/** Static traits of one opcode. */
struct OpInfo
{
    const char *mnemonic;  //!< lower-case assembler mnemonic
    FuKind fu;             //!< executing functional-unit class
    OperandForm form;      //!< operand layout
    std::uint8_t parcels;  //!< 1 or 2 (16 or 32 bits)
    CondReg cond;          //!< branch condition source
};

/** Trait record for @p op. */
const OpInfo &opInfo(Opcode op);

/** Assembler mnemonic for @p op. */
inline const char *mnemonic(Opcode op) { return opInfo(op).mnemonic; }

/** Look an opcode up by (case-insensitive) mnemonic. */
std::optional<Opcode> opcodeFromMnemonic(const std::string &name);

/** True for J and all conditional jumps. */
bool isBranch(Opcode op);

/** True for the eight conditional jumps (not J). */
bool isCondBranch(Opcode op);

/** True for LDA / LDS. */
bool isLoad(Opcode op);

/** True for STA / STS. */
bool isStore(Opcode op);

/** True for loads and stores. */
inline bool isMemory(Opcode op) { return isLoad(op) || isStore(op); }

/**
 * True for bare opcodes the issue stage retires directly, like NOP:
 * NOP itself plus RTI / EINT / DINT, whose architectural effect lives
 * in the trap layer (src/trap) and is invisible to the timing cores.
 */
bool isNopLike(Opcode op);

/**
 * True when control cannot continue past @p op within the same
 * program: HALT ends a program, RTI ends a handler kernel.
 */
bool isProgramExit(Opcode op);

} // namespace ruu

#endif // RUU_ISA_OPCODE_HH
