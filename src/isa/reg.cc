#include "isa/reg.hh"

#include <cctype>
#include <cstdlib>

namespace ruu
{

namespace
{

char
fileLetter(RegFile file)
{
    switch (file) {
      case RegFile::A: return 'A';
      case RegFile::S: return 'S';
      case RegFile::B: return 'B';
      case RegFile::T: return 'T';
    }
    return '?';
}

} // namespace

std::string
RegId::toString() const
{
    if (!valid())
        return "-";
    return std::string(1, fileLetter(_file)) + std::to_string(_index);
}

std::optional<RegId>
RegId::parse(const std::string &text)
{
    if (text.size() < 2)
        return std::nullopt;
    RegFile file;
    switch (std::toupper(static_cast<unsigned char>(text[0]))) {
      case 'A': file = RegFile::A; break;
      case 'S': file = RegFile::S; break;
      case 'B': file = RegFile::B; break;
      case 'T': file = RegFile::T; break;
      default: return std::nullopt;
    }
    unsigned index = 0;
    for (std::size_t i = 1; i < text.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(text[i])))
            return std::nullopt;
        index = index * 10 + static_cast<unsigned>(text[i] - '0');
        if (index >= 64)
            return std::nullopt;
    }
    if (index >= regFileSize(file))
        return std::nullopt;
    return RegId(file, index);
}

} // namespace ruu
