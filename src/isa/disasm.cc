#include "isa/disasm.hh"

#include <sstream>

namespace ruu
{

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    os << mnemonic(inst.op);
    switch (opInfo(inst.op).form) {
      case OperandForm::Rrr:
        os << " " << inst.dst.toString() << ", " << inst.src1.toString()
           << ", " << inst.src2.toString();
        break;
      case OperandForm::Rr:
        os << " " << inst.dst.toString() << ", " << inst.src1.toString();
        break;
      case OperandForm::RImm:
        os << " " << inst.dst.toString() << ", " << inst.imm;
        break;
      case OperandForm::RShift:
        os << " " << inst.dst.toString() << ", " << inst.imm;
        break;
      case OperandForm::MemLoad:
        os << " " << inst.dst.toString() << ", " << inst.imm << "("
           << inst.src1.toString() << ")";
        break;
      case OperandForm::MemStore:
        os << " " << inst.imm << "(" << inst.src1.toString() << "), "
           << inst.src2.toString();
        break;
      case OperandForm::Branch:
        os << " @" << inst.target;
        break;
      case OperandForm::Bare:
        break;
      case OperandForm::RDst:
        os << " " << inst.dst.toString();
        break;
    }
    return os.str();
}

} // namespace ruu
