#include "isa/instruction.hh"

#include "common/logging.hh"

namespace ruu
{

unsigned
Instruction::numSrcs() const
{
    return (src1.valid() ? 1u : 0u) + (src2.valid() ? 1u : 0u);
}

RegId
Instruction::src(unsigned i) const
{
    if (src1.valid()) {
        if (i == 0)
            return src1;
        ruu_assert(i == 1 && src2.valid(), "source %u out of range", i);
        return src2;
    }
    ruu_assert(i == 0 && src2.valid(), "source %u out of range", i);
    return src2;
}

Instruction
Instruction::rrr(Opcode op, RegId dst, RegId a, RegId b)
{
    ruu_assert(opInfo(op).form == OperandForm::Rrr,
               "%s is not a three-register opcode", mnemonic(op));
    Instruction inst;
    inst.op = op;
    inst.dst = dst;
    inst.src1 = a;
    inst.src2 = b;
    return inst;
}

Instruction
Instruction::rr(Opcode op, RegId dst, RegId src)
{
    ruu_assert(opInfo(op).form == OperandForm::Rr,
               "%s is not a two-register opcode", mnemonic(op));
    Instruction inst;
    inst.op = op;
    inst.dst = dst;
    inst.src1 = src;
    return inst;
}

Instruction
Instruction::rimm(Opcode op, RegId dst, std::int64_t imm)
{
    ruu_assert(opInfo(op).form == OperandForm::RImm,
               "%s is not an immediate opcode", mnemonic(op));
    Instruction inst;
    inst.op = op;
    inst.dst = dst;
    inst.imm = imm;
    return inst;
}

Instruction
Instruction::shift(Opcode op, RegId reg, unsigned count)
{
    ruu_assert(opInfo(op).form == OperandForm::RShift,
               "%s is not a shift opcode", mnemonic(op));
    ruu_assert(count < 64, "shift count %u out of range", count);
    Instruction inst;
    inst.op = op;
    inst.dst = reg;
    inst.src1 = reg;
    inst.imm = count;
    return inst;
}

Instruction
Instruction::load(Opcode op, RegId dst, RegId base, std::int64_t disp)
{
    ruu_assert(opInfo(op).form == OperandForm::MemLoad,
               "%s is not a load opcode", mnemonic(op));
    ruu_assert(base.valid() && base.file() == RegFile::A,
               "load base must be an A register");
    Instruction inst;
    inst.op = op;
    inst.dst = dst;
    inst.src1 = base;
    inst.imm = disp;
    return inst;
}

Instruction
Instruction::store(Opcode op, RegId base, std::int64_t disp, RegId data)
{
    ruu_assert(opInfo(op).form == OperandForm::MemStore,
               "%s is not a store opcode", mnemonic(op));
    ruu_assert(base.valid() && base.file() == RegFile::A,
               "store base must be an A register");
    Instruction inst;
    inst.op = op;
    inst.src1 = base;
    inst.src2 = data;
    inst.imm = disp;
    return inst;
}

Instruction
Instruction::branch(Opcode op, ParcelAddr target)
{
    ruu_assert(opInfo(op).form == OperandForm::Branch,
               "%s is not a branch opcode", mnemonic(op));
    Instruction inst;
    inst.op = op;
    inst.target = target;
    switch (opInfo(op).cond) {
      case CondReg::A0:
        inst.src1 = regA(0);
        break;
      case CondReg::S0:
        inst.src1 = regS(0);
        break;
      default:
        break;
    }
    return inst;
}

Instruction
Instruction::bare(Opcode op)
{
    ruu_assert(opInfo(op).form == OperandForm::Bare,
               "%s takes operands", mnemonic(op));
    Instruction inst;
    inst.op = op;
    return inst;
}

Instruction
Instruction::rdst(Opcode op, RegId dst)
{
    ruu_assert(opInfo(op).form == OperandForm::RDst,
               "%s is not a destination-only opcode", mnemonic(op));
    Instruction inst;
    inst.op = op;
    inst.dst = dst;
    return inst;
}

} // namespace ruu
