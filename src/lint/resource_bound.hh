/**
 * @file
 * Resource-aware static performance bound: a certified lower bound on
 * the cycle count of *any* of the modeled issue mechanisms for a given
 * (trace, configuration) pair, strictly at least as tight as the pure
 * dependence bound of lint/dataflow_bound.hh.
 *
 * The certified bound is the maximum over independent *floors*, each a
 * provable consequence of a structural resource every core shares:
 *
 *   - schedule: a unified decode x dependence critical path. Every
 *     core decodes at most one trace record per cycle and stalls
 *     decode after a taken branch by at least
 *     min(branchTakenPenalty-1, predictedTakenPenalty,
 *     mispredictPenalty-1) cycles, so record i can neither start
 *     before its decode slot nor before its operands; its result then
 *     lands its minimum cost later.
 *   - decode: the decode-slot count alone (every record, plus the
 *     taken-branch bubbles) — the paper's one-instruction-per-cycle
 *     issue ceiling.
 *   - dependence: the dependence critical path alone (the PR 2 bound's
 *     first component).
 *   - fu:<class>: dynamic operations of a functional-unit class divided
 *     by the configured unit count (UarchConfig::fuCount). Units are
 *     fully pipelined with initiation interval one, so N ops on m units
 *     need ceil(N/m) distinct initiation cycles after the class's first
 *     decode slot, plus the cheapest class member's drain.
 *   - bus: every non-store operation broadcasts on a result bus;
 *     resultBuses deliveries fit per cycle and none can land before
 *     cycle 2.
 *   - commit: stores and register writers occupy commit slots,
 *     commitWidth per cycle, none before cycle 2.
 *
 * sim::Experiment asserts cycles >= resourceBound(...).cycles on every
 * run it executes; oracle::verify and the benches report %Limit against
 * it; sim::sweepPoolSize uses it to derive dominated sweep points
 * without simulating them.
 *
 * Alongside the certified bound, the analyzer computes a fast
 * analytical *estimate* in the style of Carroll & Lin's M/M/m queueing
 * model of functional-unit and issue-queue configuration: per-class
 * Erlang-C waiting inflates the certified bound, and Little's law
 * yields the expected issue-queue occupancy. The estimate is reported
 * and cross-validated (ruusim analyze, bench/BENCH_bounds.json) but
 * never asserted.
 */

#ifndef RUU_LINT_RESOURCE_BOUND_HH
#define RUU_LINT_RESOURCE_BOUND_HH

#include <array>
#include <cstdint>
#include <string>

#include "lint/dataflow_bound.hh"
#include "trace/trace.hh"
#include "uarch/config.hh"

namespace ruu::lint
{

/** Which structural resource a ResourceBound is limited by. */
enum class BoundResource : std::uint8_t
{
    Dependence, //!< the dependence critical path alone
    Decode,     //!< decode slots + taken-branch bubbles alone
    Schedule,   //!< the mixed decode x dependence path (neither alone)
    FuClass,    //!< a functional-unit class service floor
    ResultBus,  //!< result-bus bandwidth
    Commit,     //!< commit bandwidth
    NumResources,
};

/** Printable resource name ("dependence", "decode", "fu", ...). */
const char *boundResourceName(BoundResource resource);

/** Every floor of one resource bound, for reporting. */
struct BoundBreakdown
{
    /** Dependence critical path alone (PR 2's critPathCycles + 1). */
    std::uint64_t dependence = 0;

    /** Decode slots (every record) plus taken-branch bubbles. */
    std::uint64_t decode = 0;

    /** Unified decode x dependence critical path; >= both above. */
    std::uint64_t schedule = 0;

    /** Per-class service floors; 0 for classes with no operations. */
    std::array<std::uint64_t, kNumFuKinds> fuClass{};

    /** Result-bus bandwidth floor. */
    std::uint64_t resultBus = 0;

    /** Commit bandwidth floor. */
    std::uint64_t commit = 0;

    /** The resource whose floor equals the certified bound. */
    BoundResource binding = BoundResource::Dependence;

    /** The binding class when binding == FuClass. */
    FuKind bindingFu = FuKind::None;
};

/** The resource-aware lower bound of one trace under one config. */
struct ResourceBound
{
    /** Certified lower bound on any core's cycle count (max floor). */
    std::uint64_t cycles = 0;

    /** Every floor and the binding resource. */
    BoundBreakdown breakdown;

    /** The PR 2 dependence-only bound, for tightness comparison. */
    DataflowBound dataflow;

    /**
     * Carroll & Lin-style M/M/m estimate of the achievable cycle
     * count: certified bound plus per-class Erlang-C queueing delay.
     * Reported and cross-validated, never asserted.
     */
    double estimateCycles = 0.0;

    /**
     * Expected in-flight operations (Little's law over the per-class
     * service + queueing times): the analytical issue-queue occupancy
     * the estimate implies. Compare against poolEntries.
     */
    double estimateOccupancy = 0.0;

    /** The bound as a percentage of an observed cycle count. */
    double pctOfLimit(std::uint64_t observedCycles) const
    {
        return observedCycles ? 100.0 * static_cast<double>(cycles) /
                                    static_cast<double>(observedCycles)
                              : 0.0;
    }

    /** Binding resource as text: "dependence", "fu:memory", ... */
    std::string bindingName() const;
};

/**
 * Compute the resource bound of @p trace under @p config. Linear in
 * trace length. The result is always >= dataflowBound(...).cycles.
 */
ResourceBound resourceBound(const Trace &trace,
                            const UarchConfig &config);

/**
 * Memoized resourceBound. Keyed on the trace's identity (address,
 * length, content fingerprint) plus every configuration field the
 * floors read: fuLatency, fuCount, forwardLatency, storeLatency,
 * resultBuses, commitWidth, and the branch penalties. Invariant across
 * pool-size sweep points, so sweeps share one computation per trace.
 * Thread-safe; entries are never evicted and the returned reference is
 * stable for the process lifetime.
 */
const ResourceBound &cachedResourceBound(const Trace &trace,
                                         const UarchConfig &config);

/**
 * Counters of cachedResourceBound since process start. Like
 * boundCacheStats(), the counters are process-global: concurrent
 * lookups from a parallel sweep are aggregated under one mutex, and
 * tests must assert on deltas, not absolute values.
 */
BoundCacheStats resourceBoundCacheStats();

} // namespace ruu::lint

#endif // RUU_LINT_RESOURCE_BOUND_HH
