/**
 * @file
 * Cycle-level microarchitectural invariant checker.
 *
 * The six issue-logic cores share an architectural contract the paper's
 * results rely on: results commit in program order, no reservation
 * station / Tag Unit / RUU entry outlives its result broadcast, result
 * and commit buses never carry more values in a cycle than they are
 * configured wide, and scoreboard state matches the set of in-flight
 * register writers. Each core reports its events to an
 * InvariantChecker (when UarchConfig::checkInvariants is set or the
 * RUU_CHECK_INVARIANTS environment variable is non-empty, see
 * core/core.hh) and Core::run() panics when any run finishes with
 * violations.
 *
 * The checker records violations instead of asserting so unit tests
 * can exercise it directly (tests/test_lint.cc).
 */

#ifndef RUU_LINT_INVARIANT_CHECKER_HH
#define RUU_LINT_INVARIANT_CHECKER_HH

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "uarch/result_bus.hh"

namespace ruu
{
namespace lint
{

/** One broken invariant, with the cycle it was detected in. */
struct Violation
{
    Cycle cycle = 0;
    std::string message;
};

/** Validates the cross-core microarchitectural contract. */
class InvariantChecker
{
  public:
    /** Per-cycle structural limits of the checked core. */
    struct Limits
    {
        unsigned resultBuses = 1; //!< max FU result broadcasts / cycle
        unsigned commitWidth = 1; //!< max commits / cycle
    };

    InvariantChecker(std::string core_name, Limits limits)
        : _coreName(std::move(core_name)), _limits(limits)
    {}

    /** Advance to @p cycle; prunes per-cycle bus accounting. */
    void beginCycle(Cycle cycle);

    // --- tag lifecycle -------------------------------------------------

    /** @p tag was handed to a new in-flight destination (or store). */
    void onTagAllocated(Tag tag, SeqNum seq);

    /**
     * A functional-unit result for @p tag goes out on a result bus in
     * @p cycle. Counted against Limits::resultBuses. kNoTag counts bus
     * usage without tag tracking (in-order cores reserve slots but
     * carry no tags).
     */
    void onResultBroadcast(Cycle cycle, Tag tag);

    /** Commit-time re-broadcast of @p tag (RUU commit bus). */
    void onCommitBroadcast(Cycle cycle, Tag tag);

    /** Store-data publish for @p tag; not a result-bus transfer. */
    void onStoreBroadcast(Tag tag);

    /** @p tag's entry retired; its result must have been broadcast. */
    void onTagReleased(Tag tag);

    /** @p tag's entry was squashed (misprediction / fault recovery). */
    void onTagSquashed(Tag tag);

    // --- ordering ------------------------------------------------------

    /** Dynamic instruction @p seq committed; must strictly increase. */
    void onCommit(SeqNum seq);

    // --- cross-structure -----------------------------------------------

    /**
     * Scoreboard sample: @p busy_bits registers marked busy vs
     * @p outstanding_writers in-flight register-writing operations.
     */
    void onScoreboardSample(unsigned busy_bits,
                            unsigned outstanding_writers);

    /** Core-specific structural assertion. */
    void require(bool condition, const char *what);

    /**
     * Run finished. On a clean (non-interrupted) run every allocated
     * tag must have been released or squashed; interrupted runs leave
     * in-flight state behind by design.
     */
    void onRunEnd(bool interrupted);

    // --- results -------------------------------------------------------

    bool ok() const { return _violations.empty(); }
    const std::vector<Violation> &violations() const
    {
        return _violations;
    }

    /** All violations, one per line, for panic messages. */
    std::string report() const;

  private:
    struct LiveTag
    {
        SeqNum seq = kNoSeqNum;
        bool broadcast = false;
    };

    void violate(std::string message);

    std::string _coreName;
    Limits _limits;
    Cycle _cycle = 0;
    SeqNum _lastCommit = kNoSeqNum;
    std::unordered_map<Tag, LiveTag> _live;
    std::map<Cycle, unsigned> _resultCount; //!< keyed by delivery cycle
    std::map<Cycle, unsigned> _commitCount;
    std::vector<Violation> _violations;

    /** Keep panic messages bounded on badly broken cores. */
    static constexpr std::size_t kMaxViolations = 32;
    bool _overflowed = false;
};

} // namespace lint
} // namespace ruu

#endif // RUU_LINT_INVARIANT_CHECKER_HH
