#include "lint/analyze.hh"

#include <algorithm>
#include <bitset>
#include <map>

#include "lint/cfg.hh"

namespace ruu
{
namespace lint
{

namespace
{

using RegSet = std::bitset<kNumArchRegs>;

/** True when @p inst reads @p reg through either source slot. */
bool
reads(const Instruction &inst, RegId reg)
{
    for (RegId src : inst.rawSrcs())
        if (src.valid() && src == reg)
            return true;
    return false;
}

std::string
describeInst(const Program &program, std::size_t index)
{
    const Instruction &inst = program.inst(index);
    return std::string(mnemonic(inst.op)) + " at parcel " +
           std::to_string(program.pc(index));
}

/** Shared state for one analyze() run. */
class Analyzer
{
  public:
    Analyzer(const Program &program, std::vector<Diagnostic> &out)
        : _program(program), _cfg(Cfg::build(program)), _out(out)
    {}

    void
    run()
    {
        checkBranchTargets();
        checkDataImage();
        checkReachability();
        checkUseBeforeDef();
        checkDeadDefs();
        checkCondRegStyle();
        checkLoopSaveRegStyle();
        checkInterruptWindows();
        checkRtiPlacement();
        checkHandlerRunaway();
    }

  private:
    void
    report(Check check, std::size_t index, std::string message,
           std::string fix_hint)
    {
        Diagnostic d;
        d.check = check;
        d.severity = checkInfo(check).severity;
        d.index = index;
        d.pc = index == Diagnostic::kNoIndex ? 0 : _program.pc(index);
        d.message = std::move(message);
        d.fixHint = std::move(fix_hint);
        _out.push_back(std::move(d));
    }

    // --- RUU-E002 / RUU-E003 ------------------------------------------

    void
    checkBranchTargets()
    {
        for (std::size_t i = 0; i < _program.size(); ++i) {
            const Instruction &inst = _program.inst(i);
            if (!isBranch(inst.op))
                continue;
            if (inst.target >= _program.totalParcels()) {
                report(Check::BranchOutOfRange, i,
                       describeInst(_program, i) + " targets parcel " +
                           std::to_string(inst.target) +
                           ", past the program end (" +
                           std::to_string(_program.totalParcels()) +
                           " parcels)",
                       "branch to a label bound inside the program");
            } else if (!_program.indexOfPc(inst.target)) {
                report(Check::BranchMidInstruction, i,
                       describeInst(_program, i) + " targets parcel " +
                           std::to_string(inst.target) +
                           ", the second parcel of a two-parcel "
                           "instruction",
                       "branch targets must be instruction boundaries");
            }
        }
    }

    // --- RUU-E004 / RUU-W103 ------------------------------------------

    void
    checkDataImage()
    {
        std::map<Addr, Word> seen;
        for (const DataInit &init : _program.dataInits()) {
            auto [it, inserted] = seen.emplace(init.addr, init.value);
            if (inserted)
                continue;
            if (it->second != init.value) {
                report(Check::DataOverlap, Diagnostic::kNoIndex,
                       "data word " + std::to_string(init.addr) +
                           " initialized twice with different values (0x" +
                           toHex(it->second) + " then 0x" +
                           toHex(init.value) + ")",
                       "drop one initializer or use distinct addresses");
                it->second = init.value; // report each conflict once
            } else {
                report(Check::DataDuplicate, Diagnostic::kNoIndex,
                       "data word " + std::to_string(init.addr) +
                           " initialized twice with the same value",
                       "drop the redundant initializer");
            }
        }
    }

    static std::string
    toHex(Word value)
    {
        static const char digits[] = "0123456789abcdef";
        std::string out;
        do {
            out.insert(out.begin(), digits[value & 0xf]);
            value >>= 4;
        } while (value != 0);
        return out;
    }

    // --- RUU-W101 / RUU-E005 ------------------------------------------

    void
    checkReachability()
    {
        for (const BasicBlock &block : _cfg.blocks) {
            if (!block.reachable) {
                report(Check::UnreachableCode, block.first,
                       "no control-flow path reaches this block (" +
                           std::to_string(block.last - block.first + 1) +
                           " instruction(s))",
                       "delete the block or branch to it");
            } else if (block.fallsOffEnd) {
                report(Check::FallOffEnd, block.last,
                       "control flow runs past the last instruction "
                       "after " +
                           describeInst(_program, block.last),
                       "end every path with HALT or a branch");
            }
        }
    }

    // --- RUU-E001 ------------------------------------------------------

    /**
     * May-defined forward dataflow: union at joins, empty at entry.
     * A register absent from the set at a use site has no defining
     * instruction on *any* path — a definite use-before-def, so this
     * check never false-positives on merge points.
     */
    void
    checkUseBeforeDef()
    {
        const std::size_t nb = _cfg.size();
        std::vector<RegSet> out(nb);
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t b = 0; b < nb; ++b) {
                const BasicBlock &block = _cfg.blocks[b];
                RegSet in;
                for (std::size_t p : block.preds)
                    in |= out[p];
                RegSet now = in;
                for (std::size_t i = block.first; i <= block.last; ++i) {
                    RegId dst = _program.inst(i).dst;
                    if (dst.valid())
                        now.set(dst.flat());
                }
                if (now != out[b]) {
                    out[b] = now;
                    changed = true;
                }
            }
        }

        for (std::size_t b = 0; b < nb; ++b) {
            const BasicBlock &block = _cfg.blocks[b];
            if (!block.reachable)
                continue;
            RegSet defined;
            for (std::size_t p : block.preds)
                defined |= out[p];
            for (std::size_t i = block.first; i <= block.last; ++i) {
                const Instruction &inst = _program.inst(i);
                RegId reported;
                for (RegId src : inst.rawSrcs()) {
                    if (!src.valid() || defined.test(src.flat()) ||
                        src == reported)
                        continue;
                    report(Check::UseBeforeDef, i,
                           describeInst(_program, i) + " reads " +
                               src.toString() +
                               ", which no instruction writes before "
                               "this point on any path",
                           "initialize " + src.toString() +
                               " before the first use");
                    reported = src;
                }
                if (inst.dst.valid())
                    defined.set(inst.dst.flat());
            }
        }
    }

    // --- RUU-W102 ------------------------------------------------------

    /**
     * Backward liveness. Program exits (HALT, falling off the end) are
     * treated as reading every register, so a write is flagged only
     * when every path overwrites it before any read — values parked in
     * registers at HALT are legitimate results, not dead defs.
     */
    void
    checkDeadDefs()
    {
        const std::size_t nb = _cfg.size();
        _liveIn.assign(nb, RegSet());
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t b = nb; b-- > 0;) {
                const BasicBlock &block = _cfg.blocks[b];
                RegSet live = blockLiveOut(b);
                for (std::size_t i = block.last + 1; i-- > block.first;) {
                    const Instruction &inst = _program.inst(i);
                    if (inst.dst.valid())
                        live.reset(inst.dst.flat());
                    for (RegId src : inst.rawSrcs())
                        if (src.valid())
                            live.set(src.flat());
                }
                if (live != _liveIn[b]) {
                    _liveIn[b] = live;
                    changed = true;
                }
            }
        }

        for (std::size_t b = 0; b < nb; ++b) {
            const BasicBlock &block = _cfg.blocks[b];
            if (!block.reachable)
                continue;
            RegSet live = blockLiveOut(b);
            for (std::size_t i = block.last + 1; i-- > block.first;) {
                const Instruction &inst = _program.inst(i);
                if (inst.dst.valid()) {
                    if (!live.test(inst.dst.flat())) {
                        report(Check::DeadDef, i,
                               describeInst(_program, i) + " writes " +
                                   inst.dst.toString() +
                                   ", but every path overwrites the "
                                   "value before reading it",
                               "delete the write or use the value");
                    }
                    live.reset(inst.dst.flat());
                }
                for (RegId src : inst.rawSrcs())
                    if (src.valid())
                        live.set(src.flat());
            }
        }
    }

    RegSet
    blockLiveOut(std::size_t b) const
    {
        const BasicBlock &block = _cfg.blocks[b];
        RegSet live;
        if (block.fallsOffEnd ||
            isProgramExit(_program.inst(block.last).op)) {
            live.set(); // program exit: every register value may matter
            return live;
        }
        for (std::size_t s : block.succs)
            live |= _liveIn[s];
        return live;
    }

    // --- RUU-W201 ------------------------------------------------------

    /**
     * CFT style: A0/S0 are the branch condition registers (docs/ISA.md).
     * A write to one whose value is read — but never by a conditional
     * branch — clobbers the condition slot for ordinary data. Writes
     * whose value is never read at all are left to dead_def.
     */
    void
    checkCondRegStyle()
    {
        for (std::size_t b = 0; b < _cfg.size(); ++b) {
            const BasicBlock &block = _cfg.blocks[b];
            if (!block.reachable)
                continue;
            for (std::size_t i = block.first; i <= block.last; ++i) {
                RegId dst = _program.inst(i).dst;
                if (!dst.valid() || dst.index() != 0)
                    continue;
                if (dst.file() != RegFile::A && dst.file() != RegFile::S)
                    continue;
                bool any_use = false;
                bool branch_use = false;
                scanUses(b, i + 1, dst, any_use, branch_use);
                if (any_use && !branch_use) {
                    report(Check::CondRegClobber, i,
                           describeInst(_program, i) + " writes " +
                               dst.toString() +
                               ", but no conditional branch ever tests "
                               "the value",
                           "keep " + dst.toString() +
                               " for branch conditions; use another "
                               "register for data");
                }
            }
        }
    }

    /**
     * Follow @p reg forward from instruction @p start of block @p b
     * until every path redefines it, recording whether any reached
     * reader exists and whether one is a conditional branch.
     */
    void
    scanUses(std::size_t b, std::size_t start, RegId reg, bool &any_use,
             bool &branch_use)
    {
        std::vector<bool> visited(_cfg.size(), false);
        std::vector<std::pair<std::size_t, std::size_t>> work;
        work.emplace_back(b, start);
        while (!work.empty()) {
            auto [blk, idx] = work.back();
            work.pop_back();
            const BasicBlock &block = _cfg.blocks[blk];
            bool killed = false;
            for (std::size_t i = idx; i <= block.last; ++i) {
                const Instruction &inst = _program.inst(i);
                if (reads(inst, reg)) {
                    any_use = true;
                    if (isCondBranch(inst.op))
                        branch_use = true;
                }
                if (inst.dst.valid() && inst.dst == reg) {
                    killed = true;
                    break;
                }
            }
            if (killed)
                continue;
            for (std::size_t s : block.succs) {
                if (!visited[s]) {
                    visited[s] = true;
                    work.emplace_back(s, _cfg.blocks[s].first);
                }
            }
        }
    }

    // --- RUU-W202 ------------------------------------------------------

    /**
     * CFT style: B/T are save registers for loop invariants; writing
     * one inside a loop body defeats that. Loop bodies are the ranges
     * [target, branch] of backward branches.
     */
    void
    checkLoopSaveRegStyle()
    {
        std::vector<bool> in_loop(_program.size(), false);
        for (std::size_t i = 0; i < _program.size(); ++i) {
            const Instruction &inst = _program.inst(i);
            if (!isBranch(inst.op))
                continue;
            auto t = _program.indexOfPc(inst.target);
            if (!t || *t > i)
                continue;
            for (std::size_t j = *t; j <= i; ++j)
                in_loop[j] = true;
        }
        for (std::size_t i = 0; i < _program.size(); ++i) {
            if (!in_loop[i] || !_cfg.blocks[_cfg.blockOf[i]].reachable)
                continue;
            RegId dst = _program.inst(i).dst;
            if (!dst.valid() ||
                (dst.file() != RegFile::B && dst.file() != RegFile::T))
                continue;
            report(Check::LoopSaveRegWrite, i,
                   describeInst(_program, i) + " writes save register " +
                       dst.toString() + " inside a loop body",
                   "hoist the write out of the loop or keep the value "
                   "in A/S registers");
        }
    }

    // --- RUU-W301 ------------------------------------------------------

    /**
     * May-open forward dataflow over DINT critical sections: DINT opens
     * a window (status.IE <- 0), EINT closes it. A HALT (or a fall off
     * the end) reachable with the window still open leaves the machine
     * uninterruptable — almost always a missing EINT. RTI is exempt:
     * the exchange sequence restores the interrupted status word, so a
     * handler may legitimately end inside its own DINT window.
     */
    void
    checkInterruptWindows()
    {
        const std::size_t nb = _cfg.size();
        // open_out[b]: some path through block b leaves a DINT window
        // open at its exit edge. Entry starts closed (programs begin
        // with interrupts enabled; handlers that end in RTI are exempt
        // at the exit check anyway).
        std::vector<char> open_out(nb, 0);
        auto flowBlock = [&](std::size_t b, bool open) {
            const BasicBlock &block = _cfg.blocks[b];
            for (std::size_t i = block.first; i <= block.last; ++i) {
                Opcode op = _program.inst(i).op;
                if (op == Opcode::DINT)
                    open = true;
                else if (op == Opcode::EINT)
                    open = false;
            }
            return open;
        };
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t b = 0; b < nb; ++b) {
                bool open_in = false;
                for (std::size_t p : _cfg.blocks[b].preds)
                    open_in = open_in || open_out[p];
                char now = flowBlock(b, open_in) ? 1 : 0;
                if (now != open_out[b]) {
                    open_out[b] = now;
                    changed = true;
                }
            }
        }

        for (std::size_t b = 0; b < nb; ++b) {
            const BasicBlock &block = _cfg.blocks[b];
            if (!block.reachable)
                continue;
            Opcode last = _program.inst(block.last).op;
            bool exits = block.fallsOffEnd || last == Opcode::HALT;
            if (!exits)
                continue;
            bool open_in = false;
            for (std::size_t p : block.preds)
                open_in = open_in || open_out[p];
            // Re-walk the exit block itself so a DINT/EINT inside it
            // counts before the exit instruction.
            bool open = open_in;
            for (std::size_t i = block.first; i <= block.last; ++i) {
                Opcode op = _program.inst(i).op;
                if (op == Opcode::DINT)
                    open = true;
                else if (op == Opcode::EINT)
                    open = false;
            }
            if (open) {
                report(Check::IntWindowUnbalanced, block.last,
                       "a DINT critical section can reach " +
                           describeInst(_program, block.last) +
                           " without an EINT, leaving interrupts "
                           "disabled at program exit",
                       "close every DINT window with EINT before HALT");
            }
        }
    }

    // --- RUU-W302 ------------------------------------------------------

    /**
     * RTI restores the exchange package; outside a handler kernel
     * (Program::isHandler()) there is no saved package to restore, so a
     * reachable RTI is almost certainly a confused HALT.
     */
    void
    checkRtiPlacement()
    {
        if (_program.isHandler())
            return;
        for (std::size_t b = 0; b < _cfg.size(); ++b) {
            const BasicBlock &block = _cfg.blocks[b];
            if (!block.reachable)
                continue;
            for (std::size_t i = block.first; i <= block.last; ++i) {
                if (_program.inst(i).op != Opcode::RTI)
                    continue;
                report(Check::RtiOutsideHandler, i,
                       describeInst(_program, i) +
                           " returns from interrupt, but the program "
                           "is not marked as a handler kernel",
                       "use HALT to end a program, or mark handler "
                       "kernels with `.handler` / "
                       "ProgramBuilder::handler()");
            }
        }
    }

    // --- RUU-W303 ------------------------------------------------------

    /**
     * The dual of RUU-W302: inside a handler kernel every path must
     * reach an RTI, or the handler can never return to the interrupted
     * context (and the WCIRT handler-path bound, lint/wcirt.hh, is
     * infinite). The dynamic guard is the trap controller's
     * maxHandlerInstructions watchdog; this catches the runaway
     * statically. Reported once per runaway region — at its first
     * block — with the entry-to-block CFG path that enters it.
     */
    void
    checkHandlerRunaway()
    {
        if (!_program.isHandler() || _cfg.size() == 0)
            return;
        const std::size_t nb = _cfg.size();

        // canReach[b]: some path from b reaches an RTI instruction.
        std::vector<char> can_reach(nb, 0);
        for (std::size_t b = 0; b < nb; ++b) {
            const BasicBlock &block = _cfg.blocks[b];
            for (std::size_t i = block.first; i <= block.last; ++i)
                if (_program.inst(i).op == Opcode::RTI)
                    can_reach[b] = 1;
        }
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t b = 0; b < nb; ++b) {
                if (can_reach[b])
                    continue;
                for (std::size_t s : _cfg.blocks[b].succs) {
                    if (can_reach[s]) {
                        can_reach[b] = 1;
                        changed = true;
                        break;
                    }
                }
            }
        }

        // Shortest-path parents from the entry, for the diagnostic's
        // offending path.
        const std::size_t entry = _cfg.blockOf[0];
        constexpr std::size_t kNone = static_cast<std::size_t>(-1);
        std::vector<std::size_t> parent(nb, kNone);
        std::vector<char> seen(nb, 0);
        std::vector<std::size_t> queue{entry};
        seen[entry] = 1;
        for (std::size_t head = 0; head < queue.size(); ++head) {
            std::size_t b = queue[head];
            for (std::size_t s : _cfg.blocks[b].succs) {
                if (!seen[s]) {
                    seen[s] = 1;
                    parent[s] = b;
                    queue.push_back(s);
                }
            }
        }

        for (std::size_t b = 0; b < nb; ++b) {
            const BasicBlock &block = _cfg.blocks[b];
            if (!block.reachable || can_reach[b])
                continue;
            // Only the first block of a runaway region: its BFS parent
            // (if any) can still reach an RTI.
            if (parent[b] != kNone && !can_reach[parent[b]])
                continue;
            std::string path;
            for (std::size_t p = b; p != kNone; p = parent[p]) {
                std::string hop =
                    "parcel " +
                    std::to_string(_program.pc(_cfg.blocks[p].first));
                path = path.empty() ? hop : hop + " -> " + path;
            }
            report(Check::HandlerNoRtiPath, block.first,
                   "no path from " + describeInst(_program, block.first) +
                       " reaches an RTI; the handler cannot return to "
                       "the interrupted context (entered via " +
                       path + ")",
                   "end every handler path in RTI, not HALT or a loop");
        }
    }

    const Program &_program;
    Cfg _cfg;
    std::vector<RegSet> _liveIn;
    std::vector<Diagnostic> &_out;
};

/** True when the program's annotations suppress @p diagnostic. */
bool
suppressed(const Program &program, const Diagnostic &diagnostic)
{
    auto matches = [&diagnostic](const std::string &text) {
        std::string norm = normalizeCheckName(text);
        if (norm == "all")
            return true;
        auto check = checkFromString(norm);
        return check && *check == diagnostic.check;
    };
    for (const std::string &text : program.lintGlobalAllows())
        if (matches(text))
            return true;
    if (diagnostic.index == Diagnostic::kNoIndex)
        return false; // data-image findings: global suppression only
    auto [lo, hi] = program.lintAllows().equal_range(diagnostic.pc);
    for (auto it = lo; it != hi; ++it)
        if (matches(it->second))
            return true;
    return false;
}

} // namespace

std::vector<Diagnostic>
analyze(const Program &program, const Options &options)
{
    std::vector<Diagnostic> out;
    if (program.empty())
        return out;

    Analyzer(program, out).run();

    if (!options.includeSuppressed) {
        std::erase_if(out, [&program](const Diagnostic &d) {
            return suppressed(program, d);
        });
    }

    std::stable_sort(out.begin(), out.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         if (a.index != b.index)
                             return a.index < b.index;
                         if (a.severity != b.severity)
                             return a.severity < b.severity;
                         return a.check < b.check;
                     });
    return out;
}

} // namespace lint
} // namespace ruu
