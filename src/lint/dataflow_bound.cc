#include "lint/dataflow_bound.hh"

#include <algorithm>
#include <map>
#include <mutex>
#include <tuple>
#include <unordered_map>

#include "isa/reg.hh"

namespace ruu::lint
{

namespace
{

/** Finish time and critical-path bookkeeping of one producer. */
struct NodeInfo
{
    std::uint64_t finish = 0; //!< cycle the value is available
    std::size_t length = 0;   //!< instructions on the path ending here
    SeqNum seq = kNoSeqNum;   //!< producer (for reporting)
};

} // namespace

std::uint64_t
minRecordCost(const TraceRecord &record, const UarchConfig &config)
{
    const Instruction &inst = record.inst;
    if (isLoad(inst.op)) {
        return std::min<std::uint64_t>(config.latency(FuKind::Memory),
                                       config.forwardLatency);
    }
    if (isStore(inst.op) || isBranch(inst.op) ||
        isNopLike(inst.op) || inst.op == Opcode::HALT) {
        return 0;
    }
    return config.latency(inst.fu());
}

DataflowBound
dataflowBound(const Trace &trace, const UarchConfig &config)
{
    DataflowBound bound;
    std::array<NodeInfo, kNumArchRegs> regs{};
    std::unordered_map<Addr, NodeInfo> storedWords;
    NodeInfo best;

    const auto &records = trace.records();
    for (SeqNum seq = 0; seq < records.size(); ++seq) {
        const TraceRecord &rec = records[seq];
        const Instruction &inst = rec.inst;

        if (!isBranch(inst.op))
            ++bound.decodeFloor;

        // Earliest start: all register sources and, for a load, the
        // last store to the same word, must have produced their values.
        NodeInfo start;
        for (RegId src : inst.rawSrcs()) {
            if (src.valid() && regs[src.flat()].finish >= start.finish &&
                regs[src.flat()].seq != kNoSeqNum) {
                start = regs[src.flat()];
            }
        }
        if (isLoad(inst.op)) {
            auto it = storedWords.find(rec.memAddr);
            if (it != storedWords.end() &&
                it->second.finish >= start.finish) {
                start = it->second;
            }
        }

        NodeInfo node;
        node.finish = start.finish + minRecordCost(rec, config);
        node.length = start.length + 1;
        node.seq = seq;

        if (inst.dst.valid())
            regs[inst.dst.flat()] = node;
        if (isStore(inst.op))
            storedWords[rec.memAddr] = node;
        if (node.finish > best.finish ||
            (node.finish == best.finish && node.length > best.length)) {
            best = node;
        }
    }

    bound.critPathCycles = best.finish;
    bound.critTail = best.seq;
    bound.critLength = best.length;
    // Even a dependence-free instruction occupies the decode stage for
    // a cycle, and the last producer's result lands one cycle after the
    // machine's first decode cycle at the very earliest.
    bound.cycles = std::max<std::uint64_t>(bound.critPathCycles + 1,
                                           bound.decodeFloor);
    return bound;
}

namespace
{

/** Cache key: trace identity plus the config fields minCost reads. */
struct BoundKey
{
    const void *trace;
    std::size_t records;
    std::uint64_t fingerprint;
    std::array<unsigned, kNumFuKinds> fuLatency;
    unsigned forwardLatency;

    bool operator<(const BoundKey &o) const
    {
        return std::tie(trace, records, fingerprint, fuLatency,
                        forwardLatency) <
               std::tie(o.trace, o.records, o.fingerprint, o.fuLatency,
                        o.forwardLatency);
    }
};

struct BoundCache
{
    std::mutex mutex;
    std::map<BoundKey, DataflowBound> entries;
    BoundCacheStats stats;
};

BoundCache &
boundCache()
{
    static BoundCache cache;
    return cache;
}

} // namespace

std::uint64_t
boundTraceFingerprint(const Trace &trace)
{
    const auto &records = trace.records();
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        h = (h ^ v) * 0x100000001b3ull;
    };
    std::size_t n = records.size();
    std::size_t step = n > 64 ? n / 64 : 1;
    for (std::size_t i = 0; i < n; i += step) {
        const TraceRecord &rec = records[i];
        mix(rec.pc);
        mix(rec.memAddr);
        mix(static_cast<std::uint64_t>(rec.staticIndex));
    }
    return h;
}

const DataflowBound &
cachedDataflowBound(const Trace &trace, const UarchConfig &config)
{
    BoundKey key;
    key.trace = &trace;
    key.records = trace.records().size();
    key.fingerprint = boundTraceFingerprint(trace);
    key.fuLatency = config.fuLatency;
    key.forwardLatency = config.forwardLatency;

    BoundCache &cache = boundCache();
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        ++cache.stats.lookups;
        auto it = cache.entries.find(key);
        if (it != cache.entries.end()) {
            ++cache.stats.hits;
            return it->second;
        }
    }
    // Compute outside the lock (the bound is deterministic, so a
    // racing duplicate computation is wasted work, not wrong work).
    DataflowBound bound = dataflowBound(trace, config);
    std::lock_guard<std::mutex> lock(cache.mutex);
    return cache.entries.emplace(key, bound).first->second;
}

BoundCacheStats
boundCacheStats()
{
    BoundCache &cache = boundCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    return cache.stats;
}

} // namespace ruu::lint
