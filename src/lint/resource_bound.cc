#include "lint/resource_bound.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <tuple>
#include <unordered_map>

#include "common/logging.hh"
#include "isa/reg.hh"

namespace ruu::lint
{

namespace
{

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return b ? (a + b - 1) / b : a;
}

/**
 * Decode-dead cycles every mechanism pays after a taken branch, beyond
 * the branch's own decode slot. The in-order cores stall decode for
 * branchTakenPenalty cycles from the branch's decode (one of which is
 * the shared slot); the speculative core pays predictedTakenPenalty
 * after the slot on a correct prediction and mispredictPenalty from
 * resolution otherwise. The floor takes the cheapest.
 */
unsigned
takenBranchBubble(const UarchConfig &config)
{
    unsigned taken = config.branchTakenPenalty > 0
                         ? config.branchTakenPenalty - 1
                         : 0;
    unsigned mispredict = config.mispredictPenalty > 0
                              ? config.mispredictPenalty - 1
                              : 0;
    return std::min({taken, config.predictedTakenPenalty, mispredict});
}

/** True when @p op occupies a functional-unit initiation slot. */
bool
usesFunctionalUnit(Opcode op)
{
    return !isBranch(op) && !isNopLike(op) && op != Opcode::HALT;
}

/** Dispatch class of @p inst: all memory traffic shares the one port. */
FuKind
dispatchClass(const Instruction &inst)
{
    return isMemory(inst.op) ? FuKind::Memory : inst.fu();
}

/**
 * Erlang-C probability that an arrival to an M/M/m queue with offered
 * load @p a (= lambda * service) waits. Valid for a < m.
 */
double
erlangC(unsigned m, double a)
{
    double term = 1.0; // a^k / k!
    double sum = 1.0;  // sum over k < m
    for (unsigned k = 1; k < m; ++k) {
        term *= a / k;
        sum += term;
    }
    term *= a / m;                      // a^m / m!
    double wait = term * m / (m - a);   // the waiting-state term
    return wait / (sum + wait);
}

} // namespace

const char *
boundResourceName(BoundResource resource)
{
    switch (resource) {
      case BoundResource::Dependence: return "dependence";
      case BoundResource::Decode: return "decode";
      case BoundResource::Schedule: return "schedule";
      case BoundResource::FuClass: return "fu";
      case BoundResource::ResultBus: return "bus";
      case BoundResource::Commit: return "commit";
      case BoundResource::NumResources: break;
    }
    return "?";
}

std::string
ResourceBound::bindingName() const
{
    if (breakdown.binding == BoundResource::FuClass) {
        return std::string("fu:") + fuKindName(breakdown.bindingFu);
    }
    return boundResourceName(breakdown.binding);
}

ResourceBound
resourceBound(const Trace &trace, const UarchConfig &config)
{
    ResourceBound bound;
    bound.dataflow = dataflowBound(trace, config);

    const auto &records = trace.records();
    if (records.empty())
        return bound;

    BoundBreakdown &bd = bound.breakdown;
    bd.dependence = bound.dataflow.critPathCycles + 1;

    const unsigned bubble = takenBranchBubble(config);
    std::uint64_t bubbles = 0; // taken-branch dead cycles so far

    // Unified decode x dependence path: finish times through the last
    // writer of each register and the last store to each word, with
    // every node's start also held back to its decode slot.
    std::array<std::uint64_t, kNumArchRegs> regFinish{};
    std::unordered_map<Addr, std::uint64_t> storedWords;

    struct ClassStats
    {
        std::uint64_t count = 0;
        std::uint64_t firstPos = 0;
        std::uint64_t minCost = 0;
        std::uint64_t sumCost = 0;
    };
    std::array<ClassStats, kNumFuKinds> classes{};
    std::uint64_t busUses = 0;
    std::uint64_t commitSlots = 0;
    std::uint64_t pos = 0;

    for (SeqNum seq = 0; seq < records.size(); ++seq) {
        const TraceRecord &rec = records[seq];
        const Instruction &inst = rec.inst;
        // Every core decodes at most one record per cycle, the first
        // no earlier than cycle 1, with `bubbles` dead cycles injected
        // by the taken branches decoded so far.
        pos = seq + 1 + bubbles;
        std::uint64_t cost = minRecordCost(rec, config);

        std::uint64_t ready = pos;
        for (RegId src : inst.rawSrcs()) {
            if (src.valid())
                ready = std::max(ready, regFinish[src.flat()]);
        }
        if (isLoad(inst.op)) {
            auto it = storedWords.find(rec.memAddr);
            if (it != storedWords.end())
                ready = std::max(ready, it->second);
        }
        std::uint64_t finish = ready + cost;
        if (inst.dst.valid())
            regFinish[inst.dst.flat()] = finish;
        if (isStore(inst.op))
            storedWords[rec.memAddr] = finish;
        bd.schedule = std::max(bd.schedule, finish);

        if (usesFunctionalUnit(inst.op)) {
            ClassStats &cls =
                classes[static_cast<unsigned>(dispatchClass(inst))];
            if (cls.count == 0) {
                cls.firstPos = pos;
                cls.minCost = cost;
            }
            ++cls.count;
            cls.minCost = std::min(cls.minCost, cost);
            cls.sumCost += cost;
            if (!isStore(inst.op))
                ++busUses;
        }
        if (isStore(inst.op) || inst.dst.valid())
            ++commitSlots;

        if (isBranch(inst.op) && rec.taken)
            bubbles += bubble;
    }

    bd.decode = pos;
    for (unsigned i = 0; i < kNumFuKinds; ++i) {
        const ClassStats &cls = classes[i];
        if (cls.count == 0)
            continue;
        // N initiations on m fully pipelined units need ceil(N/m)
        // distinct cycles, starting no earlier than the class's first
        // decode slot; the last one drains at least the cheapest class
        // member's latency.
        bd.fuClass[i] =
            cls.firstPos +
            (ceilDiv(cls.count, config.fuCount[i]) - 1) + cls.minCost;
    }
    if (busUses) {
        // Deliveries start no earlier than cycle 2 (decode slot 1 plus
        // a latency of at least one), resultBuses of them per cycle.
        bd.resultBus = ceilDiv(busUses, config.resultBuses) + 1;
    }
    if (commitSlots) {
        bd.commit = ceilDiv(commitSlots, config.commitWidth) + 1;
    }

    std::uint64_t fuMax = 0;
    FuKind fuMaxKind = FuKind::None;
    for (unsigned i = 0; i < kNumFuKinds; ++i) {
        if (bd.fuClass[i] > fuMax) {
            fuMax = bd.fuClass[i];
            fuMaxKind = static_cast<FuKind>(i);
        }
    }

    bound.cycles = std::max({bd.schedule, fuMax, bd.resultBus,
                             bd.commit});
    ruu_assert(bound.cycles >= bound.dataflow.cycles,
               "resource bound %llu below dataflow bound %llu",
               static_cast<unsigned long long>(bound.cycles),
               static_cast<unsigned long long>(bound.dataflow.cycles));

    // Binding resource: the simplest explanation that reaches the max.
    if (bound.cycles == bd.dependence) {
        bd.binding = BoundResource::Dependence;
    } else if (bound.cycles == bd.decode) {
        bd.binding = BoundResource::Decode;
    } else if (bound.cycles == bd.schedule) {
        bd.binding = BoundResource::Schedule;
    } else if (bound.cycles == fuMax) {
        bd.binding = BoundResource::FuClass;
        bd.bindingFu = fuMaxKind;
    } else if (bound.cycles == bd.resultBus) {
        bd.binding = BoundResource::ResultBus;
    } else {
        bd.binding = BoundResource::Commit;
    }

    // Carroll & Lin-style M/M/m estimate: treat each class's
    // initiations as Poisson arrivals over the certified horizon into
    // m pipelined servers (service = one initiation cycle); Erlang-C
    // waiting inflates the bound, and Little's law over the real
    // service times gives the implied issue-queue occupancy.
    double horizon = static_cast<double>(bound.cycles);
    double wait_cycles = 0.0;
    double occupancy = 0.0;
    for (unsigned i = 0; i < kNumFuKinds; ++i) {
        const ClassStats &cls = classes[i];
        if (cls.count == 0)
            continue;
        unsigned m = config.fuCount[i];
        double lambda = static_cast<double>(cls.count) / horizon;
        double a = lambda; // offered load, one-cycle initiations
        double wq = a < static_cast<double>(m)
                        ? erlangC(m, a) / (static_cast<double>(m) - a)
                        : horizon;
        wait_cycles += static_cast<double>(cls.count) * wq;
        double mean_service = static_cast<double>(cls.sumCost) /
                              static_cast<double>(cls.count);
        occupancy += lambda * (mean_service + wq);
    }
    bound.estimateCycles = horizon + wait_cycles;
    bound.estimateOccupancy = occupancy;
    return bound;
}

namespace
{

/** Cache key: trace identity plus every config field the floors read. */
struct ResourceBoundKey
{
    const void *trace;
    std::size_t records;
    std::uint64_t fingerprint;
    std::array<unsigned, kNumFuKinds> fuLatency;
    std::array<unsigned, kNumFuKinds> fuCount;
    unsigned forwardLatency;
    unsigned storeLatency;
    unsigned resultBuses;
    unsigned commitWidth;
    unsigned branchTakenPenalty;
    unsigned predictedTakenPenalty;
    unsigned mispredictPenalty;

    bool operator<(const ResourceBoundKey &o) const
    {
        return std::tie(trace, records, fingerprint, fuLatency, fuCount,
                        forwardLatency, storeLatency, resultBuses,
                        commitWidth, branchTakenPenalty,
                        predictedTakenPenalty, mispredictPenalty) <
               std::tie(o.trace, o.records, o.fingerprint, o.fuLatency,
                        o.fuCount, o.forwardLatency, o.storeLatency,
                        o.resultBuses, o.commitWidth,
                        o.branchTakenPenalty, o.predictedTakenPenalty,
                        o.mispredictPenalty);
    }
};

struct ResourceBoundCache
{
    std::mutex mutex;
    std::map<ResourceBoundKey, ResourceBound> entries;
    BoundCacheStats stats;
};

ResourceBoundCache &
resourceBoundCache()
{
    static ResourceBoundCache cache;
    return cache;
}

} // namespace

const ResourceBound &
cachedResourceBound(const Trace &trace, const UarchConfig &config)
{
    ResourceBoundKey key;
    key.trace = &trace;
    key.records = trace.records().size();
    key.fingerprint = boundTraceFingerprint(trace);
    key.fuLatency = config.fuLatency;
    key.fuCount = config.fuCount;
    key.forwardLatency = config.forwardLatency;
    key.storeLatency = config.storeLatency;
    key.resultBuses = config.resultBuses;
    key.commitWidth = config.commitWidth;
    key.branchTakenPenalty = config.branchTakenPenalty;
    key.predictedTakenPenalty = config.predictedTakenPenalty;
    key.mispredictPenalty = config.mispredictPenalty;

    ResourceBoundCache &cache = resourceBoundCache();
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        ++cache.stats.lookups;
        auto it = cache.entries.find(key);
        if (it != cache.entries.end()) {
            ++cache.stats.hits;
            return it->second;
        }
    }
    // Compute outside the lock (the bound is deterministic, so a
    // racing duplicate computation is wasted work, not wrong work).
    ResourceBound bound = resourceBound(trace, config);
    std::lock_guard<std::mutex> lock(cache.mutex);
    return cache.entries.emplace(key, bound).first->second;
}

BoundCacheStats
resourceBoundCacheStats()
{
    ResourceBoundCache &cache = resourceBoundCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    return cache.stats;
}

} // namespace ruu::lint
