#include "lint/bound_summary.hh"

#include "common/logging.hh"
#include "lint/resource_bound.hh"

namespace ruu::lint
{

double
BoundSummary::tightenedPct() const
{
    if (!dependence)
        return 0.0;
    return 100.0 *
           (static_cast<double>(certified) -
            static_cast<double>(dependence)) /
           static_cast<double>(dependence);
}

std::string
BoundSummary::bindingHistogram() const
{
    std::string out;
    for (const auto &[name, count] : bindings) {
        if (!out.empty())
            out += ", ";
        out += name + " x" + std::to_string(count);
    }
    return out;
}

BoundSummary
summarizeBounds(const std::vector<Workload> &workloads,
                const UarchConfig &config)
{
    BoundSummary summary;
    summary.workloads = workloads.size();
    for (const Workload &workload : workloads) {
        const ResourceBound &bound =
            cachedResourceBound(workload.trace(), config);
        summary.certified += bound.cycles;
        summary.dependence += bound.dataflow.cycles;
        ++summary.bindings[bound.bindingName()];
    }
    return summary;
}

std::string
formatBoundSummary(const BoundSummary &summary)
{
    return detail::vformat(
        "static bound: %llu cycles certified over %zu workload(s) "
        "(dependence-only %llu, +%.1f%%); binding: %s",
        static_cast<unsigned long long>(summary.certified),
        summary.workloads,
        static_cast<unsigned long long>(summary.dependence),
        summary.tightenedPct(), summary.bindingHistogram().c_str());
}

} // namespace ruu::lint
