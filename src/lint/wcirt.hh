/**
 * @file
 * Certified worst-case interrupt-response bound (WCIRT): a static
 * per-(trace, handler, configuration, core-scheme) *upper* bound on
 * the cycles from interrupt arrival to handler entry — the dual of
 * lint/resource_bound.hh's lower bound on throughput.
 *
 * The paper's claim is that aggressive issue logic can stay
 * *interruptable*; the WCIRT analysis certifies that claim statically.
 * The ceiling is assembled from provable worst cases of the drain-to-
 * precise-state cut every scheme shares:
 *
 *   - drain: when decode stops, at most the scheme's window occupancy
 *     (pool/TU/RS/history-buffer entries, or the deepest latency for
 *     the interlocked in-order core) is in flight. Each in-flight
 *     operation resolves within the deepest functional-unit latency
 *     plus its bank, result-bus and commit-slot serialization, and a
 *     dependence chain through the window is at most occupancy long.
 *   - restart: schemes without precise synchronous interrupts
 *     (simple, tomasulo, rstu) may keep issuing until the detected
 *     fault reaches the freeze point; one more full drain covers the
 *     restart penalty of Sohi & Vajapeyam's imprecise cut.
 *   - cut = drain + restart: the per-delivery *hard* ceiling on the
 *     measured decode-stop-to-segment-end residue. trap::TrapController
 *     and oracle::sweepInterrupts assert every measured drain against
 *     it, exactly as sim::Experiment asserts the PR 6 cycle floor.
 *   - cycles = cut + exchangeCycles: the certified arrival-to-handler-
 *     entry ceiling reported as WCIRT by analyze/verify/storm.
 *   - handler: a CFG worst-case path bound over the `.handler` program
 *     (entry to RTI, RTI-reachable paths only, building on RUU-W301/
 *     W302); kWcirtUnbounded when a loop can stand between entry and
 *     RTI (see RUU-W303 for handlers with *no* RTI-reachable exit).
 *   - shadow / maskedStretch: the one-instruction RTI shadow and the
 *     worst DINT..EINT masked stretch of the outer trace, both charged
 *     at serialized worst cost.
 *   - responseCeiling(): end-to-end arrival-to-entry ceiling including
 *     preemption by up to maxLevels-1 nested handler levels — asserted
 *     only for single periodic sources (coalescing guarantees at most
 *     one pending tick, so no queueing term is needed).
 *   - segmentCeiling(): a whole-run serialized ceiling of the outer
 *     trace; trap::TrapController derives its per-segment watchdog
 *     limits from it (with slack) instead of the magic constants, and
 *     `ruusim storm` prunes arrival periods the ceiling proves cannot
 *     deliver (the run completes before the first tick).
 *
 * Like the resource bound, the WCIRT ceiling is load-bearing: the
 * soundness assertions run on every delivery of every storm, fuzz and
 * verify run, and scripts/ci_wcirt_smoke.sh gates finiteness,
 * tightness over the old watchdog constants, and pruned-vs-unpruned
 * byte-identity in CI.
 */

#ifndef RUU_LINT_WCIRT_HH
#define RUU_LINT_WCIRT_HH

#include <cstdint>

#include "asm/program.hh"
#include "lint/dataflow_bound.hh"
#include "sim/machine.hh"
#include "trace/trace.hh"
#include "uarch/config.hh"

namespace ruu::lint
{

/** Sentinel: a ceiling the analysis cannot certify finite. */
inline constexpr std::uint64_t kWcirtUnbounded =
    std::numeric_limits<std::uint64_t>::max();

/** Trap-architecture parameters the ceiling depends on. */
struct WcirtParams
{
    /** Charged exchange latency per delivery and per RTI. */
    Cycle exchangeCycles = 8;

    /** Nesting depth of the trap architecture (TrapLayout::maxLevels). */
    unsigned maxLevels = 4;
};

/** Every component of one WCIRT ceiling, for reporting. */
struct WcirtBreakdown
{
    /** In-flight window the scheme can hold at the decode stop. */
    std::uint64_t occupancy = 0;

    /** Worst resolution cost of one in-flight operation. */
    std::uint64_t perOpDrain = 0;

    /** Worst drain of a full window after the decode stop. */
    std::uint64_t drain = 0;

    /** Restart allowance of imprecise schemes (0 when precise). */
    std::uint64_t restart = 0;

    /** drain + restart: the per-delivery hard ceiling on the residue. */
    std::uint64_t cut = 0;

    /** CFG worst entry-to-RTI path cost, or kWcirtUnbounded. */
    std::uint64_t handlerPath = 0;

    /** handlerPath plus the handler's own drain, or kWcirtUnbounded. */
    std::uint64_t handler = 0;

    /** One RTI-shadow instruction at serialized worst cost. */
    std::uint64_t shadow = 0;

    /** Worst masked DINT..EINT stretch of the outer trace. */
    std::uint64_t maskedStretch = 0;

    /** Whole-outer-trace serialized ceiling (watchdog/prune basis). */
    std::uint64_t segment = 0;
};

/** The certified WCIRT ceiling of one (trace, handler, config, core). */
struct WcirtBound
{
    /**
     * Certified ceiling on cycles from interrupt arrival to handler
     * entry when the machine is unmasked outer code: cut + exchange.
     * Always finite.
     */
    std::uint64_t cycles = 0;

    WcirtBreakdown breakdown;

    /** Parameters the ceiling was computed with. */
    Cycle exchangeCycles = 0;
    unsigned maxLevels = 0;

    /** True when the handler-path component is certified finite. */
    bool handlerFinite() const
    {
        return breakdown.handler != kWcirtUnbounded;
    }

    /**
     * End-to-end arrival-to-handler-entry ceiling including worst-case
     * preemption: up to maxLevels-1 in-progress handler levels (each
     * paying handler + exchange + RTI shadow), the worst masked
     * stretch, then the delivery itself. Sound for a single periodic
     * source (InterruptSource coalescing holds pending ticks to one);
     * kWcirtUnbounded when the handler path is not certified finite.
     */
    std::uint64_t responseCeiling() const;

    /**
     * Whole-segment ceiling of the outer trace: serialized execution
     * of every record plus a final drain. An interrupt-free run of the
     * trace completes within it, so (a) watchdog limits derive from it
     * and (b) arrival periods beyond it provably deliver nothing.
     */
    std::uint64_t segmentCeiling() const;

    /** A measured latency as a percentage of the ceiling. */
    double pctOfCeiling(std::uint64_t measured) const
    {
        return cycles ? 100.0 * static_cast<double>(measured) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/**
 * Compute the WCIRT ceiling of @p trace under @p config on scheme
 * @p kind, with deliveries entering @p handler. Linear in trace length
 * plus one CFG pass over the handler.
 */
WcirtBound wcirtBound(const Trace &trace, const Program &handler,
                      const UarchConfig &config, CoreKind kind,
                      const WcirtParams &params = {});

/**
 * Memoized wcirtBound. Keyed on the trace's identity (address, length,
 * content fingerprint), the handler's identity, the core scheme, the
 * trap parameters, and every configuration field the ceiling reads.
 * Thread-safe; entries are never evicted and the returned reference is
 * stable for the process lifetime — sweep workers under -j share one
 * computation per key.
 */
const WcirtBound &cachedWcirtBound(const Trace &trace,
                                   const Program &handler,
                                   const UarchConfig &config,
                                   CoreKind kind,
                                   const WcirtParams &params = {});

/** Counters of cachedWcirtBound since process start (delta-assert). */
BoundCacheStats wcirtBoundCacheStats();

/**
 * Serialized whole-trace ceiling of a bare @p trace segment on scheme
 * @p kind: every record at serialized worst cost plus a final drain.
 * TrapController uses it to derive watchdog limits for regenerated
 * resume segments and generated handler traces, whose content the
 * outer bound cannot see.
 */
std::uint64_t wcirtTraceCeiling(const Trace &trace,
                                const UarchConfig &config,
                                CoreKind kind);

/**
 * CFG worst-case entry-to-RTI path cost of @p handler under
 * @p config: the longest RTI-terminated path with every instruction
 * charged its serialized worst cost. kWcirtUnbounded when no RTI is
 * reachable or a CFG cycle lies on an entry-to-RTI path.
 */
std::uint64_t wcirtHandlerPathBound(const Program &handler,
                                    const UarchConfig &config);

} // namespace ruu::lint

#endif // RUU_LINT_WCIRT_HH
