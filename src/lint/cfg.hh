/**
 * @file
 * Basic-block control-flow graph over a ruu::Program.
 *
 * Blocks are maximal straight-line instruction ranges: a new block
 * starts at the program entry, at every branch target, and after every
 * branch or HALT. Edges follow the model ISA's control flow — branches
 * resolve in the decode stage, J is unconditional, the eight Jxx forms
 * are conditional with fall-through, HALT terminates.
 *
 * Branches whose target is not a valid instruction boundary get no
 * target edge (the analyzer reports them separately); a block whose
 * straight-line successor would run past the last instruction is marked
 * fallsOffEnd.
 */

#ifndef RUU_LINT_CFG_HH
#define RUU_LINT_CFG_HH

#include <cstddef>
#include <vector>

#include "asm/program.hh"

namespace ruu
{
namespace lint
{

/** One basic block: instructions [first, last] inclusive. */
struct BasicBlock
{
    std::size_t first = 0; //!< static index of the first instruction
    std::size_t last = 0;  //!< static index of the last instruction
    std::vector<std::size_t> succs; //!< successor block ids
    std::vector<std::size_t> preds; //!< predecessor block ids
    bool fallsOffEnd = false; //!< straight-line exit past program end
    bool reachable = false;   //!< some path from the entry reaches it
};

/** Control-flow graph of a program. */
struct Cfg
{
    std::vector<BasicBlock> blocks; //!< block 0 is the entry block
    std::vector<std::size_t> blockOf; //!< instruction index -> block id

    /** Number of blocks. */
    std::size_t size() const { return blocks.size(); }

    /** Build the CFG for @p program (empty CFG for an empty program). */
    static Cfg build(const Program &program);
};

} // namespace lint
} // namespace ruu

#endif // RUU_LINT_CFG_HH
