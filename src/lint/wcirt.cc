#include "lint/wcirt.hh"

#include <algorithm>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/logging.hh"
#include "lint/cfg.hh"

namespace ruu::lint
{

namespace
{

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return b ? (a + b - 1) / b : a;
}

/** a + b with kWcirtUnbounded absorbing. */
std::uint64_t
satAdd(std::uint64_t a, std::uint64_t b)
{
    if (a == kWcirtUnbounded || b == kWcirtUnbounded)
        return kWcirtUnbounded;
    if (a > kWcirtUnbounded - b)
        return kWcirtUnbounded;
    return a + b;
}

/** a * b with kWcirtUnbounded absorbing. */
std::uint64_t
satMul(std::uint64_t a, std::uint64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    if (a == kWcirtUnbounded || b == kWcirtUnbounded)
        return kWcirtUnbounded;
    if (a > kWcirtUnbounded / b)
        return kWcirtUnbounded;
    return a * b;
}

/** Deepest functional-unit latency any operation can occupy. */
std::uint64_t
deepestLatency(const UarchConfig &config)
{
    std::uint64_t deepest = 1;
    for (unsigned lat : config.fuLatency)
        deepest = std::max<std::uint64_t>(deepest, lat);
    deepest = std::max<std::uint64_t>(deepest, config.storeLatency);
    deepest = std::max<std::uint64_t>(deepest, config.forwardLatency);
    return deepest;
}

/** Worst decode-dead cycles any scheme pays for a branch. */
std::uint64_t
worstBranchPenalty(const UarchConfig &config)
{
    return std::max({config.branchTakenPenalty,
                     config.branchUntakenPenalty,
                     config.predictedTakenPenalty,
                     config.mispredictPenalty});
}

/**
 * Serialized worst cost of one instruction: its decode slot, the
 * deepest unit it could occupy (plus a bank reservation when banks
 * are modeled), its result-bus delivery and commit slot, and the
 * worst branch penalty for branches. An execution that runs the
 * instruction *alone* finishes within this; summing it over a path
 * upper-bounds any pipelined execution of the path, because every
 * stall cycle of the pipelined run is attributable to some
 * instruction's slot in the serialized schedule.
 */
std::uint64_t
serializedInstCost(const Instruction &inst, const UarchConfig &config)
{
    std::uint64_t cost = 1; // the decode slot
    if (isBranch(inst.op)) {
        cost += worstBranchPenalty(config);
        return cost;
    }
    if (inst.op == Opcode::HALT || isNopLike(inst.op))
        return cost + 1;
    FuKind kind = isMemory(inst.op) ? FuKind::Memory : inst.fu();
    cost += config.latency(kind);
    if (isMemory(inst.op) && config.memoryBanks > 0)
        cost += config.bankBusyCycles;
    cost += 2; // result-bus delivery + commit slot
    return cost;
}

/**
 * In-flight window the scheme can hold when decode stops. The
 * interlocked in-order core issues at most one operation per cycle
 * and the oldest completes within the deepest latency, so its window
 * is the deepest latency itself; every buffered scheme is capped by
 * its buffer capacity plus the load registers that can hold memory
 * operations outside it. The +2 absorbs the instruction in decode and
 * the one at the commit point.
 */
std::uint64_t
schemeOccupancy(CoreKind kind, const UarchConfig &config)
{
    std::uint64_t window = 0;
    switch (kind) {
      case CoreKind::Simple:
        window = deepestLatency(config);
        break;
      case CoreKind::Tomasulo:
        window = static_cast<std::uint64_t>(config.rsPerFu) *
                 kNumFuKinds;
        break;
      case CoreKind::Rstu:
        window = config.tuEntries;
        break;
      case CoreKind::Ruu:
      case CoreKind::SpecRuu:
        window = config.poolEntries;
        break;
      case CoreKind::History:
        window = config.historyEntries;
        break;
    }
    if (kind != CoreKind::Simple)
        window += config.loadRegisters;
    return window + 2;
}

/** True when scheme @p kind surfaces synchronous faults precisely. */
bool
schemePrecise(CoreKind kind)
{
    switch (kind) {
      case CoreKind::Ruu:
      case CoreKind::SpecRuu:
      case CoreKind::History:
        return true;
      case CoreKind::Simple:
      case CoreKind::Tomasulo:
      case CoreKind::Rstu:
        return false;
    }
    return false;
}

/**
 * Worst drain of a full window of @p occupancy operations after the
 * decode stop: a dependence chain through the window is at most
 * occupancy deep, each link costing the deepest latency plus its bank
 * reservation; the drained results then serialize over the result
 * buses and the commit point. A resolving branch can add one worst
 * penalty, and the +8 absorbs the fixed pipeline stages around the
 * stop.
 */
std::uint64_t
drainCeiling(std::uint64_t occupancy, const UarchConfig &config)
{
    std::uint64_t per_op = deepestLatency(config) + 1;
    if (config.memoryBanks > 0)
        per_op += config.bankBusyCycles;
    std::uint64_t drain = satMul(occupancy, per_op);
    drain = satAdd(drain, ceilDiv(occupancy, config.resultBuses));
    drain = satAdd(drain, ceilDiv(occupancy, config.commitWidth));
    drain = satAdd(drain, worstBranchPenalty(config));
    return satAdd(drain, 8);
}

/** FNV-1a over the handler's instructions (cache-key fingerprint). */
std::uint64_t
programFingerprint(const Program &program)
{
    std::uint64_t hash = 1469598103934665603ull;
    auto mix = [&hash](std::uint64_t value) {
        hash ^= value;
        hash *= 1099511628211ull;
    };
    mix(program.size());
    mix(program.isHandler() ? 1 : 0);
    const std::size_t step = std::max<std::size_t>(
        1, program.size() / 64);
    for (std::size_t i = 0; i < program.size(); i += step) {
        const Instruction &inst = program.inst(i);
        mix(static_cast<std::uint64_t>(inst.op));
        mix(inst.target);
    }
    return hash;
}

} // namespace

std::uint64_t
wcirtHandlerPathBound(const Program &handler, const UarchConfig &config)
{
    if (handler.empty())
        return kWcirtUnbounded;
    Cfg cfg = Cfg::build(handler);
    const std::size_t nb = cfg.size();

    // exitCost[b]: serialized cost of block b up to and including its
    // first RTI, or kWcirtUnbounded when b contains none. fullCost[b]:
    // the whole block (the cost of passing through).
    std::vector<std::uint64_t> exit_cost(nb, kWcirtUnbounded);
    std::vector<std::uint64_t> full_cost(nb, 0);
    for (std::size_t b = 0; b < nb; ++b) {
        const BasicBlock &block = cfg.blocks[b];
        std::uint64_t cost = 0;
        for (std::size_t i = block.first; i <= block.last; ++i) {
            cost += serializedInstCost(handler.inst(i), config);
            if (handler.inst(i).op == Opcode::RTI &&
                exit_cost[b] == kWcirtUnbounded) {
                exit_cost[b] = cost;
            }
        }
        full_cost[b] = cost;
    }

    // canReachRti[b]: some path from b reaches an RTI. Backward
    // fixpoint over the block graph.
    std::vector<char> can_reach(nb, 0);
    for (std::size_t b = 0; b < nb; ++b)
        can_reach[b] = exit_cost[b] != kWcirtUnbounded ? 1 : 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < nb; ++b) {
            if (can_reach[b])
                continue;
            for (std::size_t s : cfg.blocks[b].succs) {
                if (can_reach[s]) {
                    can_reach[b] = 1;
                    changed = true;
                    break;
                }
            }
        }
    }
    if (!cfg.blocks.empty() && !can_reach[0])
        return kWcirtUnbounded; // no RTI reachable from the entry

    // Longest entry-to-RTI path over the relevant subgraph R =
    // {reachable from entry} ∩ {can reach RTI}. Kahn's algorithm: a
    // cycle inside R means an unboundable path, so any R node left
    // unprocessed makes the bound infinite. Edges from a block
    // containing an RTI are still followed — the handler may branch
    // around its RTI — but the path *ends* at an RTI, so the answer
    // maxes over exit costs.
    std::vector<char> relevant(nb, 0);
    for (std::size_t b = 0; b < nb; ++b)
        relevant[b] = (cfg.blocks[b].reachable && can_reach[b]) ? 1 : 0;
    std::vector<std::size_t> indegree(nb, 0);
    for (std::size_t b = 0; b < nb; ++b) {
        if (!relevant[b])
            continue;
        for (std::size_t s : cfg.blocks[b].succs)
            if (relevant[s])
                ++indegree[s];
    }
    std::vector<std::uint64_t> dist(nb, 0); // cost to reach block start
    std::vector<std::size_t> ready;
    for (std::size_t b = 0; b < nb; ++b)
        if (relevant[b] && indegree[b] == 0)
            ready.push_back(b);
    std::size_t processed = 0;
    std::uint64_t best = 0;
    bool any_exit = false;
    while (!ready.empty()) {
        std::size_t b = ready.back();
        ready.pop_back();
        ++processed;
        if (exit_cost[b] != kWcirtUnbounded) {
            best = std::max(best, satAdd(dist[b], exit_cost[b]));
            any_exit = true;
        }
        for (std::size_t s : cfg.blocks[b].succs) {
            if (!relevant[s])
                continue;
            dist[s] = std::max(dist[s], satAdd(dist[b], full_cost[b]));
            if (--indegree[s] == 0)
                ready.push_back(s);
        }
    }
    std::size_t relevant_count = 0;
    for (std::size_t b = 0; b < nb; ++b)
        relevant_count += relevant[b];
    if (processed != relevant_count || !any_exit)
        return kWcirtUnbounded; // a cycle lies on an entry-to-RTI path
    return best;
}

std::uint64_t
wcirtTraceCeiling(const Trace &trace, const UarchConfig &config,
                  CoreKind kind)
{
    std::uint64_t total = 0;
    for (const TraceRecord &rec : trace.records())
        total = satAdd(total, serializedInstCost(rec.inst, config));
    return satAdd(total,
                  drainCeiling(schemeOccupancy(kind, config), config));
}

std::uint64_t
WcirtBound::responseCeiling() const
{
    if (breakdown.handler == kWcirtUnbounded)
        return kWcirtUnbounded;
    // Worst case: maxLevels-1 handler levels are in progress or become
    // pending ahead of this delivery, each finishing its handler path,
    // its RTI exchange and its one-instruction RTI shadow; then the
    // worst masked stretch of the interrupted code runs to its EINT,
    // and the delivery itself drains and exchanges.
    std::uint64_t unwind =
        satAdd(breakdown.handler,
               satAdd(exchangeCycles, breakdown.shadow));
    std::uint64_t levels = maxLevels > 0 ? maxLevels - 1 : 0;
    std::uint64_t ceiling = satMul(levels, unwind);
    ceiling = satAdd(ceiling, breakdown.shadow);
    ceiling = satAdd(ceiling, breakdown.maskedStretch);
    return satAdd(ceiling, cycles);
}

std::uint64_t
WcirtBound::segmentCeiling() const
{
    return satAdd(breakdown.segment, breakdown.cut);
}

WcirtBound
wcirtBound(const Trace &trace, const Program &handler,
           const UarchConfig &config, CoreKind kind,
           const WcirtParams &params)
{
    WcirtBound bound;
    bound.exchangeCycles = params.exchangeCycles;
    bound.maxLevels = params.maxLevels;
    WcirtBreakdown &bd = bound.breakdown;

    bd.occupancy = schemeOccupancy(kind, config);
    bd.perOpDrain = deepestLatency(config) + 1 +
                    (config.memoryBanks > 0 ? config.bankBusyCycles : 0);
    bd.drain = drainCeiling(bd.occupancy, config);
    bd.restart = schemePrecise(kind) ? 0 : bd.drain;
    bd.cut = satAdd(bd.drain, bd.restart);
    bound.cycles = satAdd(bd.cut, params.exchangeCycles);

    bd.handlerPath = wcirtHandlerPathBound(handler, config);
    bd.handler = satAdd(bd.handlerPath, bd.drain);

    // Worst single-record serialized cost: the RTI shadow instruction
    // the controller lets through after a return.
    std::uint64_t worst_record = 0;
    std::uint64_t segment = 0;
    std::uint64_t masked = 0;       // current DINT..EINT stretch
    std::uint64_t worst_masked = 0;
    bool in_window = false;
    for (const TraceRecord &rec : trace.records()) {
        std::uint64_t cost = serializedInstCost(rec.inst, config);
        worst_record = std::max(worst_record, cost);
        segment = satAdd(segment, cost);
        if (rec.inst.op == Opcode::DINT) {
            in_window = true;
            masked = 0;
        }
        if (in_window) {
            masked = satAdd(masked, cost);
            worst_masked = std::max(worst_masked, masked);
        }
        if (rec.inst.op == Opcode::EINT)
            in_window = false;
    }
    bd.shadow = satAdd(worst_record, 2);
    // A masked stretch delays the cut by its own serialized execution
    // on top of the in-flight drain already counted in `cut`.
    bd.maskedStretch = worst_masked;
    bd.segment = segment;

    ruu_assert(bound.cycles != kWcirtUnbounded,
               "delivery ceiling must be finite");
    return bound;
}

namespace
{

/** Cache key: trace + handler identity plus every field the ceiling
 * reads. */
struct WcirtBoundKey
{
    const void *trace;
    std::size_t records;
    std::uint64_t fingerprint;
    const void *handler;
    std::uint64_t handlerFingerprint;
    unsigned kind;
    Cycle exchangeCycles;
    unsigned maxLevels;
    std::array<unsigned, kNumFuKinds> fuLatency;
    unsigned forwardLatency;
    unsigned storeLatency;
    unsigned resultBuses;
    unsigned commitWidth;
    unsigned memoryBanks;
    unsigned bankBusyCycles;
    unsigned branchTakenPenalty;
    unsigned branchUntakenPenalty;
    unsigned predictedTakenPenalty;
    unsigned mispredictPenalty;
    unsigned poolEntries;
    unsigned tuEntries;
    unsigned rsPerFu;
    unsigned historyEntries;
    unsigned loadRegisters;

    bool operator<(const WcirtBoundKey &o) const
    {
        return std::tie(trace, records, fingerprint, handler,
                        handlerFingerprint, kind, exchangeCycles,
                        maxLevels, fuLatency, forwardLatency,
                        storeLatency, resultBuses, commitWidth,
                        memoryBanks, bankBusyCycles, branchTakenPenalty,
                        branchUntakenPenalty, predictedTakenPenalty,
                        mispredictPenalty, poolEntries, tuEntries,
                        rsPerFu, historyEntries, loadRegisters) <
               std::tie(o.trace, o.records, o.fingerprint, o.handler,
                        o.handlerFingerprint, o.kind, o.exchangeCycles,
                        o.maxLevels, o.fuLatency, o.forwardLatency,
                        o.storeLatency, o.resultBuses, o.commitWidth,
                        o.memoryBanks, o.bankBusyCycles,
                        o.branchTakenPenalty, o.branchUntakenPenalty,
                        o.predictedTakenPenalty, o.mispredictPenalty,
                        o.poolEntries, o.tuEntries, o.rsPerFu,
                        o.historyEntries, o.loadRegisters);
    }
};

struct WcirtBoundCache
{
    std::mutex mutex;
    std::map<WcirtBoundKey, WcirtBound> entries;
    BoundCacheStats stats;
};

WcirtBoundCache &
wcirtBoundCache()
{
    static WcirtBoundCache cache;
    return cache;
}

} // namespace

const WcirtBound &
cachedWcirtBound(const Trace &trace, const Program &handler,
                 const UarchConfig &config, CoreKind kind,
                 const WcirtParams &params)
{
    WcirtBoundKey key;
    key.trace = &trace;
    key.records = trace.records().size();
    key.fingerprint = boundTraceFingerprint(trace);
    key.handler = &handler;
    key.handlerFingerprint = programFingerprint(handler);
    key.kind = static_cast<unsigned>(kind);
    key.exchangeCycles = params.exchangeCycles;
    key.maxLevels = params.maxLevels;
    key.fuLatency = config.fuLatency;
    key.forwardLatency = config.forwardLatency;
    key.storeLatency = config.storeLatency;
    key.resultBuses = config.resultBuses;
    key.commitWidth = config.commitWidth;
    key.memoryBanks = config.memoryBanks;
    key.bankBusyCycles = config.bankBusyCycles;
    key.branchTakenPenalty = config.branchTakenPenalty;
    key.branchUntakenPenalty = config.branchUntakenPenalty;
    key.predictedTakenPenalty = config.predictedTakenPenalty;
    key.mispredictPenalty = config.mispredictPenalty;
    key.poolEntries = config.poolEntries;
    key.tuEntries = config.tuEntries;
    key.rsPerFu = config.rsPerFu;
    key.historyEntries = config.historyEntries;
    key.loadRegisters = config.loadRegisters;

    WcirtBoundCache &cache = wcirtBoundCache();
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        ++cache.stats.lookups;
        auto it = cache.entries.find(key);
        if (it != cache.entries.end()) {
            ++cache.stats.hits;
            return it->second;
        }
    }
    // Compute outside the lock (the ceiling is deterministic, so a
    // racing duplicate computation is wasted work, not wrong work).
    WcirtBound bound = wcirtBound(trace, handler, config, kind, params);
    std::lock_guard<std::mutex> lock(cache.mutex);
    return cache.entries.emplace(key, bound).first->second;
}

BoundCacheStats
wcirtBoundCacheStats()
{
    WcirtBoundCache &cache = wcirtBoundCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    return cache.stats;
}

} // namespace ruu::lint
