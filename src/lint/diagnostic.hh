/**
 * @file
 * Diagnostics produced by the static program verifier (lint/analyze.hh).
 *
 * Every check has a stable identifier ("RUU-E001"), a severity, and a
 * short name usable in suppression annotations. Identifiers are part of
 * the tool's interface: tests assert on them, docs/LINT.md catalogs
 * them, and programs reference them in `.lint allow` directives or
 * ProgramBuilder::allow() calls.
 */

#ifndef RUU_LINT_DIAGNOSTIC_HH
#define RUU_LINT_DIAGNOSTIC_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ruu
{
namespace lint
{

/** How bad a finding is. */
enum class Severity : std::uint8_t
{
    Error,   //!< the program is wrong (would misbehave or trap)
    Warning, //!< almost certainly unintended (dead code, shadowed data)
    Style,   //!< violates the CFT calling conventions (docs/ISA.md)
};

/** Printable severity name ("error", "warning", "style"). */
const char *severityName(Severity severity);

/** Every check the static analyzer performs. */
enum class Check : std::uint8_t
{
    UseBeforeDef,         //!< RUU-E001: register read, never written
    BranchOutOfRange,     //!< RUU-E002: target outside the program
    BranchMidInstruction, //!< RUU-E003: target splits a parcel pair
    DataOverlap,          //!< RUU-E004: conflicting DataInit values
    FallOffEnd,           //!< RUU-E005: control runs past the program
    UnreachableCode,      //!< RUU-W101: block no path reaches
    DeadDef,              //!< RUU-W102: register written, never read
    DataDuplicate,        //!< RUU-W103: DataInit repeated, same value
    CondRegClobber,       //!< RUU-W201: A0/S0 value never branched on
    LoopSaveRegWrite,     //!< RUU-W202: B/T written inside a loop body
    IntWindowUnbalanced,  //!< RUU-W301: DINT window open at an exit
    RtiOutsideHandler,    //!< RUU-W302: RTI in a non-handler program
    HandlerNoRtiPath,     //!< RUU-W303: handler code that cannot RTI
    NumChecks,
};

/** Number of checks, for table sizing. */
inline constexpr unsigned kNumChecks =
    static_cast<unsigned>(Check::NumChecks);

/** Static catalog record of one check. */
struct CheckInfo
{
    const char *id;       //!< stable identifier, e.g. "RUU-E001"
    const char *name;     //!< suppression name, e.g. "use_before_def"
    Severity severity;    //!< default severity
    const char *summary;  //!< one-line description for --catalog
};

/** Catalog record of @p check. */
const CheckInfo &checkInfo(Check check);

/**
 * Look a check up by identifier or name. Matching is case-insensitive
 * and treats '-' and '_' as equal, so "RUU-E001", "ruu_e001" and
 * "use-before-def" all resolve. Returns nullopt for unknown text
 * (including the "all" wildcard, which suppression matching handles
 * separately).
 */
std::optional<Check> checkFromString(const std::string &text);

/** Canonical form used when matching suppressions: lower, '-'→'_'. */
std::string normalizeCheckName(const std::string &text);

/** One finding of the static analyzer. */
struct Diagnostic
{
    Check check = Check::UseBeforeDef;
    Severity severity = Severity::Error;

    /** Static instruction index, or kNoIndex for data diagnostics. */
    static constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);
    std::size_t index = kNoIndex;

    /** Parcel address of the instruction (0 for data diagnostics). */
    ParcelAddr pc = 0;

    /** What is wrong, with concrete registers/addresses. */
    std::string message;

    /** How to fix it (may be empty). */
    std::string fixHint;

    /** Stable identifier of the violated check ("RUU-E001"). */
    const char *id() const { return checkInfo(check).id; }

    /** "[RUU-E001] error at parcel 12: ... (hint: ...)". */
    std::string toString() const;
};

/** True when any diagnostic has Severity::Error. */
bool hasErrors(const std::vector<Diagnostic> &diagnostics);

/** Render @p diagnostics one per line, prefixed with @p subject. */
std::string formatDiagnostics(const std::string &subject,
                              const std::vector<Diagnostic> &diagnostics);

} // namespace lint
} // namespace ruu

#endif // RUU_LINT_DIAGNOSTIC_HH
