/**
 * @file
 * The one-line static-bound summary shared by `ruusim analyze`,
 * `ruusim verify` and every bench (bench/bench_common.hh): the suite's
 * certified resource-aware lower bound, how much it tightened the
 * dependence-only bound, and which resource binds how many workloads.
 * One formatter so the three surfaces can never drift apart.
 */

#ifndef RUU_LINT_BOUND_SUMMARY_HH
#define RUU_LINT_BOUND_SUMMARY_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/machine.hh"
#include "uarch/config.hh"

namespace ruu::lint
{

/** Aggregated certified bounds of one workload set. */
struct BoundSummary
{
    std::size_t workloads = 0;
    std::uint64_t certified = 0;  //!< sum of resource-aware bounds
    std::uint64_t dependence = 0; //!< sum of dependence-only bounds

    /** Workload count per binding resource name. */
    std::map<std::string, unsigned> bindings;

    /** How much the resource floors tightened the dependence bound. */
    double tightenedPct() const;

    /** "bus x3, commit x2"-style histogram of binding resources. */
    std::string bindingHistogram() const;
};

/** Aggregate cachedResourceBound over @p workloads under @p config. */
BoundSummary summarizeBounds(const std::vector<Workload> &workloads,
                             const UarchConfig &config);

/** The standard summary line (no trailing newline). */
std::string formatBoundSummary(const BoundSummary &summary);

} // namespace ruu::lint

#endif // RUU_LINT_BOUND_SUMMARY_HH
