#include "lint/invariant_checker.hh"

#include "uarch/scoreboard.hh"

namespace ruu
{
namespace lint
{

namespace
{

std::string
tagName(Tag tag)
{
    if (tag == kNoTag)
        return "<none>";
    if (tag & kStoreTagBit)
        return "store#" + std::to_string(tag & ~kStoreTagBit);
    return "tag " + std::to_string(tag);
}

} // namespace

void
InvariantChecker::violate(std::string message)
{
    if (_violations.size() >= kMaxViolations) {
        if (!_overflowed) {
            _overflowed = true;
            _violations.push_back(
                {_cycle, "(further violations suppressed)"});
        }
        return;
    }
    _violations.push_back({_cycle, std::move(message)});
}

void
InvariantChecker::beginCycle(Cycle cycle)
{
    _cycle = cycle;
    // Bus accounting for cycles already in the past can no longer
    // change; drop it so long runs stay O(pipeline depth).
    _resultCount.erase(_resultCount.begin(),
                       _resultCount.lower_bound(cycle));
    _commitCount.erase(_commitCount.begin(),
                       _commitCount.lower_bound(cycle));
}

void
InvariantChecker::onTagAllocated(Tag tag, SeqNum seq)
{
    if (tag == kNoTag) {
        violate("allocated the null tag");
        return;
    }
    auto [it, inserted] = _live.emplace(tag, LiveTag{seq, false});
    if (!inserted)
        violate(tagName(tag) + " allocated twice (first for seq " +
                std::to_string(it->second.seq) + ", again for seq " +
                std::to_string(seq) + ")");
}

void
InvariantChecker::onResultBroadcast(Cycle cycle, Tag tag)
{
    unsigned count = ++_resultCount[cycle];
    if (count > _limits.resultBuses)
        violate("result bus double-grant: " + std::to_string(count) +
                " broadcasts in cycle " + std::to_string(cycle) +
                " on " + std::to_string(_limits.resultBuses) +
                " bus(es)");
    if (tag == kNoTag)
        return;
    auto it = _live.find(tag);
    if (it == _live.end()) {
        violate(tagName(tag) + " broadcast but never allocated");
        return;
    }
    it->second.broadcast = true;
}

void
InvariantChecker::onCommitBroadcast(Cycle cycle, Tag tag)
{
    unsigned count = ++_commitCount[cycle];
    if (count > _limits.commitWidth)
        violate("commit bus double-grant: " + std::to_string(count) +
                " broadcasts in cycle " + std::to_string(cycle) +
                " with commit width " +
                std::to_string(_limits.commitWidth));
    if (tag != kNoTag && !_live.count(tag))
        violate(tagName(tag) + " commit-broadcast but not live");
}

void
InvariantChecker::onStoreBroadcast(Tag tag)
{
    auto it = _live.find(tag);
    if (it == _live.end()) {
        violate(tagName(tag) + " published but never allocated");
        return;
    }
    it->second.broadcast = true;
}

void
InvariantChecker::onTagReleased(Tag tag)
{
    auto it = _live.find(tag);
    if (it == _live.end()) {
        violate(tagName(tag) + " released but not live "
                               "(double release or never allocated)");
        return;
    }
    if (!it->second.broadcast)
        violate(tagName(tag) + " (seq " +
                std::to_string(it->second.seq) +
                ") released before its result was ever broadcast");
    _live.erase(it);
}

void
InvariantChecker::onTagSquashed(Tag tag)
{
    if (_live.erase(tag) == 0)
        violate(tagName(tag) + " squashed but not live");
}

void
InvariantChecker::onCommit(SeqNum seq)
{
    if (_lastCommit != kNoSeqNum && seq <= _lastCommit)
        violate("out-of-program-order commit: seq " +
                std::to_string(seq) + " after seq " +
                std::to_string(_lastCommit));
    _lastCommit = seq;
}

void
InvariantChecker::onScoreboardSample(unsigned busy_bits,
                                     unsigned outstanding_writers)
{
    if (busy_bits != outstanding_writers)
        violate("scoreboard mismatch: " + std::to_string(busy_bits) +
                " busy register instance(s) vs " +
                std::to_string(outstanding_writers) +
                " outstanding register-writing op(s)");
}

void
InvariantChecker::require(bool condition, const char *what)
{
    if (!condition)
        violate(std::string("requirement failed: ") + what);
}

void
InvariantChecker::onRunEnd(bool interrupted)
{
    if (interrupted)
        return; // faulted runs legitimately strand in-flight state
    for (const auto &[tag, live] : _live)
        violate(tagName(tag) + " (seq " + std::to_string(live.seq) +
                ") leaked: allocated but never released or squashed");
    _live.clear();
}

std::string
InvariantChecker::report() const
{
    std::string out;
    for (const Violation &v : _violations)
        out += "  [" + _coreName + " @ cycle " +
               std::to_string(v.cycle) + "] " + v.message + "\n";
    return out;
}

} // namespace lint
} // namespace ruu
