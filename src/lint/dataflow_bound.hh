/**
 * @file
 * Static dataflow-bound analysis: a certified lower bound on the cycle
 * count of *any* of the modeled issue mechanisms for a given trace.
 *
 * The analyzer builds the dynamic dependence graph of a trace —
 * register RAW edges through the last writer of each register, plus
 * memory edges from a store to later loads of the same word — and
 * weights each node with the *minimum* latency any core could achieve
 * for it (forwarded-load latency for loads, zero for stores and
 * effect-free instructions, the functional-unit latency otherwise).
 * The longest path through that graph is the dataflow limit the paper's
 * issue-logic comparison is chasing: no amount of issue logic can beat
 * the dependences in the program.
 *
 * Two results follow:
 *
 *   - a soundness oracle: every timing core must report
 *     cycles >= bound.cycles, and sim::Experiment enforces that on
 *     every run it executes;
 *   - a figure of merit: bound.cycles / run.cycles ("% of dataflow
 *     limit") says how close each mechanism comes to pure dataflow
 *     execution, complementing the paper's issue-rate tables.
 *
 * The bound also includes the decode floor: the machines decode at most
 * one instruction per cycle, so a trace with N non-branch instructions
 * needs at least N cycles regardless of dependences. (Branches are
 * excluded: a zero-penalty branch can share its decode cycle.)
 */

#ifndef RUU_LINT_DATAFLOW_BOUND_HH
#define RUU_LINT_DATAFLOW_BOUND_HH

#include <cstdint>

#include "common/types.hh"
#include "trace/trace.hh"
#include "uarch/config.hh"

namespace ruu::lint
{

/** The dataflow lower bound of one trace under one configuration. */
struct DataflowBound
{
    /** Certified lower bound on any core's cycle count. */
    std::uint64_t cycles = 0;

    /** Length of the dependence critical path alone, in cycles. */
    std::uint64_t critPathCycles = 0;

    /** Dynamic instruction ending the critical path (for reporting). */
    SeqNum critTail = kNoSeqNum;

    /** Number of dynamic instructions on the critical path. */
    std::size_t critLength = 0;

    /** Decode floor: dynamic non-branch instructions. */
    std::uint64_t decodeFloor = 0;

    /** The bound as a percentage of an observed cycle count. */
    double pctOfLimit(std::uint64_t observedCycles) const
    {
        return observedCycles ? 100.0 * static_cast<double>(cycles) /
                                    static_cast<double>(observedCycles)
                              : 0.0;
    }
};

/**
 * Compute the dataflow bound of @p trace under @p config.
 * Linear in trace length; memory edges resolve through the trace's
 * recorded addresses.
 */
DataflowBound dataflowBound(const Trace &trace,
                            const UarchConfig &config);

/**
 * The cheapest any mechanism could execute @p record: forwarded-load
 * latency for loads, nothing for stores (the data just has to be
 * ready), nothing for branches/NOP/HALT (they resolve in the issue
 * stage), the functional-unit latency otherwise. Shared by the
 * dataflow bound above and the resource bound
 * (lint/resource_bound.hh).
 */
std::uint64_t minRecordCost(const TraceRecord &record,
                            const UarchConfig &config);

/** Hit/lookup counters of the process-wide bound cache. */
struct BoundCacheStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
};

/**
 * Memoized dataflowBound. The bound depends only on the trace and the
 * latency-related configuration fields (fuLatency, forwardLatency) —
 * it is invariant across pool-size sweep points — so the sweep drivers
 * share one computation per (trace, latency profile) instead of
 * recomputing it at every point. Keyed on the trace's address, length
 * and a content fingerprint plus the latency fields; entries are never
 * evicted. Thread-safe; the returned reference is stable for the
 * process lifetime.
 */
const DataflowBound &cachedDataflowBound(const Trace &trace,
                                         const UarchConfig &config);

/** Counters of cachedDataflowBound since process start. */
BoundCacheStats boundCacheStats();

/**
 * Cheap content fingerprint of @p trace (FNV-1a over up to 64 evenly
 * spaced records): guards the bound caches against a freed trace's
 * address being reused by a different trace of the same length.
 */
std::uint64_t boundTraceFingerprint(const Trace &trace);

} // namespace ruu::lint

#endif // RUU_LINT_DATAFLOW_BOUND_HH
