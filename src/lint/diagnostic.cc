#include "lint/diagnostic.hh"

#include <cctype>

#include "common/logging.hh"

namespace ruu
{
namespace lint
{

namespace
{

const CheckInfo kCatalog[kNumChecks] = {
    {"RUU-E001", "use_before_def", Severity::Error,
     "register read on a path where it is never written"},
    {"RUU-E002", "branch_out_of_range", Severity::Error,
     "branch target lies outside the program"},
    {"RUU-E003", "branch_mid_instruction", Severity::Error,
     "branch target splits a two-parcel instruction"},
    {"RUU-E004", "data_overlap", Severity::Error,
     "two data initializers write different values to one address"},
    {"RUU-E005", "fall_off_end", Severity::Error,
     "control flow can run past the last instruction"},
    {"RUU-W101", "unreachable_code", Severity::Warning,
     "no control-flow path reaches this block"},
    {"RUU-W102", "dead_def", Severity::Warning,
     "register written but the value is never read"},
    {"RUU-W103", "data_duplicate", Severity::Warning,
     "data initializer repeats an address with the same value"},
    {"RUU-W201", "cond_reg_clobber", Severity::Style,
     "A0/S0 written but the value is never tested by a branch"},
    {"RUU-W202", "loop_save_reg_write", Severity::Style,
     "B/T save register written inside a loop body"},
    {"RUU-W301", "unbalanced_int_window", Severity::Warning,
     "a DINT critical section can reach a program exit without EINT"},
    {"RUU-W302", "rti_outside_handler", Severity::Warning,
     "RTI reachable in a program not marked as an interrupt handler"},
    {"RUU-W303", "handler_no_rti_path", Severity::Warning,
     "handler block from which no RTI is reachable (runaway handler)"},
};

} // namespace

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Error: return "error";
      case Severity::Warning: return "warning";
      case Severity::Style: return "style";
    }
    return "?";
}

const CheckInfo &
checkInfo(Check check)
{
    unsigned i = static_cast<unsigned>(check);
    ruu_assert(i < kNumChecks, "bad lint check %u", i);
    return kCatalog[i];
}

std::string
normalizeCheckName(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text)
        out.push_back(c == '-'
                          ? '_'
                          : static_cast<char>(std::tolower(
                                static_cast<unsigned char>(c))));
    return out;
}

std::optional<Check>
checkFromString(const std::string &text)
{
    std::string norm = normalizeCheckName(text);
    for (unsigned i = 0; i < kNumChecks; ++i) {
        if (norm == normalizeCheckName(kCatalog[i].id) ||
            norm == kCatalog[i].name)
            return static_cast<Check>(i);
    }
    return std::nullopt;
}

std::string
Diagnostic::toString() const
{
    std::string out = "[";
    out += id();
    out += "] ";
    out += severityName(severity);
    if (index != kNoIndex)
        out += " at parcel " + std::to_string(pc) + " (inst #" +
               std::to_string(index) + ")";
    out += ": " + message;
    if (!fixHint.empty())
        out += " (hint: " + fixHint + ")";
    return out;
}

bool
hasErrors(const std::vector<Diagnostic> &diagnostics)
{
    for (const Diagnostic &d : diagnostics)
        if (d.severity == Severity::Error)
            return true;
    return false;
}

std::string
formatDiagnostics(const std::string &subject,
                  const std::vector<Diagnostic> &diagnostics)
{
    std::string out;
    for (const Diagnostic &d : diagnostics) {
        out += subject + ": " + d.toString() + "\n";
    }
    return out;
}

} // namespace lint
} // namespace ruu
