#include "lint/cfg.hh"

#include <vector>

namespace ruu
{
namespace lint
{

Cfg
Cfg::build(const Program &program)
{
    Cfg cfg;
    const std::size_t n = program.size();
    if (n == 0)
        return cfg;

    // Pass 1: leaders. The entry, every valid branch target, and every
    // instruction after a branch or program exit (HALT/RTI) starts a
    // block.
    std::vector<bool> leader(n, false);
    leader[0] = true;
    for (std::size_t i = 0; i < n; ++i) {
        const Instruction &inst = program.inst(i);
        if (isBranch(inst.op)) {
            if (auto t = program.indexOfPc(inst.target))
                leader[*t] = true;
            if (i + 1 < n)
                leader[i + 1] = true;
        } else if (isProgramExit(inst.op) && i + 1 < n) {
            leader[i + 1] = true;
        }
    }

    // Pass 2: block ranges.
    cfg.blockOf.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (leader[i]) {
            BasicBlock block;
            block.first = i;
            cfg.blocks.push_back(block);
        }
        cfg.blockOf[i] = cfg.blocks.size() - 1;
        cfg.blocks.back().last = i;
    }

    // Pass 3: edges.
    auto addEdge = [&cfg](std::size_t from, std::size_t to) {
        cfg.blocks[from].succs.push_back(to);
        cfg.blocks[to].preds.push_back(from);
    };
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        BasicBlock &block = cfg.blocks[b];
        const Instruction &last = program.inst(block.last);
        if (isProgramExit(last.op))
            continue;
        if (isBranch(last.op)) {
            if (auto t = program.indexOfPc(last.target))
                addEdge(b, cfg.blockOf[*t]);
            if (!isCondBranch(last.op))
                continue; // J: no fall-through
        }
        if (block.last + 1 < n)
            addEdge(b, cfg.blockOf[block.last + 1]);
        else
            block.fallsOffEnd = true;
    }

    // Pass 4: reachability from the entry block.
    std::vector<std::size_t> stack = {0};
    cfg.blocks[0].reachable = true;
    while (!stack.empty()) {
        std::size_t b = stack.back();
        stack.pop_back();
        for (std::size_t s : cfg.blocks[b].succs) {
            if (!cfg.blocks[s].reachable) {
                cfg.blocks[s].reachable = true;
                stack.push_back(s);
            }
        }
    }
    return cfg;
}

} // namespace lint
} // namespace ruu
