/**
 * @file
 * Static program verifier for the model ISA.
 *
 * analyze() builds a basic-block CFG (lint/cfg.hh) and runs forward and
 * backward dataflow over it:
 *
 *  - RUU-E001 use_before_def: a register is read on some path from the
 *    entry along which no instruction has written it (forward
 *    may-defined analysis; reported only in reachable blocks).
 *  - RUU-E002/E003 branch targets: outside the program, or into the
 *    second parcel of a two-parcel instruction.
 *  - RUU-E004/W103 data image: two DataInit entries name the same word
 *    address with different (error) or identical (warning) values.
 *  - RUU-E005 fall_off_end: a reachable block's straight-line exit runs
 *    past the last instruction.
 *  - RUU-W101 unreachable_code: a block no path from the entry reaches.
 *  - RUU-W102 dead_def: a register write whose value cannot reach any
 *    read (backward liveness).
 *  - RUU-W201 cond_reg_clobber / RUU-W202 loop_save_reg_write: the CFT
 *    calling-style conventions from docs/ISA.md — A0/S0 are branch
 *    condition registers, B/T hold loop invariants.
 *
 * Diagnostics suppressed by the program's lint annotations (a `.lint
 * allow <check>` directive in assembly, ProgramBuilder::allow() /
 * allowProgram() in the DSL) are filtered out unless
 * Options::includeSuppressed is set.
 */

#ifndef RUU_LINT_ANALYZE_HH
#define RUU_LINT_ANALYZE_HH

#include <vector>

#include "asm/program.hh"
#include "lint/diagnostic.hh"

namespace ruu
{
namespace lint
{

/** Knobs for analyze(). */
struct Options
{
    /** Report findings even when the program annotates them away. */
    bool includeSuppressed = false;
};

/**
 * Run every static check over @p program. Diagnostics come back sorted
 * by instruction index (data-image findings last), errors before
 * warnings at the same instruction.
 */
std::vector<Diagnostic> analyze(const Program &program,
                                const Options &options = {});

} // namespace lint
} // namespace ruu

#endif // RUU_LINT_ANALYZE_HH
