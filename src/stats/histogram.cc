#include "stats/histogram.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace ruu
{

void
Histogram::sample(std::uint64_t value)
{
    if (value >= _buckets.size())
        _buckets.resize(value + 1, 0);
    ++_buckets[value];
    ++_count;
    _sum += value;
    _max = std::max(_max, value);
    _min = _count == 1 ? value : std::min(_min, value);
}

double
Histogram::mean() const
{
    return _count ? static_cast<double>(_sum) / static_cast<double>(_count)
                  : 0.0;
}

std::uint64_t
Histogram::bucket(std::uint64_t value) const
{
    return value < _buckets.size() ? _buckets[value] : 0;
}

std::uint64_t
Histogram::percentile(double fraction) const
{
    ruu_assert(fraction >= 0.0 && fraction <= 1.0,
               "percentile fraction %f out of range", fraction);
    if (_count == 0)
        return 0;
    std::uint64_t target =
        static_cast<std::uint64_t>(fraction * static_cast<double>(_count));
    if (target == 0)
        target = 1;
    std::uint64_t seen = 0;
    for (std::uint64_t v = 0; v < _buckets.size(); ++v) {
        seen += _buckets[v];
        if (seen >= target)
            return v;
    }
    return _max;
}

void
Histogram::reset()
{
    _buckets.clear();
    _count = 0;
    _sum = 0;
    _max = 0;
    _min = 0;
}

std::string
Histogram::summary() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "mean=%.3f min=%llu max=%llu n=%llu",
                  mean(),
                  static_cast<unsigned long long>(min()),
                  static_cast<unsigned long long>(max()),
                  static_cast<unsigned long long>(count()));
    return buf;
}

} // namespace ruu
