/**
 * @file
 * Lightweight named statistics counters.
 *
 * Every core exposes its cycle/instruction/stall counters through a
 * StatSet so tests and benches can interrogate them uniformly.
 */

#ifndef RUU_STATS_COUNTER_HH
#define RUU_STATS_COUNTER_HH

#include <cstdint>
#include <string>

namespace ruu
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    /** Add @p n events (default one). */
    void increment(std::uint64_t n = 1) { _value += n; }

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t n) { _value += n; return *this; }

    /** Current event count. */
    std::uint64_t value() const { return _value; }

    /** Reset to zero (used when a core is reused across runs). */
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

} // namespace ruu

#endif // RUU_STATS_COUNTER_HH
