/**
 * @file
 * Plain-text table formatter used by the paper-reproduction benches to
 * print rows in the same layout as the tables in Sohi's paper.
 */

#ifndef RUU_STATS_TABLE_HH
#define RUU_STATS_TABLE_HH

#include <string>
#include <vector>

namespace ruu
{

/** Column alignment for TextTable. */
enum class Align { Left, Right };

/**
 * An incrementally built, monospace-rendered table.
 *
 * Usage:
 * @code
 *   TextTable t({"Entries", "Speedup", "Issue Rate"});
 *   t.addRow({"3", "0.965", "0.423"});
 *   std::cout << t.render();
 * @endcode
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string fmt(double value, int precision = 3);

    /** Convenience: format an unsigned integer. */
    static std::string fmt(std::uint64_t value);

    /** Set a title line printed above the table. */
    void setTitle(std::string title) { _title = std::move(title); }

    /** Column alignment (defaults to Right for all columns). */
    void setAlign(std::size_t col, Align align);

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return _rows.size(); }

    /** Render the whole table, including title and separator rules. */
    std::string render() const;

  private:
    std::string _title;
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
    std::vector<Align> _aligns;
};

} // namespace ruu

#endif // RUU_STATS_TABLE_HH
