/**
 * @file
 * A named collection of counters and histograms.
 *
 * Cores register their statistics in a StatSet; the harness and the
 * benches read them back by name without knowing the core's type.
 */

#ifndef RUU_STATS_STAT_SET_HH
#define RUU_STATS_STAT_SET_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats/counter.hh"
#include "stats/histogram.hh"

namespace ruu
{

/** Registry of named statistics owned by one simulated component. */
class StatSet
{
  public:
    /**
     * Create (or fetch) the counter called @p name.
     * The returned reference stays valid for the StatSet's lifetime.
     */
    Counter &counter(const std::string &name);

    /** Create (or fetch) the histogram called @p name. */
    Histogram &histogram(const std::string &name);

    /** Value of counter @p name; 0 when it was never created. */
    std::uint64_t value(const std::string &name) const;

    /** True when a counter called @p name exists. */
    bool hasCounter(const std::string &name) const;

    /** Names of all registered counters, sorted. */
    std::vector<std::string> counterNames() const;

    /** Names of all registered histograms, sorted. */
    std::vector<std::string> histogramNames() const;

    /** Histogram by name; panics when missing. */
    const Histogram &histogramAt(const std::string &name) const;

    /** Reset every counter and histogram to its initial state. */
    void reset();

    /** Render all counters as "name = value" lines. */
    std::string dump() const;

  private:
    std::map<std::string, Counter> _counters;
    std::map<std::string, Histogram> _histograms;
};

} // namespace ruu

#endif // RUU_STATS_STAT_SET_HH
