/**
 * @file
 * Integer-valued histogram for occupancy and latency distributions
 * (e.g. RUU occupancy per cycle, commit-to-issue distance).
 */

#ifndef RUU_STATS_HISTOGRAM_HH
#define RUU_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ruu
{

/** A dense histogram over small non-negative integer samples. */
class Histogram
{
  public:
    Histogram() = default;

    /** Record one sample of @p value. */
    void sample(std::uint64_t value);

    /** Number of samples recorded. */
    std::uint64_t count() const { return _count; }

    /** Sum of all samples. */
    std::uint64_t sum() const { return _sum; }

    /** Arithmetic mean of the samples (0 when empty). */
    double mean() const;

    /** Largest sample seen (0 when empty). */
    std::uint64_t max() const { return _max; }

    /** Smallest sample seen (0 when empty). */
    std::uint64_t min() const { return _count ? _min : 0; }

    /** Occurrences of exactly @p value. */
    std::uint64_t bucket(std::uint64_t value) const;

    /**
     * Smallest v such that at least @p fraction of samples are <= v.
     * @param fraction in [0, 1].
     */
    std::uint64_t percentile(double fraction) const;

    /** Forget all samples. */
    void reset();

    /** Render as "mean=… max=… n=…" for logs. */
    std::string summary() const;

  private:
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _count = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _max = 0;
    std::uint64_t _min = 0;
};

} // namespace ruu

#endif // RUU_STATS_HISTOGRAM_HH
