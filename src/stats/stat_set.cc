#include "stats/stat_set.hh"

#include <sstream>

#include "common/logging.hh"

namespace ruu
{

Counter &
StatSet::counter(const std::string &name)
{
    return _counters[name];
}

Histogram &
StatSet::histogram(const std::string &name)
{
    return _histograms[name];
}

std::uint64_t
StatSet::value(const std::string &name) const
{
    auto it = _counters.find(name);
    return it == _counters.end() ? 0 : it->second.value();
}

bool
StatSet::hasCounter(const std::string &name) const
{
    return _counters.count(name) != 0;
}

std::vector<std::string>
StatSet::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(_counters.size());
    for (const auto &kv : _counters)
        names.push_back(kv.first);
    return names;
}

std::vector<std::string>
StatSet::histogramNames() const
{
    std::vector<std::string> names;
    names.reserve(_histograms.size());
    for (const auto &kv : _histograms)
        names.push_back(kv.first);
    return names;
}

const Histogram &
StatSet::histogramAt(const std::string &name) const
{
    auto it = _histograms.find(name);
    ruu_assert(it != _histograms.end(), "no histogram named '%s'",
               name.c_str());
    return it->second;
}

void
StatSet::reset()
{
    for (auto &kv : _counters)
        kv.second.reset();
    for (auto &kv : _histograms)
        kv.second.reset();
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &kv : _counters)
        os << kv.first << " = " << kv.second.value() << "\n";
    for (const auto &kv : _histograms)
        os << kv.first << " : " << kv.second.summary() << "\n";
    return os.str();
}

} // namespace ruu
