#include "stats/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace ruu
{

TextTable::TextTable(std::vector<std::string> headers)
    : _headers(std::move(headers)), _aligns(_headers.size(), Align::Right)
{
    ruu_assert(!_headers.empty(), "a table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    ruu_assert(cells.size() == _headers.size(),
               "row arity %zu does not match header arity %zu",
               cells.size(), _headers.size());
    _rows.push_back(std::move(cells));
}

std::string
TextTable::fmt(double value, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TextTable::fmt(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    return buf;
}

void
TextTable::setAlign(std::size_t col, Align align)
{
    ruu_assert(col < _aligns.size(), "column %zu out of range", col);
    _aligns[col] = align;
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto pad = [&](const std::string &s, std::size_t c) {
        std::string out;
        std::size_t fill = widths[c] - s.size();
        if (_aligns[c] == Align::Right)
            out = std::string(fill, ' ') + s;
        else
            out = s + std::string(fill, ' ');
        return out;
    };

    std::ostringstream os;
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 3 : 0);

    if (!_title.empty())
        os << _title << "\n";
    os << std::string(total, '-') << "\n";
    for (std::size_t c = 0; c < _headers.size(); ++c)
        os << (c ? " | " : "") << pad(_headers[c], c);
    os << "\n" << std::string(total, '-') << "\n";
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? " | " : "") << pad(row[c], c);
        os << "\n";
    }
    os << std::string(total, '-') << "\n";
    return os.str();
}

} // namespace ruu
