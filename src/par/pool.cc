#include "par/pool.hh"

#include <cctype>
#include <cstdlib>
#include <string>

namespace ruu::par
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
jobSeed(std::uint64_t seed, std::uint64_t index)
{
    std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ull * (index + 1));
    return splitmix64(state);
}

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("RUU_JOBS")) {
        long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
consumeJobsFlag(int &argc, char **argv)
{
    unsigned jobs = defaultJobs();
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        const char *value = nullptr;
        if (arg == "-j" || arg == "--jobs") {
            if (i + 1 < argc)
                value = argv[++i];
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2 &&
                   std::isdigit(static_cast<unsigned char>(arg[2]))) {
            value = argv[i] + 2;
        } else if (arg.rfind("--jobs=", 0) == 0) {
            value = argv[i] + 7;
        } else {
            argv[out++] = argv[i];
            continue;
        }
        if (value) {
            long n = std::strtol(value, nullptr, 10);
            if (n > 0)
                jobs = static_cast<unsigned>(n);
        }
    }
    argc = out;
    return jobs;
}

Pool::Pool(unsigned workers) : _nworkers(workers ? workers : 1)
{
    if (_nworkers <= 1)
        return;
    _shards = std::vector<Shard>(_nworkers);
    _threads.reserve(_nworkers);
    for (unsigned id = 0; id < _nworkers; ++id)
        _threads.emplace_back([this, id] { workerLoop(id); });
}

Pool::~Pool()
{
    if (_threads.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _shutdown = true;
    }
    _wake.notify_all();
    for (std::thread &thread : _threads)
        thread.join();
}

void
Pool::forEachIndexed(std::size_t jobs, const Body &body)
{
    if (jobs == 0)
        return;
    if (_nworkers <= 1 || jobs == 1) {
        // The reference serial loop: index order, calling thread.
        for (std::size_t job = 0; job < jobs; ++job)
            body(job, 0);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(_mutex);
        // Contiguous shards: worker w starts on [w*jobs/W, (w+1)*jobs/W),
        // so neighbouring jobs (which tend to share a configuration)
        // land on the same worker and its arena caches stay warm.
        // Stealing rebalances the tail.
        for (unsigned w = 0; w < _nworkers; ++w) {
            std::size_t lo = jobs * w / _nworkers;
            std::size_t hi = jobs * (w + 1) / _nworkers;
            _shards[w].jobs.clear();
            for (std::size_t job = lo; job < hi; ++job)
                _shards[w].jobs.push_back(job);
        }
        _body = &body;
        _pending = jobs;
        _unclaimed = jobs;
        _firstError = nullptr;
        _firstErrorJob = 0;
    }
    _wake.notify_all();

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _drained.wait(lock, [this] { return _pending == 0; });
        _body = nullptr;
        error = _firstError;
    }
    if (error)
        std::rethrow_exception(error);
}

bool
Pool::claim(unsigned id, std::size_t &job)
{
    // Own shard first, from the front (index order); then steal from a
    // victim's tail, starting at the next worker so thieves spread out.
    Shard &own = _shards[id];
    if (!own.jobs.empty()) {
        job = own.jobs.front();
        own.jobs.pop_front();
        return true;
    }
    for (unsigned k = 1; k < _nworkers; ++k) {
        Shard &victim = _shards[(id + k) % _nworkers];
        if (!victim.jobs.empty()) {
            job = victim.jobs.back();
            victim.jobs.pop_back();
            return true;
        }
    }
    return false;
}

void
Pool::workerLoop(unsigned id)
{
    std::unique_lock<std::mutex> lock(_mutex);
    while (true) {
        _wake.wait(lock, [this] { return _shutdown || _unclaimed > 0; });
        if (_shutdown)
            return;
        std::size_t job = 0;
        if (!claim(id, job))
            continue;
        --_unclaimed;
        const Body *body = _body;
        lock.unlock();

        std::exception_ptr error;
        try {
            (*body)(job, id);
        } catch (...) {
            error = std::current_exception();
        }

        lock.lock();
        if (error && (!_firstError || job < _firstErrorJob)) {
            _firstError = error;
            _firstErrorJob = job;
        }
        if (--_pending == 0)
            _drained.notify_all();
    }
}

void
forEachIndexed(Pool *pool, std::size_t jobs, const Pool::Body &body)
{
    if (pool && pool->workers() > 1) {
        pool->forEachIndexed(jobs, body);
        return;
    }
    for (std::size_t job = 0; job < jobs; ++job)
        body(job, 0);
}

} // namespace ruu::par
