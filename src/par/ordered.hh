/**
 * @file
 * Ordered streaming commit for parallel producers.
 *
 * The campaign journal and the serve response stream share the same
 * requirement: workers finish jobs in scheduling order, but the
 * durable output (journal lines, protocol responses, progress
 * callbacks) must appear in submission order, and must stop exactly
 * where a serial run's would stop when a job fails. OrderedCommitter
 * stages each finished result under its position and advances a
 * cursor through consecutive positions, invoking the commit sink for
 * each result as it becomes the front of the line. A failed position
 * blocks every later commit, so an interrupted or failed parallel run
 * leaves output byte-identical to the serial prefix.
 *
 * Thread-safe; the commit sink runs under the internal lock, so sinks
 * must not call back into the committer.
 */

#ifndef RUU_PAR_ORDERED_HH
#define RUU_PAR_ORDERED_HH

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <utility>

#include "common/error.hh"

namespace ruu::par
{

template <typename T>
class OrderedCommitter
{
  public:
    /**
     * @p sink commits one in-order result; returning an error marks
     * that position failed (blocking all later commits), exactly as
     * if the job itself had failed.
     */
    template <typename Sink>
    explicit OrderedCommitter(Sink sink) : _sink(std::move(sink)) {}

    /** Stage the finished result of @p pos and commit any ready run. */
    void commit(std::size_t pos, T result)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _staged.emplace(pos, std::move(result));
        drainLocked();
    }

    /**
     * Mark @p pos failed. The earliest failure wins; everything before
     * it still commits, nothing at or after it ever does.
     */
    void fail(std::size_t pos, Error error)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (!_failed || pos < _failedPos) {
            _failed = true;
            _failedPos = pos;
            _error = std::move(error);
        }
        drainLocked();
    }

    /**
     * True when a failure at or before @p pos makes this position's
     * work uncommittable — workers poll this to skip doomed jobs.
     */
    bool doomed(std::size_t pos) const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        return _failed && _failedPos <= pos;
    }

    /** True once any position has failed. */
    bool failed() const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        return _failed;
    }

    /** The winning (earliest-position) failure. */
    Error error() const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        return _error;
    }

    /** Positions committed so far (the cursor). */
    std::size_t committed() const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        return _next;
    }

  private:
    void drainLocked()
    {
        while (!_staged.empty()) {
            auto front = _staged.begin();
            if (front->first != _next)
                break;
            if (_failed && _failedPos <= _next)
                break;
            if (auto committed = _sink(_next, front->second);
                !committed) {
                _failed = true;
                _failedPos = _next;
                _error = committed.error();
                break;
            }
            _staged.erase(front);
            ++_next;
        }
    }

    std::function<Expected<bool>(std::size_t, const T &)> _sink;
    mutable std::mutex _mutex;
    std::map<std::size_t, T> _staged;
    std::size_t _next = 0;
    bool _failed = false;
    std::size_t _failedPos = 0;
    Error _error;
};

} // namespace ruu::par

#endif // RUU_PAR_ORDERED_HH
